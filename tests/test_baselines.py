"""Tests for the baseline synthesizers: OLSQ, TB-OLSQ, SABRE, SATMap."""

import pytest

from repro.arch import full, grid, ibm_qx2, linear, rigetti_aspen4
from repro.baselines import OLSQ, SABRE, SATMap, TBOLSQ, OLSQEncoder, SabreRouter
from repro.circuit import QuantumCircuit
from repro.core import (
    OLSQ2,
    TBOLSQ2,
    LayoutEncoder,
    SynthesisConfig,
    validate_result,
)
from repro.smt import cnf_context
from repro.workloads import qaoa_circuit, queko_circuit, random_circuit


def triangle():
    qc = QuantumCircuit(3, name="triangle")
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


def fast_config(**kw):
    kw.setdefault("swap_duration", 1)
    kw.setdefault("time_budget", 60)
    kw.setdefault("solve_time_budget", 30)
    return SynthesisConfig(**kw)


class TestOLSQBaseline:
    def test_olsq_agrees_with_olsq2_on_optimal_depth(self):
        """The formulations differ, the optima must not (Sec. III-A)."""
        cfg = fast_config()
        qc = triangle()
        r1 = OLSQ(cfg).synthesize(qc, linear(3), objective="depth")
        r2 = OLSQ2(cfg).synthesize(qc, linear(3), objective="depth")
        assert r1.optimal and r2.optimal
        assert r1.depth == r2.depth
        validate_result(r1)

    def test_olsq_agrees_on_swap_count(self):
        cfg = fast_config()
        qc = triangle()
        r1 = OLSQ(cfg).synthesize(qc, linear(3), objective="swap")
        r2 = OLSQ2(cfg).synthesize(qc, linear(3), objective="swap")
        assert r1.swap_count == r2.swap_count == 1
        validate_result(r1)

    def test_olsq_agrees_on_qaoa(self):
        cfg = fast_config()
        qc = qaoa_circuit(6, seed=2)
        r1 = OLSQ(cfg).synthesize(qc, grid(2, 3), objective="depth")
        r2 = OLSQ2(cfg).synthesize(qc, grid(2, 3), objective="depth")
        assert r1.optimal and r2.optimal
        assert r1.depth == r2.depth
        validate_result(r1)
        validate_result(r2)

    def test_olsq_formulation_is_larger(self):
        """The whole point: space variables add variables and constraints."""
        qc = triangle()
        cfg = fast_config()
        lean = LayoutEncoder(qc, ibm_qx2(), horizon=5, config=cfg).encode()
        fat = OLSQEncoder(qc, ibm_qx2(), horizon=5, config=cfg).encode()
        assert fat.ctx.n_vars > lean.ctx.n_vars
        assert fat.ctx.num_clauses > lean.ctx.num_clauses

    def test_tb_olsq_matches_tb_olsq2_swaps(self):
        cfg = fast_config()
        qc = triangle()
        r1 = TBOLSQ(cfg).synthesize(qc, linear(3), objective="swap")
        r2 = TBOLSQ2(cfg).synthesize(qc, linear(3), objective="swap")
        assert r1.swap_count == r2.swap_count == 1
        validate_result(r1)


class TestSABRE:
    def test_sabre_valid_on_triangle(self):
        res = SABRE(swap_duration=1).synthesize(triangle(), linear(3))
        validate_result(res)
        assert res.swap_count >= 1  # a swap is unavoidable here

    def test_sabre_valid_on_qaoa_grid(self):
        res = SABRE(swap_duration=1).synthesize(qaoa_circuit(8, seed=1), grid(3, 3))
        validate_result(res)

    def test_sabre_valid_on_aspen(self):
        res = SABRE(swap_duration=3).synthesize(
            random_circuit(8, 40, seed=5), rigetti_aspen4()
        )
        validate_result(res)

    def test_sabre_no_swaps_on_full_connectivity(self):
        res = SABRE(swap_duration=1).synthesize(triangle(), full(3))
        assert res.swap_count == 0
        validate_result(res)

    def test_sabre_single_qubit_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        res = SABRE(swap_duration=1).synthesize(qc, linear(2))
        assert res.swap_count == 0
        validate_result(res)

    def test_sabre_respects_fixed_initial_mapping(self):
        mapping = [2, 1, 0]
        res = SABRE(swap_duration=1, passes=1).synthesize(
            triangle(), linear(3), initial_mapping=mapping
        )
        assert res.initial_mapping == mapping
        validate_result(res)

    def test_sabre_seed_reproducible(self):
        a = SABRE(swap_duration=1, seed=3).synthesize(qaoa_circuit(8, 1), grid(3, 3))
        b = SABRE(swap_duration=1, seed=3).synthesize(qaoa_circuit(8, 1), grid(3, 3))
        assert a.swap_count == b.swap_count
        assert a.initial_mapping == b.initial_mapping

    def test_sabre_circuit_too_big_rejected(self):
        with pytest.raises(ValueError):
            SABRE().synthesize(triangle(), linear(2))

    def test_sabre_bad_passes_rejected(self):
        with pytest.raises(ValueError):
            SABRE(passes=0)

    def test_sabre_is_suboptimal_on_queko(self):
        """The Table III/IV premise: SABRE inserts SWAPs where none are
        needed (QUEKO optimum is zero)."""
        device = grid(3, 3)
        totals = 0
        for seed in range(3):
            inst = queko_circuit(device, 6, 18, seed=seed)
            res = SABRE(swap_duration=1, seed=seed).synthesize(inst.circuit, device)
            validate_result(res)
            totals += res.swap_count
        assert totals > 0


class TestSATMap:
    def test_satmap_valid_and_reasonable(self):
        cfg = fast_config()
        res = SATMap(slice_size=6, config=cfg).synthesize(qaoa_circuit(8, 1), grid(3, 3))
        validate_result(res)
        assert res.solver_stats["slices"] == 2

    def test_satmap_zero_swaps_on_full(self):
        cfg = fast_config()
        res = SATMap(config=cfg).synthesize(triangle(), full(3))
        assert res.swap_count == 0
        validate_result(res)

    def test_satmap_single_slice_is_optimal_like(self):
        cfg = fast_config()
        res = SATMap(slice_size=100, config=cfg).synthesize(triangle(), linear(3))
        assert res.swap_count == 1
        validate_result(res)

    def test_satmap_bad_slice_size(self):
        with pytest.raises(ValueError):
            SATMap(slice_size=0)

    def test_quality_ordering_sabre_satmap_tbolsq2(self):
        """Table IV shape: swaps(TB-OLSQ2) <= swaps(SATMap) <= swaps(SABRE),
        averaged over seeds."""
        cfg = fast_config(max_pareto_rounds=1, time_budget=90)
        device = grid(3, 3)
        sabre_total = satmap_total = tb_total = 0
        for seed in (1, 2):
            qc = qaoa_circuit(6, seed=seed)
            sabre_total += SABRE(swap_duration=1, seed=seed).synthesize(qc, device).swap_count
            satmap_total += SATMap(slice_size=5, config=cfg).synthesize(qc, device).swap_count
            tb_total += TBOLSQ2(cfg).synthesize(qc, device, objective="swap").swap_count
        assert tb_total <= satmap_total <= sabre_total
