"""Tests for the markdown report generator (with stub experiment drivers)."""

from repro.harness.report import generate_report, markdown_table, write_report


def stub_driver(budget):
    headers = ["Case", "Time (s)", "Ratio"]
    rows = [["A", 1.5, 2.0], ["B", None, None]]
    return headers, rows, f"stub notes (budget {budget:.0f}s)"


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(["a", "b"], [[1, 2.5], [None, "x"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.50 |"
        assert lines[3] == "| - | x |"


class TestGenerateReport:
    def test_stubbed_report(self):
        text = generate_report(
            budget=30,
            experiments={"Stub experiment": stub_driver},
            title="Test report",
        )
        assert text.startswith("# Test report")
        assert "## Stub experiment" in text
        assert "| Case | Time (s) | Ratio |" in text
        assert "stub notes (budget 30s)" in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        text = write_report(
            str(path), budget=10, experiments={"Stub": stub_driver}
        )
        assert path.read_text() == text

    def test_default_experiments_cover_all_tables(self):
        from repro.harness.report import DEFAULT_EXPERIMENTS

        names = " ".join(DEFAULT_EXPERIMENTS)
        for token in ("Fig. 1", "Table I", "Table II", "Table III", "Table IV", "IV-C"):
            assert token in names
