"""Tests for certified optimality (config.certify)."""

import pytest

from repro.arch import grid, ibm_qx2, linear
from repro.circuit import QuantumCircuit
from repro.core import OLSQ2, SynthesisConfig, validate_result
from repro.workloads import qaoa_circuit, toffoli


def triangle():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


class TestCertifiedDepth:
    def test_certificate_after_descent_proof(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=90, certify=True)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        assert res.optimal
        assert res.solver_stats["certified"] is True
        validate_result(res)

    def test_certificate_at_dependency_bound(self):
        """Optimum at T_LB: the certificate covers T_LB - 1 instead."""
        cfg = SynthesisConfig(swap_duration=3, time_budget=120, certify=True)
        res = OLSQ2(cfg).synthesize(toffoli(2), ibm_qx2(), objective="depth")
        assert res.optimal
        assert res.depth == 11
        assert res.solver_stats["certified"] is True

    def test_certificate_on_qaoa(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=120, certify=True)
        res = OLSQ2(cfg).synthesize(qaoa_circuit(6, seed=1), grid(2, 3), objective="depth")
        assert res.optimal
        assert res.solver_stats["certified"] is True

    def test_certify_off_by_default(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=60)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        assert "certified" not in res.solver_stats
        assert res.certificate is None


class TestCertificateObject:
    def test_depth_certificate_structure(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=90, certify=True)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        cert = res.certificate
        assert cert is not None and cert.complete
        assert cert.model_valid
        assert cert.objective == "depth" and cert.depth == res.depth
        assert cert.expected_refutations >= 1
        assert all(r.checked for r in cert.refutations)
        assert any(
            r.phase == "depth" and r.depth_bound == res.depth - 1
            for r in cert.refutations
        )
        d = cert.to_dict()
        assert d["complete"] is True
        assert len(d["refutations"]) == len(cert.refutations)
        assert "COMPLETE" in cert.summary()

    def test_swap_certificate_covers_both_axes(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=120, certify=True)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="swap")
        assert res.optimal
        cert = res.certificate
        assert cert is not None and cert.complete, cert and cert.summary()
        assert res.solver_stats["certified"] is True
        phases = {r.phase for r in cert.refutations}
        assert phases == {"depth", "swap"}
        # the headline swap claim: no schedule with fewer SWAPs
        assert any(
            r.phase == "swap" and r.swap_bound == res.swap_count - 1
            for r in cert.refutations
        )

    def test_tb_certificate(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=90, certify=True)
        from repro.core import TBOLSQ2

        res = TBOLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        assert res.optimal
        cert = res.certificate
        assert cert is not None and cert.complete, cert and cert.summary()


class TestParallelCertify:
    def test_parallel_descent_post_hoc_certificate(self):
        from repro.core.parallel import ParallelDescent
        from repro.core.portfolio import PortfolioEntry

        cfg = SynthesisConfig(swap_duration=1, time_budget=60)
        pd = ParallelDescent(
            entries=[
                PortfolioEntry("a", cfg, False),
                PortfolioEntry("b", cfg, False),
            ],
            time_budget=60,
            certify=True,
        )
        res = pd.synthesize(triangle(), linear(3), objective="swap")
        assert res.optimal
        cert = res.certificate
        assert cert is not None and cert.complete, cert and cert.summary()
        assert res.solver_stats["certified"] is True
        # post-hoc refutations are unconditional (no assumption literals)
        assert all(r.assumptions == () for r in cert.refutations)


class TestCertifyCli:
    def test_compile_certify_prints_complete_certificate(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tri.qasm"
        path.write_text(triangle().to_qasm())
        rc = main(
            [
                "compile",
                str(path),
                "--device",
                "line-3",
                "--swap-duration",
                "1",
                "--time-budget",
                "60",
                "--objective",
                "swap",
                "--certify",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "certificate [COMPLETE]" in out
        assert "refutation" in out

    def test_analyze_qasm_clean(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tri.qasm"
        path.write_text(triangle().to_qasm())
        rc = main(
            [
                "analyze",
                str(path),
                "--device",
                "line-3",
                "--swap-duration",
                "1",
                "--depth-bound",
                "4",
                "--swap-bound",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_analyze_rejects_malformed_dimacs(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.cnf"
        path.write_text("p cnf 2 2\n1 2 0\n1 -2\n")
        rc = main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "unterminated" in out

    def test_analyze_lints_dimacs(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "warn.cnf"
        path.write_text("p cnf 2 2\n1 -1 0\n1 2 0\n")
        rc = main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tautology" in out


class TestStrictDimacs:
    def test_unterminated_trailing_clause_rejected(self):
        from repro.sat.dimacs import read_dimacs

        with pytest.raises(ValueError, match="unterminated"):
            read_dimacs("p cnf 2 2\n1 2 0\n1 -2\n")

    def test_clause_count_mismatch_rejected(self):
        from repro.sat.dimacs import read_dimacs

        with pytest.raises(ValueError, match="declares 3 clause"):
            read_dimacs("p cnf 2 3\n1 2 0\n-1 -2 0\n")

    def test_headerless_input_stays_lenient(self):
        from repro.sat.dimacs import read_dimacs

        cnf = read_dimacs("1 2 0\n-1 -2 0\n")
        assert cnf.num_clauses == 2
