"""Tests for certified optimality (config.certify)."""

import pytest

from repro.arch import grid, ibm_qx2, linear
from repro.circuit import QuantumCircuit
from repro.core import OLSQ2, SynthesisConfig, validate_result
from repro.workloads import qaoa_circuit, toffoli


def triangle():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


class TestCertifiedDepth:
    def test_certificate_after_descent_proof(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=90, certify=True)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        assert res.optimal
        assert res.solver_stats["certified"] is True
        validate_result(res)

    def test_certificate_at_dependency_bound(self):
        """Optimum at T_LB: the certificate covers T_LB - 1 instead."""
        cfg = SynthesisConfig(swap_duration=3, time_budget=120, certify=True)
        res = OLSQ2(cfg).synthesize(toffoli(2), ibm_qx2(), objective="depth")
        assert res.optimal
        assert res.depth == 11
        assert res.solver_stats["certified"] is True

    def test_certificate_on_qaoa(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=120, certify=True)
        res = OLSQ2(cfg).synthesize(qaoa_circuit(6, seed=1), grid(2, 3), objective="depth")
        assert res.optimal
        assert res.solver_stats["certified"] is True

    def test_certify_off_by_default(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=60)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        assert "certified" not in res.solver_stats
