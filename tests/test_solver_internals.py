"""White-box tests for CDCL solver internals."""

import random

import pytest

from repro.sat import brute_force_solve, CNF, mk_lit, neg, SatResult, Solver
from repro.sat.solver import _VarOrderHeap


class TestVarOrderHeap:
    def test_pop_order_follows_activity(self):
        activity = [0.0] * 5
        heap = _VarOrderHeap(activity)
        heap.grow_to(5)
        for v in range(5):
            heap.insert(v)
        activity[3] = 10.0
        heap.decrease(3)
        assert heap.pop() == 3

    def test_reinsertion_idempotent(self):
        activity = [0.0] * 3
        heap = _VarOrderHeap(activity)
        heap.grow_to(3)
        heap.insert(0)
        heap.insert(0)
        assert len(heap) == 1

    def test_in_heap_tracking(self):
        activity = [0.0] * 2
        heap = _VarOrderHeap(activity)
        heap.grow_to(2)
        heap.insert(1)
        assert heap.in_heap(1)
        assert not heap.in_heap(0)
        heap.pop()
        assert not heap.in_heap(1)


class TestPhaseSaving:
    def test_polarity_persists_across_solves(self):
        solver = Solver()
        a = solver.new_var()
        solver.warm_start({a: True})
        assert solver.solve() is SatResult.SAT
        assert solver.model[a] is True
        # the decided phase is saved on the final backtrack-to-0; compare
        # truthiness, not identity — the native backend stores phases in an
        # array('b') whose entries are ints, not bools
        assert not solver.polarity[a]  # sign 0 == assign True first
        assert solver.solve() is SatResult.SAT
        assert solver.model[a] is True  # persists without fresh hints

    def test_default_polarity_is_negative(self):
        solver = Solver()
        a = solver.new_var()
        assert solver.solve() is SatResult.SAT
        assert solver.model[a] is False


class TestRestartsAndReduction:
    def _pigeonhole(self, n_pigeons, n_holes):
        solver = Solver()
        x = [[solver.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
        for p in range(n_pigeons):
            solver.add_clause([mk_lit(x[p][h]) for h in range(n_holes)])
        for h in range(n_holes):
            for p1 in range(n_pigeons):
                for p2 in range(p1 + 1, n_pigeons):
                    solver.add_clause([mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)])
        return solver

    def test_restarts_happen_on_hard_instances(self):
        solver = self._pigeonhole(8, 7)  # thousands of conflicts
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats.restarts >= 1

    def test_reduction_removes_clauses(self):
        solver = self._pigeonhole(8, 7)
        solver.max_learnts = 20
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats.removed_clauses > 0

    def test_reduction_preserves_correctness(self):
        rng = random.Random(17)
        for _ in range(10):
            cnf = CNF()
            n = rng.randint(4, 8)
            cnf.new_vars(n)
            for _ in range(rng.randint(2 * n, 4 * n)):
                vs = rng.sample(range(n), 3)
                cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
            expected = brute_force_solve(cnf) is not None
            solver = Solver()
            cnf.to_solver(solver)
            solver.max_learnts = 2  # pathological reduction pressure
            assert solver.solve() == expected


class TestAddClauseEdgeCases:
    def test_clause_with_level0_false_literal_strengthened(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([mk_lit(a, True)])  # a = False
        solver.add_clause([mk_lit(a), mk_lit(b)])  # strengthens to [b]
        assert solver.solve() is SatResult.SAT
        assert solver.model[b] is True

    def test_clause_satisfied_at_level0_dropped(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([mk_lit(a)])
        before = solver.num_clauses
        solver.add_clause([mk_lit(a), mk_lit(b)])
        assert solver.num_clauses == before

    def test_adding_after_unsat_is_noop(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([mk_lit(a)])
        solver.add_clause([mk_lit(a, True)])
        assert not solver.ok
        assert solver.add_clause([mk_lit(a)]) is False


class TestInitialMappingAPI:
    def test_pinned_mapping_respected(self):
        from repro.arch import linear
        from repro.circuit import QuantumCircuit
        from repro.core import OLSQ2, SynthesisConfig, validate_result

        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.cx(0, 2)
        res = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            qc, linear(3), objective="depth", initial_mapping=[2, 1, 0]
        )
        assert res.initial_mapping == [2, 1, 0]
        validate_result(res)

    def test_bad_pinned_mapping_rejected(self):
        from repro.arch import linear
        from repro.circuit import QuantumCircuit
        from repro.core import OLSQ2, SynthesisConfig

        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(ValueError):
            OLSQ2(SynthesisConfig(swap_duration=1)).synthesize(
                qc, linear(2), initial_mapping=[0, 0]
            )

    def test_pinned_mapping_can_cost_swaps(self):
        """A bad pin forces SWAPs that the free placement avoids."""
        from repro.arch import linear
        from repro.circuit import QuantumCircuit
        from repro.core import OLSQ2, SynthesisConfig

        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        cfg = SynthesisConfig(swap_duration=1, time_budget=60, max_pareto_rounds=1)
        free = OLSQ2(cfg).synthesize(qc, linear(3), objective="swap")
        pinned = OLSQ2(cfg).synthesize(
            qc, linear(3), objective="swap", initial_mapping=[0, 2]
        )
        assert free.swap_count == 0
        assert pinned.swap_count >= 1