"""Tests for the structured tracing subsystem (``repro.telemetry``)."""

import io
import json

import pytest

from repro.arch import grid
from repro.core import OLSQ2, SynthesisConfig
from repro.harness import trace_summary
from repro.sat import CNF, SatResult, Solver, mk_lit
from repro.telemetry import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullTracer,
    StderrSink,
    Tracer,
    aggregate_spans,
    dumps_trace,
    read_trace,
    record_from_dict,
    total_time,
)
from repro.workloads import qaoa_circuit


def pigeonhole_solver(n_pigeons, n_holes):
    cnf = CNF()
    grid_vars = [[cnf.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
    for row in grid_vars:
        cnf.add_clause([mk_lit(v) for v in row])
    for h in range(n_holes):
        for i in range(n_pigeons):
            for j in range(i + 1, n_pigeons):
                cnf.add_clause([mk_lit(grid_vars[i][h], True), mk_lit(grid_vars[j][h], True)])
    solver = Solver()
    cnf.to_solver(solver)
    return solver


class TestSpans:
    def test_span_nesting_records_parent_ids(self):
        mem = MemorySink()
        tracer = Tracer(sinks=[mem])
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=3):
                tracer.event("tick", n=1)
            outer.set(done=True)
        starts = {r.name: r for r in mem.records if r.kind == "span_start"}
        ends = {r.name: r for r in mem.records if r.kind == "span_end"}
        events = [r for r in mem.records if r.kind == "event"]
        assert starts["outer"].parent_id is None
        assert starts["inner"].parent_id == starts["outer"].span_id
        assert events[0].span_id == starts["inner"].span_id
        assert ends["inner"].attrs["depth"] == 3
        assert ends["outer"].attrs["done"] is True
        assert ends["outer"].duration >= ends["inner"].duration >= 0

    def test_span_end_emitted_on_exception(self):
        mem = MemorySink()
        tracer = Tracer(sinks=[mem])
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        ends = [r for r in mem.records if r.kind == "span_end"]
        assert len(ends) == 1 and ends[0].name == "doomed"

    def test_current_span_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current_span is None
        with tracer.span("a"):
            with tracer.span("b") as b:
                assert tracer.current_span is b
        assert tracer.current_span is None


class TestSinksAndRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(str(path))])
        with tracer.span("phase", k=1):
            tracer.event("marker", value="x")
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)  # every line is standalone JSON
        records = read_trace(str(path))
        assert [r.kind for r in records] == ["span_start", "event", "span_end"]
        assert records[2].attrs["k"] == 1
        # dict round trip preserves everything
        for rec in records:
            assert record_from_dict(rec.to_dict()).to_dict() == rec.to_dict()

    def test_dumps_trace_matches_file_contents(self):
        mem = MemorySink()
        tracer = Tracer(sinks=[mem])
        with tracer.span("s"):
            pass
        text = dumps_trace(mem.records)
        parsed = read_trace(io.StringIO(text))
        assert [r.to_dict() for r in parsed] == [r.to_dict() for r in mem.records]

    def test_record_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            record_from_dict({"kind": "martian"})
        with pytest.raises(ValueError):
            record_from_dict({"no": "kind"})

    def test_read_trace_reports_bad_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "event", "name": "a", "span_id": null, "ts": 0.0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_trace(str(path))

    def test_stderr_sink_renders_indented_lines(self):
        stream = io.StringIO()
        tracer = Tracer(sinks=[StderrSink(stream=stream)])
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("beat")
        out = stream.getvalue()
        assert "> outer" in out
        assert "  > inner" in out
        assert "* beat" in out
        assert "< inner" in out

    def test_memory_sink_filters(self):
        mem = MemorySink()
        tracer = Tracer(sinks=[mem])
        with tracer.span("s"):
            tracer.event("a")
            tracer.event("b")
        assert len(mem.spans()) == 1
        assert [e.name for e in mem.events()] == ["a", "b"]
        assert [e.name for e in mem.events(name="b")] == ["b"]


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", x=1) as span:
            span.set(y=2)
        NULL_TRACER.event("nothing")
        NULL_TRACER.close()
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.cancelled

    def test_null_tracer_rejects_sinks(self):
        with pytest.raises(TypeError):
            NullTracer().add_sink(MemorySink())


class TestSolverInstrumentation:
    def test_solver_solve_event_carries_stats_snapshot(self):
        mem = MemorySink()
        solver = pigeonhole_solver(5, 4)
        solver.tracer = Tracer(sinks=[mem])
        assert solver.solve() is SatResult.UNSAT
        events = mem.events(name="solver.solve")
        assert len(events) == 1
        attrs = events[0].attrs
        assert attrs["result"] == "unsat"
        assert attrs["conflicts"] > 0
        assert attrs["d_conflicts"] == attrs["conflicts"]  # first call: delta == total
        assert attrs["propagations"] > 0
        assert attrs["n_vars"] == solver.n_vars
        assert attrs["time"] >= 0
        # the LBD histogram is cumulative over learnt clauses
        assert sum(attrs["lbd_counts"].values()) > 0

    def test_solver_deltas_reset_between_calls(self):
        mem = MemorySink()
        solver = pigeonhole_solver(4, 3)
        solver.tracer = Tracer(sinks=[mem])
        solver.solve()
        solver.solve()
        first, second = mem.events(name="solver.solve")
        assert second.attrs["solve_calls"] == 2
        # second call was a no-op re-solve of an UNSAT instance: tiny delta
        assert second.attrs["d_conflicts"] <= first.attrs["d_conflicts"]

    def test_untraced_solver_has_no_overhead_hooks(self):
        solver = pigeonhole_solver(4, 3)
        assert solver.tracer is None
        assert solver.solve() is SatResult.UNSAT


class TestSynthesisTracing:
    def synthesize_traced(self, objective="depth"):
        mem = MemorySink()
        tracer = Tracer(sinks=[mem])
        cfg = SynthesisConfig(swap_duration=1, time_budget=60, tracer=tracer)
        result = OLSQ2(cfg).synthesize(
            qaoa_circuit(6, seed=1), grid(2, 3), objective=objective
        )
        return result, mem

    def test_optimize_span_wraps_whole_run(self):
        result, mem = self.synthesize_traced()
        assert result.optimal
        roots = [s for s in mem.spans() if s.name == "optimize"]
        assert len(roots) == 1
        assert roots[0].attrs["objective"] == "depth"
        assert roots[0].attrs["depth"] == result.depth
        assert roots[0].attrs["optimal"] is True

    def test_per_iteration_solve_spans_sum_to_wall_time(self):
        result, mem = self.synthesize_traced()
        root = total_time(mem, "optimize")
        children = sum(
            s.total
            for s in aggregate_spans(mem)
            if s.name in ("encode", "solve", "extract", "warm_start")
        )
        # the optimize span is bookkeeping around encode/solve/extract:
        # its children must account for its duration to within 5%
        assert children <= root
        assert children >= 0.95 * root

    def test_solve_spans_record_phase_bound_and_verdict(self):
        result, mem = self.synthesize_traced()
        solves = [s for s in mem.spans() if s.name == "solve"]
        assert solves
        for s in solves:
            assert s.attrs["phase"] in ("relax", "descend", "swap_descend", "certify")
            assert s.attrs["verdict"] in ("sat", "unsat", "unknown", "cancelled")
            assert isinstance(s.attrs["bound"], int)
            assert s.attrs["time"] >= 0
        assert any(s.attrs["verdict"] == "sat" for s in solves)

    def test_encoder_spans_report_variable_and_clause_counts(self):
        result, mem = self.synthesize_traced()
        encode = [s for s in mem.spans() if s.name == "encode"][0]
        assert encode.attrs["n_vars"] > 0
        assert encode.attrs["n_clauses"] > 0
        families = {
            s.name: s for s in mem.spans() if s.name.startswith("encode.")
        }
        assert "encode.injectivity" in families
        assert "encode.dependencies" in families
        total_clauses = sum(s.attrs["clauses"] for s in families.values())
        assert total_clauses == encode.attrs["n_clauses"]

    def test_trace_summary_renders_phase_table(self):
        result, mem = self.synthesize_traced()
        text = trace_summary(mem)
        assert "phase" in text and "share" in text
        assert "solve" in text and "encode" in text
        assert trace_summary(MemorySink()) == ""


class TestCancellation:
    def test_cancellation_mid_descent_returns_best_so_far(self):
        solves = []

        def callback(record):
            if record.kind == "span_end" and record.name == "solve":
                solves.append(record)
                if len(solves) >= 2:
                    return False
            return True

        cfg = SynthesisConfig(
            swap_duration=1, time_budget=60, progress_callback=callback
        )
        synth = OLSQ2(cfg)
        result = synth.synthesize(
            qaoa_circuit(6, seed=1), grid(2, 3), objective="swap"
        )
        assert synth.last_synthesizer.cancelled
        assert not result.optimal  # aborted before the proof
        assert result.swap_count >= 0  # but a valid plan came back
        assert len(solves) == 2  # no further queries after the abort

    def test_cancel_before_first_solution_raises(self):
        from repro.core.optimizer import SynthesisCancelled, SynthesisTimeout

        cfg = SynthesisConfig(
            swap_duration=1,
            time_budget=60,
            progress_callback=lambda record: False,  # cancel immediately
        )
        with pytest.raises(SynthesisTimeout):  # SynthesisCancelled subclasses it
            OLSQ2(cfg).synthesize(qaoa_circuit(6, seed=1), grid(2, 3), objective="depth")
        assert issubclass(SynthesisCancelled, SynthesisTimeout)


class TestConfigTracerResolution:
    def test_default_config_uses_null_tracer(self):
        assert SynthesisConfig().make_tracer() is NULL_TRACER

    def test_explicit_tracer_wins(self):
        tracer = Tracer()
        assert SynthesisConfig(tracer=tracer).make_tracer() is tracer

    def test_progress_callback_gets_a_fresh_tracer(self):
        cb = lambda record: True
        tracer = SynthesisConfig(progress_callback=cb).make_tracer()
        assert tracer.progress_callback is cb

    def test_verbose_is_removed_with_migration_hint(self):
        # The five-PR deprecation is complete: passing verbose= now fails
        # at construction, and the error names the replacement.
        with pytest.raises(TypeError, match="StderrSink"):
            SynthesisConfig(verbose=True)
        with pytest.raises(TypeError, match="removed"):
            SynthesisConfig(verbose=False)

    def test_verbose_is_not_a_field(self):
        # InitVar keeps the kwarg rejectable without making it state:
        # replace() and to_dict() must not see a 'verbose' field.
        from dataclasses import fields

        assert "verbose" not in {f.name for f in fields(SynthesisConfig)}
        assert "verbose" not in SynthesisConfig().to_dict()
        SynthesisConfig().replace(swap_duration=1)  # replace still works
