"""Tests for the ASCII circuit/schedule renderer."""

from repro.arch import linear
from repro.circuit import QuantumCircuit, draw_circuit, draw_schedule
from repro.core import OLSQ2, SynthesisConfig


def test_draw_circuit_structure():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    text = draw_circuit(qc)
    lines = text.splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("q0:")
    assert "H" in lines[0]
    assert "*" in lines[0] and "X" in lines[1]  # the first CX
    assert "X" in lines[2]


def test_draw_circuit_layers_match_depth():
    qc = QuantumCircuit(2)
    for _ in range(4):
        qc.cx(0, 1)
    lines = draw_circuit(qc).splitlines()
    assert lines[0].count("*") == 4


def test_draw_empty_circuit():
    qc = QuantumCircuit(2)
    text = draw_circuit(qc)
    assert len(text.splitlines()) == 2


def test_draw_circuit_width_cap():
    qc = QuantumCircuit(1)
    for _ in range(100):
        qc.h(0)
    for line in draw_circuit(qc, max_width=40).splitlines():
        assert len(line) <= 40


def test_draw_schedule_shows_swaps():
    tri = QuantumCircuit(3)
    tri.cx(0, 1)
    tri.cx(1, 2)
    tri.cx(0, 2)
    res = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
        tri, linear(3), objective="swap"
    )
    text = draw_schedule(res)
    lines = text.splitlines()
    assert lines[0].lstrip().startswith("t=0")
    assert len(lines) == 1 + 3  # header + one wire per physical qubit
    assert text.count("x") >= 2 * res.swap_count
