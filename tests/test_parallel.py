"""ParallelDescent: cooperating bound-splitting portfolio.

The acceptance property is agreement: whatever the worker count, the
cooperating portfolio must report the same optimum (with the same
optimality flag) as the sequential Sec. III-B loops — bound splitting and
clause sharing are allowed to change *how fast* the answer arrives, never
*which* answer arrives.
"""

import pytest

from repro.arch import devices
from repro.circuit import QuantumCircuit
from repro.core import (
    OLSQ2,
    ParallelDescent,
    PortfolioEntry,
    SynthesisConfig,
    SynthesisTimeout,
    validate_result,
)


def chain_circuit():
    qc = QuantumCircuit(4)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(2, 3)
    qc.cx(0, 2)
    qc.cx(1, 3)
    return qc


def entry(name="w", **kwargs):
    kwargs.setdefault("time_budget", 60.0)
    return PortfolioEntry(name, SynthesisConfig(**kwargs))


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ParallelDescent(entries=[])

    def test_rejects_mixed_transition_models(self):
        cfg = SynthesisConfig()
        with pytest.raises(ValueError, match="transition model"):
            ParallelDescent(
                entries=[
                    PortfolioEntry("a", cfg, transition_based=False),
                    PortfolioEntry("b", cfg, transition_based=True),
                ]
            )

    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError, match="objective"):
            ParallelDescent(entries=[entry()]).synthesize(
                chain_circuit(), devices.ibm_qx2(), objective="fidelity"
            )

    def test_cycles_entries_to_n_workers(self):
        pd = ParallelDescent(entries=[entry("a"), entry("b")], n_workers=3)
        assert [e.name for e in pd.entries] == ["a", "b", "a"]


class TestDepthAgreement:
    @pytest.mark.timeout(180)
    def test_single_worker_matches_sequential_optimum(self):
        qc, dev = chain_circuit(), devices.ibm_qx2()
        seq = OLSQ2(SynthesisConfig(time_budget=60.0)).synthesize(
            qc, dev, objective="depth"
        )
        par = ParallelDescent(
            entries=[entry()], time_budget=60.0, slice_budget=0.3
        ).synthesize(qc, dev, objective="depth")
        assert seq.optimal and par.optimal
        assert par.depth == seq.depth
        validate_result(par, strict_dependencies=True)

    @pytest.mark.timeout(180)
    def test_two_cooperating_workers_match_sequential_optimum(self):
        qc, dev = chain_circuit(), devices.ibm_qx2()
        seq = OLSQ2(SynthesisConfig(time_budget=60.0)).synthesize(
            qc, dev, objective="depth"
        )
        par = ParallelDescent(
            n_workers=2, time_budget=60.0, slice_budget=0.3
        ).synthesize(qc, dev, objective="depth")
        assert par.optimal
        assert par.depth == seq.depth
        validate_result(par, strict_dependencies=True)
        stats = par.solver_stats["parallel"]
        assert stats["workers"] == 2
        assert stats["share"] is True
        # The cooperative channels must actually have been live.
        assert "clauses_exported" in stats and "clauses_imported" in stats
        assert set(stats["per_worker"]) == {"bv#0", "bv+euf#1"}

    @pytest.mark.timeout(180)
    def test_share_can_be_disabled(self):
        qc, dev = chain_circuit(), devices.ibm_qx2()
        par = ParallelDescent(
            n_workers=2, time_budget=60.0, slice_budget=0.3, share=False
        ).synthesize(qc, dev, objective="depth")
        stats = par.solver_stats["parallel"]
        assert stats["share"] is False
        assert stats["clauses_imported"] == 0


class TestSwapAgreement:
    @pytest.mark.timeout(240)
    def test_swap_objective_matches_sequential(self):
        qc, dev = chain_circuit(), devices.ibm_qx2()
        seq = OLSQ2(SynthesisConfig(time_budget=60.0)).synthesize(
            qc, dev, objective="swap"
        )
        par = ParallelDescent(
            n_workers=2, time_budget=60.0, slice_budget=0.3
        ).synthesize(qc, dev, objective="swap")
        assert par.objective == "swap"
        assert par.swap_count == seq.swap_count
        assert par.optimal == seq.optimal
        assert par.pareto_points  # the 2-D search recorded its rounds
        validate_result(par, strict_dependencies=True)


class TestFailureModes:
    @pytest.mark.timeout(60)
    def test_timeout_raises_synthesis_timeout(self):
        qc, dev = chain_circuit(), devices.ibm_qx2()
        pd = ParallelDescent(
            entries=[entry(time_budget=0.0)], time_budget=0.0, slice_budget=0.2
        )
        with pytest.raises(SynthesisTimeout):
            pd.synthesize(qc, dev, objective="depth")


class TestTemplates:
    """Coordinator pre-encode: workers restore snapshots, not re-encode."""

    @pytest.mark.timeout(180)
    def test_cooperating_workers_hit_shared_template(self):
        qc, dev = chain_circuit(), devices.ibm_qx2()
        seq = OLSQ2(SynthesisConfig(time_budget=60.0)).synthesize(
            qc, dev, objective="depth"
        )
        # Identical entry configs: both workers share one template key
        # (the default portfolio diversifies `encoding`, which correctly
        # splits the keys), so the coordinator pre-encodes once and each
        # worker's first encoder comes from the snapshot.
        par = ParallelDescent(
            entries=[entry("a"), entry("b")],
            time_budget=60.0,
            slice_budget=0.3,
        ).synthesize(qc, dev, objective="depth")
        assert par.optimal and par.depth == seq.depth
        stats = par.solver_stats["parallel"]
        assert stats["template_hits"] == 2

    @pytest.mark.timeout(180)
    def test_templates_off_still_agrees(self):
        qc, dev = chain_circuit(), devices.ibm_qx2()
        par = ParallelDescent(
            entries=[
                entry("a", templates="off"),
                entry("b", templates="off"),
            ],
            time_budget=60.0,
            slice_budget=0.3,
        ).synthesize(qc, dev, objective="depth")
        assert par.optimal
        assert par.solver_stats["parallel"]["template_hits"] == 0
