"""Additional validator coverage, including the non-strict (TB) mode."""

import pytest

from repro.arch import linear
from repro.circuit import QuantumCircuit
from repro.core import SwapEvent, SynthesisResult, ValidationError, is_valid, validate_result


def base_result(**overrides):
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    qc.h(1)
    fields = dict(
        circuit=qc,
        device=linear(2),
        initial_mapping=[0, 1],
        gate_times=[0, 1],
        swaps=[],
        swap_duration=1,
    )
    fields.update(overrides)
    return SynthesisResult(**fields)


class TestNonStrictMode:
    def test_equal_times_ok_when_non_strict(self):
        res = base_result(gate_times=[0, 0])
        # strict: the h depends on the cx, so equal times are invalid
        assert not is_valid(res, strict_dependencies=True)
        # non-strict (block semantics): same block is fine
        assert is_valid(res, strict_dependencies=False)

    def test_reversed_times_invalid_even_non_strict(self):
        res = base_result(gate_times=[1, 0])
        assert not is_valid(res, strict_dependencies=False)


class TestSwapWindowEdges:
    def test_swap_starting_before_zero_rejected(self):
        res = base_result(
            swaps=[SwapEvent(0, 1, 0)], swap_duration=3, gate_times=[5, 6]
        )
        with pytest.raises(ValidationError):
            validate_result(res)

    def test_swap_window_boundary_is_exclusive(self):
        """A gate exactly one step after the SWAP finish is fine."""
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        res = SynthesisResult(
            circuit=qc,
            device=linear(2),
            initial_mapping=[0, 1],
            gate_times=[0, 4],
            swaps=[SwapEvent(0, 1, 3)],  # occupies 1..3
            swap_duration=3,
        )
        validate_result(res)

    def test_gate_inside_window_rejected(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        res = SynthesisResult(
            circuit=qc,
            device=linear(2),
            initial_mapping=[0, 1],
            gate_times=[0, 2],  # inside the 1..3 window
            swaps=[SwapEvent(0, 1, 3)],
            swap_duration=3,
        )
        assert not is_valid(res)


class TestStructuralChecks:
    def test_short_mapping_rejected(self):
        res = base_result()
        res.initial_mapping.pop()
        with pytest.raises(ValidationError):
            validate_result(res)

    def test_non_adjacent_swaps_in_parallel_allowed(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        res = SynthesisResult(
            circuit=qc,
            device=linear(4),
            initial_mapping=[0, 1, 2, 3],
            gate_times=[0, 0],
            swaps=[SwapEvent(0, 1, 1), SwapEvent(2, 3, 1)],
            swap_duration=1,
        )
        validate_result(res)

    def test_incident_parallel_swaps_rejected(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        res = SynthesisResult(
            circuit=qc,
            device=linear(3),
            initial_mapping=[2, 0, 1],
            gate_times=[0],
            swaps=[SwapEvent(0, 1, 1), SwapEvent(1, 2, 1)],
            swap_duration=1,
        )
        assert not is_valid(res)
