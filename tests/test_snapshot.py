"""Encode-once machinery: bulk clause loading, snapshots, template reuse.

The PR-10 acceptance points, tested differentially:

* loading a formula through the bulk path (``add_clauses_bulk`` at the
  solver level, ``encode_bulk`` at the encoder level) leaves the solver
  in *byte-identical* state to per-clause loading, under both kernels;
* a solver restored from :func:`repro.sat.snapshot.snapshot_solver` is
  byte-identical to a freshly encoded one — across every (source,
  target) kernel pair — and searches identically afterwards;
* :func:`repro.core.templates.template_key` separates exactly the inputs
  that change the encoded formula (property-tested with hypothesis);
* a template hit skips Python encoding: the optimizer restores + replays
  instead of rebuilding clauses, and produces the same proven optimum.

State comparison reuses ``snapshot_solver`` itself: the blob *is* the
complete observable state (arena, watches, trail, heap, counters), so two
solvers are byte-identical iff their snapshots unpickle equal (wall-clock
stats excepted — identical searches still spend different seconds).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.arch import grid, linear
from repro.circuit import QuantumCircuit
from repro.core import SynthesisConfig
from repro.core.encoder import LayoutEncoder
from repro.core.optimizer import IterativeSynthesizer
from repro.core.templates import encode_config_slice, template_key
from repro.sat import SatResult, Solver, mk_lit
from repro.sat.kernel import native_available
from repro.sat.snapshot import (
    SnapshotUnsupported,
    TemplateStore,
    restore_solver,
    snapshot_solver,
)
from repro.smt.context import SMTContext
from repro.workloads.queko import queko_circuit

requires_native = pytest.mark.skipif(
    not native_available(),
    reason="compiled kernel not built (python -m repro.sat.kernel.build)",
)

KERNELS = ["python"] + (["native"] if native_available() else [])
KERNEL_PAIRS = [(a, b) for a in KERNELS for b in KERNELS]


def _state(solver):
    """Complete observable solver state, wall-clock stats stripped."""
    from repro.sat.solver import SolverStats

    state = pickle.loads(snapshot_solver(solver))
    for name in SolverStats.WALL_CLOCK:
        state["stats"].pop(name, None)
    return state


def random_clauses(rng, n_vars, n_clauses, max_width=4, with_units=False):
    out = []
    for _ in range(n_clauses):
        width = rng.randint(1 if with_units else 2, max_width)
        vs = rng.sample(range(n_vars), min(width, n_vars))
        out.append([mk_lit(v, rng.random() < 0.5) for v in vs])
    return out


def queko_encoder(kernel="python", encode_bulk="on", horizon=5, solver=None):
    """A LayoutEncoder over a small QUEKO instance, encoded into ``solver``."""
    device = linear(5)
    inst = queko_circuit(device, depth=3, n_gates=8, seed=7)
    circuit = inst.circuit if hasattr(inst, "circuit") else inst
    config = SynthesisConfig(
        swap_duration=1, kernel=kernel, encode_bulk=encode_bulk
    )
    if solver is None:
        solver = Solver(kernel=kernel)
    enc = LayoutEncoder(
        circuit, device, horizon, config=config, ctx=SMTContext(sink=solver)
    )
    enc.encode()
    return enc


class TestBulkLoading:
    """add_clauses_bulk / encode_bulk are byte-identical to per-clause."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", range(3))
    def test_solver_bulk_matches_per_clause(self, kernel, seed):
        rng = random.Random(900 + seed)
        clauses = random_clauses(rng, 25, 120, with_units=True)

        per = Solver(kernel=kernel)
        per.new_vars(25)
        for c in clauses:
            per.add_clause(c)

        bulk = Solver(kernel=kernel)
        bulk.new_vars(25)
        flat, sizes = [], []
        for c in clauses:
            flat.extend(c)
            sizes.append(len(c))
        bulk.add_clauses_bulk(flat, sizes)

        assert _state(per) == _state(bulk)
        per.check_watch_invariants()
        bulk.check_watch_invariants()
        assert per.solve(conflict_budget=2000) is bulk.solve(
            conflict_budget=2000
        )
        assert _state(per) == _state(bulk)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_staging_interleaved_with_units(self, kernel):
        """Units force a mid-batch flush; the result must still match."""
        rng = random.Random(41)
        clauses = random_clauses(rng, 12, 40)
        plain = Solver(kernel=kernel)
        plain.new_vars(12)
        staged = Solver(kernel=kernel)
        staged.new_vars(12)
        staged.begin_bulk()
        for i, c in enumerate(clauses):
            plain.add_clause(c)
            staged.add_clause(c)
            if i == 20:
                unit = [mk_lit(0, False)]
                plain.add_clause(unit)
                staged.add_clause(unit)
        staged.end_bulk()
        assert _state(plain) == _state(staged)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_encoder_bulk_matches_off(self, kernel):
        on = queko_encoder(kernel=kernel, encode_bulk="on")
        off = queko_encoder(kernel=kernel, encode_bulk="off")
        assert _state(on.ctx.sink) == _state(off.ctx.sink)
        # Same after incremental horizon growth and a solve.
        on.extend_horizon(7)
        off.extend_horizon(7)
        assert _state(on.ctx.sink) == _state(off.ctx.sink)
        r_on = on.ctx.sink.solve(conflict_budget=5000)
        r_off = off.ctx.sink.solve(conflict_budget=5000)
        assert r_on is r_off
        assert _state(on.ctx.sink) == _state(off.ctx.sink)


class TestSnapshotRestore:
    """restore_solver(snapshot_solver(s)) is byte-identical to s."""

    @pytest.mark.parametrize("src,dst", KERNEL_PAIRS)
    def test_restore_matches_fresh_encode(self, src, dst):
        fresh = queko_encoder(kernel=src)
        blob = snapshot_solver(fresh.ctx.sink)
        clone = restore_solver(blob, kernel=dst)
        clone.check_watch_invariants()
        assert _state(clone) == _state(fresh.ctx.sink)

    @pytest.mark.parametrize("src,dst", KERNEL_PAIRS)
    def test_restored_solver_searches_identically(self, src, dst):
        fresh = queko_encoder(kernel=src)
        blob = snapshot_solver(fresh.ctx.sink)
        clone = restore_solver(blob, kernel=dst)
        original = fresh.ctx.sink
        assumptions = list(fresh.ctx.persistent_assumptions)
        v1 = original.solve(assumptions=assumptions, conflict_budget=20000)
        v2 = clone.solve(assumptions=assumptions, conflict_budget=20000)
        assert v1 is v2
        assert _state(original) == _state(clone)
        if v1 is SatResult.SAT:
            assert [bool(x) for x in original.model] == [
                bool(x) for x in clone.model
            ]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_snapshot_survives_mid_search_state(self, kernel):
        """Snapshot after a budget-limited solve (learnts, trail, phases)."""
        rng = random.Random(77)
        clauses = random_clauses(rng, 40, 170, max_width=3)
        s = Solver(kernel=kernel)
        s.new_vars(40)
        for c in clauses:
            s.add_clause(c)
        s.solve(conflict_budget=150)  # pauses mid-search at level 0
        blob = snapshot_solver(s)
        clone = restore_solver(blob, kernel=kernel)
        assert _state(clone) == _state(s)
        assert s.solve(conflict_budget=5000) is clone.solve(
            conflict_budget=5000
        )
        assert _state(clone) == _state(s)

    def test_refuses_proof_logging(self):
        s = Solver(proof_log=True)
        s.new_vars(2)
        s.add_clause([mk_lit(0, False), mk_lit(1, False)])
        with pytest.raises(SnapshotUnsupported, match="proof"):
            snapshot_solver(s)

    def test_refuses_bulk_staging_and_replay(self):
        s = Solver()
        s.new_vars(2)
        s.begin_bulk()
        with pytest.raises(SnapshotUnsupported, match="bulk"):
            snapshot_solver(s)
        s.end_bulk()
        s.begin_replay()
        with pytest.raises(SnapshotUnsupported, match="replay"):
            snapshot_solver(s)
        s.end_replay()
        snapshot_solver(s)  # clean solver snapshots fine

    def test_rejects_foreign_format(self):
        blob = pickle.dumps({"format": 999})
        with pytest.raises(SnapshotUnsupported, match="format"):
            restore_solver(blob)


class TestTemplateStore:
    def test_hit_miss_counters_and_len(self):
        store = TemplateStore(max_entries=4)
        assert store.get("k") is None
        store.put("k", b"blob")
        assert store.get("k") == b"blob"
        assert store.stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert len(store) == 1

    def test_lru_eviction_prefers_recently_used(self):
        store = TemplateStore(max_entries=2)
        store.put("a", b"1")
        store.put("b", b"2")
        assert store.get("a") == b"1"  # touch: "b" is now oldest
        store.put("c", b"3")
        assert store.get("b") is None
        assert store.get("a") == b"1"
        assert store.get("c") == b"3"

    def test_put_overwrites_in_place(self):
        store = TemplateStore(max_entries=2)
        store.put("a", b"1")
        store.put("a", b"2")
        assert len(store) == 1
        assert store.get("a") == b"2"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TemplateStore(max_entries=0)


def _circuit_from_gates(n_qubits, gate_qubits):
    qc = QuantumCircuit(n_qubits)
    for qubits in gate_qubits:
        if len(qubits) == 1:
            qc.h(qubits[0])
        else:
            qc.cx(qubits[0], qubits[1])
    return qc


class TestTemplateKey:
    """template_key pins exactly the encode-relevant inputs."""

    def test_hypothesis_key_is_pure_and_label_sensitive(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @st.composite
        def gate_lists(draw):
            n = draw(st.integers(min_value=2, max_value=4))
            m = draw(st.integers(min_value=1, max_value=6))
            gates = []
            for _ in range(m):
                if draw(st.booleans()):
                    gates.append((draw(st.integers(0, n - 1)),))
                else:
                    a = draw(st.integers(0, n - 1))
                    b = draw(st.integers(0, n - 1).filter(lambda x: x != a))
                    gates.append((a, b))
            return n, gates

        @given(gate_lists(), st.integers(min_value=1, max_value=6))
        @settings(max_examples=40, deadline=None)
        def check(spec, horizon):
            n, gates = spec
            config = SynthesisConfig(swap_duration=1)
            device = linear(n)
            qc1 = _circuit_from_gates(n, gates)
            qc2 = _circuit_from_gates(n, gates)
            k1 = template_key(qc1, device, horizon, config)
            k2 = template_key(qc2, device, horizon, config)
            # Pure: equal inputs give equal, hashable, pickleable keys.
            assert k1 == k2 and hash(k1) == hash(k2)
            assert pickle.loads(pickle.dumps(k1)) == k1
            # Horizon is part of the key.
            assert template_key(qc1, device, horizon + 1, config) != k1
            # Gate labels are part of the key (label-invariance is the
            # service's job, upstream of the template store).
            if any(len(g) == 2 for g in gates):
                swapped = [
                    tuple(reversed(g)) if len(g) == 2 else g for g in gates
                ]
                if swapped != gates:
                    qc3 = _circuit_from_gates(n, swapped)
                    assert template_key(qc3, device, horizon, config) != k1

        check()

    def test_encode_slice_separates_formula_shaping_knobs(self):
        base = SynthesisConfig(swap_duration=1)
        assert encode_config_slice(base) == encode_config_slice(
            base.replace(kernel="python", encode_bulk="off", templates="off")
        )
        assert encode_config_slice(base) != encode_config_slice(
            base.replace(swap_duration=3)
        )
        assert encode_config_slice(base) != encode_config_slice(
            base.replace(simplify="off")
        )

    def test_device_and_mapping_in_key(self):
        qc = _circuit_from_gates(3, [(0, 1), (1, 2)])
        config = SynthesisConfig(swap_duration=1)
        k_line = template_key(qc, linear(3), 3, config)
        k_grid = template_key(qc, grid(1, 3), 3, config)
        assert isinstance(k_line, tuple)
        k_pin = template_key(
            qc, linear(3), 3, config, initial_mapping=[0, 1, 2]
        )
        assert k_pin != k_line
        assert k_line == template_key(qc, linear(3), 3, config)
        assert (k_line == k_grid) == (
            tuple(linear(3).edges) == tuple(grid(1, 3).edges)
        )


class TestOptimizerTemplates:
    """A template hit skips Python encoding and proves the same optimum."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.timeout(120)
    def test_second_run_hits_template_same_result(self, kernel):
        device = linear(5)
        inst = queko_circuit(device, depth=3, n_gates=8, seed=7)
        circuit = inst.circuit if hasattr(inst, "circuit") else inst
        store = TemplateStore()
        config = SynthesisConfig(
            swap_duration=1,
            time_budget=60.0,
            kernel=kernel,
            template_store=store,
        )

        first = IterativeSynthesizer(
            circuit, device, config=config
        ).optimize_depth()
        assert store.stats()["entries"] >= 1
        second = IterativeSynthesizer(
            circuit, device, config=config
        ).optimize_depth()
        assert second.depth == first.depth
        assert second.optimal == first.optimal
        events = second.solver_stats.get("templates")
        assert events is not None and events["hits"] >= 1
        # Identical search: the restored clone walked the same conflicts.
        assert (
            second.solver_stats["conflicts"]
            == first.solver_stats["conflicts"]
        )

    def test_templates_off_never_touches_store(self):
        device = linear(4)
        inst = queko_circuit(device, depth=2, n_gates=4, seed=3)
        circuit = inst.circuit if hasattr(inst, "circuit") else inst
        store = TemplateStore()
        config = SynthesisConfig(
            swap_duration=1,
            time_budget=60.0,
            templates="off",
            template_store=store,
        )
        IterativeSynthesizer(circuit, device, config=config).optimize_depth()
        assert store.stats() == {"entries": 0, "hits": 0, "misses": 0}
