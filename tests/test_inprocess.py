"""Tests for restart-time inprocessing (repro.sat.inprocess).

Covers the PR 5 guarantees:

* differential equivalence — inprocessing on/off agree on verdicts and
  (for synthesis) on optima, on random 3-SAT and QUEKO workloads;
* freeze-set invariants — frozen variables survive ``simplify()`` passes
  and stay usable as assumption literals across ``extend_horizon``;
* proof integrity — refutations produced with vivification, probing and
  elimination deletions interleaved still certify via
  :func:`check_unsat_proof`;
* configuration — the ``SynthesisConfig(simplify=...)`` knob validates
  its choices and reaches the solver sink.
"""

from __future__ import annotations

import random

import pytest

from repro.arch import grid, linear
from repro.core import SynthesisConfig
from repro.core.config import SIMPLIFY_MODES
from repro.core.optimizer import IterativeSynthesizer
from repro.sat import (
    CNF,
    SatResult,
    Solver,
    check_unsat_proof,
    mk_lit,
)
from repro.workloads.qaoa import qaoa_circuit
from repro.workloads.queko import queko_circuit


def _random_3sat(n_vars: int, n_clauses: int, seed: int) -> CNF:
    rng = random.Random(seed)
    cnf = CNF()
    cnf.new_vars(n_vars)
    for _ in range(n_clauses):
        vs = rng.sample(range(n_vars), 3)
        cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    return cnf


def _solver_for(cnf: CNF, inprocessing: bool, **kwargs) -> Solver:
    s = Solver(**kwargs)
    cnf.to_solver(s)
    s.inprocessing = inprocessing
    if inprocessing:
        # Fire the first restart-time pass almost immediately and run the
        # solve-entry pass unconditionally, so even small instances
        # actually exercise the engine.
        s._next_inprocess = 10
        s.SOLVE_INPROCESS_DELTA = 0
    return s


class TestDifferential:
    """Inprocessing must never change a verdict or break a model."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat_verdicts_agree(self, seed):
        cnf = _random_3sat(60, 255, seed)
        plain = _solver_for(cnf, inprocessing=False)
        fancy = _solver_for(cnf, inprocessing=True)
        v1 = plain.solve()
        v2 = fancy.solve()
        assert v1 is v2
        if v2 is SatResult.SAT:
            model = fancy.model
            for clause in cnf.clauses:
                assert any(model[l >> 1] ^ bool(l & 1) for l in clause)

    @pytest.mark.parametrize("seed", (3, 5))
    def test_queko_depths_agree_across_modes(self, seed):
        source = grid(2, 3)
        target = linear(6)
        inst = queko_circuit(source, depth=4, n_gates=12, seed=seed)
        depths = {}
        for mode in SIMPLIFY_MODES:
            cfg = SynthesisConfig(
                swap_duration=1, tub_ratio=1.0, simplify=mode
            )
            result = IterativeSynthesizer(
                inst.circuit, target, cfg
            ).optimize_depth()
            depths[mode] = result.depth
        assert len(set(depths.values())) == 1, depths


class TestFreezeSet:
    """Frozen variables must survive simplification untouched."""

    def test_frozen_vars_stay_usable_as_assumptions(self):
        cnf = _random_3sat(40, 150, seed=11)
        s = _solver_for(cnf, inprocessing=True)
        # Everything is frozen by default: elimination may not remove any
        # variable we could later assume.  Thaw nothing, eliminate, then
        # drive the solver through assumption probes over every variable.
        s.simplify(eliminate=True)
        assert s.stats.eliminated_vars == 0
        baseline = _solver_for(cnf, inprocessing=False)
        for var in range(0, 40, 7):
            for sign in (False, True):
                got = s.solve(assumptions=[mk_lit(var, sign)])
                want = baseline.solve(assumptions=[mk_lit(var, sign)])
                assert got is want, (var, sign)

    def test_thawed_vars_may_be_eliminated(self):
        cnf = CNF()
        cnf.new_vars(4)
        # x3 is a pure connective: (x0 | x3) & (~x3 | x1) & (~x3 | x2)
        cnf.add_clause([mk_lit(0), mk_lit(3)])
        cnf.add_clause([mk_lit(3, True), mk_lit(1)])
        cnf.add_clause([mk_lit(3, True), mk_lit(2)])
        s = _solver_for(cnf, inprocessing=True)
        s.thaw([3])
        s.simplify(eliminate=True)
        assert s.stats.eliminated_vars >= 1
        assert s.solve() is SatResult.SAT
        # The reconstructed model must cover the eliminated variable and
        # satisfy the *original* clauses.
        model = s.model
        for clause in cnf.clauses:
            assert any(model[l >> 1] ^ bool(l & 1) for l in clause)

    def test_extend_horizon_after_simplify_stays_sound(self):
        """The synthesis pipeline's own freeze discipline, end to end.

        ``simplify="full"`` thaws the adjacency aux selectors and runs
        elimination at encode time; the optimizer then grows the horizon
        mid-run (``extend_horizon``), which keeps referencing the shared
        variable prefix and the activation guards.  If simplification ever
        removed a frozen variable, the relax phase would go wrong — the
        depths already checked equal across modes in TestDifferential;
        here we additionally require the full-mode run to produce a valid
        mapped circuit.
        """
        from repro.core.validator import validate_result

        inst = queko_circuit(grid(2, 3), depth=4, n_gates=12, seed=3)
        cfg = SynthesisConfig(swap_duration=1, tub_ratio=1.0, simplify="full")
        result = IterativeSynthesizer(
            inst.circuit, linear(6), cfg
        ).optimize_depth()
        validate_result(result)


class TestProofIntegrity:
    """Refutations with inprocessing deletions must still certify."""

    def _pigeonhole(self, n_pigeons: int, n_holes: int) -> CNF:
        cnf = CNF()
        x = [
            [cnf.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)
        ]
        for p in range(n_pigeons):
            cnf.add_clause([mk_lit(x[p][h]) for h in range(n_holes)])
        for h in range(n_holes):
            for p1 in range(n_pigeons):
                for p2 in range(p1 + 1, n_pigeons):
                    cnf.add_clause(
                        [mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)]
                    )
        return cnf

    def test_pigeonhole_proof_certifies_with_inprocessing(self):
        cnf = self._pigeonhole(6, 5)
        s = _solver_for(cnf, inprocessing=True, proof_log=True)
        assert s.solve() is SatResult.UNSAT
        assert s.stats.inprocessings > 0
        assert check_unsat_proof(cnf, s.proof)

    def test_explicit_vivify_deletions_certify(self):
        cnf = _random_3sat(30, 220, seed=2)  # over-constrained: UNSAT-ish
        s = _solver_for(cnf, inprocessing=True, proof_log=True)
        verdict = s.solve(conflict_budget=50)
        if verdict is not SatResult.UNSAT:
            # Interleave explicit passes (vivify + probe + subsume emit
            # add-before-delete proof lines) with more search.
            for _ in range(40):
                assert s.simplify() or True
                verdict = s.solve(conflict_budget=200)
                if verdict is not SatResult.UNKNOWN:
                    break
        assert verdict is SatResult.UNSAT
        assert check_unsat_proof(cnf, s.proof)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_unsat_proofs_certify(self, seed):
        cnf = _random_3sat(25, 200, seed=seed)
        s = _solver_for(cnf, inprocessing=True, proof_log=True)
        if s.solve() is SatResult.UNSAT:
            assert check_unsat_proof(cnf, s.proof)

    def test_full_mode_synthesis_certifies_end_to_end(self):
        """Regression: certify a swap-optimal run in ``simplify="full"``.

        This workload's last refutation interleaves variable elimination,
        top-level cleaning and reduce-db eviction before the proof ends,
        and it caught two deletion-ordering bugs the small instances
        above never hit: evicting a ternary learnt that was a packed
        reason on the trail, and deleting a root literal's reason clause
        without logging the unit first.  Either one surfaces here as a
        learnt rejected by the checker thousands of steps later.
        """
        qc = qaoa_circuit(6, seed=1)
        cfg = SynthesisConfig(
            swap_duration=1, time_budget=120, certify=True, simplify="full"
        )
        synth = IterativeSynthesizer(qc, grid(2, 3), cfg)
        result = synth.optimize_swaps()
        assert result.optimal
        assert result.certificate is not None
        assert result.certificate.complete, result.certificate.summary()


class TestConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="simplify mode"):
            SynthesisConfig(simplify="bogus")

    @pytest.mark.parametrize("mode", SIMPLIFY_MODES)
    def test_accepts_valid_modes(self, mode):
        assert SynthesisConfig(simplify=mode).simplify == mode

    def test_off_mode_disables_solver_inprocessing(self):
        from repro.core.encoder import LayoutEncoder
        from repro.smt.context import SMTContext

        inst = queko_circuit(grid(2, 3), depth=3, n_gates=6, seed=0)
        for mode, expect in (("off", False), ("inprocess", True)):
            ctx = SMTContext()  # default sink is a live Solver
            enc = LayoutEncoder(
                inst.circuit,
                linear(6),
                6,
                config=SynthesisConfig(swap_duration=1, simplify=mode),
                ctx=ctx,
            )
            enc.encode()
            assert ctx.sink.inprocessing is expect

    def test_stats_counters_exposed(self):
        s = _solver_for(_random_3sat(50, 210, seed=4), inprocessing=True)
        s.solve()
        snap = s.stats.snapshot()
        for key in (
            "inprocessings",
            "vivified_clauses",
            "subsumed_clauses",
            "strengthened_clauses",
            "failed_literals",
            "hyper_binaries",
            "equivalent_literals",
            "eliminated_vars",
        ):
            assert key in snap
        assert snap["inprocessings"] > 0
