"""Tests for the mini-SMT layer: domain variables and injectivity."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import neg, SatResult
from repro.smt import (
    BITVEC,
    CHANNELING_INJ,
    ONEHOT,
    ORDER,
    PAIRWISE_INJ,
    SMTContext,
    cnf_context,
    encode_injectivity,
    make_domain_var,
)


@pytest.fixture(params=[BITVEC, ONEHOT, ORDER])
def encoding(request):
    return request.param


class TestDomainVarBasics:
    def test_invalid_size_raises(self, encoding):
        ctx = SMTContext()
        with pytest.raises(ValueError):
            make_domain_var(ctx, 0, encoding)

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 9])
    def test_all_values_reachable(self, encoding, size):
        for value in range(size):
            ctx = SMTContext()
            var = make_domain_var(ctx, size, encoding)
            ctx.add([var.eq_lit(value)])
            assert ctx.solve() is SatResult.SAT
            assert var.decode(ctx.sink.model) == value

    @pytest.mark.parametrize("size", [3, 5, 6])
    def test_no_out_of_domain_values(self, encoding, size):
        """Every model decodes to a value inside [0, size)."""
        ctx = SMTContext()
        var = make_domain_var(ctx, size, encoding)
        seen = set()
        # Enumerate all models by blocking decoded values.
        while ctx.solve() is SatResult.SAT:
            value = var.decode(ctx.sink.model)
            assert 0 <= value < size
            assert value not in seen
            seen.add(value)
            ctx.add([neg(var.eq_lit(value))])
        assert seen == set(range(size))

    def test_eq_lit_out_of_range_raises(self, encoding):
        ctx = SMTContext()
        var = make_domain_var(ctx, 4, encoding)
        with pytest.raises(ValueError):
            var.eq_lit(4)
        with pytest.raises(ValueError):
            var.eq_lit(-1)

    def test_eq_lit_cached_for_bitvec(self):
        ctx = SMTContext()
        var = make_domain_var(ctx, 8, BITVEC)
        assert var.eq_lit(5) == var.eq_lit(5)

    def test_fix_pins_value(self, encoding):
        ctx = SMTContext()
        var = make_domain_var(ctx, 6, encoding)
        var.fix(4)
        assert ctx.solve() is SatResult.SAT
        assert var.decode(ctx.sink.model) == 4


class TestComparisons:
    @pytest.mark.parametrize("size", [4, 5, 7])
    @pytest.mark.parametrize("k", [-1, 0, 2, 3, 6])
    def test_leq_const(self, encoding, size, k):
        ctx = SMTContext()
        var = make_domain_var(ctx, size, encoding)
        var.leq_const(k)
        feasible = {v for v in range(size) if v <= k}
        seen = set()
        while ctx.solve() is SatResult.SAT:
            value = var.decode(ctx.sink.model)
            seen.add(value)
            ctx.add([neg(var.eq_lit(value))])
        assert seen == feasible

    @pytest.mark.parametrize("k", [0, 1, 3])
    def test_leq_const_guarded(self, encoding, k):
        ctx = SMTContext()
        var = make_domain_var(ctx, 6, encoding)
        guard = ctx.new_bool()
        var.leq_const(k, guard=guard)
        var.fix(5)
        assert ctx.solve() is SatResult.SAT  # without the guard, 5 is fine
        assert ctx.solve(assumptions=[guard]) is SatResult.UNSAT

    @pytest.mark.parametrize("sa,sb", [(4, 4), (4, 6), (6, 4), (5, 5)])
    def test_less_than_enumeration(self, encoding, sa, sb):
        ctx = SMTContext()
        a = make_domain_var(ctx, sa, encoding)
        b = make_domain_var(ctx, sb, encoding)
        a.less_than(b)
        expected = {(x, y) for x in range(sa) for y in range(sb) if x < y}
        seen = set()
        while ctx.solve() is SatResult.SAT:
            pair = (a.decode(ctx.sink.model), b.decode(ctx.sink.model))
            assert pair not in seen
            seen.add(pair)
            ctx.add([neg(a.eq_lit(pair[0])), neg(b.eq_lit(pair[1]))])
        assert seen == expected

    @pytest.mark.parametrize("sa,sb", [(4, 4), (3, 5), (5, 3)])
    def test_less_equal_enumeration(self, encoding, sa, sb):
        ctx = SMTContext()
        a = make_domain_var(ctx, sa, encoding)
        b = make_domain_var(ctx, sb, encoding)
        a.less_equal(b)
        expected = {(x, y) for x in range(sa) for y in range(sb) if x <= y}
        seen = set()
        while ctx.solve() is SatResult.SAT:
            pair = (a.decode(ctx.sink.model), b.decode(ctx.sink.model))
            seen.add(pair)
            ctx.add([neg(a.eq_lit(pair[0])), neg(b.eq_lit(pair[1]))])
        assert seen == expected

    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_neq_enumeration(self, encoding, size):
        ctx = SMTContext()
        a = make_domain_var(ctx, size, encoding)
        b = make_domain_var(ctx, size, encoding)
        a.neq(b)
        expected = {(x, y) for x in range(size) for y in range(size) if x != y}
        seen = set()
        while ctx.solve() is SatResult.SAT:
            pair = (a.decode(ctx.sink.model), b.decode(ctx.sink.model))
            seen.add(pair)
            ctx.add([neg(a.eq_lit(pair[0])), neg(b.eq_lit(pair[1]))])
        assert seen == expected

    def test_mixed_encoding_comparison_raises(self):
        ctx = SMTContext()
        a = make_domain_var(ctx, 4, BITVEC)
        b = make_domain_var(ctx, 4, ONEHOT)
        with pytest.raises(TypeError):
            a.less_than(b)
        with pytest.raises(TypeError):
            b.less_than(a)


class TestInjectivity:
    @pytest.mark.parametrize("method", [PAIRWISE_INJ, CHANNELING_INJ])
    @pytest.mark.parametrize("n,size", [(2, 2), (2, 4), (3, 3), (3, 5)])
    def test_models_are_injective(self, encoding, method, n, size):
        ctx = SMTContext()
        vars_ = [make_domain_var(ctx, size, encoding) for _ in range(n)]
        encode_injectivity(ctx, vars_, size, method=method, encoding=encoding)
        seen = set()
        while ctx.solve() is SatResult.SAT:
            tup = tuple(v.decode(ctx.sink.model) for v in vars_)
            assert len(set(tup)) == n, tup
            assert tup not in seen
            seen.add(tup)
            ctx.add([neg(vars_[i].eq_lit(tup[i])) for i in range(n)])
        # All injective tuples must be reachable.
        expected = {
            tup
            for tup in itertools.product(range(size), repeat=n)
            if len(set(tup)) == n
        }
        assert seen == expected

    @pytest.mark.parametrize("method", [PAIRWISE_INJ, CHANNELING_INJ])
    def test_more_vars_than_values_unsat(self, encoding, method):
        ctx = SMTContext()
        vars_ = [make_domain_var(ctx, 2, encoding) for _ in range(3)]
        encode_injectivity(ctx, vars_, 2, method=method, encoding=encoding)
        assert ctx.solve() is SatResult.UNSAT

    def test_unknown_method_raises(self):
        ctx = SMTContext()
        vars_ = [make_domain_var(ctx, 3, BITVEC) for _ in range(2)]
        with pytest.raises(ValueError):
            encode_injectivity(ctx, vars_, 3, method="magic")

    def test_channeling_uses_fewer_clauses_for_many_qubits(self):
        """The EUF-style encoding avoids the quadratic pairwise blowup."""
        n, size = 10, 16

        ctx_pw = cnf_context()
        vars_pw = [make_domain_var(ctx_pw, size, ONEHOT) for _ in range(n)]
        encode_injectivity(ctx_pw, vars_pw, size, method=PAIRWISE_INJ, encoding=ONEHOT)

        ctx_ch = cnf_context()
        vars_ch = [make_domain_var(ctx_ch, size, ONEHOT) for _ in range(n)]
        encode_injectivity(ctx_ch, vars_ch, size, method=CHANNELING_INJ, encoding=ONEHOT)

        # Pairwise adds n*(n-1)/2 * size clauses on top; channeling adds
        # n*size implications (plus the inverse vars' own constraints).
        pw_extra = ctx_pw.num_clauses
        ch_extra = ctx_ch.num_clauses
        assert pw_extra > 0 and ch_extra > 0


class TestContext:
    def test_true_false_lits(self):
        ctx = SMTContext()
        t, f = ctx.true_lit, ctx.false_lit
        assert ctx.solve() is SatResult.SAT
        assert ctx.model_value(t) is True
        assert ctx.model_value(f) is False

    def test_cnf_context_cannot_solve(self):
        ctx = cnf_context()
        ctx.new_bool()
        with pytest.raises(TypeError):
            ctx.solve()

    def test_add_implies(self):
        ctx = SMTContext()
        a, b, c = ctx.new_bools(3)
        ctx.add_implies([a, b], [c])
        assert ctx.solve(assumptions=[a, b, neg(c)]) is SatResult.UNSAT
        assert ctx.solve(assumptions=[a, neg(c)]) is SatResult.SAT

    def test_stats_dict(self):
        ctx = SMTContext()
        a = ctx.new_bool()
        ctx.add([a])
        ctx.solve()
        stats = ctx.stats()
        assert stats["n_vars"] == 1
        assert stats["solve_time"] >= 0


class TestBitVecSizeAdvantage:
    def test_bitvec_vars_much_smaller_than_onehot(self):
        """The core size claim behind the paper's (bv) encoding choice."""
        size = 64
        ctx_bv = cnf_context()
        make_domain_var(ctx_bv, size, BITVEC)
        ctx_oh = cnf_context()
        make_domain_var(ctx_oh, size, ONEHOT)
        assert ctx_bv.n_vars < 10
        assert ctx_oh.n_vars == size
        assert ctx_oh.num_clauses > ctx_bv.num_clauses


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(2, 9),
    values=st.data(),
)
def test_hypothesis_pairwise_vs_channeling_agree(size, values):
    """Both injectivity methods accept/reject the same assignments."""
    n = values.draw(st.integers(2, min(4, size + 1)))
    assignment = [values.draw(st.integers(0, size - 1)) for _ in range(n)]
    results = {}
    for method in (PAIRWISE_INJ, CHANNELING_INJ):
        ctx = SMTContext()
        vars_ = [make_domain_var(ctx, size, BITVEC) for _ in range(n)]
        encode_injectivity(ctx, vars_, size, method=method, encoding=BITVEC)
        assumptions = [vars_[i].eq_lit(assignment[i]) for i in range(n)]
        results[method] = ctx.solve(assumptions=assumptions)
    assert results[PAIRWISE_INJ] == results[CHANNELING_INJ]
    assert results[PAIRWISE_INJ] == (len(set(assignment)) == len(assignment))
