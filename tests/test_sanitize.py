"""Tests for the runtime sanitizer (repro.analysis.sanitize).

Two families:

* green-path — sanitized solves succeed on both kernels, modes resolve
  correctly, and ``sanitize="off"`` provably adds zero per-propagation
  work (the hot loops never mention the sanitizer);
* ``test_mutation_*`` — seeded corruption of solver state, ring
  counters and proof logs, each of which the sanitizer must catch *with
  a location* (these are what CI's sanitize-smoke mutation step runs).
"""

import array
import inspect

import pytest

from repro.analysis.sanitize import (
    CheckedProofLog,
    RingSanitizer,
    SanitizeError,
    check_permutation,
    check_prover_assignment,
    compare_backends,
    env_enabled,
    fuzz_ring,
    resolve_sanitize,
    state_digest,
)
from repro.sat import SatResult, Solver, mk_lit
from repro.sat.kernel import native_available
from repro.sat.sharing import SharedClauseRing
from repro.sat.solver import NO_CLAUSE

KERNELS = ["python"] + (["native"] if native_available() else [])

needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled kernel not built"
)


def pigeonhole(solver, pigeons=4):
    """Encode PHP(pigeons, pigeons-1) — small, UNSAT, nontrivial."""
    holes = pigeons - 1
    x = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        solver.add_clause([mk_lit(x[p][h]) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause(
                    [mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)]
                )
    return x


class TestModeResolution:
    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "full")
        assert resolve_sanitize("off") == "off"
        assert resolve_sanitize("light") == "light"

    def test_none_defers_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert resolve_sanitize(None) == "off"
        assert not env_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "light")
        assert resolve_sanitize(None) == "light"
        assert env_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "")
        assert resolve_sanitize(None) == "off"

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown sanitize mode"):
            resolve_sanitize("asan")
        with pytest.raises(ValueError, match="unknown sanitize mode"):
            Solver(sanitize="asan")

    def test_solver_env_pickup(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "light")
        s = Solver()
        assert s.sanitize == "light"
        assert s._sanitizer is not None


class TestZeroOverheadWhenOff:
    def test_off_has_no_sanitizer_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        s = Solver(proof_log=True)
        assert s.sanitize == "off"
        assert s._sanitizer is None
        # The proof log stays a plain list — no per-append checking.
        assert type(s.proof) is list

    def test_explicit_off_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "full")
        s = Solver(sanitize="off")
        assert s._sanitizer is None

    def test_hot_loops_never_mention_the_sanitizer(self):
        # The zero-cost claim, checked against the source: propagation
        # and conflict analysis contain no sanitizer hook at all (the
        # only hooks live at level-0 safe points and in add_clause).
        for fn in (Solver._propagate, Solver._analyze):
            assert "sanitiz" not in inspect.getsource(fn)

    def test_off_solve_identical_to_default(self):
        results = []
        for mode in (None, "off", "full"):
            s = Solver(sanitize=mode) if mode else Solver()
            pigeonhole(s)
            results.append((s.solve(), s.stats.conflicts))
        assert results[0] == results[1] == results[2]


class TestGreenPath:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("mode", ["light", "full"])
    def test_sanitized_unsat_solve(self, kernel, mode):
        s = Solver(proof_log=True, kernel=kernel, sanitize=mode)
        pigeonhole(s)
        assert s.solve() == SatResult.UNSAT
        assert isinstance(s.proof, CheckedProofLog)
        assert s.proof[-1] == ("a", ())
        assert s._sanitizer.checks_run >= 2  # solve entry + exit

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_sanitized_sat_solve(self, kernel):
        import random

        rng = random.Random(7)
        s = Solver(kernel=kernel, sanitize="full")
        vs = s.new_vars(20)
        for _ in range(60):
            picked = rng.sample(vs, 3)
            s.add_clause([mk_lit(v, rng.random() < 0.5) for v in picked])
        res = s.solve()
        assert res in (SatResult.SAT, SatResult.UNSAT)
        assert s._sanitizer.checks_run >= 2

    def test_state_digest_tracks_assignments(self):
        s = Solver(sanitize="light")
        a, b = s.new_vars(2)
        d0 = state_digest(s)
        s.add_clause([mk_lit(a)])
        assert state_digest(s) != d0

    @needs_native
    def test_compare_backends_agree(self):
        v = lambda i: 2 * i
        n = lambda i: 2 * i + 1
        clauses = [[v(0), v(1)], [n(0), v(1)], [v(0), n(1)], [v(2), v(3)]]
        out = compare_backends(clauses, 4, proof_log=True)
        assert out["result"] == SatResult.SAT

    def test_compare_backends_needs_kernel(self, monkeypatch):
        import repro.sat.kernel as kernel_mod

        monkeypatch.setattr(kernel_mod, "_native_mod", None)
        monkeypatch.setattr(kernel_mod, "_probed", True)
        with pytest.raises(RuntimeError, match="compiled kernel"):
            compare_backends([[0, 2]], 2)


class TestServiceChecks:
    def test_valid_permutation(self):
        check_permutation([2, 0, 1])
        check_permutation([0])
        check_permutation([])

    def test_mutation_non_bijective_permutation(self):
        with pytest.raises(SanitizeError) as err:
            check_permutation([0, 0, 2])
        assert err.value.location == "cache-translation"

    def test_prover_assignment(self):
        regions = [None, object(), None]
        check_prover_assignment([0, 2], regions)
        with pytest.raises(SanitizeError) as err:
            check_prover_assignment([1], regions)
        assert err.value.location == "parallel-lb"
        with pytest.raises(SanitizeError):
            check_prover_assignment([9], regions)  # out of range


class TestProofDiscipline:
    def test_mutation_delete_before_add(self):
        p = CheckedProofLog()
        with pytest.raises(SanitizeError) as err:
            p.append(("d", (2, 4)))
        assert err.value.location == "proof"
        assert "precedes its add" in str(err.value)

    def test_add_then_delete_ok_but_not_twice(self):
        p = CheckedProofLog()
        p.note_input([2, 4])
        p.append(("d", (4, 2)))  # key-normalized: same clause
        with pytest.raises(SanitizeError):
            p.append(("d", (2, 4)))

    def test_mutation_non_rup_emission(self):
        p = CheckedProofLog(rup=True)
        p.note_input([0, 2])  # v0 | v1
        p.note_input([1, 2])  # !v0 | v1
        p.append(("a", (2,)))  # v1 is RUP
        with pytest.raises(SanitizeError) as err:
            p.append(("a", (0,)))  # v0 is not
        assert "not RUP" in str(err.value)

    def test_solver_notes_inputs(self):
        s = Solver(proof_log=True, sanitize="light")
        a, b = s.new_vars(2)
        s.add_clause([mk_lit(a), mk_lit(b)])
        assert isinstance(s.proof, CheckedProofLog)
        assert s.proof.inputs == 1


class TestMutationSolverState:
    """Seeded solver-state corruption, each caught with a location."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_mutation_watcher_corruption(self, kernel):
        s = Solver(kernel=kernel, sanitize="full")
        a, b = s.new_vars(2)
        s.add_clause([mk_lit(a), mk_lit(b)])
        s._sanitizer.at_safe_point("baseline")
        # Drop one side's binary watch list: the clause is no longer
        # findable when its other literal becomes false.
        s.watches_bin[mk_lit(a) ^ 1].clear()
        with pytest.raises(SanitizeError) as err:
            s._sanitizer.at_safe_point("after-corruption")
        assert err.value.location == "after-corruption"

    @needs_native
    def test_mutation_generation_skew(self):
        s = Solver(kernel="native", sanitize="light")
        vs = s.new_vars(4)
        s.add_clause([mk_lit(v) for v in vs])
        s._sanitizer.at_safe_point("baseline")  # snapshots addresses
        # Replace an arena buffer with an equal copy *without* bumping
        # arena.version: the kernel's cached address is now stale, which
        # is exactly the bug class the static contract linter guards
        # against (docs/ARCHITECTURE.md "buffer ownership").
        s.arena.lits = array.array(
            s.arena.lits.typecode, s.arena.lits
        )
        with pytest.raises(SanitizeError) as err:
            s._sanitizer.at_safe_point("after-skew")
        assert err.value.location == "after-skew"
        assert "version" in str(err.value)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_mutation_level_tamper(self, kernel):
        s = Solver(kernel=kernel, sanitize="light")
        a, b = s.new_vars(2)
        s.add_clause([mk_lit(a)])  # level-0 unit on the trail
        s._sanitizer.at_safe_point("baseline")
        s.level[a] = 3
        with pytest.raises(SanitizeError) as err:
            s._sanitizer.at_safe_point("after-tamper")
        assert "level" in str(err.value)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_mutation_assigns_tamper(self, kernel):
        s = Solver(kernel=kernel, sanitize="light")
        a, b = s.new_vars(2)
        s.add_clause([mk_lit(a)])
        s._sanitizer.at_safe_point("baseline")
        from repro.sat.types import TRUE

        s.assigns_lit[mk_lit(a, True)] = TRUE  # both polarities "true"
        with pytest.raises(SanitizeError):
            s._sanitizer.at_safe_point("after-tamper")

    def test_mutation_reason_tamper_above_level_zero(self):
        # Fabricate a legal level-1 state: three decisions falsify the
        # first three literals of a 4-ary clause, implying the fourth
        # with the clause as reason.  Then point the reason at a clause
        # that does not contain the implied literal.
        s = Solver(kernel="python", sanitize="light")
        vs = s.new_vars(8)
        lits = [mk_lit(v) for v in vs]
        s.add_clause(lits[:4])
        s.add_clause(lits[4:])
        good, other = s.clauses
        s._new_decision_level()
        for lit in lits[:3]:
            s._unchecked_enqueue(lit ^ 1, NO_CLAUSE)
        s._unchecked_enqueue(lits[3], good)
        s._sanitizer.check_trail("fabricated")  # sound state passes
        s.reason[vs[3]] = other
        with pytest.raises(SanitizeError) as err:
            s._sanitizer.check_trail("after-tamper")
        assert "does not contain" in str(err.value)

    def test_level_zero_reasons_exempt(self):
        # Root literals may outlive their reason clause (inprocessing
        # deletes satisfied clauses and recycles crefs); the sanitizer
        # must not check reasons at level 0.
        s = Solver(kernel="python", sanitize="light")
        a, b = s.new_vars(2)
        s.add_clause([mk_lit(a), mk_lit(b)])
        s.add_clause([mk_lit(a), mk_lit(b, True)])
        assert s.solve() == SatResult.SAT
        # Whatever reasons remain, a fresh safe-point check passes.
        s._sanitizer.at_safe_point("post-solve")


class TestRing:
    def test_fuzz_ring_inline(self):
        # drain_every=15 at this capacity is the sweet spot where the
        # reader both laps (skip-to-head path) and still decodes real
        # batches between laps.
        out = fuzz_ring(
            capacity_words=256,
            n_writers=3,
            batches_per_writer=40,
            drain_every=15,
        )
        assert out["published"] > 0
        assert out["laps"] > 0, "fuzz never lapped: weaken drain_every"
        assert out["oversize"] > 0
        assert out["decoded_clauses"] > 0
        assert out["dropped"] == out["laps"] + out["oversize"]

    def test_fuzz_ring_processes(self):
        # Paced writers so the spawn-context children genuinely
        # interleave with the polling reader (also exercises endpoint
        # pickling and the cross-process publish lock).
        out = fuzz_ring(
            capacity_words=256,
            n_writers=2,
            batches_per_writer=24,
            drain_every=11,
            processes=True,
            writer_delay_s=0.001,
        )
        assert out["published"] > 0
        assert out["decoded_clauses"] > 0
        assert out["dropped"] == out["laps"] + out["oversize"]

    def test_mutation_ring_lap_without_drop(self):
        ring = SharedClauseRing(128)
        try:
            ep = ring.endpoint(0)
            writer = ring.endpoint(1)
            writer.publish(("k",), [((10, 11), 2)])
            ep.drain()  # attaches the endpoint (it maps the segment lazily)
            san = RingSanitizer()
            san.check_endpoint(ep, "baseline")
            # A buggy drain: the reader records a lap but nobody bumped
            # the shared dropped counter.
            ep.lapped += 1
            with pytest.raises(SanitizeError) as err:
                san.check_endpoint(ep, "after-lap")
            assert "lap without drop accounting" in str(err.value)
            ep.close()
            writer.close()
        finally:
            ring.close(unlink=True)

    def test_mutation_ring_cursor_out_of_bounds(self):
        ring = SharedClauseRing(128)
        try:
            ep = ring.endpoint(0)
            ep.drain()  # attach
            san = RingSanitizer()
            ep.cursor = 10_000
            with pytest.raises(SanitizeError) as err:
                san.check_endpoint(ep, "cursor")
            assert "cursor" in str(err.value)
            ep.close()
        finally:
            ring.close(unlink=True)
