"""Tests for the ``olsq2 sat`` subcommand."""

import pytest

from repro.cli import main
from repro.sat import CNF, mk_lit
from repro.sat.dimacs import dumps


@pytest.fixture
def sat_file(tmp_path):
    cnf = CNF()
    a, b = cnf.new_vars(2)
    cnf.add_clause([mk_lit(a), mk_lit(b)])
    cnf.add_clause([mk_lit(a, True)])
    path = tmp_path / "sat.cnf"
    path.write_text(dumps(cnf))
    return str(path)


@pytest.fixture
def unsat_file(tmp_path):
    cnf = CNF()
    a = cnf.new_var()
    cnf.add_clause([mk_lit(a)])
    cnf.add_clause([mk_lit(a, True)])
    path = tmp_path / "unsat.cnf"
    path.write_text(dumps(cnf))
    return str(path)


class TestSatCommand:
    def test_sat_instance(self, sat_file, capsys):
        rc = main(["sat", sat_file])
        assert rc == 10
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert "v -1 2 0" in out

    def test_unsat_instance(self, unsat_file, capsys):
        rc = main(["sat", unsat_file])
        assert rc == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_unsat_with_certification(self, unsat_file, capsys):
        rc = main(["sat", unsat_file, "--certify"])
        assert rc == 20
        assert "proof check: VERIFIED" in capsys.readouterr().out

    def test_sat_with_preprocessing(self, sat_file, capsys):
        rc = main(["sat", sat_file, "--preprocess"])
        assert rc == 10
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out

    def test_unsat_caught_by_preprocessing(self, unsat_file, capsys):
        rc = main(["sat", unsat_file, "--preprocess"])
        assert rc == 20
        assert "preprocessing" in capsys.readouterr().out

    @pytest.mark.parametrize("kernel", ["auto", "python"])
    def test_kernel_flag(self, sat_file, capsys, kernel):
        rc = main(["sat", sat_file, "--kernel", kernel])
        assert rc == 10
        assert "s SATISFIABLE" in capsys.readouterr().out

    def test_kernel_native_flag(self, sat_file, capsys):
        from repro.sat.kernel import native_available

        if not native_available():
            pytest.skip("compiled kernel not built")
        rc = main(["sat", sat_file, "--kernel", "native"])
        assert rc == 10
        assert "s SATISFIABLE" in capsys.readouterr().out

    def test_pigeonhole_file(self, tmp_path, capsys):
        cnf = CNF()
        x = [[cnf.new_var() for _ in range(3)] for _ in range(4)]
        for p in range(4):
            cnf.add_clause([mk_lit(x[p][h]) for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    cnf.add_clause([mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)])
        path = tmp_path / "php.cnf"
        path.write_text(dumps(cnf))
        rc = main(["sat", str(path), "--certify"])
        assert rc == 20
        assert "VERIFIED" in capsys.readouterr().out
