"""White-box tests for the SABRE router internals."""

import random

import pytest

from repro.arch import grid, linear
from repro.baselines.sabre import SabreRouter
from repro.circuit import QuantumCircuit


def router_for(circuit, device, seed=0):
    return SabreRouter(circuit, device, random.Random(seed))


class TestDependencyStructure:
    def test_successors_and_counts(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)  # g0
        qc.cx(1, 2)  # g1 (after g0 via qubit 1)
        qc.h(0)  # g2 (after g0 via qubit 0)
        router = router_for(qc, grid(2, 2))
        assert router.n_deps == [0, 1, 1]
        assert sorted(router.successors[0]) == [1, 2]

    def test_front_layer_gates_execute_in_order(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(0, 1)
        router = router_for(qc, linear(2))
        ops, final = router.run([0, 1])
        assert [op for op, _ in ops] == ["gate", "gate"]
        assert final == [0, 1]


class TestRouting:
    def test_distant_qubits_force_swaps(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        router = router_for(qc, linear(4))
        ops, _final = router.run([0, 3])  # distance 3
        swaps = [payload for kind, payload in ops if kind == "swap"]
        assert len(swaps) >= 2  # at least distance-1 swaps

    def test_mapping_updated_by_swaps(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        router = router_for(qc, linear(3))
        ops, final = router.run([0, 2])
        # after routing, the two program qubits ended up adjacent
        assert abs(final[0] - final[1]) == 1

    def test_candidate_swaps_only_on_front_qubits(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        router = router_for(qc, linear(5))
        mapping = [0, 4]
        candidates = router._candidate_swaps([0], mapping)
        touched = {p for pair in candidates for p in pair}
        # all candidate edges touch position 0 or position 4
        assert all(0 in pair or 4 in pair for pair in candidates), candidates
        assert (0, 1) in candidates and (3, 4) in candidates

    def test_extended_set_is_two_qubit_lookahead(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1)  # front
        qc.h(0)  # successor, single-qubit: not in extended set
        qc.cx(0, 2)  # successor two-qubit: in extended set
        router = router_for(qc, grid(2, 2))
        extended = router._extended_set([0], list(router.n_deps))
        assert 2 in extended
        assert 1 not in extended

    def test_single_qubit_gates_always_executable(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        router = router_for(qc, linear(4))
        ops, _ = router.run([0, 3])
        assert all(kind == "gate" for kind, _ in ops)
