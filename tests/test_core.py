"""Tests for the OLSQ2 core: encoder, optimizer, results, validator."""

import pytest

from repro.arch import full, grid, ibm_qx2, linear
from repro.circuit import QuantumCircuit, longest_chain_length
from repro.core import (
    OLSQ2,
    TBOLSQ2,
    LayoutEncoder,
    SwapEvent,
    SynthesisConfig,
    SynthesisResult,
    ValidationError,
    is_valid,
    paper_variant,
    qaoa_config,
    serialize_blocks,
    validate_result,
)
from repro.core.optimizer import IterativeSynthesizer
from repro.smt import BITVEC, CHANNELING_INJ, ONEHOT, PAIRWISE_INJ
from repro.sat import SatResult


def toffoli():
    qc = QuantumCircuit(3, name="toffoli")
    qc.h(2)
    qc.cx(1, 2)
    qc.tdg(2)
    qc.cx(0, 2)
    qc.t(2)
    qc.cx(1, 2)
    qc.tdg(2)
    qc.cx(0, 2)
    qc.t(1)
    qc.t(2)
    qc.h(2)
    qc.cx(0, 1)
    qc.t(0)
    qc.tdg(1)
    qc.cx(0, 1)
    return qc


def triangle():
    qc = QuantumCircuit(3, name="triangle")
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


def fast_config(**kw):
    kw.setdefault("swap_duration", 1)
    kw.setdefault("time_budget", 60)
    kw.setdefault("solve_time_budget", 30)
    return SynthesisConfig(**kw)


class TestConfig:
    def test_defaults_valid(self):
        cfg = SynthesisConfig()
        assert cfg.encoding == BITVEC
        assert cfg.swap_duration == 3

    def test_invalid_encoding(self):
        with pytest.raises(ValueError):
            SynthesisConfig(encoding="ternary")

    def test_invalid_injectivity(self):
        with pytest.raises(ValueError):
            SynthesisConfig(injectivity="none")

    def test_invalid_cardinality(self):
        with pytest.raises(ValueError):
            SynthesisConfig(cardinality="magic")

    def test_invalid_swap_duration(self):
        with pytest.raises(ValueError):
            SynthesisConfig(swap_duration=0)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            SynthesisConfig(kernel="fortran")

    def test_kernel_native_requires_extension(self):
        from repro.sat.kernel import native_available

        if native_available():
            assert SynthesisConfig(kernel="native").kernel == "native"
        else:
            # The rejection must name the remedy, not just refuse.
            with pytest.raises(ValueError, match="repro.sat.kernel.build"):
                SynthesisConfig(kernel="native")

    def test_qaoa_config(self):
        assert qaoa_config().swap_duration == 1

    def test_paper_variants(self):
        from repro.smt import INT

        assert paper_variant("olsq2-bv").encoding == BITVEC
        assert paper_variant("olsq2-int").encoding == INT
        assert paper_variant("olsq2-onehot").encoding == ONEHOT
        assert paper_variant("olsq2-euf-int").injectivity == CHANNELING_INJ
        assert paper_variant("olsq2-euf-bv").encoding == BITVEC
        with pytest.raises(ValueError):
            paper_variant("olsq3")

    def test_replace(self):
        cfg = SynthesisConfig().replace(swap_duration=1)
        assert cfg.swap_duration == 1


class TestEncoder:
    def test_circuit_too_big_rejected(self):
        qc = QuantumCircuit(6)
        with pytest.raises(ValueError):
            LayoutEncoder(qc, ibm_qx2(), horizon=4)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            LayoutEncoder(triangle(), ibm_qx2(), horizon=0)

    def test_depth_guard_bounds_checked(self):
        enc = LayoutEncoder(triangle(), ibm_qx2(), horizon=4, config=fast_config())
        enc.encode()
        with pytest.raises(ValueError):
            enc.depth_guard(0)
        with pytest.raises(ValueError):
            enc.depth_guard(5)

    def test_depth_guard_cached(self):
        enc = LayoutEncoder(triangle(), ibm_qx2(), horizon=4, config=fast_config())
        enc.encode()
        assert enc.depth_guard(3) == enc.depth_guard(3)

    def test_swap_guard_requires_counter(self):
        enc = LayoutEncoder(triangle(), ibm_qx2(), horizon=4, config=fast_config())
        enc.encode()
        with pytest.raises(RuntimeError):
            enc.swap_guard(2)

    def test_encode_idempotent(self):
        enc = LayoutEncoder(triangle(), ibm_qx2(), horizon=4, config=fast_config())
        enc.encode()
        n = enc.ctx.n_vars
        enc.encode()
        assert enc.ctx.n_vars == n

    def test_satisfiable_without_bounds(self):
        enc = LayoutEncoder(triangle(), ibm_qx2(), horizon=4, config=fast_config())
        assert enc.solve() is SatResult.SAT
        initial, times, swaps = enc.extract()
        assert len(initial) == 3 and len(set(initial)) == 3
        assert len(times) == 3


class TestDepthOptimization:
    def test_toffoli_on_qx2_depth_optimal(self):
        """The paper's running example: depth equals T_LB on QX2."""
        qc = toffoli()
        cfg = SynthesisConfig(swap_duration=3, time_budget=120)
        res = OLSQ2(cfg).synthesize(qc, ibm_qx2(), objective="depth")
        assert res.optimal
        assert res.depth == longest_chain_length(qc) == 11
        validate_result(res)

    def test_full_connectivity_needs_no_swaps(self):
        qc = triangle()
        res = OLSQ2(fast_config()).synthesize(qc, full(3), objective="swap")
        assert res.swap_count == 0
        assert res.depth == qc.depth()
        validate_result(res)

    def test_triangle_on_line_needs_one_swap(self):
        res = OLSQ2(fast_config()).synthesize(triangle(), linear(3), objective="swap")
        assert res.swap_count == 1
        assert res.optimal
        validate_result(res)

    def test_depth_objective_returns_optimal_flag(self):
        res = OLSQ2(fast_config()).synthesize(triangle(), linear(3), objective="depth")
        assert res.optimal
        assert res.objective == "depth"
        validate_result(res)

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError):
            OLSQ2(fast_config()).synthesize(triangle(), linear(3), objective="fidelity")

    def test_single_gate_circuit(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        res = OLSQ2(fast_config()).synthesize(qc, grid(2, 2), objective="depth")
        assert res.depth == 1
        assert res.swap_count == 0
        validate_result(res)

    def test_single_qubit_gates_only(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        qc.h(0)
        res = OLSQ2(fast_config()).synthesize(qc, linear(2), objective="depth")
        assert res.depth == 2
        validate_result(res)

    def test_horizon_regeneration_when_tub_too_small(self):
        """Sec. III-B.1: if no solution exists below T_UB the formulation is
        regenerated with a larger horizon.  A duration-5 SWAP forces the
        optimal depth (8) past the initial T_UB of ceil(1.5 * 3) = 5."""
        from repro.circuit import depth_upper_bound

        qc = triangle()
        assert depth_upper_bound(qc) == 5
        cfg = SynthesisConfig(swap_duration=5, time_budget=120)
        res = OLSQ2(cfg).synthesize(qc, linear(3), objective="depth")
        assert res.optimal
        assert res.depth == 8  # 2 gates + 5-step SWAP + final gate
        validate_result(res)

    def test_swap_duration_three(self):
        cfg = SynthesisConfig(swap_duration=3, time_budget=120)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        validate_result(res)
        # a SWAP of duration 3 pushes depth beyond the logical depth
        assert res.depth >= triangle().depth() + 1


class TestEncodingVariantsAgree:
    """All four Table-I encoding variants must find the same optimal depth."""

    @pytest.mark.parametrize(
        "variant", ["olsq2-bv", "olsq2-int", "olsq2-euf-int", "olsq2-euf-bv"]
    )
    def test_same_optimal_depth(self, variant):
        cfg = paper_variant(variant, swap_duration=1, time_budget=120)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        assert res.optimal
        assert res.depth == 4  # cx, cx, swap, cx on a line
        validate_result(res)

    @pytest.mark.parametrize("cardinality", ["seqcounter", "totalizer", "adder"])
    def test_same_optimal_swaps_across_cardinality(self, cardinality):
        cfg = fast_config(cardinality=cardinality)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="swap")
        assert res.swap_count == 1
        validate_result(res)


class TestSwapOptimization:
    def test_pareto_points_recorded(self):
        res = OLSQ2(fast_config(max_pareto_rounds=2)).synthesize(
            triangle(), linear(3), objective="swap"
        )
        assert res.pareto_points
        depths = [d for d, _s in res.pareto_points]
        swaps = [s for _d, s in res.pareto_points]
        assert depths == sorted(depths)
        assert swaps == sorted(swaps, reverse=True)  # non-increasing

    def test_swap_objective_never_worse_than_depth_objective(self):
        cfg = fast_config()
        r_depth = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        r_swap = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="swap")
        assert r_swap.swap_count <= r_depth.swap_count


class TestTransitionBased:
    def test_tb_on_triangle(self):
        res = TBOLSQ2(fast_config()).synthesize(triangle(), linear(3), objective="swap")
        assert res.swap_count == 1
        validate_result(res)

    def test_tb_zero_swap_case(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        res = TBOLSQ2(fast_config()).synthesize(qc, linear(2), objective="swap")
        assert res.swap_count == 0
        assert res.optimal
        validate_result(res)

    def test_tb_block_count_objective(self):
        res = TBOLSQ2(fast_config()).synthesize(triangle(), linear(3), objective="depth")
        validate_result(res)
        assert res.optimal

    def test_serialize_blocks_strict_times(self):
        qc = triangle()
        # gates 0,1 in block 0; gate 2 in block 1; one swap in transition 0
        times, swaps = serialize_blocks(
            qc, [0, 0, 1], [SwapEvent(1, 2, 0)], swap_duration=3
        )
        assert times[0] < times[1]  # dependency inside block 0
        assert len(swaps) == 1
        swap = swaps[0]
        assert swap.finish_time - 3 + 1 > times[1] - 1  # after block 0 gates
        assert times[2] > swap.finish_time

    def test_serialize_blocks_empty_transition(self):
        qc = triangle()
        times, swaps = serialize_blocks(qc, [0, 1, 1], [], swap_duration=1)
        assert not swaps
        assert times[0] < times[1] <= times[2] - 1 or times[1] < times[2]


class TestResult:
    def _result(self):
        return OLSQ2(fast_config()).synthesize(triangle(), linear(3), objective="swap")

    def test_mapping_trace(self):
        res = self._result()
        m0 = res.mapping_at(0)
        assert sorted(m0) == [0, 1, 2]
        final = res.final_mapping
        assert sorted(final) == [0, 1, 2]
        if res.swaps:
            assert m0 != final

    def test_physical_circuit_respects_coupling(self):
        res = self._result()
        phys = res.to_physical_circuit()
        for gate in phys.gates:
            if gate.is_two_qubit:
                assert res.device.are_adjacent(*gate.qubits)

    def test_swap_decomposition_into_three_cnots(self):
        res = self._result()
        phys = res.to_physical_circuit(decompose_swaps=True)
        kept = res.to_physical_circuit(decompose_swaps=False)
        n_swaps = sum(1 for g in kept.gates if g.name == "swap")
        assert n_swaps == res.swap_count
        assert phys.num_gates == kept.num_gates + 2 * n_swaps

    def test_schedule_table_sorted(self):
        res = self._result()
        rows = res.schedule_table()
        times = [r[0] for r in rows]
        assert times == sorted(times)
        assert len(rows) == res.circuit.num_gates + res.swap_count

    def test_summary_mentions_objective(self):
        assert "swap" in self._result().summary()


class TestValidator:
    def _valid(self):
        res = OLSQ2(fast_config()).synthesize(triangle(), linear(3), objective="swap")
        validate_result(res)
        return res

    def test_detects_non_injective_mapping(self):
        res = self._valid()
        res.initial_mapping[1] = res.initial_mapping[0]
        assert not is_valid(res)

    def test_detects_mapping_out_of_range(self):
        res = self._valid()
        res.initial_mapping[0] = 99
        assert not is_valid(res)

    def test_detects_dependency_violation(self):
        res = self._valid()
        res.gate_times[0], res.gate_times[-1] = (
            max(res.gate_times) + 1,
            res.gate_times[0],
        )
        assert not is_valid(res)

    def test_detects_non_adjacent_two_qubit_gate(self):
        res = self._valid()
        res.swaps.clear()  # removing the SWAP breaks cx(0,2) adjacency
        assert not is_valid(res)

    def test_detects_swap_on_non_edge(self):
        res = self._valid()
        res.swaps.append(SwapEvent(0, 2, res.depth + 5))
        assert not is_valid(res)

    def test_detects_swap_gate_overlap(self):
        res = OLSQ2(SynthesisConfig(swap_duration=3, time_budget=120)).synthesize(
            triangle(), linear(3), objective="depth"
        )
        validate_result(res)
        # Move a gate into a SWAP window on the swapped qubits.
        swap = res.swaps[0]
        for idx, gate in enumerate(res.circuit.gates):
            mapping = res.mapping_at(swap.finish_time)
            touched = {mapping[q] for q in gate.qubits}
            if touched & {swap.p, swap.p_prime}:
                res.gate_times[idx] = swap.finish_time
                break
        assert not is_valid(res)

    def test_detects_overlapping_swaps(self):
        res = self._valid()
        if not res.swaps:
            pytest.skip("no swaps to corrupt")
        swap = res.swaps[0]
        res.swaps.append(SwapEvent(swap.p, swap.p_prime, swap.finish_time))
        assert not is_valid(res)

    def test_wrong_sizes_detected(self):
        res = self._valid()
        res.gate_times.append(0)
        with pytest.raises(ValidationError):
            validate_result(res)

    def test_negative_time_detected(self):
        res = self._valid()
        res.gate_times[0] = -1
        assert not is_valid(res)


class TestIterativeSynthesizerInternals:
    def test_next_depth_bound_growth(self):
        synth = IterativeSynthesizer(triangle(), linear(3), fast_config())
        assert synth._next_depth_bound(10) == 13  # ceil(1.3 * 10)
        assert synth._next_depth_bound(150) == 165  # ceil(1.1 * 150)
        assert synth._next_depth_bound(1) == 2

    def test_tb_bound_grows_by_one(self):
        synth = IterativeSynthesizer(
            triangle(), linear(3), fast_config(), transition_based=True
        )
        assert synth._next_depth_bound(3) == 4
