"""Cross-checks between the exact synthesizers and brute-force references."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import full, grid, linear, ring
from repro.circuit import QuantumCircuit
from repro.core import TBOLSQ2, SynthesisConfig, validate_result
from repro.core.reference import (
    exists_swap_free_mapping,
    interaction_graph,
    min_swaps_lower_bound,
)
from repro.workloads import ghz, qaoa_circuit, queko_circuit, random_circuit


def fast_config(**kw):
    kw.setdefault("swap_duration", 1)
    kw.setdefault("time_budget", 60)
    kw.setdefault("solve_time_budget", 30)
    kw.setdefault("max_pareto_rounds", 1)
    return SynthesisConfig(**kw)


class TestInteractionGraph:
    def test_adjacency(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        adj = interaction_graph(qc)
        assert adj[0] == {1}
        assert adj[1] == {0, 2}

    def test_single_qubit_gates_ignored(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        assert all(not s for s in interaction_graph(qc))


class TestSwapFreeMapping:
    def test_ghz_on_line(self):
        mapping = exists_swap_free_mapping(ghz(4), linear(4))
        assert mapping is not None
        assert sorted(mapping) == [0, 1, 2, 3]

    def test_triangle_on_line_impossible(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.cx(0, 2)
        assert exists_swap_free_mapping(qc, linear(3)) is None
        assert min_swaps_lower_bound(qc, linear(3)) == 1

    def test_triangle_on_ring_possible(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.cx(0, 2)
        assert exists_swap_free_mapping(qc, ring(3)) is not None

    def test_too_many_qubits(self):
        assert exists_swap_free_mapping(ghz(4), linear(3)) is None

    def test_mapping_actually_works(self):
        qc = qaoa_circuit(6, seed=3)
        device = full(6)
        mapping = exists_swap_free_mapping(qc, device)
        assert mapping is not None
        for gate in qc.gates:
            if gate.is_two_qubit:
                a, b = (mapping[q] for q in gate.qubits)
                assert device.are_adjacent(a, b)

    def test_queko_always_swap_free(self):
        device = grid(3, 3)
        for seed in range(5):
            inst = queko_circuit(device, 4, 10, seed=seed)
            assert exists_swap_free_mapping(inst.circuit, device) is not None


class TestAgainstTBOLSQ2:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_zero_swap_boundary_agrees(self, seed):
        """TB-OLSQ2 reports 0 SWAPs iff a swap-free mapping exists."""
        circuit = random_circuit(4, 6, two_qubit_fraction=0.8, seed=seed)
        device = linear(4)
        expected_zero = exists_swap_free_mapping(circuit, device) is not None
        result = TBOLSQ2(fast_config()).synthesize(circuit, device, objective="swap")
        validate_result(result)
        if result.optimal:
            assert (result.swap_count == 0) == expected_zero
        elif result.swap_count == 0:
            assert expected_zero  # a found zero is a certificate either way

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lower_bound_respected(self, seed):
        circuit = qaoa_circuit(6, seed=seed)
        device = grid(2, 3)
        result = TBOLSQ2(fast_config()).synthesize(circuit, device, objective="swap")
        assert result.swap_count >= min_swaps_lower_bound(circuit, device) or not result.optimal
