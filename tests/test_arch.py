"""Tests for coupling graphs and device factories."""

import pytest

from repro.arch import (
    CouplingGraph,
    by_name,
    eagle_region,
    full,
    google_sycamore,
    grid,
    ibm_eagle,
    ibm_qx2,
    linear,
    rigetti_aspen4,
    ring,
    sycamore_region,
)


class TestCouplingGraph:
    def test_edge_dedup_and_normalisation(self):
        g = CouplingGraph(3, [(1, 0), (0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.edges[0] == (0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 2)])

    def test_adjacency(self):
        g = ibm_qx2()
        assert g.are_adjacent(0, 1)
        assert g.are_adjacent(1, 0)
        assert not g.are_adjacent(0, 3)

    def test_edge_index_consistency(self):
        g = ibm_qx2()
        for i, (a, b) in enumerate(g.edges):
            assert g.edge_index(a, b) == i
            assert g.edge_index(b, a) == i

    def test_incident_edges(self):
        g = ibm_qx2()
        # qubit 2 of QX2 touches four edges
        assert len(g.incident_edges[2]) == 4

    def test_distances_on_line(self):
        g = linear(5)
        assert g.distance(0, 4) == 4
        assert g.distance(2, 2) == 0

    def test_disconnected_distance_is_sentinel(self):
        g = CouplingGraph(4, [(0, 1), (2, 3)])
        assert g.distance(0, 2) == 4  # n_qubits sentinel
        assert not g.is_connected()

    def test_shortest_path(self):
        g = grid(3, 3)
        path = g.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == g.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert g.are_adjacent(a, b)

    def test_shortest_path_trivial(self):
        assert grid(2, 2).shortest_path(1, 1) == [1]

    def test_subgraph_relabels(self):
        g = grid(3, 3)
        sub = g.subgraph([0, 1, 3, 4])
        assert sub.n_qubits == 4
        assert sub.num_edges == 4  # the 2x2 corner

    def test_subgraph_duplicate_rejected(self):
        with pytest.raises(ValueError):
            grid(2, 2).subgraph([0, 0])

    def test_networkx_roundtrip(self):
        g = ibm_qx2()
        back = CouplingGraph.from_networkx(g.to_networkx(), name="rt")
        assert back.n_qubits == g.n_qubits
        assert sorted(back.edges) == sorted(g.edges)


class TestDevices:
    def test_grid_counts(self):
        g = grid(5, 5)
        assert g.n_qubits == 25
        assert g.num_edges == 2 * 5 * 4  # 40

    def test_qx2_matches_paper_figure(self):
        g = ibm_qx2()
        assert g.n_qubits == 5
        assert g.num_edges == 6

    def test_aspen4_counts(self):
        g = rigetti_aspen4()
        assert g.n_qubits == 16
        assert g.num_edges == 18  # two octagons + two rungs
        assert g.is_connected()
        assert max(g.degree(p) for p in range(16)) == 3

    def test_sycamore_counts(self):
        g = google_sycamore()
        assert g.n_qubits == 54
        assert g.is_connected()
        assert max(g.degree(p) for p in range(54)) <= 4

    def test_eagle_counts(self):
        g = ibm_eagle()
        assert g.n_qubits == 127
        assert g.is_connected()
        # heavy-hex: degree at most 3
        assert max(g.degree(p) for p in range(127)) <= 3

    def test_regions_are_connected(self):
        for n in (8, 16, 25):
            assert sycamore_region(n).is_connected()
            assert eagle_region(n).is_connected()

    def test_region_bounds_checked(self):
        with pytest.raises(ValueError):
            sycamore_region(0)
        with pytest.raises(ValueError):
            eagle_region(128)

    def test_ring_and_full(self):
        assert ring(5).num_edges == 5
        assert full(5).num_edges == 10
        with pytest.raises(ValueError):
            ring(2)

    def test_by_name(self):
        assert by_name("qx2").n_qubits == 5
        assert by_name("grid-3x4").n_qubits == 12
        assert by_name("line-7").num_edges == 6
        assert by_name("ring-6").num_edges == 6
        assert by_name("full-4").num_edges == 6
        assert by_name("eagle").n_qubits == 127
        with pytest.raises(ValueError):
            by_name("nonsense")
