"""Tests for the benchmark workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import grid, ibm_qx2, linear, rigetti_aspen4
from repro.circuit import longest_chain_length
from repro.workloads import (
    barenco_toffoli,
    ising,
    qaoa_circuit,
    qaoa_paper_instance,
    qft,
    queko_circuit,
    queko_paper_row,
    random_circuit,
    toffoli,
)


class TestQAOA:
    @pytest.mark.parametrize("n", [6, 8, 10, 16])
    def test_gate_count_matches_paper_convention(self, n):
        qc = qaoa_paper_instance(n)
        assert qc.num_gates == 3 * n // 2
        assert qc.n_qubits == n
        assert all(g.is_two_qubit for g in qc.gates)

    def test_seeds_give_different_graphs(self):
        a = qaoa_circuit(8, seed=1)
        b = qaoa_circuit(8, seed=2)
        assert [g.qubits for g in a.gates] != [g.qubits for g in b.gates]

    def test_decomposed_form(self):
        qc = qaoa_circuit(6, decompose=True)
        names = {g.name for g in qc.gates}
        assert names == {"cx", "rz"}
        assert qc.num_gates == 3 * (3 * 6 // 2)

    def test_layers_multiply_gates(self):
        assert qaoa_circuit(6, layers=2).num_gates == 2 * 9

    def test_odd_degree_odd_qubits_rejected(self):
        with pytest.raises(ValueError):
            qaoa_circuit(7)
        with pytest.raises(ValueError):
            qaoa_circuit(3)


class TestQueko:
    @pytest.mark.parametrize("depth,gates", [(3, 5), (5, 12), (8, 20)])
    def test_depth_is_exactly_target(self, depth, gates):
        inst = queko_circuit(grid(3, 3), depth, gates, seed=3)
        assert inst.circuit.depth() == depth
        assert inst.optimal_depth == depth
        assert inst.circuit.num_gates == gates

    def test_optimal_mapping_executes_without_swaps(self):
        """Key QUEKO invariant: under the hidden mapping every two-qubit
        gate is on adjacent physical qubits."""
        device = grid(3, 3)
        inst = queko_circuit(device, 6, 15, seed=7)
        mapping = inst.optimal_mapping
        for gate in inst.circuit.gates:
            if gate.is_two_qubit:
                a, b = (mapping[q] for q in gate.qubits)
                assert device.are_adjacent(a, b)

    def test_optimal_swaps_is_zero(self):
        inst = queko_circuit(ibm_qx2(), 4, 8)
        assert inst.optimal_swaps == 0

    def test_paper_row_scales_with_device(self):
        small = queko_paper_row(ibm_qx2(), 5, seed=0)
        large = queko_paper_row(rigetti_aspen4(), 5, seed=0)
        assert large.circuit.num_gates > small.circuit.num_gates

    def test_too_many_gates_rejected(self):
        with pytest.raises(ValueError):
            queko_circuit(linear(2), 2, 50)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            queko_circuit(grid(2, 2), 0, 5)
        with pytest.raises(ValueError):
            queko_circuit(grid(2, 2), 5, 3)

    @settings(max_examples=25, deadline=None)
    @given(
        depth=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    def test_hypothesis_queko_invariants(self, depth, seed):
        device = grid(3, 3)
        gates = depth * 2
        inst = queko_circuit(device, depth, gates, seed=seed)
        assert inst.circuit.depth() == depth
        mapping = inst.optimal_mapping
        assert sorted(mapping) == list(range(device.n_qubits))
        for gate in inst.circuit.gates:
            if gate.is_two_qubit:
                a, b = (mapping[q] for q in gate.qubits)
                assert device.are_adjacent(a, b)


class TestLibrary:
    def test_qft_structure(self):
        qc = qft(4)
        assert qc.n_qubits == 4
        counts = qc.count_ops()
        assert counts["h"] == 4
        assert counts["cx"] == 2 * 6  # two CX per controlled phase
        assert qc.num_gates == 4 + 5 * 6

    def test_qft_with_swaps(self):
        plain = qft(5)
        swapped = qft(5, include_swaps=True)
        assert swapped.num_gates == plain.num_gates + 2

    def test_qft_single_qubit(self):
        assert qft(1).num_gates == 1
        with pytest.raises(ValueError):
            qft(0)

    def test_tof_sizes_match_paper_shape(self):
        """tof_4 is 7 qubits, tof_5 is 9 qubits (paper Table III rows)."""
        t4 = toffoli(4)
        t5 = toffoli(5)
        assert t4.n_qubits == 7
        assert t5.n_qubits == 9
        assert t4.num_gates == 5 * 15  # 5 Toffolis, 15 gates each
        assert t5.num_gates == 7 * 15

    def test_tof_2_is_plain_toffoli(self):
        qc = toffoli(2)
        assert qc.n_qubits == 3
        assert qc.num_gates == 15
        assert qc.count_ops()["cx"] == 6

    def test_barenco_bigger_than_vchain(self):
        assert barenco_toffoli(4).num_gates > toffoli(4).num_gates
        assert barenco_toffoli(4).n_qubits == toffoli(4).n_qubits

    def test_toffoli_validates_controls(self):
        with pytest.raises(ValueError):
            toffoli(1)
        with pytest.raises(ValueError):
            barenco_toffoli(1)

    def test_ising_matches_paper_count(self):
        qc = ising(10, steps=10)
        assert qc.n_qubits == 10
        assert qc.num_gates == 10 * (3 * 9 + 10)  # 370... see formula
        # paper row says ising_10(10,480): steps tuned below
        assert qc.num_gates == 370

    def test_ising_paper_row_scaling(self):
        """480 gates needs 13 steps under our decomposition (documented)."""
        qc = ising(10, steps=13)
        assert qc.num_gates == 13 * 37  # 481: one step granularity

    def test_ising_minimum_size(self):
        with pytest.raises(ValueError):
            ising(1)


class TestRandomCircuits:
    def test_gate_count_and_fraction(self):
        qc = random_circuit(5, 40, two_qubit_fraction=1.0, seed=1)
        assert qc.num_gates == 40
        assert all(g.is_two_qubit for g in qc.gates)

    def test_zero_fraction(self):
        qc = random_circuit(3, 10, two_qubit_fraction=0.0)
        assert all(g.is_single_qubit for g in qc.gates)

    def test_reproducible(self):
        a = random_circuit(4, 20, seed=9)
        b = random_circuit(4, 20, seed=9)
        assert [(g.name, g.qubits) for g in a.gates] == [
            (g.name, g.qubits) for g in b.gates
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            random_circuit(0, 5)
        with pytest.raises(ValueError):
            random_circuit(1, 5, two_qubit_fraction=0.5)
        with pytest.raises(ValueError):
            random_circuit(3, 5, two_qubit_fraction=1.5)
