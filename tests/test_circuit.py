"""Tests for the circuit IR, dependency analysis, and QASM front end."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Gate,
    QasmError,
    QuantumCircuit,
    asap_layers,
    dependencies,
    dependency_graph,
    depth_upper_bound,
    longest_chain,
    longest_chain_length,
    parse_qasm,
)


def toffoli_circuit():
    """The paper's running example (Fig. 2): Toffoli with one ancilla.

    Gate sequence g0..g8 with the structure producing a longest chain of 12
    would need the full decomposition; here we use the standard 9-gate
    skeleton used in the paper's dependency figure discussion.
    """
    qc = QuantumCircuit(3, name="toffoli")
    qc.h(2)
    qc.cx(1, 2)
    qc.tdg(2)
    qc.cx(0, 2)
    qc.t(2)
    qc.cx(1, 2)
    qc.tdg(2)
    qc.cx(0, 2)
    qc.t(1)
    qc.t(2)
    qc.h(2)
    qc.cx(0, 1)
    qc.t(0)
    qc.tdg(1)
    qc.cx(0, 1)
    return qc


class TestGate:
    def test_gate_fields(self):
        g = Gate("cx", (0, 1))
        assert g.is_two_qubit and not g.is_single_qubit

    def test_three_qubit_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate("ccx", (0, 1, 2))

    def test_repeated_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_remapped(self):
        g = Gate("cx", (0, 1)).remapped({0: 5, 1: 3})
        assert g.qubits == (5, 3)

    def test_qasm_rendering(self):
        assert Gate("cx", (0, 1)).qasm() == "cx q[0],q[1];"
        assert Gate("rz", (2,), (0.5,)).qasm() == "rz(0.5) q[2];"


class TestCircuit:
    def test_append_validates_indices(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.add_gate("h", [2])

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_gate_partition(self):
        qc = toffoli_circuit()
        one_q = qc.single_qubit_gates
        two_q = qc.two_qubit_gates
        assert len(one_q) + len(two_q) == qc.num_gates
        assert qc.num_two_qubit_gates == 6

    def test_depth_serial_chain(self):
        qc = QuantumCircuit(1)
        for _ in range(5):
            qc.h(0)
        assert qc.depth() == 5

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        assert qc.depth() == 1

    def test_count_ops(self):
        qc = toffoli_circuit()
        counts = qc.count_ops()
        assert counts["cx"] == 6
        assert counts["h"] == 2

    def test_remapped_circuit(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        out = qc.remapped([1, 0])
        assert out.gates[0].qubits == (1, 0)

    def test_reversed(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        rev = qc.reversed()
        assert rev.gates[0].name == "cx"
        assert rev.gates[1].name == "h"

    def test_qasm_roundtrip(self):
        qc = toffoli_circuit()
        parsed = parse_qasm(qc.to_qasm())
        assert parsed.n_qubits == qc.n_qubits
        assert [g.name for g in parsed.gates] == [g.name for g in qc.gates]
        assert [g.qubits for g in parsed.gates] == [g.qubits for g in qc.gates]


class TestDependencies:
    def test_dependency_pairs(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)  # g0
        qc.cx(1, 2)  # g1 depends on g0 (qubit 1)
        qc.h(0)  # g2 depends on g0 (qubit 0)
        deps = dependencies(qc)
        assert (0, 1) in deps
        assert (0, 2) in deps
        assert (1, 2) not in deps

    def test_longest_chain_toffoli(self):
        qc = toffoli_circuit()
        chain = longest_chain(qc)
        assert len(chain) == longest_chain_length(qc)
        # chain must be a real dependency chain
        for a, b in zip(chain, chain[1:]):
            assert a < b
            assert set(qc.gates[a].qubits) & set(qc.gates[b].qubits)

    def test_asap_layers_partition_gates(self):
        qc = toffoli_circuit()
        layers = asap_layers(qc)
        flat = [i for layer in layers for i in layer]
        assert sorted(flat) == list(range(qc.num_gates))
        assert len(layers) == qc.depth()

    def test_depth_upper_bound(self):
        qc = toffoli_circuit()
        t_lb = longest_chain_length(qc)
        assert depth_upper_bound(qc) == math.ceil(1.5 * t_lb)

    def test_dependency_graph_is_dag(self):
        import networkx as nx

        qc = toffoli_circuit()
        graph = dependency_graph(qc)
        assert nx.is_directed_acyclic_graph(graph)
        assert graph.number_of_nodes() == qc.num_gates


class TestQasmParser:
    def test_basic_program(self):
        src = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0],q[1];
        rz(pi/2) q[2];
        measure q[0] -> c[0];
        """
        qc = parse_qasm(src)
        assert qc.n_qubits == 3
        assert [g.name for g in qc.gates] == ["h", "cx", "rz"]
        assert qc.gates[2].params[0] == pytest.approx(math.pi / 2)

    def test_comments_stripped(self):
        src = """
        OPENQASM 2.0;
        // a line comment
        qreg q[1];
        /* block
           comment */
        x q[0]; // trailing
        """
        qc = parse_qasm(src)
        assert len(qc.gates) == 1

    def test_multiple_registers_flattened(self):
        src = """
        OPENQASM 2.0;
        qreg a[2];
        qreg b[2];
        cx a[1],b[0];
        """
        qc = parse_qasm(src)
        assert qc.n_qubits == 4
        assert qc.gates[0].qubits == (1, 2)

    def test_register_broadcast(self):
        src = """
        OPENQASM 2.0;
        qreg q[3];
        h q;
        """
        qc = parse_qasm(src)
        assert len(qc.gates) == 3
        assert {g.qubits[0] for g in qc.gates} == {0, 1, 2}

    def test_parameter_expressions(self):
        src = """
        OPENQASM 2.0;
        qreg q[1];
        rz(-pi/4) q[0];
        rz(2*pi) q[0];
        rz(pi/2+pi/4) q[0];
        rz((1+1)*pi) q[0];
        rz(0.5) q[0];
        """
        qc = parse_qasm(src)
        params = [g.params[0] for g in qc.gates]
        assert params[0] == pytest.approx(-math.pi / 4)
        assert params[1] == pytest.approx(2 * math.pi)
        assert params[2] == pytest.approx(3 * math.pi / 4)
        assert params[3] == pytest.approx(2 * math.pi)
        assert params[4] == pytest.approx(0.5)

    def test_custom_gate_definition_inlined(self):
        src = """
        OPENQASM 2.0;
        qreg q[2];
        gate mygate a,b { h a; cx a,b; }
        mygate q[0],q[1];
        """
        qc = parse_qasm(src)
        assert [g.name for g in qc.gates] == ["h", "cx"]
        assert qc.gates[1].qubits == (0, 1)

    def test_custom_gate_with_params(self):
        src = """
        OPENQASM 2.0;
        qreg q[1];
        gate myrot(theta) a { rz(theta) a; }
        myrot(pi) q[0];
        """
        qc = parse_qasm(src)
        assert qc.gates[0].params[0] == pytest.approx(math.pi)

    def test_unknown_register_raises(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0; qreg q[1]; h r[0];")

    def test_index_out_of_range_raises(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0; qreg q[1]; h q[3];")

    def test_no_register_raises(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0; ")

    def test_barrier_ignored(self):
        src = "OPENQASM 2.0; qreg q[2]; h q[0]; barrier q; cx q[0],q[1];"
        qc = parse_qasm(src)
        assert len(qc.gates) == 2


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_hypothesis_qasm_roundtrip(data):
    """Random circuits survive a QASM round trip unchanged."""
    n = data.draw(st.integers(2, 6))
    qc = QuantumCircuit(n)
    n_gates = data.draw(st.integers(0, 15))
    for _ in range(n_gates):
        if data.draw(st.booleans()):
            qc.h(data.draw(st.integers(0, n - 1)))
        else:
            a = data.draw(st.integers(0, n - 1))
            b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
            qc.cx(a, b)
    parsed = parse_qasm(qc.to_qasm())
    assert parsed.n_qubits == qc.n_qubits
    assert [(g.name, g.qubits) for g in parsed.gates] == [
        (g.name, g.qubits) for g in qc.gates
    ]


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_hypothesis_depth_equals_longest_chain(data):
    n = data.draw(st.integers(2, 5))
    qc = QuantumCircuit(n)
    for _ in range(data.draw(st.integers(0, 12))):
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
        qc.cx(a, b)
    assert qc.depth() == longest_chain_length(qc)
    assert len(longest_chain(qc)) == qc.depth()
