"""Deeper sweeps over the cardinality/gate encodings."""

import itertools

import pytest

from repro.encodings import (
    ADDER,
    SEQUENTIAL,
    TOTALIZER,
    binary_total,
    compare_leq_const,
    encode_at_most_k,
    at_most_one_commander,
    tseitin_equiv,
)
from repro.sat import CNF, mk_lit, neg, SatResult, Solver


def fresh(n):
    solver = Solver()
    lits = [mk_lit(solver.new_var()) for _ in range(n)]
    return solver, lits


def force(solver, lits, pattern):
    return [l if bit else neg(l) for l, bit in zip(lits, pattern)]


class TestWideSweeps:
    @pytest.mark.parametrize("method", [SEQUENTIAL, TOTALIZER, ADDER])
    @pytest.mark.parametrize("n", [7, 8])
    def test_every_bound_on_wider_inputs(self, method, n):
        """All k in [0, n] on n inputs, sampled patterns."""
        for k in range(n + 1):
            # exhaustive is 2^n * (n+1); sample the boundary patterns
            patterns = [
                [i < k for i in range(n)],  # exactly k
                [i < k + 1 for i in range(n)],  # k+1 (if possible)
                [i < max(0, k - 1) for i in range(n)],  # k-1
                [True] * n,
                [False] * n,
            ]
            for pattern in patterns:
                solver, lits = fresh(n)
                encode_at_most_k(solver, lits, k, method=method)
                result = solver.solve(assumptions=force(solver, lits, pattern))
                assert result == (sum(pattern) <= k), (method, n, k, pattern)


class TestCommanderGroups:
    @pytest.mark.parametrize("group_size", [2, 3, 4])
    @pytest.mark.parametrize("n", [6, 9])
    def test_group_sizes(self, group_size, n):
        for pattern in itertools.islice(itertools.product([False, True], repeat=n), 0, 128):
            solver, lits = fresh(n)
            at_most_one_commander(solver, lits, group_size=group_size)
            result = solver.solve(assumptions=force(solver, lits, pattern))
            assert result == (sum(pattern) <= 1), (group_size, pattern)


class TestCompareLeqConst:
    @pytest.mark.parametrize("width,k", [(3, 0), (3, 3), (3, 7), (4, 9), (4, 15)])
    def test_unguarded_semantics(self, width, k):
        for value in range(1 << width):
            solver, lits = fresh(width)
            compare_leq_const(solver, lits, k)
            pattern = [bool((value >> i) & 1) for i in range(width)]
            result = solver.solve(assumptions=force(solver, lits, pattern))
            assert result == (value <= k), (width, k, value)

    def test_guard_false_disables(self):
        solver, lits = fresh(3)
        guard = mk_lit(solver.new_var())
        compare_leq_const(solver, lits, 0, guard=guard)
        # all bits set, guard not assumed: satisfiable
        assert solver.solve(assumptions=force(solver, lits, [True] * 3)) is SatResult.SAT
        # with the guard, value must be 0
        assert (
            solver.solve(assumptions=[guard] + force(solver, lits, [True] * 3))
            is SatResult.UNSAT
        )


class TestBinaryTotalWide:
    @pytest.mark.parametrize("n", [9, 12])
    def test_counts_all_popcounts(self, n):
        for k in range(0, n + 1, 3):
            solver, lits = fresh(n)
            total = binary_total(solver, lits)
            pattern = [i < k for i in range(n)]
            assert solver.solve(assumptions=force(solver, lits, pattern)) is SatResult.SAT
            got = sum(solver.model_value(bit) << i for i, bit in enumerate(total))
            assert got == k


class TestTseitinEquiv:
    def test_equiv_chain(self):
        solver, lits = fresh(3)
        e1 = tseitin_equiv(solver, lits[0], lits[1])
        e2 = tseitin_equiv(solver, lits[1], lits[2])
        both = [e1, e2]
        # a=b=c makes both equivalences true
        assert solver.solve(assumptions=force(solver, lits, [True] * 3) + both) is SatResult.SAT
        assert (
            solver.solve(
                assumptions=force(solver, lits, [True, False, True]) + both
            )
            is SatResult.UNSAT
        )
