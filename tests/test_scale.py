"""Moderate-scale end-to-end checks (the largest instances in the suite).

These mirror the paper's scalability claims at the sizes our pure-Python
substrate handles in tens of seconds: QUEKO circuits with dozens of gates on
16-qubit device regions, where OLSQ2 must still hit the known optimum and
TB-OLSQ2 must still find the zero-SWAP layout.
"""

import pytest

from repro.arch import rigetti_aspen4, sycamore_region
from repro.baselines import SABRE
from repro.core import OLSQ2, TBOLSQ2, SynthesisConfig, validate_result
from repro.workloads import queko_circuit


def scale_config(**kw):
    kw.setdefault("swap_duration", 1)
    kw.setdefault("time_budget", 240)
    kw.setdefault("solve_time_budget", 120)
    kw.setdefault("max_pareto_rounds", 1)
    return SynthesisConfig(**kw)


class TestQuekoAtScale:
    def test_tb_finds_zero_swaps_on_40_gate_queko(self):
        device = sycamore_region(16)
        inst = queko_circuit(device, 8, 40, seed=5)
        res = TBOLSQ2(scale_config()).synthesize(inst.circuit, device, objective="swap")
        assert res.swap_count == 0
        assert res.optimal
        validate_result(res)

    def test_olsq2_proves_known_optimal_depth_40_gates(self):
        device = sycamore_region(16)
        inst = queko_circuit(device, 8, 40, seed=5)
        res = OLSQ2(scale_config()).synthesize(inst.circuit, device, objective="depth")
        assert res.optimal
        assert res.depth == inst.optimal_depth
        validate_result(res)

    def test_aspen4_full_device_queko(self):
        device = rigetti_aspen4()
        inst = queko_circuit(device, 6, 30, seed=7)
        res = TBOLSQ2(scale_config()).synthesize(inst.circuit, device, objective="swap")
        assert res.swap_count == 0
        validate_result(res)

    def test_exact_beats_sabre_at_scale(self):
        """The Table III trend at our largest test size."""
        device = sycamore_region(16)
        inst = queko_circuit(device, 8, 40, seed=5)
        exact = OLSQ2(scale_config()).synthesize(inst.circuit, device, objective="depth")
        heuristic = SABRE(swap_duration=1, seed=0).synthesize(inst.circuit, device)
        validate_result(heuristic)
        assert exact.depth <= heuristic.depth
        assert exact.depth == inst.optimal_depth
