"""Tests for the lazy integer-theory emulation (repro.smt.lazy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import neg, SatResult
from repro.smt import (
    BITVEC,
    INT,
    CHANNELING_INJ,
    PAIRWISE_INJ,
    LazyIntVar,
    SMTContext,
    encode_injectivity,
    make_domain_var,
)


class TestLazyBasics:
    def test_factory_dispatch(self):
        ctx = SMTContext()
        var = make_domain_var(ctx, 5, INT)
        assert isinstance(var, LazyIntVar)
        assert var in ctx.lazy_vars

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LazyIntVar(SMTContext(), 0)

    @pytest.mark.parametrize("size", [1, 2, 5, 9])
    def test_every_value_reachable_and_unique(self, size):
        ctx = SMTContext()
        var = make_domain_var(ctx, size, INT)
        seen = set()
        while ctx.solve() is SatResult.SAT:
            value = var.decode(ctx.sink.model)
            assert value not in seen
            seen.add(value)
            ctx.add([neg(var.eq_lit(value))])
        assert seen == set(range(size))

    def test_theory_rounds_counted(self):
        ctx = SMTContext()
        make_domain_var(ctx, 6, INT)
        make_domain_var(ctx, 6, INT)
        assert ctx.solve() is SatResult.SAT
        assert ctx.theory_rounds >= 1

    def test_fix(self):
        ctx = SMTContext()
        var = make_domain_var(ctx, 4, INT)
        var.fix(2)
        assert ctx.solve() is SatResult.SAT
        assert var.decode(ctx.sink.model) == 2

    def test_decode_before_convergence_raises(self):
        ctx = SMTContext()
        var = make_domain_var(ctx, 3, INT)
        # fake a model where no atom is true
        with pytest.raises(ValueError):
            var.decode([False] * ctx.n_vars)

    def test_mixed_encoding_comparison_raises(self):
        ctx = SMTContext()
        a = make_domain_var(ctx, 3, INT)
        b = make_domain_var(ctx, 3, BITVEC)
        with pytest.raises(TypeError):
            a.less_than(b)
        with pytest.raises(TypeError):
            a.less_equal(b)
        with pytest.raises(TypeError):
            a.neq(b)


class TestLazySemantics:
    @pytest.mark.parametrize("k", [-1, 0, 2, 4])
    def test_leq_const(self, k):
        ctx = SMTContext()
        var = make_domain_var(ctx, 5, INT)
        var.leq_const(k)
        feasible = {v for v in range(5) if v <= k}
        seen = set()
        while ctx.solve() is SatResult.SAT:
            value = var.decode(ctx.sink.model)
            seen.add(value)
            ctx.add([neg(var.eq_lit(value))])
        assert seen == feasible

    def test_less_than_pairs(self):
        ctx = SMTContext()
        a = make_domain_var(ctx, 4, INT)
        b = make_domain_var(ctx, 4, INT)
        a.less_than(b)
        seen = set()
        while ctx.solve() is SatResult.SAT:
            pair = (a.decode(ctx.sink.model), b.decode(ctx.sink.model))
            seen.add(pair)
            ctx.add([neg(a.eq_lit(pair[0])), neg(b.eq_lit(pair[1]))])
        assert seen == {(x, y) for x in range(4) for y in range(4) if x < y}

    def test_less_equal_pairs(self):
        ctx = SMTContext()
        a = make_domain_var(ctx, 3, INT)
        b = make_domain_var(ctx, 3, INT)
        a.less_equal(b)
        seen = set()
        while ctx.solve() is SatResult.SAT:
            pair = (a.decode(ctx.sink.model), b.decode(ctx.sink.model))
            seen.add(pair)
            ctx.add([neg(a.eq_lit(pair[0])), neg(b.eq_lit(pair[1]))])
        assert seen == {(x, y) for x in range(3) for y in range(3) if x <= y}

    @pytest.mark.parametrize("method", [PAIRWISE_INJ, CHANNELING_INJ])
    def test_injectivity(self, method):
        ctx = SMTContext()
        vars_ = [make_domain_var(ctx, 3, INT) for _ in range(3)]
        encode_injectivity(ctx, vars_, 3, method=method, encoding=INT)
        count = 0
        while ctx.solve() is SatResult.SAT:
            tup = tuple(v.decode(ctx.sink.model) for v in vars_)
            assert len(set(tup)) == 3
            count += 1
            ctx.add([neg(vars_[i].eq_lit(tup[i])) for i in range(3)])
        assert count == 6  # 3! permutations

    def test_unsat_when_overconstrained(self):
        ctx = SMTContext()
        vars_ = [make_domain_var(ctx, 2, INT) for _ in range(3)]
        encode_injectivity(ctx, vars_, 2, method=PAIRWISE_INJ, encoding=INT)
        assert ctx.solve() is SatResult.UNSAT

    def test_assumptions_work_through_cegar(self):
        ctx = SMTContext()
        var = make_domain_var(ctx, 4, INT)
        assert ctx.solve(assumptions=[var.eq_lit(3)]) is SatResult.SAT
        assert var.decode(ctx.sink.model) == 3
        # conflicting atoms as assumptions: theory lemma must refute them
        status = ctx.solve(assumptions=[var.eq_lit(0), var.eq_lit(1)])
        assert status is SatResult.UNSAT

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_hypothesis_lazy_agrees_with_bitvec(self, data):
        """Both encodings accept exactly the same value assignments."""
        size = data.draw(st.integers(2, 6))
        n = data.draw(st.integers(2, 3))
        values = [data.draw(st.integers(0, size - 1)) for _ in range(n)]
        results = {}
        for encoding in (INT, BITVEC):
            ctx = SMTContext()
            vars_ = [make_domain_var(ctx, size, encoding) for _ in range(n)]
            encode_injectivity(ctx, vars_, size, method=PAIRWISE_INJ, encoding=encoding)
            assumptions = [vars_[i].eq_lit(values[i]) for i in range(n)]
            results[encoding] = ctx.solve(assumptions=assumptions)
        assert results[INT] == results[BITVEC]

    def test_polarity_hints(self):
        ctx = SMTContext()
        var = make_domain_var(ctx, 4, INT)
        hints = var.polarity_hints(2)
        assert sum(hints.values()) == 1
        ctx.sink.warm_start(hints)
        assert ctx.solve() is SatResult.SAT
        assert var.decode(ctx.sink.model) == 2
