"""Tests for the success-rate (fidelity) model."""

import math

import pytest

from repro.arch import full, grid, linear
from repro.circuit import QuantumCircuit
from repro.core import OLSQ2, SynthesisConfig, validate_result
from repro.core.fidelity import NoiseModel, compare_success_rates, estimate_success_rate
from repro.core.result import SwapEvent, SynthesisResult
from repro.baselines import SABRE
from repro.workloads import qaoa_circuit


def tiny_result(swaps=(), gate_times=(0,), depth_device=None):
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    return SynthesisResult(
        circuit=qc,
        device=depth_device or linear(2),
        initial_mapping=[0, 1],
        gate_times=list(gate_times),
        swaps=list(swaps),
        swap_duration=1,
    )


class TestNoiseModel:
    def test_defaults(self):
        m = NoiseModel()
        assert m.edge_error(0, 1) == 0.01

    def test_per_edge_override(self):
        m = NoiseModel(edge_errors={(0, 1): 0.5})
        assert m.edge_error(1, 0) == 0.5
        assert m.edge_error(1, 2) == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(two_qubit_error=1.0)
        with pytest.raises(ValueError):
            NoiseModel(single_qubit_error=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(t1=0)


class TestEstimate:
    def test_single_gate_rate(self):
        res = tiny_result()
        m = NoiseModel(two_qubit_error=0.1, t1=1e12)
        # one CX at 0.9 fidelity, negligible decoherence
        assert estimate_success_rate(res, m) == pytest.approx(0.9, rel=1e-6)

    def test_swap_costs_three_cnots(self):
        no_swap = tiny_result()
        with_swap = tiny_result(swaps=[SwapEvent(0, 1, 2)], gate_times=(0,))
        m = NoiseModel(two_qubit_error=0.1, t1=1e12)
        r0 = estimate_success_rate(no_swap, m)
        r1 = estimate_success_rate(with_swap, m)
        assert r1 == pytest.approx(r0 * 0.9 ** 3, rel=1e-6)

    def test_decoherence_grows_with_depth(self):
        shallow = tiny_result(gate_times=(0,))
        deep = tiny_result(gate_times=(9,))
        m = NoiseModel(two_qubit_error=0.0, t1=10.0)
        assert estimate_success_rate(deep, m) < estimate_success_rate(shallow, m)
        # exact: both qubits active only at their single gate time in
        # "shallow"; windows are 1 step each
        assert estimate_success_rate(shallow, m) == pytest.approx(
            math.exp(-2 * 1 / 10.0)
        )

    def test_rate_in_unit_interval(self):
        res = tiny_result(swaps=[SwapEvent(0, 1, 2)])
        rate = estimate_success_rate(res)
        assert 0 < rate <= 1


class TestEndToEnd:
    def test_fewer_swaps_means_higher_fidelity(self):
        """The paper's motivation, quantified: the exact tool's output has a
        higher estimated success rate than the heuristic's."""
        circuit = qaoa_circuit(6, seed=1)
        device = grid(2, 3)
        cfg = SynthesisConfig(
            swap_duration=1, time_budget=90, solve_time_budget=45, max_pareto_rounds=1
        )
        exact = OLSQ2(cfg).synthesize(circuit, device, objective="swap")
        heuristic = SABRE(swap_duration=1, seed=0).synthesize(circuit, device)
        validate_result(exact)
        validate_result(heuristic)
        rates = compare_success_rates({"olsq2": exact, "sabre": heuristic})
        if exact.swap_count < heuristic.swap_count:
            assert rates["olsq2"] > rates["sabre"]
        assert set(rates) == {"olsq2", "sabre"}

    def test_full_connectivity_beats_line(self):
        circuit = qaoa_circuit(6, seed=2)
        cfg = SynthesisConfig(
            swap_duration=1, time_budget=90, solve_time_budget=45, max_pareto_rounds=1
        )
        on_line = OLSQ2(cfg).synthesize(circuit, linear(6), objective="swap")
        on_full = OLSQ2(cfg).synthesize(circuit, full(6), objective="swap")
        assert estimate_success_rate(on_full) >= estimate_success_rate(on_line)
