"""Clause sharing: signature/filter units plus differential soundness.

The load-bearing property is that importing another solver's learnt
clauses can never flip a verdict: on the same formula, a solver seeded
with foreign learnt clauses must agree with the brute-force reference,
and its models must still satisfy the original formula.
"""

import queue
import random

import pytest

from repro.sat import (
    CNF,
    SatResult,
    ShareClient,
    ShareEndpoint,
    ShareRelay,
    SharedClauseRing,
    Solver,
    brute_force_solve,
    clause_signature,
    key_hash,
    mk_lit,
)


def random_cnf(n_vars, n_clauses, rng):
    """Mostly-ternary random CNF: wide enough that refutations need real
    conflict analysis (unit-heavy formulas die to propagation alone and
    nothing is ever learnt, let alone shared)."""
    cnf = CNF()
    cnf.new_vars(n_vars)
    for _ in range(n_clauses):
        size = 3 if rng.random() < 0.9 else 2
        variables = rng.sample(range(n_vars), size)
        cnf.add_clause(
            [mk_lit(v, negative=rng.random() < 0.5) for v in variables]
        )
    return cnf


class TestClauseSignature:
    def test_order_independent(self):
        assert clause_signature([2, 5, 9]) == clause_signature([9, 2, 5])

    def test_distinguishes_clauses(self):
        sigs = {
            clause_signature(c)
            for c in ([2], [3], [2, 5], [2, 7], [2, 5, 9], [4, 5, 9])
        }
        assert len(sigs) == 6

    def test_deterministic_value(self):
        # Pinned value: exporter and importer processes must agree.
        assert clause_signature([0]) == clause_signature((0,))
        assert clause_signature([]) == 0


def make_pair(key_a="k", key_b="k", var_limit=64):
    """Two in-process endpoints wired through a threadless relay."""
    relay = ShareRelay(2, queue_factory=lambda: queue.Queue(64))
    a = ShareClient(relay.endpoint(0), key_a, var_limit)
    b = ShareClient(relay.endpoint(1), key_b, var_limit)
    return relay, a, b


class TestShareClient:
    def test_filters_large_and_high_lbd(self):
        _, client, _ = make_pair()
        client.offer([0, 2, 4], lbd=9)  # ternary, LBD too high
        client.offer(list(range(0, 40, 2)), lbd=1)  # too long
        assert client._out == []
        client.offer([0, 2], lbd=9)  # binary: always shareable
        client.offer([0, 2, 4], lbd=2)
        assert len(client._out) == 2

    def test_var_limit_excludes_private_aux(self):
        _, client, _ = make_pair(var_limit=3)
        client.offer([0, 6], lbd=1)  # var 3 == limit -> private
        assert client._out == []
        client.offer([0, 4], lbd=1)  # vars 0,2 < 3 -> fine
        assert len(client._out) == 1

    def test_dedup_by_signature(self):
        _, client, _ = make_pair()
        client.offer([0, 2], lbd=1)
        client.offer([2, 0], lbd=1)  # same clause, permuted
        assert len(client._out) == 1
        assert client.stats.dropped_dup == 1

    def test_roundtrip_and_sender_exclusion(self):
        relay, a, b = make_pair()
        a.offer([0, 2], lbd=1)
        assert a.take_imports() == []  # publishes, nothing inbound yet
        relay.pump()
        assert b.take_imports() == [(0, 2)]
        # The sender must never get its own clause back.
        assert a.take_imports() == []
        assert a.stats.exported == 1

    def test_key_mismatch_drops_batch(self):
        relay, a, b = make_pair(key_a=("h", 5), key_b=("h", 6))
        a.offer([0, 2], lbd=1)
        a.take_imports()
        relay.pump()
        assert b.take_imports() == []
        assert b.stats.dropped_key == 1

    def test_full_outbound_is_counted_not_raised(self):
        endpoint = ShareEndpoint(0, queue.Queue(maxsize=1), queue.Queue())
        client = ShareClient(endpoint, "k", 64)
        endpoint.outbound.put(("blocker",))
        client.offer([0, 2], lbd=1)
        assert client.take_imports() == []
        assert client.stats.dropped_full == 1
        assert client.stats.exported == 0


class TestImportSoundness:
    """Differential test: shared clauses never change any verdict."""

    def _run_pair(self, cnf, var_limit=None):
        relay, a, b = make_pair(var_limit=var_limit or cnf.n_vars)
        exporter = Solver()
        cnf.to_solver(exporter)
        exporter.share = a
        status_a = exporter.solve()
        exporter.share_sync()  # flush any exports pending since last restart
        relay.pump()

        importer = Solver()
        cnf.to_solver(importer)
        importer.share = b
        importer.share_sync()  # pull the foreign clauses before solving
        status_b = importer.solve()
        return status_a, status_b, importer, b

    @pytest.mark.timeout(120)
    def test_agrees_with_reference_on_random_formulas(self):
        rng = random.Random(20230713)
        exchanged = 0
        for round_no in range(30):
            n_vars = rng.randint(6, 12)
            # Straddle the SAT/UNSAT phase transition (ratio ~4.3).
            n_clauses = int(n_vars * rng.uniform(3.0, 5.5))
            cnf = random_cnf(n_vars, n_clauses, rng)
            expected = brute_force_solve(cnf)
            status_a, status_b, importer, client = self._run_pair(cnf)
            want = SatResult.SAT if expected is not None else SatResult.UNSAT
            assert status_a is want, f"exporter disagrees on round {round_no}"
            assert status_b is want, f"importer disagrees on round {round_no}"
            if want is SatResult.SAT:
                assert cnf.evaluate(importer.model)
            exchanged += importer.stats.imported_clauses
        assert exchanged > 0, "the exchange channel never carried a clause"

    @pytest.mark.timeout(60)
    def test_import_prunes_importer_search(self):
        # Pigeonhole 4 -> 3: every refutation needs real conflict analysis,
        # so the exporter is guaranteed to learn shareable short clauses.
        cnf = CNF()
        holes = 3
        x = [[cnf.new_var() for _ in range(holes)] for _ in range(holes + 1)]
        for p in range(holes + 1):
            cnf.add_clause([mk_lit(x[p][h]) for h in range(holes)])
            for q in range(p + 1, holes + 1):
                for h in range(holes):
                    cnf.add_clause(
                        [mk_lit(x[p][h], True), mk_lit(x[q][h], True)]
                    )
        _, status_b, importer, _ = self._run_pair(cnf)
        assert status_b is SatResult.UNSAT
        assert importer.stats.imported_clauses > 0

    def test_import_at_level0_strips_false_literals(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([mk_lit(a)])  # a is true at level 0
        # (-a | b) should import as the unit (b).
        assert solver.import_shared([(mk_lit(a, True), mk_lit(b))])
        assert solver.solve() is SatResult.SAT
        assert solver.model[b] is True

    def test_import_can_refute_the_formula(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([mk_lit(a)])
        assert not solver.import_shared([(mk_lit(a, True),)])
        assert solver.solve() is SatResult.UNSAT

    def test_import_skips_out_of_range_variables(self):
        solver = Solver()
        solver.new_var()
        assert solver.import_shared([(mk_lit(5),)])  # unknown var: dropped
        assert solver.solve() is SatResult.SAT

    def test_import_disabled_under_proof_logging(self):
        solver = Solver(proof_log=True)
        a = solver.new_var()
        solver.add_clause([mk_lit(a)])
        # Importing unchecked foreign clauses would poison the certificate.
        assert solver.import_shared([(mk_lit(a, True),)])
        assert solver.stats.imported_clauses == 0
        assert solver.solve() is SatResult.SAT


class TestSharedClauseRing:
    """The zero-copy shared-memory transport (PR 7).

    Same publish/drain duck type as the queue endpoints, so these mirror
    the relay tests above — plus the failure modes unique to a ring:
    reader laps and oversize batches.
    """

    def _ring(self, capacity_words=256):
        ring = SharedClauseRing(capacity_words=capacity_words)
        self._open.append(ring)
        return ring

    def setup_method(self):
        self._open = []

    def teardown_method(self):
        for ring in self._open:
            ring.close(unlink=True)

    def test_key_hash_wrapper_compares_like_the_key(self):
        # drain() returns digests; ShareClient filters with `key != mine`.
        ring = self._ring()
        a, b = ring.endpoint(0), ring.endpoint(1)
        assert a.publish(("ctx", 5), [((0, 2), 1)])
        [(key, clauses)] = b.drain()
        assert key == ("ctx", 5)
        assert not key != ("ctx", 5)  # the ShareClient filter expression
        assert key != ("ctx", 6)
        assert clauses == [((0, 2), 1)]
        a.close()
        b.close()

    def test_roundtrip_and_sender_exclusion(self):
        ring = self._ring()
        a, b = ring.endpoint(0), ring.endpoint(1)
        assert a.publish("k", [((0, 2), 1), ((1, 3, 5), 2)])
        assert a.drain() == []  # a sender never reads its own batch back
        [(_, clauses)] = b.drain()
        assert clauses == [((0, 2), 1), ((1, 3, 5), 2)]
        assert b.drain() == []  # cursor advanced; nothing new
        assert ring.stats() == {"published": 1, "dropped": 0}
        a.close()
        b.close()

    def test_share_client_works_unchanged_over_shm(self):
        ring = self._ring()
        a = ShareClient(ring.endpoint(0), "k", 64)
        b = ShareClient(ring.endpoint(1), "k", 64)
        mismatched = ShareClient(ring.endpoint(2), "other", 64)
        a.offer([0, 2], lbd=1)
        assert a.take_imports() == []  # publish side
        assert b.take_imports() == [(0, 2)]
        assert mismatched.take_imports() == []
        assert mismatched.stats.dropped_key == 1
        for client in (a, b, mismatched):
            client.endpoint.close()

    def test_reader_lap_skips_to_head_and_counts_drop(self):
        ring = self._ring(capacity_words=64)
        w, r = ring.endpoint(0), ring.endpoint(1)
        assert w.publish("k", [((0, 2), 1)])
        [(_, first)] = r.drain()  # reader is live, cursor at the head
        assert first == [((0, 2), 1)]
        # Push far more than one ring of data while the reader sleeps.
        for i in range(20):
            assert w.publish("k", [((2 * i, 2 * i + 4, 2 * i + 8), 2)])
        # A lapped reader has lost the record boundaries: it skips to the
        # write head (returning nothing), counts the lap as one drop, and
        # is back in sync for everything published afterwards.
        assert r.drain() == []
        assert ring.stats()["dropped"] == 1
        assert w.publish("k", [((100, 102), 1)])
        [(_, fresh)] = r.drain()
        assert fresh == [((100, 102), 1)]
        w.close()
        r.close()

    def test_oversize_batch_rejected_not_wedged(self):
        ring = self._ring(capacity_words=64)
        w, r = ring.endpoint(0), ring.endpoint(1)
        huge = [(tuple(range(0, 200, 2)), 1)]
        assert not w.publish("k", huge)
        assert ring.stats() == {"published": 0, "dropped": 1}
        # The ring still works after the rejection.
        assert w.publish("k", [((0, 2), 1)])
        assert len(r.drain()) == 1
        w.close()
        r.close()

    def test_endpoint_crosses_a_process_boundary(self):
        import multiprocessing as mp

        ctx = mp.get_context()
        ring = SharedClauseRing(capacity_words=256, ctx=ctx)
        self._open.append(ring)
        child_end = ring.endpoint(1)

        def child(endpoint):
            endpoint.publish("k", [((4, 6), 1)])
            endpoint.close()

        proc = ctx.Process(target=child, args=(child_end,))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 0
        reader = ring.endpoint(0)
        [(key, clauses)] = reader.drain()
        assert key == "k"
        assert clauses == [((4, 6), 1)]
        reader.close()

    def test_key_hash_deterministic(self):
        assert key_hash(("a", 1)) == key_hash(("a", 1))
        assert key_hash(("a", 1)) != key_hash(("a", 2))


class TestCloseDiscipline:
    """The shm close paths: double close is an explicit no-op."""

    def test_endpoint_double_close(self):
        ring = SharedClauseRing(128)
        try:
            ep = ring.endpoint(0)
            ep.drain()  # attach
            assert ep._shm is not None
            ep.close()
            assert ep._shm is None and ep._hdr is None and ep._dat is None
            ep.close()  # second close: no-op, no raise
        finally:
            ring.close(unlink=True)

    def test_endpoint_close_before_attach(self):
        ring = SharedClauseRing(128)
        try:
            ep = ring.endpoint(0)
            ep.close()  # never attached: nothing to release
            ep.close()
        finally:
            ring.close(unlink=True)

    def test_ring_double_close_and_stats_after_close(self):
        ring = SharedClauseRing(128)
        ep = ring.endpoint(1)
        ep.publish(("k",), [((4, 6), 2)])
        ep.close()
        assert ring.stats()["published"] == 1
        ring.close(unlink=True)
        # Closed ring: stats degrade gracefully, close is idempotent.
        assert ring.stats() == {"published": 0, "dropped": 0}
        ring.close(unlink=True)
