"""Tests for the portfolio parallel synthesizer and warm-start guidance."""

import pytest

from repro.arch import grid, linear
from repro.circuit import QuantumCircuit
from repro.core import (
    OLSQ2,
    LayoutEncoder,
    PortfolioEntry,
    PortfolioSynthesizer,
    SynthesisConfig,
    default_portfolio,
    validate_result,
)
from repro.workloads import qaoa_circuit
from repro.sat import SatResult


def triangle():
    qc = QuantumCircuit(3, name="triangle")
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


def entries(**base):
    base.setdefault("swap_duration", 1)
    base.setdefault("time_budget", 60)
    base.setdefault("solve_time_budget", 30)
    return [
        PortfolioEntry("bv", SynthesisConfig(**base)),
        PortfolioEntry("euf", SynthesisConfig(injectivity="channeling", **base)),
        PortfolioEntry("warm", SynthesisConfig(warm_start="sabre", **base)),
    ]


class TestPortfolio:
    def test_depth_race_returns_optimal(self):
        port = PortfolioSynthesizer(entries(), time_budget=90)
        res = port.synthesize(triangle(), linear(3), objective="depth")
        validate_result(res)
        assert res.optimal
        assert res.depth == 4
        assert res.solver_stats["portfolio_winner"] in ("bv", "euf", "warm")

    def test_swap_objective_keeps_best(self):
        port = PortfolioSynthesizer(entries(max_pareto_rounds=1), time_budget=120)
        res = port.synthesize(qaoa_circuit(6, seed=1), grid(2, 3), objective="swap")
        validate_result(res)
        solo = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=90, max_pareto_rounds=1)).synthesize(
            qaoa_circuit(6, seed=1), grid(2, 3), objective="swap"
        )
        assert res.swap_count <= solo.swap_count

    def test_default_portfolio_nonempty(self):
        assert len(default_portfolio()) >= 3

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            PortfolioSynthesizer([])

    def test_better_comparator(self):
        from repro.core.portfolio import PortfolioSynthesizer as PS

        a = _fake_result(depth=5, swaps=2, optimal=True)
        b = _fake_result(depth=6, swaps=1, optimal=False)
        assert PS._better(a, b, "depth")
        assert not PS._better(a, b, "swap")
        assert PS._better(a, None, "swap")


def _fake_result(depth, swaps, optimal):
    class _R:
        pass

    r = _R()
    r.depth = depth
    r.swap_count = swaps
    r.optimal = optimal
    return r


class TestWarmStart:
    def test_warm_start_config_validated(self):
        with pytest.raises(ValueError):
            SynthesisConfig(warm_start="oracle")
        assert SynthesisConfig(warm_start="sabre").warm_start == "sabre"

    def test_warm_start_same_optimum(self):
        cfg_plain = SynthesisConfig(swap_duration=1, time_budget=60)
        cfg_warm = SynthesisConfig(swap_duration=1, time_budget=60, warm_start="sabre")
        qc = qaoa_circuit(6, seed=2)
        device = grid(2, 3)
        plain = OLSQ2(cfg_plain).synthesize(qc, device, objective="depth")
        warm = OLSQ2(cfg_warm).synthesize(qc, device, objective="depth")
        assert plain.depth == warm.depth
        assert plain.optimal and warm.optimal
        validate_result(warm)

    def test_seed_initial_mapping_validates_size(self):
        enc = LayoutEncoder(
            triangle(), linear(3), horizon=4, config=SynthesisConfig(swap_duration=1)
        )
        with pytest.raises(ValueError):
            enc.seed_initial_mapping([0, 1])

    def test_seed_schedule_validates_size(self):
        enc = LayoutEncoder(
            triangle(), linear(3), horizon=4, config=SynthesisConfig(swap_duration=1)
        )
        with pytest.raises(ValueError):
            enc.seed_schedule([0])

    def test_seed_steers_unconstrained_instance(self):
        """With no competing constraints the seeded mapping is returned.

        Hints are pure guidance, so this only holds when nothing propagates
        against them — a single-qubit circuit qualifies.
        """
        qc = QuantumCircuit(1)
        qc.h(0)
        enc = LayoutEncoder(
            qc, grid(2, 2), horizon=2, config=SynthesisConfig(swap_duration=1)
        )
        enc.encode()
        enc.seed_initial_mapping([3])
        assert enc.solve() is SatResult.SAT
        initial, _times, _swaps = enc.extract()
        assert initial == [3]
