"""Tests for SAT substrate extras: DIMACS I/O, model counting, search guidance."""

import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    brute_force_solve,
    CNF,
    count_models,
    dimacs_to_lit,
    lit_sign,
    lit_to_dimacs,
    lit_var,
    mk_lit,
    neg,
    SatResult,
    Solver,
)
from repro.sat.dimacs import dumps, read_dimacs, write_dimacs


class TestLiteralConventions:
    def test_roundtrip_packed_dimacs(self):
        for var in range(5):
            for sign in (False, True):
                lit = mk_lit(var, sign)
                assert dimacs_to_lit(lit_to_dimacs(lit)) == lit

    def test_sign_and_var(self):
        lit = mk_lit(7, True)
        assert lit_var(lit) == 7
        assert lit_sign(lit)
        assert not lit_sign(neg(lit))

    def test_zero_dimacs_rejected(self):
        with pytest.raises(ValueError):
            dimacs_to_lit(0)


class TestDimacs:
    def _sample(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([mk_lit(a), mk_lit(b, True)])
        cnf.add_clause([mk_lit(c)])
        cnf.add_clause([mk_lit(a, True), mk_lit(b), mk_lit(c, True)])
        return cnf

    def test_roundtrip_string(self):
        cnf = self._sample()
        back = read_dimacs(dumps(cnf))
        assert back.n_vars == cnf.n_vars
        assert back.clauses == cnf.clauses

    def test_roundtrip_stream(self):
        cnf = self._sample()
        buffer = io.StringIO()
        write_dimacs(cnf, buffer)
        back = read_dimacs(io.StringIO(buffer.getvalue()))
        assert back.clauses == cnf.clauses

    def test_comments_and_blank_lines_skipped(self):
        text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n"
        cnf = read_dimacs(text)
        assert cnf.n_vars == 2
        assert cnf.clauses == [[mk_lit(0), mk_lit(1, True)]]

    def test_malformed_problem_line(self):
        with pytest.raises(ValueError):
            read_dimacs("p dnf 2 1\n1 0\n")

    def test_clause_spanning_lines(self):
        cnf = read_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert len(cnf.clauses) == 1
        assert len(cnf.clauses[0]) == 3

    def test_vars_grow_beyond_declaration(self):
        cnf = read_dimacs("p cnf 1 1\n1 5 0\n")
        assert cnf.n_vars == 5

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_hypothesis_roundtrip_preserves_satisfiability(self, data):
        n = data.draw(st.integers(1, 6))
        cnf = CNF()
        cnf.new_vars(n)
        for _ in range(data.draw(st.integers(0, 12))):
            width = data.draw(st.integers(1, 3))
            cnf.add_clause(
                [
                    mk_lit(data.draw(st.integers(0, n - 1)), data.draw(st.booleans()))
                    for _ in range(width)
                ]
            )
        back = read_dimacs(dumps(cnf))
        assert (brute_force_solve(cnf) is None) == (brute_force_solve(back) is None)


class TestModelCounting:
    def test_free_variables(self):
        cnf = CNF()
        cnf.new_vars(3)
        assert count_models(cnf) == 8

    def test_unit_halves_models(self):
        cnf = CNF()
        a, _b = cnf.new_vars(2)
        cnf.add_clause([mk_lit(a)])
        assert count_models(cnf) == 2

    def test_unsat_counts_zero(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([mk_lit(a)])
        cnf.add_clause([mk_lit(a, True)])
        assert count_models(cnf) == 0

    def test_too_many_vars_rejected(self):
        cnf = CNF()
        cnf.new_vars(23)
        with pytest.raises(ValueError):
            count_models(cnf)
        with pytest.raises(ValueError):
            brute_force_solve(cnf)


class TestWarmStart:
    def test_hints_steer_free_variables(self):
        solver = Solver()
        vs = solver.new_vars(6)
        # no constraints: the model is entirely decided by polarities
        solver.warm_start({v: (v % 2 == 0) for v in vs})
        assert solver.solve() is SatResult.SAT
        for v in vs:
            assert solver.model[v] == (v % 2 == 0)

    def test_sequence_form(self):
        solver = Solver()
        solver.new_vars(3)
        solver.warm_start([True, False, True])
        assert solver.solve() is SatResult.SAT
        assert solver.model == [True, False, True]

    def test_hints_do_not_affect_satisfiability(self):
        rng = random.Random(5)
        for _ in range(10):
            cnf = CNF()
            n = rng.randint(2, 7)
            cnf.new_vars(n)
            for _ in range(rng.randint(1, 3 * n)):
                vs = rng.sample(range(n), min(3, n))
                cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
            expected = brute_force_solve(cnf) is not None
            solver = Solver()
            cnf.to_solver(solver)
            solver.warm_start({v: rng.random() < 0.5 for v in range(n)})
            assert solver.solve() == expected

    def test_unknown_variable_rejected(self):
        solver = Solver()
        solver.new_var()
        with pytest.raises(ValueError):
            solver.warm_start({3: True})


class TestBumpVariables:
    def test_bumped_variable_decided_first(self):
        solver = Solver()
        vs = solver.new_vars(8)
        solver.bump_variables([vs[5]], amount=10.0)
        # free formula: first decision is the bumped variable, default
        # polarity assigns it False
        assert solver.solve() is SatResult.SAT
        assert solver.stats.decisions >= 1

    def test_bump_does_not_change_result(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([mk_lit(a), mk_lit(b)])
        solver.bump_variables([b], amount=5.0)
        assert solver.solve() is SatResult.SAT

    def test_unknown_variable_rejected(self):
        solver = Solver()
        with pytest.raises(ValueError):
            solver.bump_variables([0])
