"""Run the doctests embedded in public-API docstrings."""

import doctest

import pytest

import repro.circuit.circuit
import repro.circuit.draw
import repro.circuit.gates
import repro.sat.types

MODULES = [
    repro.sat.types,
    repro.circuit.gates,
    repro.circuit.circuit,
    repro.circuit.draw,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
