"""Mutation tests for the independent validator (core/validator.py).

Each test takes a known-good SynthesisResult, perturbs it to violate one
constraint class of Sec. II-A, and asserts that validate_result rejects the
perturbed result.  This guards the guard: a validator that silently accepts
broken schedules would let encoder bugs masquerade as better results.
"""

import dataclasses

import pytest

from repro.arch import linear
from repro.circuit import QuantumCircuit
from repro.core import OLSQ2, SynthesisConfig, validate_result
from repro.core.result import SwapEvent
from repro.core.validator import ValidationError, is_valid


@pytest.fixture(scope="module")
def good():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    cfg = SynthesisConfig(swap_duration=1, time_budget=60)
    result = OLSQ2(cfg).synthesize(qc, linear(3), objective="swap")
    validate_result(result)  # baseline sanity
    assert result.swaps, "fixture needs at least one SWAP to mutate"
    return result


def mutate(result, **changes):
    return dataclasses.replace(result, **changes)


class TestInjectivity:
    def test_duplicate_physical_qubit_rejected(self, good):
        mapping = list(good.initial_mapping)
        mapping[0] = mapping[1]
        bad = mutate(good, initial_mapping=mapping)
        with pytest.raises(ValidationError, match="injective"):
            validate_result(bad)

    def test_out_of_range_physical_qubit_rejected(self, good):
        mapping = list(good.initial_mapping)
        mapping[0] = good.device.n_qubits + 5
        bad = mutate(good, initial_mapping=mapping)
        assert not is_valid(bad)

    def test_wrong_mapping_size_rejected(self, good):
        bad = mutate(good, initial_mapping=good.initial_mapping[:-1])
        with pytest.raises(ValidationError, match="size"):
            validate_result(bad)


class TestDependencyOrder:
    def test_swapped_dependent_gate_times_rejected(self, good):
        # Gates 0 (cx 0,1) and 1 (cx 1,2) share qubit 1: strict order.
        times = list(good.gate_times)
        times[0], times[1] = max(times[0], times[1]), min(times[0], times[1])
        bad = mutate(good, gate_times=times)
        with pytest.raises(ValidationError, match="dependency"):
            validate_result(bad)

    def test_equal_times_rejected_under_strict_dependencies(self, good):
        times = list(good.gate_times)
        times[1] = times[0]
        bad = mutate(good, gate_times=times)
        assert not is_valid(bad, strict_dependencies=True)

    def test_negative_gate_time_rejected(self, good):
        times = list(good.gate_times)
        times[0] = -1
        bad = mutate(good, gate_times=times)
        assert not is_valid(bad)


class TestAdjacency:
    def test_gate_on_non_adjacent_qubits_rejected(self, good):
        # On line-3 the permutation that separates some interacting pair:
        # moving the SWAPs away breaks adjacency for at least one gate.
        bad = mutate(good, swaps=[])
        with pytest.raises(ValidationError, match="non-adjacent|non-edge"):
            validate_result(bad)

    def test_swap_on_non_edge_rejected(self, good):
        swaps = list(good.swaps)
        swap = swaps[0]
        # (0, 2) is not an edge of line-3.
        swaps[0] = SwapEvent(0, 2, swap.finish_time)
        bad = mutate(good, swaps=swaps)
        assert not is_valid(bad)


class TestSwapOverlap:
    def test_swap_overlapping_gate_rejected(self, good):
        swaps = list(good.swaps)
        swap = swaps[0]
        # Re-finish the SWAP exactly when a gate uses one of its qubits.
        mapping = good.mapping_at(good.gate_times[0])
        gate = good.circuit.gates[0]
        phys = mapping[gate.qubits[0]]
        swaps[0] = SwapEvent(phys, swap.p_prime, good.gate_times[0])
        bad = mutate(good, swaps=swaps)
        assert not is_valid(bad)

    def test_swaps_sharing_a_qubit_same_time_rejected(self, good):
        # Synthetic minimal case: two same-edge SWAPs at the same time step
        # cancel each other's mapping change, so the overlap rule is the
        # only constraint they violate.
        from repro.core.result import SynthesisResult

        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        result = SynthesisResult(
            circuit=qc,
            device=linear(2),
            initial_mapping=[0, 1],
            gate_times=[3],
            swaps=[SwapEvent(0, 1, 1)],
            swap_duration=1,
        )
        validate_result(result)  # the single-SWAP form is fine
        bad = mutate(result, swaps=result.swaps + [SwapEvent(0, 1, 1)])
        with pytest.raises(ValidationError, match="overlapping SWAPs"):
            validate_result(bad)
