"""Tests for CNF preprocessing (subsumption, SSR, variable elimination)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import brute_force_solve, CNF, mk_lit, neg, SatResult, Solver
from repro.sat.preprocess import (
    ModelReconstructor,
    Unsatisfiable,
    preprocess,
    preprocess_stats,
)


def lit(v, sign=False):
    return mk_lit(v, sign)


def random_cnf(rng, n_vars, n_clauses):
    cnf = CNF()
    cnf.new_vars(n_vars)
    for _ in range(n_clauses):
        width = rng.randint(1, 3)
        vs = rng.sample(range(n_vars), min(width, n_vars))
        cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    return cnf


class TestBasicRules:
    def test_unit_propagation_fixes_variables(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([lit(a)])
        cnf.add_clause([lit(a, True), lit(b)])
        simplified, recon = preprocess(cnf, eliminate=False)
        assert simplified.num_clauses == 0
        model = recon.extend([False, False])
        assert model[a] is True and model[b] is True

    def test_contradicting_units_unsat(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([lit(a)])
        cnf.add_clause([lit(a, True)])
        with pytest.raises(Unsatisfiable):
            preprocess(cnf)

    def test_subsumption_removes_superset(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([lit(a), lit(b)])
        cnf.add_clause([lit(a), lit(b), lit(c)])  # subsumed
        simplified, _ = preprocess(cnf, eliminate=False)
        assert simplified.num_clauses == 1

    def test_self_subsuming_resolution_strengthens(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([lit(a), lit(b)])
        cnf.add_clause([lit(a), lit(b, True)])
        simplified, _ = preprocess(cnf, eliminate=False)
        # both clauses strengthen to the unit (a); then dedupe/subsume
        flat = sorted(tuple(c) for c in simplified.clauses)
        assert all(len(c) == 1 for c in flat)

    def test_variable_elimination_shrinks(self):
        # x appears once positively and once negatively: always eliminable.
        cnf = CNF()
        x, a, b = cnf.new_vars(3)
        cnf.add_clause([lit(x), lit(a)])
        cnf.add_clause([lit(x, True), lit(b)])
        simplified, recon = preprocess(cnf)
        used = {l >> 1 for c in simplified.clauses for l in c}
        assert x not in used
        # resolvent (a | b) must be implied
        assert simplified.num_clauses <= 1

    def test_stats(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([lit(a), lit(b)])
        cnf.add_clause([lit(a), lit(b)])
        simplified, _ = preprocess(cnf, eliminate=False)
        stats = preprocess_stats(cnf, simplified)
        assert stats["clauses_before"] == 2
        assert stats["clauses_after"] == 1
        assert 0 <= stats["clause_reduction"] <= 1


class TestEquisatisfiability:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_formulas_preserved(self, seed):
        rng = random.Random(seed)
        cnf = random_cnf(rng, rng.randint(2, 8), rng.randint(1, 20))
        expected = brute_force_solve(cnf) is not None
        try:
            simplified, recon = preprocess(cnf)
        except Unsatisfiable:
            assert not expected
            return
        solver = Solver()
        simplified.to_solver(solver)
        got = solver.solve()
        assert got == expected
        if got:
            full = recon.extend(solver.model)
            assert cnf.evaluate(full[: cnf.n_vars]), (
                seed,
                cnf.clauses,
                simplified.clauses,
                full,
            )

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_hypothesis_model_reconstruction(self, data):
        n_vars = data.draw(st.integers(2, 7))
        n_clauses = data.draw(st.integers(0, 18))
        cnf = CNF()
        cnf.new_vars(n_vars)
        for _ in range(n_clauses):
            width = data.draw(st.integers(1, 3))
            cnf.add_clause(
                [
                    mk_lit(data.draw(st.integers(0, n_vars - 1)), data.draw(st.booleans()))
                    for _ in range(width)
                ]
            )
        expected = brute_force_solve(cnf) is not None
        try:
            simplified, recon = preprocess(
                cnf, growth_limit=data.draw(st.integers(0, 2))
            )
        except Unsatisfiable:
            assert not expected
            return
        solver = Solver()
        simplified.to_solver(solver)
        got = solver.solve()
        assert got == expected
        if got:
            full = recon.extend(solver.model)
            assert cnf.evaluate(full[: cnf.n_vars])


class TestOnRealEncodings:
    def test_layout_instance_shrinks_and_stays_sat(self):
        from repro.arch import grid
        from repro.core import LayoutEncoder, SynthesisConfig
        from repro.smt import cnf_context
        from repro.workloads import qaoa_circuit

        ctx = cnf_context()
        enc = LayoutEncoder(
            qaoa_circuit(4, seed=1, degree=2),
            grid(2, 2),
            horizon=5,
            config=SynthesisConfig(swap_duration=1),
            ctx=ctx,
        )
        enc.encode()
        original = ctx.sink
        simplified, recon = preprocess(original)
        stats = preprocess_stats(original, simplified)
        assert stats["clause_reduction"] > 0.05  # real shrinkage
        solver = Solver()
        simplified.to_solver(solver)
        assert solver.solve() is SatResult.SAT
        full = recon.extend(solver.model)
        assert original.evaluate(full[: original.n_vars])
