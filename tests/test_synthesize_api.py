"""Conformance tests for the unified ``synthesize()`` surface.

Every synthesizer — exact, baseline, and portfolio — must expose::

    synthesize(circuit, device, *, objective=..., initial_mapping=None)

with keyword-only options, shared validation, and clear errors for
anything a backend cannot honour.
"""

import inspect

import pytest

from repro.arch import linear
from repro.baselines.olsq import OLSQ, TBOLSQ
from repro.baselines.sabre import SABRE
from repro.baselines.satmap import SATMap
from repro.circuit import QuantumCircuit
from repro.core import (
    OBJECTIVES,
    OLSQ2,
    TBOLSQ2,
    PortfolioEntry,
    PortfolioSynthesizer,
    SynthesisConfig,
    Synthesizer,
    check_initial_mapping,
    check_objective,
    validate_result,
)
from repro.sat import SatResult


def fast_config(**kwargs):
    kwargs.setdefault("swap_duration", 1)
    kwargs.setdefault("time_budget", 60)
    return SynthesisConfig(**kwargs)


def tiny_portfolio():
    entry = PortfolioEntry("bv", fast_config())
    return PortfolioSynthesizer([entry], time_budget=60)


SYNTHESIZERS = {
    "OLSQ2": lambda: OLSQ2(fast_config()),
    "TBOLSQ2": lambda: TBOLSQ2(fast_config()),
    "OLSQ": lambda: OLSQ(fast_config()),
    "TBOLSQ": lambda: TBOLSQ(fast_config()),
    "SABRE": lambda: SABRE(swap_duration=1),
    "SATMap": lambda: SATMap(config=fast_config()),
    "Portfolio": tiny_portfolio,
}

# the objective each backend is exercised with in the end-to-end check
RUN_OBJECTIVE = {name: "swap" for name in SYNTHESIZERS}
RUN_OBJECTIVE.update({"OLSQ2": "depth", "OLSQ": "depth", "Portfolio": "depth"})


def two_gate_circuit():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    return qc


@pytest.mark.parametrize("name", sorted(SYNTHESIZERS))
class TestUnifiedSignature:
    def test_signature_shape(self, name):
        synth = SYNTHESIZERS[name]()
        sig = inspect.signature(synth.synthesize)
        params = list(sig.parameters.values())
        assert [p.name for p in params[:2]] == ["circuit", "device"]
        by_name = sig.parameters
        for option in ("objective", "initial_mapping"):
            assert option in by_name, f"{name} lacks {option}"
            assert by_name[option].kind is inspect.Parameter.KEYWORD_ONLY, (
                f"{name}.synthesize: {option} must be keyword-only"
            )
        assert by_name["initial_mapping"].default is None

    def test_satisfies_protocol(self, name):
        assert isinstance(SYNTHESIZERS[name](), Synthesizer)

    def test_rejects_unknown_objective(self, name):
        synth = SYNTHESIZERS[name]()
        with pytest.raises(ValueError, match="objective"):
            synth.synthesize(two_gate_circuit(), linear(3), objective="fidelity")

    def test_rejects_bad_initial_mapping(self, name):
        synth = SYNTHESIZERS[name]()
        objective = RUN_OBJECTIVE[name]
        with pytest.raises(ValueError, match="mapping"):
            synth.synthesize(
                two_gate_circuit(),
                linear(3),
                objective=objective,
                initial_mapping=[0, 0, 1],  # not injective
            )
        with pytest.raises(ValueError, match="mapping"):
            synth.synthesize(
                two_gate_circuit(),
                linear(3),
                objective=objective,
                initial_mapping=[0, 1],  # wrong length
            )
        with pytest.raises(ValueError, match="mapping"):
            synth.synthesize(
                two_gate_circuit(),
                linear(3),
                objective=objective,
                initial_mapping=[0, 1, 7],  # off-device
            )

    def test_end_to_end_small_instance(self, name):
        synth = SYNTHESIZERS[name]()
        result = synth.synthesize(
            two_gate_circuit(), linear(3), objective=RUN_OBJECTIVE[name]
        )
        validate_result(result)
        assert result.swap_count == 0  # adjacent chain needs no SWAPs


class TestBackendSpecificRules:
    def test_satmap_rejects_depth_objective(self):
        with pytest.raises(ValueError, match="SATMap.*depth|depth.*SATMap"):
            SATMap(config=fast_config()).synthesize(
                two_gate_circuit(), linear(3), objective="depth"
            )

    def test_satmap_defaults_to_swap(self):
        result = SATMap(config=fast_config()).synthesize(two_gate_circuit(), linear(3))
        validate_result(result)

    def test_sabre_accepts_both_objectives(self):
        for objective in OBJECTIVES:
            result = SABRE(swap_duration=1).synthesize(
                two_gate_circuit(), linear(3), objective=objective
            )
            validate_result(result)

    def test_initial_mapping_is_honoured_by_exact_synthesizer(self):
        mapping = [2, 1, 0]
        result = OLSQ2(fast_config()).synthesize(
            two_gate_circuit(), linear(3), objective="depth", initial_mapping=mapping
        )
        assert result.initial_mapping == mapping
        validate_result(result)

    def test_initial_mapping_is_honoured_by_sabre(self):
        mapping = [2, 1, 0]
        result = SABRE(swap_duration=1).synthesize(
            two_gate_circuit(), linear(3), initial_mapping=mapping
        )
        validate_result(result)

    def test_satmap_pins_slice_zero_entry(self):
        mapping = [2, 1, 0]
        result = SATMap(config=fast_config()).synthesize(
            two_gate_circuit(), linear(3), initial_mapping=mapping
        )
        assert result.initial_mapping == mapping
        validate_result(result)


class TestValidationHelpers:
    def test_check_objective_vocabulary(self):
        assert check_objective("X", "depth") == "depth"
        with pytest.raises(ValueError, match="one of"):
            check_objective("X", "latency")
        with pytest.raises(ValueError, match="X does not support"):
            check_objective("X", "depth", supported=("swap",))

    def test_check_initial_mapping_passthrough_and_copy(self):
        qc = two_gate_circuit()
        assert check_initial_mapping(qc, linear(3), None) is None
        src = (2, 0, 1)
        out = check_initial_mapping(qc, linear(3), src)
        assert out == [2, 0, 1]


class TestConfigValidation:
    def test_unknown_encoding_rejected_at_construction(self):
        with pytest.raises(ValueError, match="valid choices"):
            SynthesisConfig(encoding="bogus")

    def test_unknown_injectivity_rejected(self):
        with pytest.raises(ValueError, match="injectivity"):
            SynthesisConfig(injectivity="magic")

    def test_unknown_cardinality_rejected(self):
        with pytest.raises(ValueError, match="cardinality"):
            SynthesisConfig(cardinality="unary")

    def test_unknown_warm_start_rejected(self):
        with pytest.raises(ValueError, match="warm-start"):
            SynthesisConfig(warm_start="oracle")

    def test_error_lists_the_valid_choices(self):
        with pytest.raises(ValueError) as err:
            SynthesisConfig(encoding="bogus")
        for choice in ("bitvec", "onehot"):
            assert choice in str(err.value)

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError):
            SynthesisConfig(time_budget=-1)
        with pytest.raises(ValueError):
            SynthesisConfig(solve_time_budget=-0.5)

    def test_non_callable_progress_callback_rejected(self):
        with pytest.raises(ValueError, match="callable"):
            SynthesisConfig(progress_callback="not a function")


class TestSatResultCompat:
    def test_truthiness(self):
        assert SatResult.SAT
        assert not SatResult.UNSAT
        assert not SatResult.UNKNOWN

    def test_equality_with_legacy_values(self):
        assert SatResult.SAT == True  # noqa: E712 - the compat contract
        assert SatResult.UNSAT == False  # noqa: E712
        assert SatResult.UNKNOWN == None  # noqa: E711
        assert SatResult.SAT != False  # noqa: E712
        assert SatResult.SAT != None  # noqa: E711

    def test_hashable_and_usable_in_sets(self):
        assert {SatResult.SAT, SatResult.SAT} == {SatResult.SAT}

    def test_from_bool_round_trip(self):
        assert SatResult.from_bool(True) is SatResult.SAT
        assert SatResult.from_bool(False) is SatResult.UNSAT
        assert SatResult.from_bool(None) is SatResult.UNKNOWN
        assert SatResult.from_bool(SatResult.SAT) is SatResult.SAT
        assert SatResult.SAT.to_bool() is True
        assert SatResult.UNKNOWN.to_bool() is None

    def test_str_is_the_verdict(self):
        assert str(SatResult.UNSAT) == "unsat"
