"""Tests for the extended device library (Tokyo, Falcon, generic heavy-hex)."""

import pytest

from repro.arch import by_name, heavy_hex, ibm_falcon, ibm_tokyo


class TestTokyo:
    def test_counts(self):
        g = ibm_tokyo()
        assert g.n_qubits == 20
        assert g.is_connected()
        # 4x5 grid: 31 edges, plus 12 diagonals
        assert g.num_edges == 31 + 12

    def test_diagonals_present(self):
        g = ibm_tokyo()
        assert g.are_adjacent(1, 7)
        assert g.are_adjacent(14, 18)

    def test_by_name(self):
        assert by_name("tokyo").n_qubits == 20


class TestFalcon:
    def test_counts(self):
        g = ibm_falcon()
        assert g.n_qubits == 27
        assert g.num_edges == 28
        assert g.is_connected()

    def test_heavy_hex_degree_bound(self):
        g = ibm_falcon()
        assert max(g.degree(p) for p in range(27)) <= 3

    def test_by_name(self):
        assert by_name("falcon").n_qubits == 27


class TestGenericHeavyHex:
    def test_construction(self):
        g = heavy_hex(3, 9)
        # 3 rows of 9 = 27 long-row qubits; gaps 0 and 1 add bridges at
        # columns (0,4,8) and (2,6), i.e. 5 bridges.
        assert g.n_qubits == 27 + 5
        assert g.is_connected()
        assert max(g.degree(p) for p in range(g.n_qubits)) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            heavy_hex(1, 9)
        with pytest.raises(ValueError):
            heavy_hex(3, 4)

    def test_eagle_matches_family_pattern(self):
        from repro.arch import ibm_eagle

        eagle = ibm_eagle()
        generic = heavy_hex(7, 15)
        # same construction rule up to the trimmed corner rows
        assert abs(eagle.n_qubits - generic.n_qubits) <= 4
