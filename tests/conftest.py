"""Shared test fixtures and a minimal ``timeout`` marker.

The multiprocess tests (portfolio, parallel descent, clause sharing) must
never hang the suite: a worker deadlock would otherwise stall CI until the
job-level kill.  The ``pytest-timeout`` plugin provides exactly this, but
it is not part of the baked toolchain, so when it is absent we implement
the marker ourselves with ``SIGALRM`` (POSIX only; on platforms without
``SIGALRM`` the marker degrades to a no-op, which only costs the safety
net, not correctness).
"""

from __future__ import annotations

import signal

import pytest

try:  # the real plugin wins when present
    import pytest_timeout  # noqa: F401

    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False

_HAVE_ALARM = hasattr(signal, "SIGALRM")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(SIGALRM fallback when pytest-timeout is not installed)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    if _HAVE_PLUGIN or marker is None or not _HAVE_ALARM:
        yield
        return
    seconds = int(marker.args[0]) if marker.args else int(marker.kwargs["seconds"])

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(max(1, seconds))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
