"""Additional coverage for SynthesisResult semantics."""

import pytest

from repro.arch import linear
from repro.circuit import QuantumCircuit
from repro.core import OLSQ2, SynthesisConfig, SwapEvent, SynthesisResult, validate_result


def triangle():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


def manual_result(swap_duration=1):
    """A hand-built valid result: cx(0,1)@0, cx(1,2)@1, swap(0,1)@2, cx(0,2)@3."""
    qc = triangle()
    return SynthesisResult(
        circuit=qc,
        device=linear(3),
        initial_mapping=[0, 1, 2],
        gate_times=[0, 1, 3],
        swaps=[SwapEvent(0, 1, 2)],
        swap_duration=swap_duration,
    )


class TestManualResult:
    def test_hand_built_result_is_valid(self):
        validate_result(manual_result())

    def test_depth_accounts_for_swaps(self):
        res = manual_result()
        assert res.depth == 4

    def test_mapping_evolution(self):
        res = manual_result()
        assert res.mapping_at(0) == [0, 1, 2]
        assert res.mapping_at(2) == [0, 1, 2]  # change visible only at t=3
        assert res.mapping_at(3) == [1, 0, 2]
        assert res.final_mapping == [1, 0, 2]

    def test_schedule_table_contents(self):
        rows = manual_result().schedule_table()
        kinds = [r[1] for r in rows]
        assert kinds == ["cx", "cx", "swap", "cx"]
        # last cx executes on physical (1, 2) after the swap
        assert rows[-1][2] == (1, 2)

    def test_physical_circuit_event_order(self):
        phys = manual_result().to_physical_circuit(decompose_swaps=False)
        names = [g.name for g in phys.gates]
        assert names == ["cx", "cx", "swap", "cx"]
        assert phys.gates[-1].qubits == (1, 2)


class TestDeterminism:
    def test_same_input_same_result(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=60)
        r1 = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        r2 = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="depth")
        assert r1.initial_mapping == r2.initial_mapping
        assert r1.gate_times == r2.gate_times
        assert [(s.p, s.p_prime, s.finish_time) for s in r1.swaps] == [
            (s.p, s.p_prime, s.finish_time) for s in r2.swaps
        ]


class TestResultEdgeCases:
    def test_empty_schedule_depth(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        res = SynthesisResult(
            circuit=qc,
            device=linear(2),
            initial_mapping=[0, 1],
            gate_times=[0],
            swaps=[],
            swap_duration=1,
        )
        assert res.depth == 1
        assert res.swap_count == 0

    def test_swap_after_all_gates_extends_depth(self):
        res = manual_result()
        res.swaps.append(SwapEvent(1, 2, 10))
        assert res.depth == 11

    def test_mapping_at_beyond_horizon_stable(self):
        res = manual_result()
        assert res.mapping_at(100) == res.final_mapping
