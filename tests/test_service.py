"""The synthesis service: canonicalization, cache, pool, async server.

The property at the heart of the service is label-invariance: a qubit
relabeling must not change the canonical fingerprint, and a cached result
translated back through a request's relabeling must validate against that
request's own circuit.  Both are tested property-style over random
circuits and random permutations, then end-to-end through the server
(inline mode, so the tests are deterministic and fork-free).
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro import QuantumCircuit, SynthesisConfig, SynthesisResult, synthesize
from repro.arch.devices import grid, linear
from repro.circuit import (
    Gate,
    canonical_circuit,
    canonical_relabeling,
    circuit_fingerprint,
)
from repro.core import available_backends, resolve_backend, validate_result
from repro.service import (
    ClauseBank,
    CompileRequest,
    CompileResponse,
    ResultCache,
    SynthesisService,
)

FAST = dict(swap_duration=1, time_budget=60.0)


def fast_config(**kwargs) -> SynthesisConfig:
    merged = dict(FAST)
    merged.update(kwargs)
    return SynthesisConfig(**merged)


def random_circuit(rng: random.Random, n: int, m: int) -> QuantumCircuit:
    qc = QuantumCircuit(n)
    for _ in range(m):
        if rng.random() < 0.25:
            qc.h(rng.randrange(n))
        else:
            a, b = rng.sample(range(n), 2)
            qc.cx(a, b)
    return qc


def relabeled(circuit: QuantumCircuit, perm) -> QuantumCircuit:
    out = QuantumCircuit(circuit.n_qubits, name=circuit.name)
    for g in circuit.gates:
        out.append(Gate(g.name, tuple(perm[q] for q in g.qubits), g.params))
    return out


def run(coro):
    return asyncio.run(coro)


# -- canonicalization ------------------------------------------------------


class TestCanonicalFingerprint:
    def test_random_relabelings_hash_identically(self):
        rng = random.Random(11)
        for _ in range(30):
            qc = random_circuit(rng, 5, 10)
            fp = circuit_fingerprint(qc)
            for _ in range(5):
                perm = list(range(5))
                rng.shuffle(perm)
                assert circuit_fingerprint(relabeled(qc, perm)) == fp

    def test_structurally_different_circuits_do_not_collide(self):
        # ~0 collisions: every distinct canonical form gets a distinct hash.
        rng = random.Random(13)
        seen = {}
        for _ in range(200):
            qc = random_circuit(rng, 5, 8)
            canon, _perm = canonical_circuit(qc)
            structure = tuple((g.name, g.qubits, g.params) for g in canon.gates)
            fp = circuit_fingerprint(qc)
            if fp in seen:
                assert seen[fp] == structure, "sha256 collision?!"
            seen[fp] = structure

    def test_fingerprint_sensitive_to_structure(self):
        a = QuantumCircuit(3)
        a.cx(0, 1)
        a.cx(1, 2)
        b = QuantumCircuit(3)
        b.cx(0, 1)
        b.cx(0, 2)  # same shape, different connectivity
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_fingerprint_includes_qubit_count(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(3)
        b.cx(0, 1)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_name_is_metadata_not_structure(self):
        a = QuantumCircuit(2, name="alpha")
        a.cx(0, 1)
        b = QuantumCircuit(2, name="beta")
        b.cx(0, 1)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_relabeling_is_first_appearance_order(self):
        qc = QuantumCircuit(4)
        qc.cx(2, 0)
        qc.h(3)
        perm = canonical_relabeling(qc)
        # 2 appears first, then 0, then 3; untouched 1 goes last.
        assert perm == [1, 3, 0, 2]

    def test_canonical_circuit_translation_contract(self):
        rng = random.Random(17)
        qc = random_circuit(rng, 4, 8)
        canon, perm = canonical_circuit(qc)
        for g, cg in zip(qc.gates, canon.gates):
            assert cg.qubits == tuple(perm[q] for q in g.qubits)


# -- wire formats ----------------------------------------------------------


class TestWireFormats:
    def test_config_roundtrip_through_json(self):
        cfg = fast_config(certify=True, simplify="off")
        data = json.loads(json.dumps(cfg.to_dict()))
        assert SynthesisConfig.from_dict(data) == cfg

    def test_config_drops_process_local_hooks(self):
        cfg = SynthesisConfig(progress_callback=lambda r: True)
        assert "progress_callback" not in cfg.to_dict()
        assert "tracer" not in cfg.to_dict()

    def test_config_from_dict_rejects_hooks_and_typos(self):
        with pytest.raises(ValueError, match="process-local"):
            SynthesisConfig.from_dict({"tracer": None})
        with pytest.raises(ValueError, match="unknown SynthesisConfig"):
            SynthesisConfig.from_dict({"swap_durration": 1})

    def test_result_roundtrip_through_json(self):
        qc = random_circuit(random.Random(5), 4, 6)
        result = synthesize(qc, linear(5), config=fast_config())
        data = json.loads(json.dumps(result.to_dict()))
        rebuilt = SynthesisResult.from_dict(data)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.depth == result.depth
        assert rebuilt.swap_count == result.swap_count
        validate_result(rebuilt)

    def test_request_roundtrip_and_rejection(self):
        req = CompileRequest(
            qasm="OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];",
            device="line-3",
            budget=5.0,
            config=fast_config().to_dict(),
        )
        data = json.loads(json.dumps(req.to_dict()))
        assert CompileRequest.from_dict(data) == req
        with pytest.raises(ValueError, match="unknown CompileRequest"):
            CompileRequest.from_dict({**data, "qsam": "typo"})

    def test_response_roundtrip_and_invariants(self):
        resp = CompileResponse(request_id="r1", status="error", error="boom")
        assert CompileResponse.from_dict(resp.to_dict()) == resp
        with pytest.raises(ValueError, match="must carry a result"):
            CompileResponse(request_id="r2", status="ok")


# -- registry --------------------------------------------------------------


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        for expected in ("olsq2", "tb-olsq2", "olsq", "tb-olsq", "sabre", "satmap"):
            assert expected in names

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError, match="valid choices"):
            resolve_backend("quantum-annealer")

    def test_synthesize_entrypoint(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.cx(0, 2)
        result = synthesize(
            qc, linear(4), backend="tb-olsq2", objective="swap", config=fast_config()
        )
        validate_result(result)
        assert result.objective == "swap"

    def test_synthesize_respects_initial_mapping(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        result = synthesize(
            qc, linear(3), initial_mapping=[2, 1], config=fast_config()
        )
        assert result.initial_mapping == [2, 1]


# -- cache and bank --------------------------------------------------------


class TestResultCache:
    def test_lru_eviction_and_stats(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), {"v": 1})
        cache.put(("b",), {"v": 2})
        assert cache.get(("a",)) == {"v": 1}  # refreshes 'a'
        cache.put(("c",), {"v": 3})  # evicts 'b'
        assert cache.get(("b",)) is None
        assert cache.get(("c",)) == {"v": 3}
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["evictions"] == 1 and stats["size"] == 2


class TestClauseBank:
    def test_deposit_serve_and_scope_isolation(self):
        bank = ClauseBank(max_clauses=100)
        bank.deposit(("fp1", "dev"), "key", [((1, 2), 2), ((3, 4), 2)])
        assert bank.batches(("fp2", "dev")) == []  # other formula: nothing
        [(key, clauses)] = bank.batches(("fp1", "dev"))
        assert key == "key" and len(clauses) == 2

    def test_bounded_eviction(self):
        bank = ClauseBank(max_clauses=3)
        bank.deposit(("fp", "d"), "k1", [((1,), 1), ((2,), 1)])
        bank.deposit(("fp", "d"), "k2", [((3,), 1), ((4,), 1)])
        assert bank.stats()["clauses"] <= 3 + 1  # evicts whole oldest entry
        assert bank.evicted >= 2


# -- the async server ------------------------------------------------------


class TestSynthesisService:
    @pytest.mark.timeout(120)
    def test_batch_of_relabeled_copies_costs_one_dispatch(self):
        """The acceptance criterion: k isomorphic requests, 1 solve,
        k-1 cache hits, every mapping valid in its own labeling."""
        rng = random.Random(23)
        base = random_circuit(rng, 4, 7)
        circuits = [base]
        for _ in range(3):
            perm = list(range(4))
            rng.shuffle(perm)
            circuits.append(relabeled(base, perm))
        requests = [
            CompileRequest.from_circuit(
                qc, "line-4", budget=60.0, config=fast_config().to_dict()
            )
            for qc in circuits
        ]

        async def go():
            async with SynthesisService(n_workers=0) as service:
                responses = await service.submit_batch(requests)
                return responses, service.stats()

        responses, stats = run(go())
        k = len(requests)
        assert stats["solver_dispatches"] == 1
        assert stats["cache_hits"] == k - 1
        assert sum(1 for r in responses if r.cache_hit) == k - 1
        for response, circuit in zip(responses, circuits):
            assert response.ok, response.error
            result = response.synthesis_result()
            # The mapping must be valid for THIS request's labeling: the
            # independent validator replays gates through it.
            assert result.circuit.to_dict()["gates"] == circuit.to_dict()["gates"]
            validate_result(result)
        # All four solved the same structure: identical cost metrics.
        depths = {r.synthesis_result().depth for r in responses}
        swaps = {r.synthesis_result().swap_count for r in responses}
        assert len(depths) == 1 and len(swaps) == 1

    @pytest.mark.timeout(120)
    def test_sequential_resubmission_hits_cache(self):
        qc = random_circuit(random.Random(29), 4, 6)
        req = CompileRequest.from_circuit(
            qc, "line-4", config=fast_config().to_dict()
        )

        async def go():
            async with SynthesisService(n_workers=0) as service:
                first = await service.submit(req)
                second = await service.submit(req)
                return first, second, service.stats()

        first, second, stats = run(go())
        assert not first.cache_hit and second.cache_hit
        assert stats["solver_dispatches"] == 1
        assert first.result == second.result

    @pytest.mark.timeout(120)
    def test_different_objectives_do_not_share_cache_entries(self):
        qc = random_circuit(random.Random(31), 4, 6)
        cfg = fast_config().to_dict()

        async def go():
            async with SynthesisService(n_workers=0) as service:
                a = await service.submit(
                    CompileRequest.from_circuit(qc, "line-4", objective="depth", config=cfg)
                )
                b = await service.submit(
                    CompileRequest.from_circuit(qc, "line-4", objective="swap", config=cfg)
                )
                return a, b, service.stats()

        a, b, stats = run(go())
        assert a.ok and b.ok
        assert stats["solver_dispatches"] == 2
        assert stats["cache_hits"] == 0

    @pytest.mark.timeout(60)
    def test_bad_requests_return_error_responses(self):
        async def go():
            async with SynthesisService(n_workers=0) as service:
                bad_device = await service.submit(
                    CompileRequest(
                        qasm="OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];",
                        device="no-such-device",
                    )
                )
                bad_qasm = await service.submit(
                    CompileRequest(qasm="garbage", device="line-3")
                )
                return bad_device, bad_qasm, service.stats()

        bad_device, bad_qasm, stats = run(go())
        assert not bad_device.ok and "unknown device" in bad_device.error
        assert not bad_qasm.ok
        assert stats["errors"] == 2
        assert stats["solver_dispatches"] == 0  # rejected before admission

    @pytest.mark.timeout(120)
    def test_zero_budget_request_reports_timeout_error(self):
        qc = random_circuit(random.Random(37), 4, 6)
        req = CompileRequest.from_circuit(
            qc, "line-4", budget=0.0, config=fast_config().to_dict()
        )

        async def go():
            async with SynthesisService(n_workers=0) as service:
                return await service.submit(req), service.stats()

        response, stats = run(go())
        # No time at all: no solution exists yet, so this surfaces as a
        # SynthesisTimeout error response (not a partial result).
        assert not response.ok
        assert "Timeout" in response.error or "Cancelled" in response.error

    @pytest.mark.timeout(120)
    def test_initial_mapping_is_translated_through_relabeling(self):
        qc = QuantumCircuit(3)
        qc.cx(2, 1)
        qc.cx(1, 0)
        pin = [2, 1, 0]  # request-space: qubit q starts on physical pin[q]
        req = CompileRequest.from_circuit(
            qc, "line-3", initial_mapping=pin, config=fast_config().to_dict()
        )

        async def go():
            async with SynthesisService(n_workers=0) as service:
                return await service.submit(req)

        response = run(go())
        assert response.ok, response.error
        result = response.synthesis_result()
        assert result.initial_mapping == pin
        validate_result(result)

    @pytest.mark.timeout(120)
    def test_warm_bank_serves_clauses_across_objectives(self):
        """Same circuit, different objective: different cache key but the
        same base formula, so the second solve replays banked clauses."""
        rng = random.Random(41)
        qc = random_circuit(rng, 5, 10)
        cfg = fast_config().to_dict()

        async def go():
            async with SynthesisService(n_workers=0) as service:
                await service.submit(
                    CompileRequest.from_circuit(qc, "line-5", objective="depth", config=cfg)
                )
                await service.submit(
                    CompileRequest.from_circuit(qc, "line-5", objective="swap", config=cfg)
                )
                return service.stats()

        stats = run(go())
        assert stats["pool"]["bank"]["deposited"] > 0
        assert stats["pool"]["bank_clauses_served"] > 0

    @pytest.mark.timeout(180)
    def test_process_pool_mode_end_to_end(self):
        """One real worker process: same contract as inline mode."""
        rng = random.Random(43)
        base = random_circuit(rng, 4, 6)
        perm = [3, 0, 2, 1]
        requests = [
            CompileRequest.from_circuit(
                base, "line-4", budget=60.0, config=fast_config().to_dict()
            ),
            CompileRequest.from_circuit(
                relabeled(base, perm),
                "line-4",
                budget=60.0,
                config=fast_config().to_dict(),
            ),
        ]

        async def go():
            async with SynthesisService(n_workers=1) as service:
                responses = await service.submit_batch(requests)
                return responses, service.stats()

        responses, stats = run(go())
        assert stats["solver_dispatches"] == 1
        assert stats["cache_hits"] == 1
        for response in responses:
            assert response.ok, response.error
            validate_result(response.synthesis_result())


# -- CLI surface -----------------------------------------------------------


class TestServeCli:
    @pytest.mark.timeout(120)
    def test_request_then_serve(self, tmp_path, capsys):
        from repro.cli import main

        qasm = tmp_path / "c.qasm"
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qasm.write_text(qc.to_qasm())
        req_path = tmp_path / "req.json"
        assert (
            main(
                [
                    "request",
                    str(qasm),
                    "--device",
                    "line-3",
                    "--swap-duration",
                    "1",
                    "--time-budget",
                    "60",
                    "--output",
                    str(req_path),
                ]
            )
            == 0
        )
        request = json.loads(req_path.read_text())
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps([request, request]))
        out_path = tmp_path / "resp.json"
        assert (
            main(
                [
                    "serve",
                    str(batch),
                    "--workers",
                    "0",
                    "--output",
                    str(out_path),
                    "--stats",
                ]
            )
            == 0
        )
        responses = [
            CompileResponse.from_dict(d) for d in json.loads(out_path.read_text())
        ]
        assert len(responses) == 2
        assert all(r.ok for r in responses)
        assert sum(1 for r in responses if r.cache_hit) == 1
        for r in responses:
            validate_result(r.synthesis_result())


class TestTemplateReuse:
    """A template hit dispatches zero Python encode work (PR 10)."""

    @pytest.mark.timeout(120)
    def test_same_shape_different_objective_hits_template(self):
        qc = random_circuit(random.Random(53), 4, 6)
        cfg = fast_config().to_dict()

        async def go():
            async with SynthesisService(n_workers=0) as service:
                a = await service.submit(
                    CompileRequest.from_circuit(
                        qc, "line-4", objective="depth", config=cfg
                    )
                )
                b = await service.submit(
                    CompileRequest.from_circuit(
                        qc, "line-4", objective="swap", config=cfg
                    )
                )
                return a, b, service.stats()

        a, b, stats = run(go())
        assert a.ok and b.ok
        # Different objectives: two real dispatches, no result-cache hit —
        # but one encode.  The second solve restored the first's
        # post-encode snapshot instead of rebuilding clauses.
        assert stats["solver_dispatches"] == 2
        assert stats["cache_hits"] == 0
        assert stats["pool"]["template_hits"] == 1
        assert stats["pool"]["templates"]["entries"] >= 1
        assert a.solver_stats["templates"] == {
            "hits": 0,
            "misses": 1,
            "stored": 1,
        }
        assert b.solver_stats["templates"]["hits"] >= 1
        assert b.solver_stats["templates"]["stored"] == 0
        # The wall split proves it: the template hit's encode share is a
        # replay, not a rebuild.
        assert b.solver_stats["encode_wall_sec"] < a.solver_stats["encode_wall_sec"]

    @pytest.mark.timeout(120)
    def test_templates_off_config_skips_store(self):
        qc = random_circuit(random.Random(59), 4, 6)
        cfg = fast_config(templates="off").to_dict()

        async def go():
            async with SynthesisService(n_workers=0) as service:
                a = await service.submit(
                    CompileRequest.from_circuit(
                        qc, "line-4", objective="depth", config=cfg
                    )
                )
                b = await service.submit(
                    CompileRequest.from_circuit(
                        qc, "line-4", objective="swap", config=cfg
                    )
                )
                return a, b, service.stats()

        a, b, stats = run(go())
        assert a.ok and b.ok
        assert stats["pool"]["template_hits"] == 0
        assert stats["pool"]["templates"]["entries"] == 0
