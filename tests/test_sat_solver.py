"""Unit and property-based tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    brute_force_solve,
    CNF,
    count_models,
    luby,
    mk_lit,
    neg,
    SatResult,
    Solver,
)


def lit(v, sign=False):
    return mk_lit(v, negative=sign)


class TestBasics:
    def test_empty_formula_is_sat(self):
        solver = Solver()
        assert solver.solve() is SatResult.SAT
        assert solver.model == []

    def test_single_unit_clause(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([lit(a)])
        assert solver.solve() is SatResult.SAT
        assert solver.model[a] is True

    def test_negative_unit_clause(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([lit(a, True)])
        assert solver.solve() is SatResult.SAT
        assert solver.model[a] is False

    def test_contradictory_units_unsat(self):
        solver = Solver()
        a = solver.new_var()
        assert solver.add_clause([lit(a)])
        assert not solver.add_clause([lit(a, True)])
        assert solver.solve() is SatResult.UNSAT

    def test_empty_clause_unsat(self):
        solver = Solver()
        solver.new_var()
        assert not solver.add_clause([])
        assert solver.solve() is SatResult.UNSAT

    def test_tautology_dropped(self):
        solver = Solver()
        a = solver.new_var()
        assert solver.add_clause([lit(a), lit(a, True)])
        assert solver.num_clauses == 0
        assert solver.solve() is SatResult.SAT

    def test_duplicate_literals_merged(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([lit(a), lit(a), lit(b)])
        assert solver.solve() is SatResult.SAT

    def test_two_var_implication_chain(self):
        solver = Solver()
        vs = solver.new_vars(5)
        solver.add_clause([lit(vs[0])])
        for u, v in zip(vs, vs[1:]):
            solver.add_clause([lit(u, True), lit(v)])  # u -> v
        assert solver.solve() is SatResult.SAT
        assert all(solver.model[v] for v in vs)

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: classic small UNSAT instance requiring search.
        solver = Solver()
        x = [[solver.new_var() for _ in range(2)] for _ in range(3)]
        for p in range(3):
            solver.add_clause([lit(x[p][0]), lit(x[p][1])])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([lit(x[p1][h], True), lit(x[p2][h], True)])
        assert solver.solve() is SatResult.UNSAT

    def test_pigeonhole_5_into_4_unsat(self):
        solver = Solver()
        n_holes, n_pigeons = 4, 5
        x = [[solver.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
        for p in range(n_pigeons):
            solver.add_clause([lit(x[p][h]) for h in range(n_holes)])
        for h in range(n_holes):
            for p1 in range(n_pigeons):
                for p2 in range(p1 + 1, n_pigeons):
                    solver.add_clause([lit(x[p1][h], True), lit(x[p2][h], True)])
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats.conflicts > 0

    def test_model_value_helper(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([lit(a)])
        solver.solve()
        assert solver.model_value(lit(a)) is True
        assert solver.model_value(lit(a, True)) is False

    def test_model_value_without_model_raises(self):
        solver = Solver()
        solver.new_var()
        with pytest.raises(RuntimeError):
            solver.model_value(0)


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([lit(a), lit(b)])
        assert solver.solve(assumptions=[lit(a, True)]) is SatResult.SAT
        assert solver.model[a] is False
        assert solver.model[b] is True

    def test_conflicting_assumptions_unsat_with_core(self):
        solver = Solver()
        a = solver.new_var()
        assert solver.solve(assumptions=[lit(a), lit(a, True)]) is SatResult.UNSAT
        assert lit(a, True) in solver.core or lit(a) in solver.core

    def test_assumption_against_formula(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([lit(a, True), lit(b)])  # a -> b
        solver.add_clause([lit(b, True)])  # not b
        assert solver.solve(assumptions=[lit(a)]) is SatResult.UNSAT
        assert lit(a) in solver.core

    def test_solver_reusable_after_assumption_unsat(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([lit(a), lit(b)])
        assert solver.solve(assumptions=[lit(a, True), lit(b, True)]) is SatResult.UNSAT
        assert solver.solve() is SatResult.SAT
        assert solver.solve(assumptions=[lit(b, True)]) is SatResult.SAT
        assert solver.model[a] is True

    def test_incremental_bound_tightening_pattern(self):
        # The usage pattern of the optimization loops: selector-gated clauses.
        solver = Solver()
        xs = solver.new_vars(4)
        sel1, sel2 = solver.new_var(), solver.new_var()
        solver.add_clause([lit(x) for x in xs])
        # Under sel1: at most xs[0] allowed true among first two (toy bound).
        solver.add_clause([lit(sel1, True), lit(xs[0], True), lit(xs[1], True)])
        # Under sel2: forbid xs[2] and xs[3].
        solver.add_clause([lit(sel2, True), lit(xs[2], True)])
        solver.add_clause([lit(sel2, True), lit(xs[3], True)])
        assert solver.solve(assumptions=[lit(sel1)]) is SatResult.SAT
        assert solver.solve(assumptions=[lit(sel1), lit(sel2)]) is SatResult.SAT
        m = solver.model
        assert not (m[xs[0]] and m[xs[1]])
        assert not m[xs[2]] and not m[xs[3]]

    def test_true_assumption_noop(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([lit(a)])
        assert solver.solve(assumptions=[lit(a)]) is SatResult.SAT


class TestBudgets:
    def test_conflict_budget_returns_none(self):
        solver = Solver()
        n_holes, n_pigeons = 7, 8  # hard enough to exceed 10 conflicts
        x = [[solver.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
        for p in range(n_pigeons):
            solver.add_clause([lit(x[p][h]) for h in range(n_holes)])
        for h in range(n_holes):
            for p1 in range(n_pigeons):
                for p2 in range(p1 + 1, n_pigeons):
                    solver.add_clause([lit(x[p1][h], True), lit(x[p2][h], True)])
        assert solver.solve(conflict_budget=5) is SatResult.UNKNOWN

    def test_budget_exhaustion_keeps_solver_usable(self):
        solver = Solver()
        n_holes, n_pigeons = 6, 7
        x = [[solver.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
        for p in range(n_pigeons):
            solver.add_clause([lit(x[p][h]) for h in range(n_holes)])
        for h in range(n_holes):
            for p1 in range(n_pigeons):
                for p2 in range(p1 + 1, n_pigeons):
                    solver.add_clause([lit(x[p1][h], True), lit(x[p2][h], True)])
        assert solver.solve(conflict_budget=3) is SatResult.UNKNOWN
        assert solver.solve() is SatResult.UNSAT  # finish the job afterwards


class TestLuby:
    def test_luby_prefix(self):
        assert [luby(2, i) for i in range(10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2]


def random_cnf(rng, n_vars, n_clauses, max_width=3):
    cnf = CNF()
    cnf.new_vars(n_vars)
    for _ in range(n_clauses):
        width = rng.randint(1, max_width)
        vs = rng.sample(range(n_vars), min(width, n_vars))
        cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    return cnf


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_3cnf_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(3, 9)
        n_clauses = rng.randint(1, 4 * n_vars)
        cnf = random_cnf(rng, n_vars, n_clauses)
        expected = brute_force_solve(cnf)
        solver = Solver()
        cnf.to_solver(solver)
        result = solver.solve()
        if expected is None:
            assert result is SatResult.UNSAT
        else:
            assert result is SatResult.SAT
            assert cnf.evaluate(solver.model[: cnf.n_vars])

    @pytest.mark.parametrize("seed", range(20))
    def test_random_cnf_under_assumptions(self, seed):
        rng = random.Random(1000 + seed)
        n_vars = rng.randint(3, 8)
        cnf = random_cnf(rng, n_vars, rng.randint(1, 3 * n_vars))
        assumed = rng.sample(range(n_vars), rng.randint(1, n_vars))
        assumptions = [mk_lit(v, rng.random() < 0.5) for v in assumed]
        constrained = CNF()
        constrained.new_vars(cnf.n_vars)
        constrained.add_clauses(cnf.clauses)
        for a in assumptions:
            constrained.add_clause([a])
        expected = brute_force_solve(constrained)
        solver = Solver()
        cnf.to_solver(solver)
        result = solver.solve(assumptions=assumptions)
        if expected is None:
            assert result is SatResult.UNSAT
        else:
            assert result is SatResult.SAT
            assert constrained.evaluate(solver.model[: cnf.n_vars])


@st.composite
def cnf_strategy(draw):
    n_vars = draw(st.integers(min_value=1, max_value=8))
    n_clauses = draw(st.integers(min_value=0, max_value=24))
    clauses = []
    for _ in range(n_clauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clause = [
            mk_lit(draw(st.integers(0, n_vars - 1)), draw(st.booleans()))
            for _ in range(width)
        ]
        clauses.append(clause)
    cnf = CNF()
    cnf.new_vars(n_vars)
    cnf.add_clauses(clauses)
    return cnf


class TestHypothesis:
    @settings(max_examples=150, deadline=None)
    @given(cnf_strategy())
    def test_cdcl_matches_brute_force(self, cnf):
        expected_sat = brute_force_solve(cnf) is not None
        solver = Solver()
        cnf.to_solver(solver)
        result = solver.solve()
        assert result == expected_sat
        if result:
            assert cnf.evaluate(solver.model[: cnf.n_vars])

    @settings(max_examples=60, deadline=None)
    @given(cnf_strategy(), st.randoms())
    def test_incremental_sequence_consistent(self, cnf, rng):
        """Solving repeatedly with growing assumption sets stays consistent
        with one-shot solving of the conjoined formula."""
        solver = Solver()
        cnf.to_solver(solver)
        assumptions = []
        for _ in range(3):
            var = rng.randrange(cnf.n_vars)
            assumptions.append(mk_lit(var, rng.random() < 0.5))
            conjoined = CNF()
            conjoined.new_vars(cnf.n_vars)
            conjoined.add_clauses(cnf.clauses)
            for a in assumptions:
                conjoined.add_clause([a])
            expected = brute_force_solve(conjoined) is not None
            assert solver.solve(assumptions=assumptions) == expected

    @settings(max_examples=60, deadline=None)
    @given(cnf_strategy())
    def test_unsat_core_is_subset_of_assumptions(self, cnf):
        solver = Solver()
        cnf.to_solver(solver)
        assumptions = [mk_lit(v, v % 2 == 0) for v in range(cnf.n_vars)]
        result = solver.solve(assumptions=assumptions)
        if result is SatResult.UNSAT and solver.core:
            assert set(solver.core).issubset(set(assumptions))


class TestClauseDatabase:
    def test_learnt_clauses_accumulate_and_reduce(self):
        rng = random.Random(7)
        solver = Solver()
        n = 40
        solver.new_vars(n)
        for _ in range(170):
            vs = rng.sample(range(n), 3)
            solver.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
        solver.max_learnts = 10  # force reductions
        solver.solve()
        assert solver.stats.solve_calls == 1

    def test_stats_exposed(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([lit(a)])
        solver.solve()
        d = solver.stats.as_dict()
        assert d["solve_calls"] == 1
        assert "conflicts" in d
