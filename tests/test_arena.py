"""Tests for the flat clause-arena CDCL core and incremental horizon growth.

Covers the PR-2 acceptance points: the arena solver agrees with the naive
reference on random CNF (models verified, UNSAT cross-checked), the
watcher/arena invariants hold after ``_reduce_db``-driven deletion and
compaction, and learnt clauses / solver stats survive
:meth:`LayoutEncoder.extend_horizon` with the same verdicts and bounds as a
from-scratch rebuild.
"""

import random

import pytest

from repro.arch import grid, linear
from repro.circuit import QuantumCircuit
from repro.core import SynthesisConfig
from repro.core.encoder import LayoutEncoder
from repro.core.optimizer import IterativeSynthesizer
from repro.sat import CNF, SatResult, Solver, brute_force_solve, mk_lit
from repro.sat.arena import ClauseArena
from repro.sat.kernel import native_available
from repro.workloads.queko import queko_circuit

requires_native = pytest.mark.skipif(
    not native_available(),
    reason="compiled kernel not built (python -m repro.sat.kernel.build)",
)


def random_cnf(rng, n_vars, n_clauses, max_width=4):
    cnf = CNF()
    cnf.new_vars(n_vars)
    for _ in range(n_clauses):
        width = rng.randint(1, max_width)
        vs = rng.sample(range(n_vars), min(width, n_vars))
        cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    return cnf


def check_model(cnf, model):
    for clause in cnf.clauses:
        assert any(model[l >> 1] ^ bool(l & 1) for l in clause), (
            f"model violates clause {clause}"
        )


class TestArena:
    def test_alloc_free_compact_recycle(self):
        arena = ClauseArena()
        crefs = [arena.alloc([2 * i, 2 * i + 3]) for i in range(10)]
        for c in crefs[::2]:
            arena.free(c)
        assert arena.n_live == 5
        arena.check_invariants()
        arena.compact()
        arena.check_invariants()
        # Freed crefs become reusable only after an explicit recycle.
        fresh = arena.alloc([0, 2, 4])
        assert fresh not in crefs
        arena.recycle()
        reused = arena.alloc([1, 3])
        assert reused in crefs
        arena.check_invariants()

    def test_literals_stable_across_compaction(self):
        arena = ClauseArena()
        keep = arena.alloc([4, 7, 9])
        victim = arena.alloc([10, 13])
        tail = arena.alloc([1, 5, 8, 11])
        arena.free(victim)
        arena.compact()
        assert arena.literals(keep) == [4, 7, 9]
        assert arena.literals(tail) == [1, 5, 8, 11]


class TestDifferentialSolver:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_cnf_agrees_with_brute_force(self, seed):
        rng = random.Random(1000 + seed)
        cnf = random_cnf(rng, n_vars=9, n_clauses=38)
        expected = brute_force_solve(cnf)
        solver = Solver()
        solver.new_vars(cnf.n_vars)
        solver.add_clauses(cnf.clauses)
        verdict = solver.solve()
        if expected is None:
            assert verdict is SatResult.UNSAT
        else:
            assert verdict is SatResult.SAT
            check_model(cnf, solver.model)

    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_assumptions_agree(self, seed):
        """Same formula, shifting assumptions: every verdict cross-checked."""
        rng = random.Random(77 + seed)
        cnf = random_cnf(rng, n_vars=8, n_clauses=26)
        solver = Solver()
        solver.new_vars(cnf.n_vars)
        solver.add_clauses(cnf.clauses)
        for _ in range(6):
            assumed = [
                mk_lit(v, rng.random() < 0.5)
                for v in rng.sample(range(cnf.n_vars), 2)
            ]
            verdict = solver.solve(assumptions=assumed)
            conjoined = CNF()
            conjoined.new_vars(cnf.n_vars)
            conjoined.add_clauses(cnf.clauses)
            conjoined.add_clauses([[l] for l in assumed])
            expected = brute_force_solve(conjoined)
            if verdict is SatResult.SAT:
                assert expected is not None
                check_model(conjoined, solver.model)
            else:
                assert verdict is SatResult.UNSAT
                assert expected is None


def _hard_solver(seed, n_vars=60, ratio=4.3):
    rng = random.Random(seed)
    solver = Solver()
    solver.new_vars(n_vars)
    for _ in range(int(ratio * n_vars)):
        vs = rng.sample(range(n_vars), 3)
        solver.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    return solver


class TestWatchInvariants:
    def test_invariants_hold_after_reduce_db(self):
        solver = _hard_solver(5)
        solver.solve(conflict_budget=3000)
        # Force learnt-clause deletion plus arena compaction, then check
        # every watcher/arena invariant (including the binary and ternary
        # watch schemes).
        if solver.trail_lim:
            solver._cancel_until(1)
        if not solver.trail_lim:
            solver._new_decision_level()
        solver._reduce_db()
        solver.check_watch_invariants()
        solver._cancel_until(0)
        solver._garbage_collect()
        solver.check_watch_invariants()
        # The solver still works after deletion + compaction.
        assert solver.solve(conflict_budget=50000) in (
            SatResult.SAT,
            SatResult.UNSAT,
        )

    def test_invariants_hold_mid_search(self):
        solver = _hard_solver(11)
        for budget in (200, 500, 1000):
            solver.solve(conflict_budget=budget)
            solver.check_watch_invariants()


def _three_gate_circuit():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


class TestExtendHorizon:
    def test_extension_matches_rebuild_verdicts(self):
        cfg = SynthesisConfig(swap_duration=1)
        qc = _three_gate_circuit()
        ext = LayoutEncoder(qc, linear(3), horizon=3, config=cfg)
        ext.encode()
        assert ext.solve(assumptions=[ext.depth_guard(3)]) is SatResult.UNSAT
        assert ext.extend_horizon(6)
        for bound in (3, 4, 5, 6):
            rebuilt = LayoutEncoder(qc, linear(3), horizon=6, config=cfg)
            rebuilt.encode()
            v_ext = ext.solve(assumptions=[ext.depth_guard(bound)])
            v_reb = rebuilt.solve(assumptions=[rebuilt.depth_guard(bound)])
            assert v_ext is v_reb, f"bound {bound}: {v_ext} != {v_reb}"

    def test_extension_preserves_learnt_clauses_and_stats(self):
        # simplify="off": the default encode/extend-time inprocessing pass
        # may subsume or vivify away redundant learnts, which is exactly
        # the state this test pins as untouched by extension itself.
        cfg = SynthesisConfig(swap_duration=1, simplify="off")
        enc = LayoutEncoder(_three_gate_circuit(), linear(3), horizon=3, config=cfg)
        enc.encode()
        assert enc.solve(assumptions=[enc.depth_guard(3)]) is SatResult.UNSAT
        solver = enc.ctx.sink
        learnts_before = solver.num_learnts
        conflicts_before = solver.stats.conflicts
        assert conflicts_before > 0
        assert enc.extend_horizon(6)
        # Same solver object, learnt clauses and counters intact.
        assert enc.ctx.sink is solver
        assert solver.num_learnts >= learnts_before
        assert solver.stats.conflicts == conflicts_before
        assert enc.solve(assumptions=[enc.depth_guard(5)]) is SatResult.SAT
        init, times, swaps = enc.extract()
        assert len(times) == 3
        assert sorted(init) == [0, 1, 2]

    def test_extension_noop_and_refusal(self):
        cfg = SynthesisConfig(swap_duration=1)
        enc = LayoutEncoder(_three_gate_circuit(), linear(3), horizon=4, config=cfg)
        assert enc.extend_horizon(3) is True  # no-op: not larger
        assert enc.horizon == 4
        enc.encode()
        enc.init_swap_counter(max_bound=4)
        # A built SWAP cardinality layer pins swap_lits: must refuse.
        assert enc.extend_horizon(8) is False

    def test_optimizer_reaches_same_depth_with_extension(self):
        """End to end: relax-phase growth via extension vs forced rebuild."""
        inst = queko_circuit(grid(2, 3), depth=4, n_gates=12, seed=5)
        dev = linear(6)

        def run(force_rebuild):
            cfg = SynthesisConfig(swap_duration=1, tub_ratio=1.0)
            synth = IterativeSynthesizer(inst.circuit, dev, config=cfg)
            if force_rebuild:
                original = LayoutEncoder.extend_horizon
                LayoutEncoder.extend_horizon = lambda self, h: False
                try:
                    return synth.optimize_depth()
                finally:
                    LayoutEncoder.extend_horizon = original
            return synth.optimize_depth()

        extended = run(force_rebuild=False)
        rebuilt = run(force_rebuild=True)
        assert extended.depth == rebuilt.depth


@requires_native
class TestKernelDifferential:
    """Randomized python-vs-native differential harness (PR 7).

    The compiled kernel claims *byte-for-byte* equivalence with the
    interpreter loops — not just the same verdicts, but the same search:
    identical trails, identical learnt clauses in identical order,
    identical stats counters, and identical (RUP-checkable) proof logs.
    Anything weaker would make ``kernel="auto"`` a semantic change.
    """

    @staticmethod
    def _pair(build, **solver_kw):
        """The same formula loaded into a python and a native solver."""
        pair = []
        for kernel in ("python", "native"):
            solver = Solver(kernel=kernel, **solver_kw)
            build(solver)
            pair.append(solver)
        return pair

    @staticmethod
    def _search_state(solver):
        """Everything the search produced, normalized across backends.

        The native backend stores per-variable state in typed ``array``
        buffers (ints), the python backend in plain lists (ints/bools);
        ``list()``/``bool()`` normalization makes them comparable without
        hiding a real divergence.  Wall-clock stats are stripped: two
        byte-identical searches still spend different seconds.
        """
        from repro.sat.solver import SolverStats

        stats = {
            k: v
            for k, v in solver.stats.snapshot().items()
            if k not in SolverStats.WALL_CLOCK
        }
        return {
            "trail": list(solver.trail[: solver.trail_size]),
            "assigns": [
                int(a) for a in solver.assigns_lit[: 2 * solver.n_vars]
            ],
            "learnts": [tuple(solver.arena.literals(c)) for c in solver.learnts],
            "stats": stats,
            "lbd_counts": dict(solver.stats.lbd_counts),
        }

    @pytest.mark.parametrize("seed", range(8))
    def test_random_cnf_search_identical(self, seed):
        rng = random.Random(4000 + seed)
        cnf = random_cnf(rng, n_vars=30, n_clauses=125, max_width=5)

        def build(solver):
            solver.new_vars(cnf.n_vars)
            solver.add_clauses(cnf.clauses)

        py, nat = self._pair(build)
        v_py = py.solve(conflict_budget=5000)
        v_nat = nat.solve(conflict_budget=5000)
        assert v_py is v_nat
        if v_py is SatResult.SAT:
            assert [bool(x) for x in py.model] == [bool(x) for x in nat.model]
            check_model(cnf, py.model)
        assert self._search_state(py) == self._search_state(nat)
        py.check_watch_invariants()
        nat.check_watch_invariants()

    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_assumptions_identical(self, seed):
        rng = random.Random(8800 + seed)
        cnf = random_cnf(rng, n_vars=14, n_clauses=52)

        def build(solver):
            solver.new_vars(cnf.n_vars)
            solver.add_clauses(cnf.clauses)

        py, nat = self._pair(build)
        for _ in range(5):
            assumed = [
                mk_lit(v, rng.random() < 0.5)
                for v in rng.sample(range(cnf.n_vars), 3)
            ]
            assert py.solve(assumptions=assumed) is nat.solve(assumptions=assumed)
            assert self._search_state(py)["stats"] == (
                self._search_state(nat)["stats"]
            )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_unsat_proofs_identical_and_rup_checkable(self, seed):
        from repro.sat.proof import check_unsat_proof

        rng = random.Random(31 + seed)
        cnf = random_cnf(rng, n_vars=12, n_clauses=90, max_width=3)

        def build(solver):
            solver.new_vars(cnf.n_vars)
            solver.add_clauses(cnf.clauses)

        py, nat = self._pair(build, proof_log=True)
        if py.solve() is not SatResult.UNSAT:
            pytest.skip("draw was satisfiable; not a refutation workload")
        assert nat.solve() is SatResult.UNSAT
        assert py.proof == nat.proof
        assert check_unsat_proof(cnf, py.proof)
        assert check_unsat_proof(cnf, nat.proof)

    def test_hard_instance_mid_search_identical(self):
        """Budget-sliced solving: state compared at every pause point."""

        def build(solver):
            rng = random.Random(17)
            solver.new_vars(50)
            for _ in range(215):
                vs = rng.sample(range(50), 3)
                solver.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])

        py, nat = self._pair(build)
        for budget in (150, 400, 900):
            v_py = py.solve(conflict_budget=budget)
            v_nat = nat.solve(conflict_budget=budget)
            assert v_py is v_nat
            assert self._search_state(py) == self._search_state(nat)
            py.check_watch_invariants()
            nat.check_watch_invariants()
