"""Additional OpenQASM parser corner cases."""

import math

import pytest

from repro.circuit import QasmError, parse_qasm
from repro.circuit.qasm import _eval_param


class TestParamEvaluator:
    @pytest.mark.parametrize(
        "expr,value",
        [
            ("pi", math.pi),
            ("-pi", -math.pi),
            ("pi/2", math.pi / 2),
            ("3*pi/4", 3 * math.pi / 4),
            ("pi/2 + pi/4", 3 * math.pi / 4),
            ("(pi)", math.pi),
            ("2*(1+3)", 8.0),
            ("1 - 2 - 3", -4.0),
            ("8/2/2", 2.0),
            ("+5", 5.0),
            ("0.25", 0.25),
            (".5", 0.5),
            ("2.", 2.0),
        ],
    )
    def test_expressions(self, expr, value):
        assert _eval_param(expr) == pytest.approx(value)

    @pytest.mark.parametrize("expr", ["", "pi pi", "1 +", "(1", "foo", "1..2"])
    def test_malformed(self, expr):
        with pytest.raises(QasmError):
            _eval_param(expr)


class TestParserCorners:
    def test_u2_u3_multi_params(self):
        qc = parse_qasm(
            "OPENQASM 2.0; qreg q[1]; u3(pi/2, 0, pi) q[0]; u2(0, pi) q[0];"
        )
        assert qc.gates[0].params == pytest.approx((math.pi / 2, 0.0, math.pi))
        assert len(qc.gates[1].params) == 2

    def test_whitespace_tolerance(self):
        qc = parse_qasm(
            "OPENQASM 2.0;\n\n  qreg   q[2] ;\n cx   q[0] , q[1] ;\n"
        )
        assert qc.gates[0].qubits == (0, 1)

    def test_nested_gate_definition(self):
        src = """
        OPENQASM 2.0;
        qreg q[2];
        gate inner a { h a; }
        gate outer a,b { inner a; cx a,b; inner b; }
        outer q[0],q[1];
        """
        qc = parse_qasm(src)
        assert [g.name for g in qc.gates] == ["h", "cx", "h"]

    def test_measure_arrow_ignored(self):
        qc = parse_qasm(
            "OPENQASM 2.0; qreg q[1]; creg c[1]; x q[0]; measure q[0] -> c[0];"
        )
        assert len(qc.gates) == 1

    def test_cx_broadcast_register_to_register(self):
        qc = parse_qasm("OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a,b;")
        assert [g.qubits for g in qc.gates] == [(0, 2), (1, 3)]

    def test_cx_broadcast_single_to_register(self):
        qc = parse_qasm("OPENQASM 2.0; qreg a[1]; qreg b[2]; cx a[0],b;")
        assert [g.qubits for g in qc.gates] == [(0, 1), (0, 2)]

    def test_mismatched_broadcast_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a,b;")

    def test_gate_arity_mismatch_rejected(self):
        src = "OPENQASM 2.0; qreg q[2]; gate g a,b { cx a,b; } g q[0];"
        with pytest.raises(QasmError):
            parse_qasm(src)

    def test_unknown_qubit_in_body_rejected(self):
        src = "OPENQASM 2.0; qreg q[1]; gate g a { h b; } g q[0];"
        with pytest.raises(QasmError):
            parse_qasm(src)
