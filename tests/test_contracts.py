"""Tests for the project contract linter (repro.analysis.contracts).

The ``test_seeded_*`` tests write a scratch file containing exactly one
contract violation and assert the linter reports it at the right
location — the CI mutation step runs these alongside the sanitizer's
``test_mutation_*`` family.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.contracts import (
    RULES,
    ContractRule,
    Violation,
    contract_violations,
    iter_python_files,
    main,
)

REPO = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, name="scratch.py"):
    p = tmp_path / name
    p.write_text(textwrap.dedent(source))
    return p, contract_violations([str(p)])


class TestCleanTree:
    def test_src_is_contract_clean(self):
        violations = contract_violations([str(REPO / "src")])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_rule_docstrings_cite_docs(self):
        # Each rule must say which documented contract it guards.
        for rule in RULES:
            doc = rule.__doc__ or ""
            assert "docs/" in doc or "pyproject" in doc, rule.name


class TestSeededViolations:
    def test_seeded_arena_growth_without_version_bump(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            class ClauseArena:
                def alloc(self, lits):
                    self.lits.extend(lits)
                    return 0
            """,
        )
        assert [v.rule for v in out] == ["arena-version-bump"]
        assert out[0].path == str(p) and out[0].line == 4

    def test_arena_growth_with_bump_is_clean(self, tmp_path):
        _, out = lint_source(
            tmp_path,
            """
            class ClauseArena:
                def alloc(self, lits):
                    self.lits.extend(lits)
                    self.version += 1
                    return 0
            """,
        )
        assert out == []

    def test_seeded_from_buffer(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            def bind(ffi, buf):
                return ffi.from_buffer("int32_t[]", buf)
            """,
        )
        assert [v.rule for v in out] == ["no-from-buffer"]
        assert out[0].line == 3

    def test_seeded_proof_delete_before_add(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            def replace(solver, old, new):
                solver.proof.append(("d", tuple(old)))
                solver.proof.append(("a", tuple(new)))
            """,
        )
        assert [v.rule for v in out] == ["proof-delete-after-add"]
        assert out[0].line == 3

    def test_proof_add_then_delete_is_clean(self, tmp_path):
        _, out = lint_source(
            tmp_path,
            """
            def replace(solver, old, new):
                solver.proof.append(("a", tuple(new)))
                solver.proof.append(("d", tuple(old)))

            def reduce_db(solver, dead):
                # delete-only functions are exempt (adds happened elsewhere)
                for lits in dead:
                    solver.proof.append(("d", tuple(lits)))
            """,
        )
        assert out == []

    def test_seeded_uncached_device_factory(self, tmp_path):
        arch = tmp_path / "arch"
        arch.mkdir()
        p = arch / "devices.py"
        p.write_text(
            textwrap.dedent(
                """
                def my_device() -> CouplingGraph:
                    return CouplingGraph(2, [(0, 1)])
                """
            )
        )
        out = contract_violations([str(p)])
        assert [v.rule for v in out] == ["device-factory-cache"]
        assert "my_device" in out[0].message
        # The rule is scoped: the same code elsewhere is fine.
        other = tmp_path / "not_devices.py"
        other.write_text(p.read_text())
        assert contract_violations([str(other)]) == []

    def test_seeded_bare_mp_queue(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            import multiprocessing
            from multiprocessing import SimpleQueue

            def make():
                a = multiprocessing.Queue(8)
                b = SimpleQueue()
                ctx = multiprocessing.get_context("spawn")
                c = ctx.Queue(8)  # fine: built from the pinned context
                return a, b, c
            """,
        )
        assert [v.rule for v in out] == ["no-bare-mp-queue"] * 2
        assert [v.line for v in out] == [6, 7]

    def test_seeded_bare_type_ignore(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            x = undefined_thing()  # type: ignore
            y = other_thing()  # type: ignore[attr-defined]
            """,
        )
        assert [v.rule for v in out] == ["no-bare-type-ignore"]
        assert out[0].line == 2

    def test_seeded_syntax_error_reported_not_raised(self, tmp_path):
        _, out = lint_source(tmp_path, "def broken(:\n")
        assert [v.rule for v in out] == ["parse-error"]

    def test_seeded_load_list_before_sync(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            def restore_solver(blob):
                s = make()
                s.arena.lits.extend(data)
                s.arena.version += 1
                lib.k_load_list(s._kern, 0, 0, buf, n)
                s._k_sync()
            """,
        )
        assert [v.rule for v in out] == ["snapshot-restore-sync"]
        assert "before _k_sync" in out[0].message

    def test_seeded_buffer_growth_after_sync(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            def restore_solver(blob):
                s = make()
                s.arena.version += 1
                s._k_sync()
                s.activity.extend(data)
                lib.k_load_list(s._kern, 0, 0, buf, n)
            """,
        )
        assert [v.rule for v in out] == ["snapshot-restore-sync"]
        assert "after _k_sync" in out[0].message

    def test_seeded_restore_without_version_bump(self, tmp_path):
        p, out = lint_source(
            tmp_path,
            """
            def restore_solver(blob):
                s = make()
                s.arena.lits.extend(data)
                s._k_sync()
                lib.k_load_list(s._kern, 0, 0, buf, n)
            """,
        )
        assert [v.rule for v in out] == ["snapshot-restore-sync"]
        assert "generation" in out[0].message

    def test_correct_restore_ordering_is_clean(self, tmp_path):
        _, out = lint_source(
            tmp_path,
            """
            def restore_solver(blob):
                s = make()
                s.arena.lits.extend(data)
                s.activity.extend(more)
                s.arena.version += 1
                s._k_sync()
                lib.k_load_list(s._kern, 0, 0, buf, n)
            """,
        )
        assert out == []


class TestPluggability:
    def test_custom_rule(self, tmp_path):
        class NoEvalRule(ContractRule):
            name = "no-eval"

            def check(self, path, tree, lines):
                import ast

                for node in ast.walk(tree):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "eval"
                    ):
                        yield self._v(path, node, "no eval")

        p = tmp_path / "s.py"
        p.write_text("eval('1')\n")
        out = contract_violations([str(p)], rules=[NoEvalRule()])
        assert [v.rule for v in out] == ["no-eval"]

    def test_violation_format(self):
        v = Violation(rule="r", path="a.py", line=3, col=7, message="m")
        assert v.format() == "a.py:3:7: r: m"

    def test_iter_python_files_mixes_dirs_and_files(self, tmp_path):
        (tmp_path / "a.py").write_text("")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("")
        (sub / "c.txt").write_text("")
        found = list(iter_python_files([str(sub), str(tmp_path / "a.py")]))
        assert [f.name for f in found] == ["b.py", "a.py"]


class TestCli:
    def test_main_clean_exit_zero(self, capsys):
        assert main([str(REPO / "src" / "repro" / "arch")]) == 0
        assert "contracts OK" in capsys.readouterr().out

    def test_main_violation_exit_one(self, tmp_path, capsys):
        p = tmp_path / "bad.py"
        p.write_text("import cffi\nb = cffi.FFI().from_buffer('x', y)\n")
        assert main([str(p)]) == 1
        out = capsys.readouterr().out
        assert "no-from-buffer" in out and f"{p}:2:" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.name in out

    def test_olsq2_analyze_contracts(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["analyze", "--contracts", str(REPO / "src")]) == 0
        assert "contracts OK" in capsys.readouterr().out
