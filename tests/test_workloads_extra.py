"""Tests for the extended workload library (GHZ, BV, Cuccaro adder)."""

import pytest

from repro.arch import full, grid, linear
from repro.core import OLSQ2, SynthesisConfig, validate_result
from repro.workloads import bernstein_vazirani, cuccaro_adder, ghz


class TestGHZ:
    def test_structure(self):
        qc = ghz(5)
        assert qc.n_qubits == 5
        assert qc.num_gates == 5  # 1 H + 4 CX
        assert qc.depth() == 5

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ghz(1)

    def test_ghz_on_line_needs_no_swaps(self):
        """A CNOT ladder maps natively onto a line."""
        res = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            ghz(4), linear(4), objective="swap"
        )
        assert res.swap_count == 0
        validate_result(res)


class TestBernsteinVazirani:
    def test_structure(self):
        qc = bernstein_vazirani(0b101, 3)
        assert qc.n_qubits == 4
        counts = qc.count_ops()
        assert counts["cx"] == 2  # two set bits
        assert counts["h"] == 7  # 4 before + 3 after
        assert counts["x"] == 1

    def test_zero_secret_has_no_cnots(self):
        qc = bernstein_vazirani(0, 4)
        assert "cx" not in qc.count_ops()

    def test_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(8, 3)  # secret too large
        with pytest.raises(ValueError):
            bernstein_vazirani(1, 0)

    def test_compiles_on_star_like_device(self):
        qc = bernstein_vazirani(0b11, 2)
        res = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            qc, grid(2, 2), objective="depth"
        )
        validate_result(res)


class TestCuccaroAdder:
    def test_structure(self):
        qc = cuccaro_adder(2)
        assert qc.n_qubits == 6
        # 2*n MAJ/UMA pairs... each MAJ = 2 CX + 15-gate Toffoli
        assert qc.count_ops()["cx"] > 10

    def test_gate_count_scales_linearly(self):
        g2 = cuccaro_adder(2).num_gates
        g4 = cuccaro_adder(4).num_gates
        g6 = cuccaro_adder(6).num_gates
        assert g4 - g2 == g6 - g4  # arithmetic progression

    def test_validation(self):
        with pytest.raises(ValueError):
            cuccaro_adder(0)

    def test_zero_swaps_on_full_connectivity(self):
        qc = cuccaro_adder(1)
        res = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=90)).synthesize(
            qc, full(4), objective="swap"
        )
        assert res.swap_count == 0
        validate_result(res)
