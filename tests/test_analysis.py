"""Tests for the static verification layer (repro.analysis)."""

import pytest

from repro.analysis import (
    certify_bound,
    check_records,
    lint_cnf,
    lint_encoder,
    mirror_encoder,
    RefutationRecord,
)
from repro.arch import linear
from repro.circuit import QuantumCircuit
from repro.core import LayoutEncoder, SynthesisConfig
from repro.encodings.cardinality import IncrementalCounter
from repro.sat import CNF, SatResult, Solver, mk_lit, neg
from repro.smt import SMTContext, cnf_context


def triangle():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


def make_encoder(ctx=None, horizon=5, swap_duration=1):
    return LayoutEncoder(
        triangle(),
        linear(3),
        horizon,
        config=SynthesisConfig(swap_duration=swap_duration),
        ctx=ctx if ctx is not None else cnf_context(),
    )


class TestLintCnf:
    def test_clean_formula_is_ok(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([mk_lit(a), mk_lit(b)])
        cnf.add_clause([mk_lit(a, True), mk_lit(b, True)])
        report = lint_cnf(cnf)
        assert report.ok
        assert report.diagnostics == []
        assert report.n_vars == 2 and report.n_clauses == 2

    def test_empty_clause_is_error(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([])
        report = lint_cnf(cnf)
        assert not report.ok
        assert any(d.code == "empty-clause" for d in report.errors)

    def test_tautology_and_duplicates_warn(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([mk_lit(a), mk_lit(a, True)])
        cnf.add_clause([mk_lit(a), mk_lit(b)])
        cnf.add_clause([mk_lit(b), mk_lit(a)])
        cnf.add_clause([mk_lit(a), mk_lit(a), mk_lit(b, True)])
        report = lint_cnf(cnf)
        assert report.ok  # warnings only
        codes = {d.code for d in report.diagnostics}
        assert {"tautology", "duplicate-clause", "duplicate-literal"} <= codes

    def test_unused_variable_warns(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.new_var()  # never mentioned
        cnf.add_clause([mk_lit(a)])
        report = lint_cnf(cnf)
        unused = [d for d in report.warnings if d.code == "unused-var"]
        assert len(unused) == 1 and unused[0].var == 1

    def test_flood_of_one_code_is_capped(self):
        cnf = CNF()
        a = cnf.new_var()
        for _ in range(30):
            cnf.add_clause([mk_lit(a)])
        report = lint_cnf(cnf)
        dups = [d for d in report.diagnostics if d.code == "duplicate-clause"]
        assert len(dups) == 11  # 10 findings + 1 suppression summary
        assert "suppressed" in dups[-1].message


class TestLintGroups:
    def test_missing_amo_pair_detected(self):
        cnf = CNF()
        lits = [mk_lit(cnf.new_var()) for _ in range(3)]
        cnf.add_clause([neg(lits[0]), neg(lits[1])])
        cnf.add_clause([neg(lits[0]), neg(lits[2])])
        # pair (1, 2) deliberately missing
        cnf.add_clause(list(lits))  # keep vars used
        report = lint_cnf(cnf, groups=[{"kind": "amo", "label": "g", "lits": lits}])
        errs = [d for d in report.errors if d.code == "amo-missing-pair"]
        assert len(errs) == 1 and errs[0].group == "g"

    def test_missing_guarded_alo_detected(self):
        cnf = CNF()
        guard = mk_lit(cnf.new_var())
        lits = [mk_lit(cnf.new_var()) for _ in range(2)]
        cnf.add_clause([guard] + lits)  # wrong polarity on the guard
        report = lint_cnf(
            cnf,
            groups=[{"kind": "alo", "label": "g", "lits": lits, "guard": guard}],
        )
        assert any(d.code == "alo-missing" for d in report.errors)

    def test_exactly_one_checks_both_directions(self):
        cnf = CNF()
        lits = [mk_lit(cnf.new_var()) for _ in range(2)]
        cnf.add_clause(list(lits))
        cnf.add_clause([neg(lits[0]), neg(lits[1])])
        group = {"kind": "exactly_one", "label": "pi", "lits": lits}
        assert lint_cnf(cnf, groups=[group]).ok

    def test_intact_ladder_passes_and_broken_ladder_fails(self):
        cnf = CNF()
        lits = [mk_lit(cnf.new_var()) for _ in range(4)]
        counter = IncrementalCounter(cnf, lits, max_bound=2)
        group = {
            "kind": "ladder",
            "label": "swap_counter",
            "inputs": counter.lits,
            "rows": counter.registers,
        }
        assert lint_cnf(cnf, groups=[group]).ok
        # Drop one carry clause: the linter must notice.
        victim = tuple(sorted([neg(counter.registers[0][0]), counter.registers[1][0]]))
        cnf.clauses = [
            c for c in cnf.clauses if tuple(sorted(c)) != victim
        ]
        report = lint_cnf(cnf, groups=[group])
        assert any(d.code == "ladder-broken" for d in report.errors)

    def test_share_prefix_leak_detected(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        start = cnf.num_clauses
        cnf.add_clause([mk_lit(a), mk_lit(b)])  # entirely inside the prefix
        group = {
            "kind": "private",
            "label": "depth_guard[3]",
            "clause_range": (start, cnf.num_clauses),
        }
        report = lint_cnf(cnf, groups=[group], share_prefix=2)
        assert any(d.code == "share-prefix-leak" for d in report.errors)
        # A literal beyond the prefix in the clause makes it sound.
        cnf2 = CNF()
        cnf2.new_vars(3)
        start = cnf2.num_clauses
        cnf2.add_clause([mk_lit(0), mk_lit(2, True)])
        group["clause_range"] = (start, cnf2.num_clauses)
        assert lint_cnf(cnf2, groups=[group], share_prefix=2).ok


class TestLintEncoder:
    def test_encoder_output_is_clean(self):
        report = lint_encoder(
            triangle(),
            linear(3),
            5,
            config=SynthesisConfig(swap_duration=1),
            depth_bound=4,
            swap_bound=3,
        )
        assert report.ok, report.summary()
        assert not report.errors

    def test_transition_based_encoder_is_clean(self):
        report = lint_encoder(
            triangle(),
            linear(3),
            3,
            config=SynthesisConfig(swap_duration=1),
            transition_based=True,
            depth_bound=2,
        )
        assert report.ok, report.summary()

    def test_constraint_groups_cover_gates_and_qubits(self):
        enc = LayoutEncoder(
            triangle(),
            linear(3),
            5,
            config=SynthesisConfig(swap_duration=1, encoding="onehot"),
            ctx=cnf_context(),
        )
        enc.encode()
        groups = enc.constraint_groups()
        kinds = {}
        for g in groups:
            kinds[g["kind"]] = kinds.get(g["kind"], 0) + 1
        assert kinds.get("amo", 0) == 3  # one per gate (StepVar selectors)
        assert kinds.get("alo", 0) == 3
        assert kinds.get("exactly_one", 0) == 3 * 5  # one per qubit x step

    def test_onehot_encoder_output_is_clean(self):
        report = lint_encoder(
            triangle(),
            linear(3),
            5,
            config=SynthesisConfig(swap_duration=1, encoding="onehot"),
            depth_bound=4,
        )
        assert report.ok, report.summary()


class TestMirror:
    def test_mirror_reproduces_variable_numbering(self):
        solver = Solver(proof_log=True)
        enc = make_encoder(ctx=SMTContext(sink=solver))
        enc.encode()
        enc.depth_guard(3)
        enc.extend_horizon(7)
        enc.depth_guard(5)
        enc.init_swap_counter(max_bound=3)
        enc.swap_guard(2)
        mirror = mirror_encoder(enc)
        assert mirror.ctx.n_vars == enc.ctx.n_vars
        assert mirror._depth_guards == enc._depth_guards

    def test_check_records_certifies_live_unsat(self):
        solver = Solver(proof_log=True)
        enc = make_encoder(ctx=SMTContext(sink=solver))
        enc.encode()
        guard = enc.depth_guard(3)  # depth 4 is optimal: bound 3 is UNSAT
        assumptions = tuple(enc.ctx.persistent_assumptions) + (guard,)
        assert enc.ctx.solve(assumptions=[guard]) is SatResult.UNSAT
        record = RefutationRecord(
            encoder=enc,
            phase="depth",
            depth_bound=3,
            swap_bound=None,
            assumptions=assumptions,
            proof_len=len(solver.proof),
        )
        (cert,) = check_records([record])
        assert cert.checked, cert.reason
        assert cert.phase == "depth" and cert.depth_bound == 3

    def test_check_records_survives_later_extension(self):
        """A record captured before extend_horizon still certifies: the
        mirror holds the final formula, a superset of the verdict-time DB."""
        solver = Solver(proof_log=True)
        enc = make_encoder(ctx=SMTContext(sink=solver))
        enc.encode()
        guard = enc.depth_guard(3)
        assumptions = tuple(enc.ctx.persistent_assumptions) + (guard,)
        assert enc.ctx.solve(assumptions=[guard]) is SatResult.UNSAT
        proof_len = len(solver.proof)
        enc.extend_horizon(8)  # grows the formula after the verdict
        assert enc.ctx.solve(assumptions=[enc.depth_guard(6)]) is SatResult.SAT
        record = RefutationRecord(
            encoder=enc,
            phase="depth",
            depth_bound=3,
            swap_bound=None,
            assumptions=assumptions,
            proof_len=proof_len,
        )
        (cert,) = check_records([record])
        assert cert.checked, cert.reason

    def test_record_without_proof_log_is_unchecked(self):
        enc = make_encoder(ctx=SMTContext(sink=Solver()))
        enc.encode()
        record = RefutationRecord(
            encoder=enc,
            phase="depth",
            depth_bound=3,
            swap_bound=None,
            assumptions=(),
            proof_len=0,
        )
        (cert,) = check_records([record])
        assert not cert.checked
        assert "proof log" in cert.reason


class TestCertifyBound:
    def test_depth_bound_certified_post_hoc(self):
        cert = certify_bound(
            triangle(),
            linear(3),
            5,
            depth_bound=3,
            config=SynthesisConfig(swap_duration=1),
        )
        assert cert.checked, cert.reason
        assert cert.phase == "depth"
        assert cert.proof_steps > 0

    def test_swap_bound_certified_post_hoc(self):
        cert = certify_bound(
            triangle(),
            linear(3),
            5,
            depth_bound=5,
            swap_bound=0,
            swap_counter_max=2,
            config=SynthesisConfig(swap_duration=1),
        )
        assert cert.checked, cert.reason
        assert cert.phase == "swap"

    def test_feasible_bound_reports_not_unsat(self):
        cert = certify_bound(
            triangle(),
            linear(3),
            5,
            depth_bound=4,  # feasible: re-solve returns SAT
            config=SynthesisConfig(swap_duration=1),
        )
        assert not cert.checked
        assert "not UNSAT" in cert.reason
