"""Edge-case tests for the optimization loops."""

import pytest

from repro.arch import grid, linear
from repro.circuit import QuantumCircuit
from repro.core import (
    OLSQ2,
    TBOLSQ2,
    SynthesisConfig,
    SynthesisTimeout,
    SwapEvent,
    serialize_blocks,
    validate_result,
)
from repro.workloads import qaoa_circuit


def triangle():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(0, 2)
    return qc


class TestTimeouts:
    def test_zero_budget_raises_synthesis_timeout(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=0.0, solve_time_budget=0.0)
        with pytest.raises(SynthesisTimeout):
            OLSQ2(cfg).synthesize(qaoa_circuit(8, seed=1), grid(3, 3), objective="depth")

    def test_tiny_budget_on_hard_instance(self):
        cfg = SynthesisConfig(
            swap_duration=1, time_budget=0.05, solve_time_budget=0.05
        )
        with pytest.raises(SynthesisTimeout):
            OLSQ2(cfg).synthesize(qaoa_circuit(10, seed=1), grid(3, 4), objective="depth")


class TestSwapObjectiveEdges:
    def test_zero_swap_instance_short_circuits(self):
        """Once zero SWAPs is reached the Pareto loop must stop immediately."""
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        cfg = SynthesisConfig(swap_duration=1, time_budget=60, max_pareto_rounds=5)
        res = OLSQ2(cfg).synthesize(qc, linear(2), objective="swap")
        assert res.swap_count == 0
        assert res.optimal
        assert len(res.pareto_points) == 1

    def test_max_pareto_rounds_zero_still_descends_once(self):
        cfg = SynthesisConfig(swap_duration=1, time_budget=60, max_pareto_rounds=0)
        res = OLSQ2(cfg).synthesize(triangle(), linear(3), objective="swap")
        assert res.pareto_points  # first descent always recorded
        validate_result(res)


class TestSerializeBlocksEdges:
    def test_empty_circuit(self):
        qc = QuantumCircuit(2)
        times, swaps = serialize_blocks(qc, [], [], swap_duration=1)
        assert times == [] and swaps == []

    def test_all_gates_one_block(self):
        qc = triangle()
        times, swaps = serialize_blocks(qc, [0, 0, 0], [], swap_duration=1)
        assert not swaps
        # intra-block ASAP respects dependencies
        assert times[0] < times[1] < times[2]

    def test_multiple_swaps_one_transition(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        qc.cx(0, 2)
        layer = [SwapEvent(0, 1, 0), SwapEvent(2, 3, 0)]
        times, swaps = serialize_blocks(qc, [0, 0, 1], layer, swap_duration=3)
        assert len(swaps) == 2
        assert swaps[0].finish_time == swaps[1].finish_time
        assert times[2] > swaps[0].finish_time

    def test_trailing_empty_blocks_ignored(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        times, swaps = serialize_blocks(qc, [0], [SwapEvent(0, 1, 2)], 1)
        # transition index 2 beyond the last block simply never fires
        assert times == [0]
        assert not swaps


class TestFrontierSerializer:
    def test_frontier_schedule_never_deeper_than_barrier(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        qc.cx(0, 2)
        blocks = [0, 0, 1]
        layer = [SwapEvent(1, 2, 0)]
        barrier_times, barrier_swaps = serialize_blocks(qc, blocks, layer, 3)
        frontier_times, frontier_swaps = serialize_blocks(
            qc, blocks, layer, 3, initial_mapping=[0, 1, 2, 3], n_phys=4
        )

        def depth(times, swaps):
            latest = max(times) if times else -1
            for s in swaps:
                latest = max(latest, s.finish_time)
            return latest + 1

        assert depth(frontier_times, frontier_swaps) <= depth(
            barrier_times, barrier_swaps
        )

    def test_untouched_gate_overlaps_swap(self):
        """Gate (2,3) in block 1 does not wait for the (0,1) swap."""
        qc = QuantumCircuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        blocks = [0, 1]
        layer = [SwapEvent(0, 1, 0)]
        times, swaps = serialize_blocks(
            qc, blocks, layer, 3, initial_mapping=[0, 1, 2, 3], n_phys=4
        )
        # swap occupies times 1..3; gate on (2,3) can run at time 0
        assert times[1] == 0
        assert swaps[0].finish_time == 3

    def test_frontier_results_validate_end_to_end(self):
        from repro.arch import grid
        from repro.workloads import qaoa_circuit

        cfg = SynthesisConfig(swap_duration=3, time_budget=90, max_pareto_rounds=1)
        res = TBOLSQ2(cfg).synthesize(qaoa_circuit(6, seed=1), grid(2, 3), objective="swap")
        validate_result(res)


class TestTBEdges:
    def test_tb_single_qubit_only_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(0)
        res = TBOLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            qc, linear(2), objective="swap"
        )
        assert res.swap_count == 0
        validate_result(res)

    def test_tb_depth_objective_counts_blocks(self):
        res = TBOLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            triangle(), linear(3), objective="depth"
        )
        assert res.optimal
        validate_result(res)
