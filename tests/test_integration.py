"""End-to-end integration tests across the whole stack.

These exercise the realistic flows: QASM in -> synthesize -> validate ->
QASM out; cross-synthesizer agreement on optima; physical-circuit
executability; and randomized consistency sweeps that tie together the
workload generators, every synthesizer, and the shared validator.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parse_qasm
from repro.arch import devices, grid, ibm_qx2, linear
from repro.baselines import OLSQ, SABRE, SATMap
from repro.circuit import QuantumCircuit, dependencies, longest_chain_length
from repro.core import (
    OLSQ2,
    TBOLSQ2,
    SynthesisConfig,
    is_valid,
    validate_result,
)
from repro.workloads import (
    ghz,
    qaoa_circuit,
    qft,
    queko_circuit,
    random_circuit,
    toffoli,
)


def fast_config(**kw):
    kw.setdefault("swap_duration", 1)
    kw.setdefault("time_budget", 90)
    kw.setdefault("solve_time_budget", 45)
    kw.setdefault("max_pareto_rounds", 1)
    return SynthesisConfig(**kw)


class TestQasmPipeline:
    def test_qasm_in_synthesize_qasm_out(self):
        source = qft(3).to_qasm()
        circuit = parse_qasm(source)
        result = OLSQ2(fast_config(swap_duration=3)).synthesize(
            circuit, ibm_qx2(), objective="depth"
        )
        validate_result(result)
        mapped = result.to_physical_circuit()
        reparsed = parse_qasm(mapped.to_qasm())
        assert reparsed.n_qubits == 5
        # every two-qubit gate in the emitted QASM respects the coupling map
        device = ibm_qx2()
        for gate in reparsed.gates:
            if gate.is_two_qubit:
                assert device.are_adjacent(*gate.qubits)

    def test_physical_circuit_preserves_logical_gate_order(self):
        circuit = qaoa_circuit(6, seed=4)
        result = OLSQ2(fast_config()).synthesize(circuit, grid(2, 3), objective="depth")
        validate_result(result)
        phys = result.to_physical_circuit(decompose_swaps=False)
        # Project out SWAPs: the remaining gates must be the logical gates
        # in a dependency-respecting order under the evolving mapping.
        logical = [g for g in phys.gates if g.name != "swap"]
        assert len(logical) == circuit.num_gates
        names_in = sorted(g.name for g in circuit.gates)
        names_out = sorted(g.name for g in logical)
        assert names_in == names_out


class TestCrossSynthesizerAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_tools_agree_on_optimal_depth(self, seed):
        circuit = random_circuit(4, 10, two_qubit_fraction=0.7, seed=seed)
        device = grid(2, 2)
        cfg = fast_config()
        r1 = OLSQ2(cfg).synthesize(circuit, device, objective="depth")
        r2 = OLSQ(cfg).synthesize(circuit, device, objective="depth")
        assert r1.optimal and r2.optimal
        assert r1.depth == r2.depth
        validate_result(r1)
        validate_result(r2)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_tb_swaps_at_most_full_model_swaps(self, seed):
        """TB-OLSQ2 relaxes scheduling, so its optimal SWAP count can only
        be <= the time-resolved Pareto point at matched settings."""
        circuit = qaoa_circuit(6, seed=seed)
        device = grid(2, 3)
        cfg = fast_config(time_budget=120)
        tb = TBOLSQ2(cfg).synthesize(circuit, device, objective="swap")
        full_model = OLSQ2(cfg).synthesize(circuit, device, objective="swap")
        validate_result(tb)
        validate_result(full_model)
        if tb.optimal:
            assert tb.swap_count <= full_model.swap_count

    def test_heuristics_never_beat_proven_optimal_depth(self):
        circuit = toffoli(2)
        device = ibm_qx2()
        exact = OLSQ2(fast_config(swap_duration=3)).synthesize(
            circuit, device, objective="depth"
        )
        assert exact.optimal
        sabre = SABRE(swap_duration=3, seed=0).synthesize(circuit, device)
        assert exact.depth <= sabre.depth


class TestOptimalityInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_depth_never_below_dependency_bound(self, seed):
        circuit = random_circuit(4, 8, two_qubit_fraction=0.6, seed=seed)
        result = OLSQ2(fast_config()).synthesize(circuit, grid(2, 2), objective="depth")
        assert result.depth >= longest_chain_length(circuit)
        validate_result(result)

    def test_queko_chain_of_optimality(self):
        device = grid(2, 3)
        inst = queko_circuit(device, depth=4, n_gates=8, seed=9)
        exact = OLSQ2(fast_config()).synthesize(inst.circuit, device, objective="depth")
        assert exact.depth == inst.optimal_depth
        tb = TBOLSQ2(fast_config()).synthesize(inst.circuit, device, objective="swap")
        assert tb.swap_count == 0
        validate_result(exact)
        validate_result(tb)

    def test_depth_monotone_in_swap_duration(self):
        tri = QuantumCircuit(3)
        tri.cx(0, 1)
        tri.cx(1, 2)
        tri.cx(0, 2)
        depths = []
        for duration in (1, 2, 3):
            cfg = SynthesisConfig(swap_duration=duration, time_budget=90)
            res = OLSQ2(cfg).synthesize(tri, linear(3), objective="depth")
            assert res.optimal
            validate_result(res)
            depths.append(res.depth)
        assert depths == sorted(depths)

    def test_denser_device_never_hurts_depth(self):
        circuit = qaoa_circuit(6, seed=1)
        cfg = fast_config()
        sparse = OLSQ2(cfg).synthesize(circuit, linear(6), objective="depth")
        dense = OLSQ2(cfg).synthesize(circuit, devices.full(6), objective="depth")
        assert sparse.optimal and dense.optimal
        assert dense.depth <= sparse.depth


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_gates=st.integers(3, 9),
)
def test_hypothesis_every_synthesizer_produces_valid_results(seed, n_gates):
    """The grand invariant: whatever the instance, every tool's output
    passes the shared validator."""
    circuit = random_circuit(4, n_gates, two_qubit_fraction=0.6, seed=seed)
    device = grid(2, 3)
    cfg = fast_config(time_budget=60)
    results = [
        OLSQ2(cfg).synthesize(circuit, device, objective="depth"),
        TBOLSQ2(cfg).synthesize(circuit, device, objective="depth"),
        SABRE(swap_duration=1, seed=seed).synthesize(circuit, device),
        SATMap(slice_size=5, config=cfg).synthesize(circuit, device),
    ]
    for result in results:
        assert is_valid(result), result.summary()
