"""Tests for UNSAT proof logging and the RUP checker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import brute_force_solve, CNF, mk_lit, SatResult, Solver
from repro.sat.proof import ProofError, check_unsat_proof, is_rup, proof_stats


def lit(v, sign=False):
    return mk_lit(v, sign)


def pigeonhole_cnf(n_pigeons, n_holes):
    cnf = CNF()
    x = [[cnf.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
    for p in range(n_pigeons):
        cnf.add_clause([lit(x[p][h]) for h in range(n_holes)])
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                cnf.add_clause([lit(x[p1][h], True), lit(x[p2][h], True)])
    return cnf


def solve_with_proof(cnf):
    solver = Solver(proof_log=True)
    cnf.to_solver(solver)
    return solver.solve(), solver.proof


class TestRup:
    def test_unit_is_rup_from_itself(self):
        clauses = [[lit(0)]]
        assert is_rup(clauses, [lit(0)])

    def test_resolvent_is_rup(self):
        clauses = [[lit(0), lit(1)], [lit(0, True), lit(1)]]
        assert is_rup(clauses, [lit(1)])

    def test_unrelated_clause_is_not_rup(self):
        clauses = [[lit(0), lit(1)]]
        assert not is_rup(clauses, [lit(2)])


class TestSolverProofs:
    def test_trivial_contradiction_proof(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([lit(a)])
        cnf.add_clause([lit(a, True)])
        status, proof = solve_with_proof(cnf)
        assert status is SatResult.UNSAT
        assert check_unsat_proof(cnf, proof)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_pigeonhole_proofs_check(self, n):
        cnf = pigeonhole_cnf(n + 1, n)
        status, proof = solve_with_proof(cnf)
        assert status is SatResult.UNSAT
        assert check_unsat_proof(cnf, proof)
        stats = proof_stats(proof)
        assert stats["additions"] >= 1

    @pytest.mark.parametrize("seed", range(25))
    def test_random_unsat_formulas_produce_valid_proofs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 7)
        cnf = CNF()
        cnf.new_vars(n)
        for _ in range(rng.randint(3 * n, 6 * n)):
            vs = rng.sample(range(n), min(3, n))
            cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
        expected = brute_force_solve(cnf)
        status, proof = solve_with_proof(cnf)
        if expected is None:
            assert status is SatResult.UNSAT
            assert check_unsat_proof(cnf, proof)
        else:
            assert status is SatResult.SAT

    def test_proof_off_by_default(self):
        solver = Solver()
        assert solver.proof is None

    def test_tampered_proof_rejected(self):
        cnf = pigeonhole_cnf(4, 3)
        status, proof = solve_with_proof(cnf)
        assert status is SatResult.UNSAT
        # inject a bogus derivation before the real steps
        bogus = [("a", (lit(0), lit(1, True)))] + list(proof)
        tampered_ok = True
        try:
            tampered_ok = check_unsat_proof(cnf, bogus)
        except ProofError:
            tampered_ok = False
        # the bogus clause may coincidentally be RUP; ensure a definitely
        # broken clause is rejected
        definitely_bogus = [("a", (lit(cnf.n_vars - 1),))] + list(proof)
        with pytest.raises(ProofError):
            check_unsat_proof(cnf, definitely_bogus)

    def test_incomplete_proof_returns_false(self):
        cnf = pigeonhole_cnf(4, 3)
        status, proof = solve_with_proof(cnf)
        truncated = [step for step in proof if step[1]]  # drop empty clause
        assert check_unsat_proof(cnf, truncated) is False

    def test_strict_deletion_of_absent_clause(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([lit(a)])
        proof = [("d", (lit(a, True),)), ("a", ())]
        with pytest.raises(ProofError):
            check_unsat_proof(cnf, proof, strict_deletions=True)

    def test_unknown_op_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ProofError):
            check_unsat_proof(cnf, [("x", ())])


class TestOptimizationProofs:
    def test_depth_optimality_unsat_is_certifiable(self):
        """The load-bearing UNSAT at bound T*-1 can be independently
        certified by re-solving a proof-logging solver on the instance."""
        from repro.arch import linear
        from repro.circuit import QuantumCircuit
        from repro.core import LayoutEncoder, SynthesisConfig
        from repro.smt import SMTContext

        tri = QuantumCircuit(3)
        tri.cx(0, 1)
        tri.cx(1, 2)
        tri.cx(0, 2)
        # depth 4 is optimal on a line (see core tests); bound 3 is UNSAT.
        solver = Solver(proof_log=True)
        ctx = SMTContext(sink=solver)
        enc = LayoutEncoder(
            tri, linear(3), horizon=5, config=SynthesisConfig(swap_duration=1), ctx=ctx
        )
        enc.encode()
        guard = enc.depth_guard(3)
        # make the bound unconditional so UNSAT is a formula property
        solver.add_clause([guard])
        assert solver.solve() is SatResult.UNSAT
        snapshot = CNF()
        # the proof must check against what the solver was given; rebuild
        # by replaying encode on a CNF sink
        from repro.smt import cnf_context

        ctx2 = cnf_context()
        enc2 = LayoutEncoder(
            tri, linear(3), horizon=5, config=SynthesisConfig(swap_duration=1), ctx=ctx2
        )
        enc2.encode()
        guard2 = enc2.depth_guard(3)
        ctx2.sink.add_clause([guard2])
        assert check_unsat_proof(ctx2.sink, solver.proof)
