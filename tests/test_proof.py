"""Tests for UNSAT proof logging and the RUP checker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import brute_force_solve, CNF, mk_lit, SatResult, Solver
from repro.sat.proof import (
    ProofError,
    RupChecker,
    check_unsat_proof,
    check_unsat_proof_slow,
    is_rup,
    proof_stats,
)


def lit(v, sign=False):
    return mk_lit(v, sign)


def pigeonhole_cnf(n_pigeons, n_holes):
    cnf = CNF()
    x = [[cnf.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
    for p in range(n_pigeons):
        cnf.add_clause([lit(x[p][h]) for h in range(n_holes)])
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                cnf.add_clause([lit(x[p1][h], True), lit(x[p2][h], True)])
    return cnf


def solve_with_proof(cnf):
    solver = Solver(proof_log=True)
    cnf.to_solver(solver)
    return solver.solve(), solver.proof


class TestRup:
    def test_unit_is_rup_from_itself(self):
        clauses = [[lit(0)]]
        assert is_rup(clauses, [lit(0)])

    def test_resolvent_is_rup(self):
        clauses = [[lit(0), lit(1)], [lit(0, True), lit(1)]]
        assert is_rup(clauses, [lit(1)])

    def test_unrelated_clause_is_not_rup(self):
        clauses = [[lit(0), lit(1)]]
        assert not is_rup(clauses, [lit(2)])


class TestSolverProofs:
    def test_trivial_contradiction_proof(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([lit(a)])
        cnf.add_clause([lit(a, True)])
        status, proof = solve_with_proof(cnf)
        assert status is SatResult.UNSAT
        assert check_unsat_proof(cnf, proof)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_pigeonhole_proofs_check(self, n):
        cnf = pigeonhole_cnf(n + 1, n)
        status, proof = solve_with_proof(cnf)
        assert status is SatResult.UNSAT
        assert check_unsat_proof(cnf, proof)
        stats = proof_stats(proof)
        assert stats["additions"] >= 1

    @pytest.mark.parametrize("seed", range(25))
    def test_random_unsat_formulas_produce_valid_proofs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 7)
        cnf = CNF()
        cnf.new_vars(n)
        for _ in range(rng.randint(3 * n, 6 * n)):
            vs = rng.sample(range(n), min(3, n))
            cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
        expected = brute_force_solve(cnf)
        status, proof = solve_with_proof(cnf)
        if expected is None:
            assert status is SatResult.UNSAT
            assert check_unsat_proof(cnf, proof)
        else:
            assert status is SatResult.SAT

    def test_proof_off_by_default(self):
        solver = Solver()
        assert solver.proof is None

    def test_tampered_proof_rejected(self):
        cnf = pigeonhole_cnf(4, 3)
        status, proof = solve_with_proof(cnf)
        assert status is SatResult.UNSAT
        # inject a bogus derivation before the real steps
        bogus = [("a", (lit(0), lit(1, True)))] + list(proof)
        tampered_ok = True
        try:
            tampered_ok = check_unsat_proof(cnf, bogus)
        except ProofError:
            tampered_ok = False
        # the bogus clause may coincidentally be RUP; ensure a definitely
        # broken clause is rejected
        definitely_bogus = [("a", (lit(cnf.n_vars - 1),))] + list(proof)
        with pytest.raises(ProofError):
            check_unsat_proof(cnf, definitely_bogus)

    def test_incomplete_proof_returns_false(self):
        cnf = pigeonhole_cnf(4, 3)
        status, proof = solve_with_proof(cnf)
        truncated = [step for step in proof if step[1]]  # drop empty clause
        assert check_unsat_proof(cnf, truncated) is False

    def test_strict_deletion_of_absent_clause(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([lit(a)])
        proof = [("d", (lit(a, True),)), ("a", ())]
        with pytest.raises(ProofError):
            check_unsat_proof(cnf, proof, strict_deletions=True)

    def test_unknown_op_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ProofError):
            check_unsat_proof(cnf, [("x", ())])


class TestFastChecker:
    """The watched-literal checker must agree with the naive reference."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_differential_vs_slow_on_pigeonhole(self, n):
        cnf = pigeonhole_cnf(n + 1, n)
        status, proof = solve_with_proof(cnf)
        assert status is SatResult.UNSAT
        assert check_unsat_proof(cnf, proof) == check_unsat_proof_slow(cnf, proof)

    @pytest.mark.parametrize("seed", range(10))
    def test_differential_vs_slow_on_random_unsat(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.randint(3, 6)
        cnf = CNF()
        cnf.new_vars(n)
        for _ in range(rng.randint(4 * n, 7 * n)):
            vs = rng.sample(range(n), min(3, n))
            cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
        status, proof = solve_with_proof(cnf)
        if status is SatResult.UNSAT:
            assert check_unsat_proof(cnf, proof)
            assert check_unsat_proof_slow(cnf, proof)

    def test_stats_are_filled(self):
        cnf = pigeonhole_cnf(4, 3)
        status, proof = solve_with_proof(cnf)
        stats = {}
        assert check_unsat_proof(cnf, proof, stats=stats)
        assert stats["steps"] == len(proof)
        assert stats["additions"] >= 1
        assert stats["propagations"] >= 1
        assert stats["ignored_deletions"] >= 0

    def test_ignored_deletions_counted_in_lenient_mode(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([lit(a)])
        cnf.add_clause([lit(a, True), lit(b)])
        cnf.add_clause([lit(b, True)])
        proof = [("d", (lit(a), lit(b))), ("a", ())]  # deletes a phantom
        stats = {}
        assert check_unsat_proof(cnf, proof, stats=stats)
        assert stats["ignored_deletions"] == 1

    def test_duplicate_clause_deletion_removes_one_copy(self):
        checker = RupChecker(2)
        checker.add_clause([lit(0), lit(1)])
        checker.add_clause([lit(0), lit(1)])  # identical copy
        assert checker.delete_clause([lit(0), lit(1)])
        # one copy must survive: unit-propagating -0 still forces 1
        assert checker.is_rup([lit(0), lit(1)])
        assert checker.delete_clause([lit(0), lit(1)])
        assert not checker.delete_clause([lit(0), lit(1)])  # none left

    def test_assumption_conditioned_unsat_certifies(self):
        """A failed-assumptions UNSAT (no empty clause on the log) checks
        via the terminal failed-core step under the same assumptions."""
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([lit(a, True), lit(b)])
        cnf.add_clause([lit(b, True), lit(c)])
        cnf.add_clause([lit(a, True), lit(c, True)])
        solver = Solver(proof_log=True)
        cnf.to_solver(solver)
        assert solver.solve(assumptions=[lit(a)]) is SatResult.UNSAT
        assert check_unsat_proof(cnf, solver.proof, assumptions=[lit(a)])
        # without the assumption the formula is satisfiable: the same log
        # must NOT certify unconditional unsatisfiability
        assert check_unsat_proof(cnf, solver.proof) is False

    def test_incremental_assumption_proofs_check_per_bound(self):
        """Every UNSAT verdict of one incremental run is certifiable from
        its own proof prefix, under that query's assumptions."""
        cnf = CNF()
        x = cnf.new_vars(4)
        guards = cnf.new_vars(2)
        # guard[0] -> all x false; guard[1] -> x0; plus x0-or-x1 base truth
        for v in x:
            cnf.add_clause([lit(guards[0], True), lit(v, True)])
        cnf.add_clause([lit(guards[1], True), lit(x[0])])
        cnf.add_clause([lit(x[0]), lit(x[1])])
        solver = Solver(proof_log=True)
        cnf.to_solver(solver)
        assert (
            solver.solve(assumptions=[lit(guards[0]), lit(guards[1])])
            is SatResult.UNSAT
        )
        prefix = len(solver.proof)
        assert solver.solve(assumptions=[lit(guards[1])]) is SatResult.SAT
        assert check_unsat_proof(
            cnf,
            solver.proof[:prefix],
            assumptions=[lit(guards[0]), lit(guards[1])],
        )


class TestOptimizationProofs:
    def test_depth_optimality_unsat_is_certifiable(self):
        """The load-bearing UNSAT at bound T*-1 can be independently
        certified by re-solving a proof-logging solver on the instance."""
        from repro.arch import linear
        from repro.circuit import QuantumCircuit
        from repro.core import LayoutEncoder, SynthesisConfig
        from repro.smt import SMTContext

        tri = QuantumCircuit(3)
        tri.cx(0, 1)
        tri.cx(1, 2)
        tri.cx(0, 2)
        # depth 4 is optimal on a line (see core tests); bound 3 is UNSAT.
        solver = Solver(proof_log=True)
        ctx = SMTContext(sink=solver)
        enc = LayoutEncoder(
            tri, linear(3), horizon=5, config=SynthesisConfig(swap_duration=1), ctx=ctx
        )
        enc.encode()
        guard = enc.depth_guard(3)
        # make the bound unconditional so UNSAT is a formula property
        solver.add_clause([guard])
        assert solver.solve() is SatResult.UNSAT
        snapshot = CNF()
        # the proof must check against what the solver was given; rebuild
        # by replaying encode on a CNF sink
        from repro.smt import cnf_context

        ctx2 = cnf_context()
        enc2 = LayoutEncoder(
            tri, linear(3), horizon=5, config=SynthesisConfig(swap_duration=1), ctx=ctx2
        )
        enc2.encode()
        guard2 = enc2.depth_guard(3)
        ctx2.sink.add_clause([guard2])
        assert check_unsat_proof(ctx2.sink, solver.proof)
