"""Tests for Tseitin gates and cardinality encodings.

The central property: for every encoding method and every assignment to the
input literals, the encoded formula is satisfiable iff the count of true
inputs respects the bound.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import (
    ADDER,
    PAIRWISE,
    SEQUENTIAL,
    TOTALIZER,
    IncrementalAdder,
    IncrementalCounter,
    IncrementalTotalizer,
    at_most_one_bitwise,
    at_most_one_commander,
    at_most_one_pairwise,
    binary_total,
    encode_at_least_k,
    encode_at_most_k,
    encode_exactly_k,
    full_adder,
    half_adder,
    ripple_add,
    tseitin_and,
    tseitin_and_many,
    tseitin_equiv,
    tseitin_or,
    tseitin_or_many,
    tseitin_xor,
)
from repro.sat import mk_lit, neg, SatResult, Solver


def fresh(n):
    solver = Solver()
    lits = [mk_lit(solver.new_var()) for _ in range(n)]
    return solver, lits


def force(solver, lits, pattern):
    """Assumption list pinning each input literal to the given bool."""
    return [l if bit else neg(l) for l, bit in zip(lits, pattern)]


class TestTseitinGates:
    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_and_or_xor_equiv(self, a, b):
        solver, lits = fresh(2)
        y_and = tseitin_and(solver, lits[0], lits[1])
        y_or = tseitin_or(solver, lits[0], lits[1])
        y_xor = tseitin_xor(solver, lits[0], lits[1])
        y_eq = tseitin_equiv(solver, lits[0], lits[1])
        assert solver.solve(assumptions=force(solver, lits, [a, b])) is SatResult.SAT
        assert solver.model_value(y_and) == (a and b)
        assert solver.model_value(y_or) == (a or b)
        assert solver.model_value(y_xor) == (a != b)
        assert solver.model_value(y_eq) == (a == b)

    @pytest.mark.parametrize("pattern", list(itertools.product([False, True], repeat=3)))
    def test_and_many_or_many(self, pattern):
        solver, lits = fresh(3)
        y_and = tseitin_and_many(solver, lits)
        y_or = tseitin_or_many(solver, lits)
        assert solver.solve(assumptions=force(solver, lits, pattern)) is SatResult.SAT
        assert solver.model_value(y_and) == all(pattern)
        assert solver.model_value(y_or) == any(pattern)

    def test_and_many_single_literal_passthrough(self):
        solver, lits = fresh(1)
        assert tseitin_and_many(solver, lits) == lits[0]
        assert tseitin_or_many(solver, lits) == lits[0]

    def test_empty_gates_raise(self):
        solver, _ = fresh(0)
        with pytest.raises(ValueError):
            tseitin_and_many(solver, [])
        with pytest.raises(ValueError):
            tseitin_or_many(solver, [])

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_half_adder(self, a, b):
        solver, lits = fresh(2)
        s, c = half_adder(solver, lits[0], lits[1])
        assert solver.solve(assumptions=force(solver, lits, [a, b])) is SatResult.SAT
        total = int(a) + int(b)
        assert solver.model_value(s) == bool(total & 1)
        assert solver.model_value(c) == bool(total >> 1)

    @pytest.mark.parametrize("pattern", list(itertools.product([False, True], repeat=3)))
    def test_full_adder(self, pattern):
        solver, lits = fresh(3)
        s, c = full_adder(solver, *lits)
        assert solver.solve(assumptions=force(solver, lits, pattern)) is SatResult.SAT
        total = sum(pattern)
        assert solver.model_value(s) == bool(total & 1)
        assert solver.model_value(c) == bool(total >> 1)

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 0), (3, 5), (7, 7), (13, 9)])
    def test_ripple_add(self, a, b):
        solver, lits = fresh(8)
        num_a, num_b = lits[:4], lits[4:]
        out = ripple_add(solver, num_a, num_b)
        pattern = [bool((a >> i) & 1) for i in range(4)] + [
            bool((b >> i) & 1) for i in range(4)
        ]
        assert solver.solve(assumptions=force(solver, lits, pattern)) is SatResult.SAT
        got = sum(solver.model_value(bit) << i for i, bit in enumerate(out))
        assert got == a + b

    @pytest.mark.parametrize("value", [0, 1, 5, 9, 15])
    def test_binary_total_counts(self, value):
        solver, lits = fresh(6)
        total = binary_total(solver, lits)
        pattern = [i < bin(value).count("1") for i in range(6)]
        # set exactly popcount(value) inputs true
        k = bin(value).count("1")
        pattern = [i < k for i in range(6)]
        assert solver.solve(assumptions=force(solver, lits, pattern)) is SatResult.SAT
        got = sum(solver.model_value(bit) << i for i, bit in enumerate(total))
        assert got == k


def exhaustive_check(method, n, k, mode="at_most"):
    """For every input pattern, encoded formula SAT iff bound respected."""
    for pattern in itertools.product([False, True], repeat=n):
        solver, lits = fresh(n)
        if mode == "at_most":
            encode_at_most_k(solver, lits, k, method=method)
            expected = sum(pattern) <= k
        elif mode == "at_least":
            encode_at_least_k(solver, lits, k, method=method)
            expected = sum(pattern) >= k
        else:
            encode_exactly_k(solver, lits, k, method=method)
            expected = sum(pattern) == k
        result = solver.solve(assumptions=force(solver, lits, pattern))
        assert result == expected, (method, n, k, mode, pattern)


class TestAtMostK:
    @pytest.mark.parametrize("method", [PAIRWISE, SEQUENTIAL, TOTALIZER, ADDER])
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 0), (5, 3), (5, 5), (6, 4)])
    def test_at_most_k_exhaustive(self, method, n, k):
        exhaustive_check(method, n, k, "at_most")

    @pytest.mark.parametrize("method", [SEQUENTIAL, TOTALIZER, ADDER])
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (5, 1)])
    def test_at_least_k_exhaustive(self, method, n, k):
        exhaustive_check(method, n, k, "at_least")

    @pytest.mark.parametrize("method", [SEQUENTIAL, TOTALIZER])
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 0), (5, 5)])
    def test_exactly_k_exhaustive(self, method, n, k):
        exhaustive_check(method, n, k, "exactly")

    def test_k_negative_raises(self):
        solver, lits = fresh(3)
        with pytest.raises(ValueError):
            encode_at_most_k(solver, lits, -1)

    def test_at_least_more_than_n_unsat(self):
        solver, lits = fresh(3)
        encode_at_least_k(solver, lits, 4)
        assert solver.solve() is SatResult.UNSAT


class TestAtMostOneVariants:
    @pytest.mark.parametrize(
        "encoder", [at_most_one_pairwise, at_most_one_bitwise, at_most_one_commander]
    )
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_amo_exhaustive(self, encoder, n):
        for pattern in itertools.product([False, True], repeat=n):
            solver, lits = fresh(n)
            encoder(solver, lits)
            result = solver.solve(assumptions=force(solver, lits, pattern))
            assert result == (sum(pattern) <= 1), (encoder.__name__, pattern)


class TestIncrementalBounds:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s, l: IncrementalCounter(s, l),
            lambda s, l: IncrementalTotalizer(s, l),
            lambda s, l: IncrementalAdder(s, l),
        ],
        ids=["counter", "totalizer", "adder"],
    )
    def test_descending_bounds(self, factory):
        """Emulates the SWAP-optimization iterative descent: one encoding,
        successively tighter bounds via assumptions."""
        n = 5
        solver, lits = fresh(n)
        card = factory(solver, lits)
        # Force exactly 3 inputs true through the formula itself.
        solver.add_clause([lits[0]])
        solver.add_clause([lits[1]])
        solver.add_clause([lits[2]])
        solver.add_clause([neg(lits[3])])
        solver.add_clause([neg(lits[4])])
        for bound in range(n, 2, -1):
            blit = card.bound_literal(bound)
            assumptions = [blit] if blit is not None else []
            assert solver.solve(assumptions=assumptions) is SatResult.SAT, bound
        blit = card.bound_literal(2)
        assert solver.solve(assumptions=[blit]) is SatResult.UNSAT

    @pytest.mark.parametrize(
        "factory",
        [
            lambda s, l: IncrementalCounter(s, l),
            lambda s, l: IncrementalTotalizer(s, l),
            lambda s, l: IncrementalAdder(s, l),
        ],
        ids=["counter", "totalizer", "adder"],
    )
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_bound_literal_semantics(self, factory, data):
        n = data.draw(st.integers(2, 6))
        pattern = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
        bound = data.draw(st.integers(0, n - 1))
        solver, lits = fresh(n)
        card = factory(solver, lits)
        blit = card.bound_literal(bound)
        assumptions = force(solver, lits, pattern)
        if blit is not None:
            assumptions = [blit] + assumptions
        assert solver.solve(assumptions=assumptions) == (sum(pattern) <= bound)

    def test_counter_bound_above_max_raises(self):
        solver, lits = fresh(6)
        card = IncrementalCounter(solver, lits, max_bound=2)
        with pytest.raises(ValueError):
            card.bound_literal(3)

    def test_trivial_bound_returns_none(self):
        solver, lits = fresh(3)
        card = IncrementalCounter(solver, lits)
        assert card.bound_literal(3) is None
        assert card.bound_literal(7) is None


class TestEncodingSizes:
    def test_sequential_counter_smaller_than_pairwise_for_large_n(self):
        from repro.sat import CNF

        n, k = 12, 3
        seq = CNF()
        lits = [mk_lit(seq.new_var()) for _ in range(n)]
        encode_at_most_k(seq, lits, k, method=SEQUENTIAL)
        pw = CNF()
        lits = [mk_lit(pw.new_var()) for _ in range(n)]
        encode_at_most_k(pw, lits, k, method=PAIRWISE)
        assert seq.num_clauses < pw.num_clauses

    def test_adder_uses_fewer_vars_than_counter_for_big_n(self):
        from repro.sat import CNF

        n, k = 40, 20
        seq = CNF()
        lits = [mk_lit(seq.new_var()) for _ in range(n)]
        encode_at_most_k(seq, lits, k, method=SEQUENTIAL)
        add = CNF()
        lits = [mk_lit(add.new_var()) for _ in range(n)]
        encode_at_most_k(add, lits, k, method=ADDER)
        assert add.n_vars < seq.n_vars
