"""Tests for circuit and mapping metrics."""

import pytest

from repro.arch import full, linear
from repro.circuit import QuantumCircuit
from repro.circuit.metrics import circuit_metrics, mapping_metrics
from repro.core import OLSQ2, SynthesisConfig, validate_result
from repro.workloads import ghz, qaoa_circuit


class TestCircuitMetrics:
    def test_ghz(self):
        m = circuit_metrics(ghz(4))
        assert m.n_qubits == 4
        assert m.n_gates == 4
        assert m.n_two_qubit == 3
        assert m.depth == 4
        assert m.two_qubit_depth == 3
        assert m.max_interaction_degree == 2  # middle of the CNOT chain

    def test_parallel_circuit(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        m = circuit_metrics(qc)
        assert m.depth == 1
        assert m.parallelism == 2.0

    def test_two_qubit_depth_ignores_singles(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(0)
        qc.cx(0, 1)
        m = circuit_metrics(qc)
        assert m.depth == 3
        assert m.two_qubit_depth == 1

    def test_qaoa_interaction_degree(self):
        m = circuit_metrics(qaoa_circuit(8, seed=1))
        assert m.max_interaction_degree == 3  # 3-regular by construction

    def test_as_dict(self):
        d = circuit_metrics(ghz(3)).as_dict()
        assert d["n_gates"] == 3


class TestMappingMetrics:
    def _result(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.cx(0, 2)
        return OLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            qc, linear(3), objective="swap"
        )

    def test_overheads(self):
        res = self._result()
        validate_result(res)
        m = mapping_metrics(res)
        assert m.swap_count == 1
        assert m.mapped_depth == res.depth
        assert m.depth_overhead == pytest.approx(res.depth / 3)
        assert m.cnot_overhead == pytest.approx((3 + 3) / 3)
        assert m.physical_qubits_used == 3
        assert m.device_utilisation == 1.0

    def test_no_swap_case(self):
        qc = ghz(3)
        res = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            qc, full(3), objective="swap"
        )
        m = mapping_metrics(res)
        assert m.swap_count == 0
        assert m.cnot_overhead == 1.0

    def test_single_qubit_only_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        res = OLSQ2(SynthesisConfig(swap_duration=1, time_budget=60)).synthesize(
            qc, linear(2), objective="depth"
        )
        m = mapping_metrics(res)
        assert m.cnot_overhead == 1.0
        assert m.physical_qubits_used == 1
