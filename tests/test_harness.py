"""Tests for the benchmark harness: tables, configs, and experiment plumbing."""

import pytest

from repro.arch import grid
from repro.harness import (
    TABLE1_VARIANTS,
    TABLE2_VARIANTS,
    average,
    build_bounded_encoder,
    build_encoder,
    format_table,
    geometric_mean,
    ratio,
)
from repro.harness.tables import format_cell
from repro.workloads import qaoa_circuit
from repro.sat import SatResult


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(3) == "3"
        assert format_cell(1.234) == "1.23"
        assert format_cell(123.456) == "123.5"
        assert format_cell("TO") == "TO"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_ratio(self):
        assert ratio(10.0, 2.0) == 5.0
        assert ratio(None, 2.0) is None
        assert ratio(10.0, None) is None
        assert ratio(10.0, 0.0) is None

    def test_average(self):
        assert average([1.0, 3.0]) == 2.0
        assert average([None, 4.0]) == 4.0
        assert average([None, None]) is None

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0


class TestConfigBuilders:
    @pytest.mark.parametrize("name", sorted(TABLE1_VARIANTS))
    def test_table1_encoders_solve_tiny_instance(self, name):
        circuit = qaoa_circuit(4, seed=1, degree=2)
        enc = build_encoder(TABLE1_VARIANTS[name], circuit, grid(2, 2), horizon=5)
        assert enc.solve(time_budget=30) is SatResult.SAT

    @pytest.mark.parametrize("name", sorted(TABLE2_VARIANTS))
    def test_table2_encoders_solve_tiny_instance(self, name):
        circuit = qaoa_circuit(4, seed=1, degree=2)
        enc = build_bounded_encoder(
            TABLE2_VARIANTS[name], circuit, grid(2, 2), horizon=5, tb_horizon=3
        )
        enc.encode()
        enc.init_swap_counter(max_bound=4)
        guard = enc.swap_guard(4)
        assumptions = [guard] if guard is not None else []
        assert enc.ctx.solve(assumptions=assumptions, time_budget=30) is SatResult.SAT

    def test_all_variants_unique_configs(self):
        assert len(TABLE1_VARIANTS) == 6  # the paper's six
        assert len(TABLE2_VARIANTS) == 5  # the paper's five
