"""Tests for the ``olsq2`` command-line interface."""

import pytest

from repro.cli import main
from repro.circuit import parse_qasm
from repro.workloads import qaoa_circuit


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "circ.qasm"
    path.write_text(qaoa_circuit(6, seed=1).to_qasm())
    return str(path)


class TestCompile:
    def test_compile_depth(self, qasm_file, capsys):
        rc = main(
            [
                "compile",
                qasm_file,
                "--device",
                "grid-3x3",
                "--swap-duration",
                "1",
                "--time-budget",
                "60",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "depth=" in out
        assert "initial mapping" in out

    def test_compile_sabre_with_output(self, qasm_file, tmp_path, capsys):
        out_path = tmp_path / "mapped.qasm"
        rc = main(
            [
                "compile",
                qasm_file,
                "--device",
                "grid-3x3",
                "--synthesizer",
                "sabre",
                "--swap-duration",
                "1",
                "--output",
                str(out_path),
            ]
        )
        assert rc == 0
        mapped = parse_qasm(out_path.read_text())
        assert mapped.n_qubits == 9

    def test_compile_tb_swap(self, qasm_file, capsys):
        rc = main(
            [
                "compile",
                qasm_file,
                "--device",
                "grid-3x3",
                "--synthesizer",
                "tb-olsq2",
                "--objective",
                "swap",
                "--swap-duration",
                "1",
                "--time-budget",
                "90",
            ]
        )
        assert rc == 0
        assert "swaps=" in capsys.readouterr().out


class TestOtherCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "eagle" in out and "127" in out

    @pytest.mark.parametrize(
        "family,extra",
        [
            ("qaoa", ["--qubits", "6"]),
            ("queko", ["--device", "grid-3x3", "--depth", "3", "--gates", "6"]),
            ("qft", ["--qubits", "4"]),
            ("toffoli", ["--qubits", "5"]),
        ],
    )
    def test_generate_parses_back(self, family, extra, capsys):
        assert main(["generate", family] + extra) == 0
        out = capsys.readouterr().out
        circuit = parse_qasm(out)
        assert circuit.num_gates > 0

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
