"""Subarchitecture extraction, warm-started descent, and translation.

Covers the solve-small pipeline end to end: candidate enumeration
invariants (connected, circuit-width, deduplicated by isomorphism
signature), lossless round-tripping of results back to full-device
labels through the independent validator, soundness of the analytic
SWAP lower bound and the SABRE warm-start upper bound, and the
sequential + parallel drivers proving optimality on devices much larger
than the circuit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import devices
from repro.arch.coupling import CouplingGraph
from repro.arch.subarch import (
    candidate_signature,
    dominates,
    enumerate_candidates,
    extract_candidates,
    translate_result,
)
from repro.baselines.sabre import SABRE
from repro.circuit.circuit import QuantumCircuit
from repro.core import (
    OLSQ2,
    ParallelDescent,
    PortfolioEntry,
    SynthesisConfig,
    analytic_swap_lower_bound,
    validate_result,
)
from repro.workloads.queko import queko_circuit

DEVICE_FACTORIES = [
    lambda: devices.grid(3, 4),
    devices.ibm_tokyo,
    devices.ibm_falcon,
    lambda: devices.sycamore_region(24),
]


# -- device factory memoization (lru_cache) ----------------------------------


def test_device_factories_return_shared_instances():
    assert devices.ibm_tokyo() is devices.ibm_tokyo()
    assert devices.grid(3, 3) is devices.grid(3, 3)
    assert devices.sycamore_region(20) is devices.sycamore_region(20)
    assert devices.grid(3, 3) is not devices.grid(3, 4)


# -- candidate enumeration invariants ----------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    factory=st.sampled_from(DEVICE_FACTORIES),
    width=st.integers(min_value=1, max_value=12),
)
def test_candidates_connected_and_sized(factory, width):
    device = factory()
    for cand in enumerate_candidates(device, width):
        assert cand.n_qubits == width
        assert len(set(cand.qubits)) == width
        assert all(0 <= p < device.n_qubits for p in cand.qubits)
        assert cand.graph.n_qubits == width
        assert cand.graph.is_connected()
        # The candidate graph is the honest induced subgraph: every edge
        # maps to a device edge.
        for a, b in cand.graph.edges:
            assert device.are_adjacent(cand.qubits[a], cand.qubits[b])


@settings(max_examples=20, deadline=None)
@given(
    factory=st.sampled_from(DEVICE_FACTORIES),
    width=st.integers(min_value=2, max_value=10),
)
def test_candidate_signatures_distinct(factory, width):
    device = factory()
    candidates = enumerate_candidates(device, width, max_candidates=8)
    signatures = [c.signature for c in candidates]
    assert len(signatures) == len(set(signatures))
    for cand in candidates:
        assert cand.signature == candidate_signature(cand.graph)


def test_width_equal_device_returns_identity_candidate():
    device = devices.grid(2, 3)
    (cand,) = enumerate_candidates(device, device.n_qubits)
    assert cand.qubits == tuple(range(device.n_qubits))
    assert cand.graph.num_edges == device.num_edges


def test_width_beyond_device_returns_nothing():
    assert enumerate_candidates(devices.grid(2, 2), 5) == []


def test_disconnected_device_skips_small_components():
    device = CouplingGraph(5, [(0, 1), (2, 3), (3, 4)], name="two-parts")
    candidates = enumerate_candidates(device, 3)
    assert candidates, "the 3-qubit component must be found"
    for cand in candidates:
        assert set(cand.qubits) == {2, 3, 4}
    assert enumerate_candidates(device, 4) == []


def test_dominates_is_reflexive_and_prunes_sparser_shapes():
    line = devices.linear(4)
    sig_line = candidate_signature(line)
    sig_ring = candidate_signature(devices.ring(4))
    assert dominates(sig_line, sig_line)
    # The 4-ring has every degree and cumulative-distance coordinate at
    # least as good as the 4-line, never the other way around.
    assert dominates(sig_ring, sig_line)
    assert not dominates(sig_line, sig_ring)


# -- translation round-trip --------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_translation_round_trips_through_validator(seed):
    source = devices.grid(2, 2)
    inst = queko_circuit(source, depth=3, n_gates=6, seed=seed)
    device = devices.ibm_tokyo()
    candidates = extract_candidates(inst.circuit, device)
    assert candidates
    cand = candidates[0]
    cfg = SynthesisConfig(swap_duration=1, time_budget=60, solve_time_budget=30)
    local = OLSQ2(cfg).synthesize(inst.circuit, cand.graph, objective="depth")
    translated = translate_result(local, cand.qubits, device)
    # Depth and SWAP count are label-free and survive exactly; the mapping
    # round-trips through the region's label table.
    assert translated.depth == local.depth
    assert translated.swap_count == local.swap_count
    assert translated.device is device
    assert translated.initial_mapping == [
        cand.qubits[p] for p in local.initial_mapping
    ]
    validate_result(translated, strict_dependencies=True)


def test_translation_rejects_mismatched_region():
    source = devices.grid(2, 2)
    inst = queko_circuit(source, depth=2, n_gates=4, seed=3)
    cfg = SynthesisConfig(swap_duration=1, time_budget=60, solve_time_budget=30)
    local = OLSQ2(cfg).synthesize(inst.circuit, source, objective="depth")
    with pytest.raises(ValueError, match="candidate has"):
        translate_result(local, (0, 1, 2), devices.ibm_tokyo())


# -- analytic SWAP lower bound ----------------------------------------------


def test_analytic_swap_lower_bound_never_overclaims():
    # QUEKO instances are swap-free by construction: the bound must be 0.
    for seed in range(5):
        inst = queko_circuit(devices.grid(2, 3), depth=3, n_gates=8, seed=seed)
        assert analytic_swap_lower_bound(inst.circuit, devices.grid(2, 3)) == 0
        assert (
            analytic_swap_lower_bound(inst.circuit, devices.sycamore_region(24))
            == 0
        )


def test_analytic_swap_lower_bound_detects_forced_swaps():
    # A 4-qubit all-to-all interaction on a line: each qubit needs 3
    # partners but the line offers degree 2, so at least one SWAP.
    qc = QuantumCircuit(4)
    for a in range(4):
        for b in range(a + 1, 4):
            qc.cx(a, b)
    line = devices.linear(4)
    lb = analytic_swap_lower_bound(qc, line)
    assert lb >= 1
    # And the bound is matched by an actual optimal synthesis.
    cfg = SynthesisConfig(swap_duration=1, time_budget=120, solve_time_budget=60)
    result = OLSQ2(cfg).synthesize(qc, line, objective="swap")
    assert result.swap_count >= lb


def test_analytic_swap_lower_bound_degenerate_cases():
    qc = QuantumCircuit(3)
    qc.h(0)
    assert analytic_swap_lower_bound(qc, devices.linear(3)) == 0
    qc2 = QuantumCircuit(2)
    qc2.cx(0, 1)
    assert analytic_swap_lower_bound(qc2, CouplingGraph(2, [])) == 0


# -- warm start --------------------------------------------------------------


def test_sabre_warm_upper_bound_dominates_proven_optimum():
    # Acceptance criterion: the SABRE warm-start depth is a sound upper
    # bound, i.e. >= the proven optimal depth.
    inst = queko_circuit(devices.grid(2, 3), depth=4, n_gates=10, seed=2)
    device = devices.grid(2, 3)
    warm = SABRE(swap_duration=1, seed=0).synthesize(inst.circuit, device)
    cfg = SynthesisConfig(swap_duration=1, time_budget=120, solve_time_budget=60)
    exact = OLSQ2(cfg).synthesize(inst.circuit, device, objective="depth")
    assert exact.optimal
    assert warm.depth >= exact.depth


def test_warm_start_shortcut_returns_validated_optimum():
    # QUEKO + SABRE usually meets the dependency bound: the optimizer may
    # return the heuristic model without any solver query, but the result
    # must still be optimal, validated, and carry interval telemetry.
    inst = queko_circuit(devices.grid(2, 3), depth=4, n_gates=10, seed=1)
    cfg = SynthesisConfig(
        swap_duration=1, time_budget=120, solve_time_budget=60,
        warm_start="sabre",
    )
    result = OLSQ2(cfg).synthesize(inst.circuit, devices.grid(2, 3))
    assert result.optimal
    assert result.depth == inst.optimal_depth
    validate_result(result, strict_dependencies=True)
    interval = result.solver_stats["interval"]
    assert interval["depth_lb"] == inst.optimal_depth
    assert interval.get("warm_depth_ub", result.depth) >= result.depth


# -- sequential subarch driver ----------------------------------------------


def test_subarch_solves_small_and_proves_global_optimum():
    inst = queko_circuit(devices.grid(2, 3), depth=4, n_gates=10, seed=1)
    device = devices.sycamore_region(24)
    cfg = SynthesisConfig(
        swap_duration=1, time_budget=300, solve_time_budget=120,
        subarch="auto",
    )
    result = OLSQ2(cfg).synthesize(inst.circuit, device, objective="depth")
    assert result.depth == inst.optimal_depth
    assert result.optimal  # depth == dependency bound -> global proof
    assert result.device is device
    validate_result(result, strict_dependencies=True)
    sub = result.solver_stats["subarch"]
    assert sub["global_proof"]
    assert len(sub["region"]) == inst.circuit.n_qubits


def test_subarch_swap_objective_zero_swaps_is_global():
    inst = queko_circuit(devices.grid(2, 3), depth=3, n_gates=8, seed=4)
    device = devices.sycamore_region(24)
    cfg = SynthesisConfig(
        swap_duration=1, time_budget=300, solve_time_budget=120,
        subarch="auto",
    )
    result = OLSQ2(cfg).synthesize(inst.circuit, device, objective="swap")
    assert result.swap_count == 0
    assert result.optimal
    validate_result(result, strict_dependencies=True)


def test_subarch_ignored_for_pinned_mapping_and_small_devices():
    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(1, 2)
    cfg = SynthesisConfig(
        swap_duration=1, time_budget=60, solve_time_budget=30, subarch="on"
    )
    synth = OLSQ2(cfg)
    # Pinned mapping: full-device encoding, labels honoured.
    pinned = synth.synthesize(
        qc, devices.grid(2, 3), initial_mapping=[0, 1, 2]
    )
    assert pinned.initial_mapping == [0, 1, 2]
    assert "subarch" not in pinned.solver_stats
    # Device no larger than the circuit: nothing to extract.
    same = synth.synthesize(qc, devices.linear(3))
    assert "subarch" not in same.solver_stats


def test_subarch_config_validation():
    with pytest.raises(ValueError, match="subarch mode"):
        SynthesisConfig(subarch="sometimes")
    with pytest.raises(ValueError, match="candidate count"):
        SynthesisConfig(subarch_candidates=0)
    # The new knobs are part of the wire format (service cache keys).
    cfg = SynthesisConfig(subarch="auto", subarch_candidates=2)
    blob = cfg.to_dict()
    assert blob["subarch"] == "auto"
    assert SynthesisConfig.from_dict(blob) == cfg


# -- parallel subarch race ---------------------------------------------------


def test_parallel_descent_races_candidate_regions():
    inst = queko_circuit(devices.grid(2, 3), depth=4, n_gates=10, seed=1)
    device = devices.sycamore_region(24)
    cfg = SynthesisConfig(
        swap_duration=1, time_budget=120, solve_time_budget=60,
        subarch="auto", warm_start="sabre",
    )
    entries = [PortfolioEntry(f"w{i}", cfg) for i in range(2)]
    pd = ParallelDescent(entries, time_budget=120, slice_budget=0.5)
    result = pd.synthesize(inst.circuit, device, objective="depth")
    assert result.depth == inst.optimal_depth
    assert result.optimal
    validate_result(result, strict_dependencies=True)
    parallel = result.solver_stats["parallel"]
    regions = parallel.get("subarch_regions", {})
    assert regions, "worker 1 must have been assigned a candidate region"
    for region in regions.values():
        assert len(region) == inst.circuit.n_qubits
    interval = result.solver_stats["interval"]
    assert interval["depth_lb"] == inst.optimal_depth


# -- SABRE diagnosable failures ----------------------------------------------


def test_sabre_stuck_error_names_circuit_and_device():
    device = CouplingGraph(4, [(0, 1), (2, 3)], name="split-pair")
    qc = QuantumCircuit(2, name="cx-pair")
    qc.cx(0, 1)
    # Feasible placement exists (both qubits in one component), but the
    # pinned mapping splits the pair across components: routing must fail
    # loudly, naming the circuit and device, not emit a partial schedule.
    with pytest.raises(RuntimeError) as exc:
        SABRE().synthesize(qc, device, initial_mapping=[0, 2])
    message = str(exc.value)
    assert "cx-pair" in message
    assert "split-pair" in message
    assert "SABRE routing failed" in message


def test_sabre_no_candidate_swaps_raises_not_typeerror():
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    with pytest.raises(RuntimeError, match="SABRE routing failed"):
        SABRE().synthesize(qc, CouplingGraph(2, []), initial_mapping=[0, 1])
