"""Microbenchmarks of the CDCL substrate itself.

Not a paper table — these keep the solver's performance visible so a
regression in the hot loops (propagation, analysis) is caught by the bench
suite rather than silently inflating every other experiment.
"""

import random

import pytest

from repro.sat import mk_lit, SatResult, Solver


def _pigeonhole(n_pigeons, n_holes):
    solver = Solver()
    x = [[solver.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
    for p in range(n_pigeons):
        solver.add_clause([mk_lit(x[p][h]) for h in range(n_holes)])
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                solver.add_clause([mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)])
    return solver


def _random_3sat(n_vars, ratio, seed):
    rng = random.Random(seed)
    solver = Solver()
    solver.new_vars(n_vars)
    for _ in range(int(ratio * n_vars)):
        vs = rng.sample(range(n_vars), 3)
        solver.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    return solver


def test_bench_pigeonhole_unsat(benchmark):
    def run():
        solver = _pigeonhole(7, 6)
        assert solver.solve() is SatResult.UNSAT
        return solver.stats.conflicts

    conflicts = benchmark.pedantic(run, rounds=3, iterations=1)
    assert conflicts > 0


def test_bench_random_3sat_sat(benchmark):
    def run():
        solver = _random_3sat(150, 4.0, seed=7)
        assert solver.solve() is SatResult.SAT

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_random_3sat_hard(benchmark):
    def run():
        solver = _random_3sat(100, 4.3, seed=11)
        result = solver.solve(conflict_budget=20000)
        assert result is not SatResult.UNKNOWN

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_incremental_assumptions(benchmark):
    solver = _random_3sat(120, 3.5, seed=3)

    def run():
        for v in range(20):
            solver.solve(assumptions=[mk_lit(v)])

    benchmark.pedantic(run, rounds=3, iterations=1)
