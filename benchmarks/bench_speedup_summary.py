"""Sec. IV-C summary — end-to-end depth-optimization speedup, OLSQ vs OLSQ2.

Paper: OLSQ solved only 5 of 22 cases in budget; OLSQ2 solved all, up to
157x faster (64x average).  Scaled shape: both tools agree on the optimum
(asserted in the driver) and OLSQ2's wall time is lower on aggregate.

Run standalone:  python benchmarks/bench_speedup_summary.py
"""

from conftest import run_once

from repro.harness import print_experiment, run_speedup_summary

BUDGET = 120.0


def test_speedup_summary(benchmark):
    headers, rows, notes = run_once(benchmark, run_speedup_summary, time_budget=BUDGET)
    print()
    print_experiment(headers, rows, notes, "Sec. IV-C speedup (scaled)")
    data = rows[:-1]
    olsq_total = sum(row[2] for row in data if row[2] is not None)
    olsq2_total = sum(row[3] for row in data if row[3] is not None)
    solved_olsq2 = sum(1 for row in data if row[3] is not None)
    assert solved_olsq2 == len(data), "OLSQ2 must solve every case"
    assert olsq2_total < olsq_total * 1.5, (olsq_total, olsq2_total)


if __name__ == "__main__":
    headers, rows, notes = run_speedup_summary(time_budget=BUDGET)
    print_experiment(headers, rows, notes, "Sec. IV-C speedup (scaled)")
