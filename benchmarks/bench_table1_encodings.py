"""Table I — runtime comparison of the six formulation/encoding variants.

Paper shape: OLSQ(int) is consistently the worst; OLSQ2(bv) the best by
orders of magnitude; OLSQ2(int) beats OLSQ(int) (fewer variables); the
EUF/channeling variants sit in between.  "int" runs the lazy theory loop,
"bv" the eager bit-blasting path (see repro.smt.lazy for the substitution
rationale).

Run standalone:  python benchmarks/bench_table1_encodings.py
"""

from conftest import run_once

from repro.harness import print_experiment, run_table1

TIMEOUT = 90.0


def _col(headers, rows, name):
    idx = headers.index(name)
    return [row[idx] for row in rows[:-1]]  # skip the Avg. row


def test_table1_encodings(benchmark):
    headers, rows, notes = run_once(benchmark, run_table1, timeout=TIMEOUT)
    print()
    print_experiment(headers, rows, notes, "Table I (scaled reproduction)")
    olsq_int = _col(headers, rows, "OLSQ(int) (s)")
    olsq2_bv = _col(headers, rows, "OLSQ2(bv) (s)")
    olsq2_int = _col(headers, rows, "OLSQ2(int) (s)")
    # Shape 1: OLSQ2(bv) beats OLSQ(int) on every case both solved.
    for base, fast in zip(olsq_int, olsq2_bv):
        if base is not None and fast is not None:
            assert fast < base
    # Shape 2: the succinct formulation helps within the int encoding
    # on aggregate (Table I's 3.59x average).
    solved = [
        (a, b) for a, b in zip(olsq_int, olsq2_int) if a is not None and b is not None
    ]
    assert solved, "need at least one jointly solved int case"
    assert sum(b for _a, b in solved) < sum(a for a, _b in solved) * 1.5


if __name__ == "__main__":
    headers, rows, notes = run_table1(timeout=TIMEOUT)
    print_experiment(headers, rows, notes, "Table I (scaled reproduction)")
