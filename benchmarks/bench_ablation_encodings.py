"""Ablation — eager domain encodings beyond the paper's int/bv pair.

The paper compares Z3's integer theory against bit-vectors.  At the raw SAT
level there are more choices: the direct (one-hot) encoding and the order
(unary ladder) encoding.  This bench solves identical layout instances under
all three eager encodings plus the lazy "int" emulation, completing the
design space around the paper's Improvement 3.

Run standalone:  python benchmarks/bench_ablation_encodings.py
"""

import time

from conftest import run_once

from repro.arch import grid
from repro.core import LayoutEncoder, SynthesisConfig
from repro.harness import format_table
from repro.workloads import qaoa_circuit
from repro.sat import SatResult

TIMEOUT = 90.0
ENCODINGS = ("bitvec", "onehot", "order", "int")


def run_ablation(timeout: float = TIMEOUT):
    cases = [((2, 3), 6), ((3, 3), 8), ((3, 4), 10)]
    rows = []
    for (gr, gc), n in cases:
        device = grid(gr, gc)
        circuit = qaoa_circuit(n, seed=1)
        row = [f"QAOA({n}) {gr}x{gc}"]
        for encoding in ENCODINGS:
            cfg = SynthesisConfig(encoding=encoding, swap_duration=1)
            enc = LayoutEncoder(circuit, device, horizon=8, config=cfg)
            enc.encode()
            start = time.monotonic()
            status = enc.ctx.solve(time_budget=timeout)
            seconds = time.monotonic() - start
            row.append(seconds if status is not SatResult.UNKNOWN else None)
            row.append(enc.ctx.n_vars)
        rows.append(row)
    headers = ["Case"]
    for e in ENCODINGS:
        headers.extend([f"{e} (s)", "vars"])
    return headers, rows


def test_ablation_encodings(benchmark):
    headers, rows = run_once(benchmark, run_ablation, timeout=TIMEOUT)
    print()
    print(format_table(headers, rows, title="Ablation: eager domain encodings"))
    # The lazy-int emulation must be the slowest eager-vs-lazy comparison
    # on the largest case that all encodings solved.
    for row in rows:
        times = {e: row[1 + 2 * i] for i, e in enumerate(ENCODINGS)}
        if all(t is not None for t in times.values()):
            assert times["int"] >= times["bitvec"], row


if __name__ == "__main__":
    headers, rows = run_ablation()
    print(format_table(headers, rows, title="Ablation: eager domain encodings"))
