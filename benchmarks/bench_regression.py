"""Fixed-workload perf regression harness (PR 2-10 acceptance numbers).

Runs a small, deterministic workload suite against the in-tree solver and
writes the measurements to a JSON file (``BENCH_PR10.json`` at the repo root
by default):

* **encode** — the PR 10 acceptance workload: the queko encode clause set
  loaded per-clause vs through :meth:`Solver.add_clauses_bulk` under both
  kernels, with the bulk/per-clause ratio gated at >= 3x on the resolved
  default kernel (``gate_passed``) and final-state identity asserted;

* **prop_network** — a pure unit-propagation workload (long binary
  implication chains plus wide size-4 clauses, solved repeatedly with no
  conflicts), isolating watcher/arena throughput from search heuristics;
* **sat_engine** — the :mod:`bench_sat_engine` workloads (pigeonhole UNSAT
  + random 3-SAT), measuring end-to-end CDCL wall time and props/sec;
* **queko_synthesis** — ``optimize_depth`` on QUEKO circuits built for a
  2x3 grid but synthesized on a 6-qubit line, so SWAPs push the optimum
  past the dependency bound and the relax phase must grow the horizon —
  exercising :meth:`LayoutEncoder.extend_horizon` learnt-clause reuse;
* **parallel_portfolio** — the PR 3 acceptance workload: the same QUEKO
  SWAP-minimisation instance solved sequentially, by the *independent*
  :class:`PortfolioSynthesizer`, and by the *cooperating*
  :class:`ParallelDescent` (bound splitting + clause sharing) at 1/2/4
  workers, recording wall time, conflicts, clauses shared/imported/pruned
  and encoded-template hits per worker count, plus a
  ``scaling_efficiency`` summary that flags any cooperating-N run slower
  than sequential (the BENCH_PR8 negative-scaling regression was silent);
* **proof_checker** — the PR 4 acceptance workload: an ascending ladder
  of UNSAT refutations (pigeonhole + over-constrained random 3-SAT),
  certified by the old naive fixpoint RUP checker
  (:func:`check_unsat_proof_slow`) and the new watched-literal one
  (:func:`check_unsat_proof`) under one fixed wall-clock budget per
  refutation; the acceptance bar is that the new checker certifies a
  refutation at least 10x larger (in proof steps) than the largest the
  old checker manages within the same budget;
* **service** — the PR 6 acceptance workload: a batch of relabeled-
  isomorphic circuit families driven through the async
  :class:`repro.service.SynthesisService` cold, cache-warm, and
  pool-warm, recording cache-hit rate, solver dispatches, and p50/p95
  response latency per phase;
* **large_device** — the PR 8 acceptance workload: QUEKO circuits from a
  2x3 grid synthesized on 27/54/127-qubit devices with subarchitecture
  extraction + SABRE warm start on vs off, recording wall clocks, the
  on/off speedup (must be >= 3x), and the initial descent interval width;
* **kernel** — the PR 7 acceptance workload: the ``sat_engine`` suite
  run once under ``kernel="python"`` and once under ``kernel="native"``
  (same formulas, same seeds), reporting props/sec side by side plus the
  native/python ratio — the direct measurement of the compiled
  propagation kernel.  Skipped gracefully when the extension is not
  built (``python -m repro.sat.kernel.build``).

Usage::

    PYTHONPATH=src python benchmarks/bench_regression.py [--out FILE] [--tiny]

``--tiny`` shrinks every workload for CI smoke runs (seconds, not minutes).
The JSON is self-describing; ``baseline`` captures the pre-PR2 numbers,
``baseline_pr4`` the PR 4 numbers, and ``baseline_pr5`` the PR 5 numbers
(the last all-Python solver), all measured on the same machine, so the
file is a complete before/after document on its own.

A note on metrics: this box is a single-core VM whose wall clock (and
therefore props/sec) swings tens of percent between runs of byte-identical
work, while conflict counts are fully deterministic.  Every section is
therefore reported as the best of three identical passes, with the
per-pass wall clocks retained under ``runs_wall_sec`` (single-core noise
is one-sided — a pass can only be slowed down, never sped up — so the
minimum is the stable estimator, the same reasoning ``timeit`` uses).
Judge search-quality changes by ``conflicts``; treat ``props_per_sec``
deltas under ~1.3x as within machine noise unless measured back to back.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro.arch import grid, ibm_eagle, ibm_falcon, linear, sycamore_region
from repro.core import OLSQ2, SynthesisConfig
from repro.core.encoder import LayoutEncoder
from repro.core.optimizer import IterativeSynthesizer
from repro.sat import SatResult, Solver, mk_lit
from repro.telemetry import MemorySink, Tracer
from repro.workloads.queko import queko_circuit

#: Numbers measured at the pre-PR commit (rebuild loop, object-based clause
#: storage) with this same script, recorded so the JSON is a complete
#: before/after document on its own.
BASELINE = {
    "prop_network": {"props_per_sec": 1198323, "wall_sec": 0.1001},
    "sat_engine": {
        "wall_sec": 3.193,
        "props_per_sec": 96001,
        "conflicts": 11794,
    },
    "queko_synthesis": {
        "conflicts": 11041,
        "propagations": 967207,
        "wall_sec": 3.7754,
        "depths": [5, 7, 5, 6, 5, 4],
    },
}

#: Numbers re-measured at the PR 4 commit on this machine, immediately
#: before the PR 5 (inprocessing) work.  BENCH_PR4.json recorded 89,550
#: props/sec for sat_engine in an earlier run of the same code; the spread
#: against the 86,556 here is pure wall-clock noise (conflict counts are
#: identical), which is why the PR 5 acceptance ratios below are computed
#: against a same-session re-measurement rather than the archived file.
BASELINE_PR4 = {
    "sat_engine": {"props_per_sec": 86556, "conflicts": 15364},
    "queko_synthesis": {"conflicts": 7270, "propagations": 528796},
}

#: Numbers from BENCH_PR5.json — the last commit where the solver hot path
#: was pure Python over plain lists.  The PR 7 acceptance ratios (compiled
#: kernel vs interpreter) are computed against these.
BASELINE_PR5 = {
    "prop_network": {"props_per_sec": 2877956},
    "sat_engine": {"props_per_sec": 107932, "conflicts": 13636},
    "queko_synthesis": {"conflicts": 6204, "props_per_sec": 145537},
}

#: Same-session like-for-like control for the ``kernel="python"`` fallback,
#: following the BASELINE_PR4 precedent above: the archived 107,932 was
#: recorded on a faster day of this VM (the PR 5 commit itself, checked out
#: and re-run at the PR 7 commit, measured 99,427-113,734 across the same
#: session).  Interleaved pairs — PR 5 code and ``kernel="python"``
#: alternating in one session, identical 13,636 conflicts — are the
#: apples-to-apples measurement of what PR 7 did to the interpreter path.
#: PR 10 acceptance bar: bulk clause loading must be at least this much
#: faster than the per-clause path on the queko encode clause set
#: (bench_encode), measured on the resolved default kernel.
ENCODE_GATE_RATIO = 3.0

PR5_LIKE_FOR_LIKE = {
    "pr5_commit_props_per_sec": [99427, 103841, 113734],
    "pr7_python_props_per_sec": [95141, 114648, 100485],
    # best vs best across the interleaved session: 114648 / 113734
    "ratio": 1.01,
}


def _cpu_model() -> str:
    """The CPU model string, best effort (``/proc/cpuinfo`` on Linux)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def _best_of(measure, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wrapper: keep the fastest pass, retain all walls.

    ``measure`` must return a fresh report dict with a ``wall_sec`` key.
    The winning report gains ``runs_wall_sec`` listing every pass's wall
    clock in run order, so the JSON documents the noise spread alongside
    the headline number.
    """
    runs: list = []
    best: dict = {}
    for _ in range(max(1, repeats)):
        report = measure()
        runs.append(report["wall_sec"])
        if not best or report["wall_sec"] < best["wall_sec"]:
            best = report
    best["runs_wall_sec"] = runs
    return best


def bench_prop_network(n_vars: int, rounds: int) -> dict:
    """Unit-propagation throughput, isolated from search.

    A long binary implication chain plus wide size-4 clauses; each round
    asserts the chain head on a fresh decision level and times exactly one
    ``_propagate`` call that derives every variable.  Warm-up rounds are
    excluded so watcher lists reach their steady state first — this
    measures the propagation loop itself, not heap/model/restart overhead.
    """
    import repro.sat.solver as satmod

    no_clause = getattr(satmod, "NO_CLAUSE", None)  # absent pre-arena
    solver = Solver()
    solver.new_vars(n_vars)
    for v in range(n_vars - 1):
        solver.add_clause([mk_lit(v, True), mk_lit(v + 1)])
    rng = random.Random(42)
    for _ in range(n_vars):
        vs = rng.sample(range(1, n_vars), 4)
        solver.add_clause([mk_lit(vs[0], True)] + [mk_lit(v) for v in vs[1:]])
    warmup = max(3, rounds // 10)
    props = 0
    wall = 0.0
    for rnd in range(rounds + warmup):
        solver._new_decision_level()
        solver._unchecked_enqueue(mk_lit(0), no_clause)
        before = solver.stats.propagations
        start = time.perf_counter()
        confl = solver._propagate()
        elapsed = time.perf_counter() - start
        solver._cancel_until(0)
        assert confl in (None, -1), "propagation workload must be conflict-free"
        if rnd >= warmup:
            props += solver.stats.propagations - before
            wall += elapsed
    return {
        "propagations": props,
        "wall_sec": round(wall, 4),
        "props_per_sec": int(props / wall),
    }


#: SolverStats counters maintained by repro.sat.inprocess, surfaced so the
#: bench JSON shows how much simplification each workload actually saw.
_INPROCESS_KEYS = (
    "inprocessings",
    "vivified_clauses",
    "vivified_literals",
    "failed_literals",
    "hyper_binaries",
    "equivalent_literals",
    "subsumed_clauses",
    "strengthened_clauses",
    "eliminated_vars",
)


def _pigeonhole(
    n_pigeons: int, n_holes: int, kernel: str = "auto", sanitize=None
) -> Solver:
    solver = Solver(kernel=kernel, sanitize=sanitize)
    x = [[solver.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
    for p in range(n_pigeons):
        solver.add_clause([mk_lit(x[p][h]) for h in range(n_holes)])
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                solver.add_clause([mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)])
    return solver


def _random_3sat(
    n_vars: int, ratio: float, seed: int, kernel: str = "auto", sanitize=None
) -> Solver:
    rng = random.Random(seed)
    solver = Solver(kernel=kernel, sanitize=sanitize)
    solver.new_vars(n_vars)
    for _ in range(int(ratio * n_vars)):
        vs = rng.sample(range(n_vars), 3)
        solver.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    return solver


def bench_sat_engine(tiny: bool, kernel: str = "auto", sanitize=None) -> dict:
    """One pass over the bench_sat_engine.py workloads, timed end to end.

    Formula construction stays outside the timed region.  The search
    itself is deterministic: propagation and conflict counts are
    identical on every pass (and across backends — the compiled kernel
    is byte-for-byte equivalent to the interpreter loops).  Wrap with
    :func:`_best_of` for the noise-stable wall clock.
    """
    if tiny:
        specs = [
            (
                "pigeonhole-6-5",
                lambda: _pigeonhole(6, 5, kernel, sanitize),
                SatResult.UNSAT,
            )
        ]
        seeds = (7,)
    else:
        specs = [
            (
                "pigeonhole-8-7",
                lambda: _pigeonhole(8, 7, kernel, sanitize),
                SatResult.UNSAT,
            )
        ]
        seeds = (7, 11, 13)
    for seed in seeds:
        specs.append(
            (
                f"3sat-150-{seed}",
                lambda s=seed: _random_3sat(150, 4.2, s, kernel, sanitize),
                None,
            )
        )
    jobs = [(name, build(), expect) for name, build, expect in specs]
    start = time.perf_counter()
    props = conflicts = 0
    inprocess = {key: 0 for key in _INPROCESS_KEYS}
    backend = None
    for name, solver, expect in jobs:
        verdict = solver.solve(conflict_budget=20000)
        if expect is not None:
            assert verdict is expect, f"{name}: {verdict}"
        backend = solver.kernel
        props += solver.stats.propagations
        conflicts += solver.stats.conflicts
        for key in _INPROCESS_KEYS:
            inprocess[key] += getattr(solver.stats, key)
    wall = time.perf_counter() - start
    return {
        "workloads": [name for name, _, _ in specs],
        "kernel": backend,
        "propagations": props,
        "conflicts": conflicts,
        "wall_sec": round(wall, 4),
        "props_per_sec": int(props / wall),
        "inprocess": inprocess,
    }


def bench_sanitize_cost(tiny: bool) -> dict:
    """The sanitizer's zero-cost-when-off claim, measured.

    Runs the sat_engine workload three ways: the default solver (what
    every earlier baseline measured), an explicit ``sanitize="off"``
    solver, and ``sanitize="light"`` for scale.  Off must search
    identically (same propagation/conflict counts — the hot loops are
    untouched) and land within noise of the default; light's overhead is
    reported but not gated (it is a debug mode).
    """
    default = _best_of(lambda: bench_sat_engine(tiny))
    off = _best_of(lambda: bench_sat_engine(tiny, sanitize="off"))
    light = bench_sat_engine(tiny, sanitize="light")
    return {
        "default_props_per_sec": default["props_per_sec"],
        "off_props_per_sec": off["props_per_sec"],
        "off_vs_default": round(
            off["props_per_sec"] / default["props_per_sec"], 3
        ),
        "light_props_per_sec": light["props_per_sec"],
        "identical_search": (
            off["propagations"] == default["propagations"]
            and off["conflicts"] == default["conflicts"]
            and light["propagations"] == default["propagations"]
        ),
    }


def bench_large_device(tiny: bool) -> dict:
    """Subarchitecture extraction + warm start on 54+ qubit devices (PR 8).

    QUEKO circuits (6 qubits, hidden optimum) are synthesized on real
    large-device topologies.  The source coupling is chosen to embed in
    the target: grid-2x3 for sycamore (square lattice), line-6 for the
    heavy-hex IBM devices (girth 12 — any 6-qubit region is a tree, so
    only tree-embeddable interactions can reach the hidden swap-free
    optimum there).  Each instance runs twice:

    * **subarch on** — ``subarch="auto"`` + ``warm_start="sabre"``: the
      driver extracts a circuit-width region, SABRE bounds the optimum
      from above, and the descent interval opens at
      ``[T_LB, warm_depth)`` instead of unbounded;
    * **subarch off** — the plain full-device encoding (every physical
      qubit a solver variable), the pre-PR-8 behaviour.

    Both runs must reach the proven optimum; the report records the wall
    clocks, the speedup, and the initial interval width (``inf`` for the
    off run, which starts with no upper bound).  On devices past ~100
    qubits the off run is skipped (the full encoding is exactly the cost
    this PR removes) and only the subarch wall clock is reported.
    """
    targets = (
        [(sycamore_region(54), grid(2, 3))]
        if tiny
        else [
            (ibm_falcon(), linear(6)),
            (sycamore_region(54), grid(2, 3)),
            (ibm_eagle(), linear(6)),
        ]
    )
    seeds = (1,) if tiny else (1, 2, 3)
    rows = []
    for device, source in targets:
        run_off = device.n_qubits <= 60
        for seed in seeds:
            inst = queko_circuit(source, depth=4, n_gates=10, seed=seed)
            on_cfg = SynthesisConfig(
                swap_duration=1,
                time_budget=300,
                solve_time_budget=150,
                subarch="auto",
                warm_start="sabre",
            )
            start = time.perf_counter()
            r_on = OLSQ2(on_cfg).synthesize(inst.circuit, device)
            wall_on = time.perf_counter() - start
            assert r_on.optimal, (device.name, seed)
            assert r_on.depth == inst.optimal_depth, (device.name, seed)
            interval = r_on.solver_stats.get("interval", {})
            row = {
                "device": device.name,
                "n_qubits": device.n_qubits,
                "seed": seed,
                "source": source.name,
                "depth": r_on.depth,
                "proven_optimal": r_on.optimal,
                "wall_on_sec": round(wall_on, 4),
                "interval_width_on": (
                    interval["warm_depth_ub"] - interval["depth_lb"]
                    if "warm_depth_ub" in interval
                    else None
                ),
                "interval_width_off": "inf",  # no upper bound pre-warm-start
                "region": r_on.solver_stats.get("subarch", {}).get("region"),
            }
            if run_off:
                off_cfg = SynthesisConfig(
                    swap_duration=1, time_budget=600, solve_time_budget=300
                )
                start = time.perf_counter()
                r_off = OLSQ2(off_cfg).synthesize(inst.circuit, device)
                wall_off = time.perf_counter() - start
                assert r_off.optimal and r_off.depth == inst.optimal_depth
                row["wall_off_sec"] = round(wall_off, 4)
                row["speedup"] = round(wall_off / max(wall_on, 1e-6), 1)
            rows.append(row)
            print(f"  {row}", flush=True)
    speedups = [r["speedup"] for r in rows if "speedup" in r]
    assert speedups, "at least one on/off pair must have run"
    # The 3x acceptance floor applies where the encoding size is the
    # bottleneck: devices of >= 54 qubits.  Smaller devices (falcon,
    # 27q) record their speedup informationally — the full encoding is
    # still cheap enough there that the ratio is noise-dominated.
    gated = [
        r["speedup"] for r in rows if "speedup" in r and r["n_qubits"] >= 54
    ]
    assert gated, "the >= 54-qubit on/off pair must have run"
    assert min(gated) >= 3.0, (
        f"subarch+warm-start must be >= 3x faster than the full encoding "
        f"on >= 54-qubit devices, got {min(gated)}x"
    )
    return {
        "source": "queko depth 4 (grid-2x3 / line-6 per target)",
        "rows": rows,
        # min_speedup is the acceptance metric: worst on/off ratio over
        # the >= 54-qubit pairs.  all_speedups keeps the small-device
        # ratios visible without gating on them.
        "min_speedup": min(gated),
        "max_speedup": max(speedups),
        "all_speedups": speedups,
    }


def bench_kernel(tiny: bool) -> dict:
    """Python vs native backend on identical formulas (PR 7 acceptance).

    Each backend gets its own best-of-3 over the full ``sat_engine``
    suite.  Determinism across backends is asserted, not assumed: the
    conflict counts must match exactly, otherwise the props/sec ratio
    would be comparing different searches.
    """
    from repro.sat.kernel import native_available, native_error

    backends = {"python": _best_of(lambda: bench_sat_engine(tiny, "python"))}
    if native_available():
        backends["native"] = _best_of(lambda: bench_sat_engine(tiny, "native"))
        assert (
            backends["native"]["conflicts"] == backends["python"]["conflicts"]
        ), "backends diverged: not measuring the same search"
    report: dict = {"workload": "sat_engine", "backends": backends}
    if "native" in backends:
        report["native_vs_python"] = round(
            backends["native"]["props_per_sec"]
            / backends["python"]["props_per_sec"],
            2,
        )
    else:
        report["native_unavailable"] = native_error() or "extension not built"
    return report


def bench_encode(tiny: bool) -> dict:
    """Bulk vs per-clause clause loading on the queko encode clause set.

    Captures the exact clause stream a QUEKO encode emits (grid 2x3 circuit
    on a 6-qubit line, horizon 10, simplify off), then loads it into fresh
    solvers two ways: one :meth:`Solver.add_clause` call per clause (the
    pre-PR10 path) vs a single :meth:`Solver.add_clauses_bulk` call (one
    arena bulk alloc + one native attach per run of non-unit clauses, with
    C-side normalization under the native kernel).  The PR 10 acceptance
    gate is ratio >= 3x on the resolved default kernel; equivalence is
    asserted, not assumed — both solvers must end with identical arenas.
    """
    from repro.sat.kernel import native_available, resolve_backend
    from repro.sat.solver import Solver
    from repro.smt.context import SMTContext

    source = grid(2, 3)
    target = linear(6)
    inst = queko_circuit(source, depth=4, n_gates=12, seed=1)
    cfg = SynthesisConfig(simplify="off")
    capture_solver = Solver(kernel="python")
    captured = []
    orig_add = Solver.add_clause

    def capturing_add(self, lits):
        captured.append(list(lits))
        return orig_add(self, lits)

    Solver.add_clause = capturing_add
    try:
        LayoutEncoder(
            inst.circuit, target, 10, config=cfg,
            ctx=SMTContext(sink=capture_solver),
        ).encode()
    finally:
        Solver.add_clause = orig_add
    n_vars = capture_solver.n_vars
    flat = [lit for clause in captured for lit in clause]
    sizes = [len(clause) for clause in captured]

    def fresh(kernel):
        solver = Solver(kernel=kernel)
        for _ in range(n_vars):
            solver.new_var()
        return solver

    repeats = 5 if tiny else 9
    report: dict = {
        "workload": "queko-2x3-d4g12s1-on-line6-h10",
        "clauses": len(captured),
        "vars": n_vars,
        "threshold": ENCODE_GATE_RATIO,
        "gate_kernel": resolve_backend("auto"),
        "backends": {},
    }
    kernels = ["python"] + (["native"] if native_available() else [])
    for kernel in kernels:
        per = bulk = float("inf")
        for _ in range(repeats):
            solver = fresh(kernel)
            start = time.perf_counter()
            for clause in captured:
                solver.add_clause(clause)
            per = min(per, time.perf_counter() - start)
            per_solver = solver
            solver = fresh(kernel)
            start = time.perf_counter()
            solver.add_clauses_bulk(flat, sizes)
            bulk = min(bulk, time.perf_counter() - start)
            bulk_solver = solver
        identical = (
            list(per_solver.arena.lits) == list(bulk_solver.arena.lits)
            and len(per_solver.clauses) == len(bulk_solver.clauses)
            and list(per_solver.trail[: per_solver.trail_size])
            == list(bulk_solver.trail[: bulk_solver.trail_size])
        )
        report["backends"][kernel] = {
            "per_clause_wall_sec": round(per, 5),
            "bulk_wall_sec": round(bulk, 5),
            "ratio": round(per / bulk, 2),
            "clauses_per_sec_bulk": int(len(captured) / bulk),
            "identical_final_state": identical,
        }
    gate = report["backends"].get(report["gate_kernel"])
    report["gate_passed"] = bool(
        gate
        and gate["identical_final_state"]
        and gate["ratio"] >= ENCODE_GATE_RATIO
    )
    return report


def bench_queko_synthesis(tiny: bool) -> dict:
    """optimize_depth with mid-run horizon growth (learnt-clause reuse)."""
    seeds = (3, 5) if tiny else (1, 2, 3, 4, 5, 7)
    source = grid(2, 3)
    target = linear(6)
    depths = []
    conflicts = props = 0
    encode_wall = solve_wall = 0.0
    inprocess = {key: 0 for key in _INPROCESS_KEYS}
    start = time.perf_counter()
    for seed in seeds:
        inst = queko_circuit(source, depth=4, n_gates=12, seed=seed)
        sink = MemorySink()
        cfg = SynthesisConfig(
            swap_duration=1,
            tub_ratio=1.0,
            time_budget=600,
            solve_time_budget=300,
            tracer=Tracer(sinks=[sink]),
        )
        result = IterativeSynthesizer(inst.circuit, target, cfg).optimize_depth()
        depths.append(result.depth)
        encode_wall += result.solver_stats.get("encode_wall_sec", 0.0)
        solve_wall += result.solver_stats.get("solve_wall_sec", 0.0)
        solves = list(sink.events("solver.solve"))
        for event in solves:
            conflicts += event.attrs.get("d_conflicts", 0)
            props += event.attrs.get("d_propagations", 0)
        if solves:
            # The last solve event carries the solver's cumulative counters,
            # which include the encode-time simplify pass (it runs outside
            # any solve() call, so per-call deltas alone would miss it).
            last = solves[-1].attrs
            for key in _INPROCESS_KEYS:
                inprocess[key] += last.get(key, 0)
    wall = time.perf_counter() - start
    return {
        "seeds": list(seeds),
        "depths": depths,
        "conflicts": conflicts,
        "propagations": props,
        "wall_sec": round(wall, 4),
        # Encode vs solve wall split (PR 10): encoding cost used to hide
        # inside the synthesis wall; now both halves stay visible.
        "encode_wall_sec": round(encode_wall, 4),
        "solve_wall_sec": round(solve_wall, 4),
        "encode_fraction": round(encode_wall / (encode_wall + solve_wall), 3)
        if encode_wall + solve_wall > 0
        else None,
        "props_per_sec": int(props / wall),
        "inprocess": inprocess,
    }


def bench_parallel_portfolio(tiny: bool) -> dict:
    """Sequential vs independent vs cooperating portfolio (PR 3 numbers).

    On a single-core box the cooperating portfolio cannot win on raw
    parallelism; the interesting comparison is *total work*: bound
    splitting stops N workers from each re-walking the full descent, and
    clause sharing lets one worker's conflicts prune another's search, so
    the cooperating runs should match the sequential optimum with fewer
    summed conflicts (and less wall time) than the independent race at
    the same worker count.
    """
    from repro.core import (
        ParallelDescent,
        PortfolioEntry,
        PortfolioSynthesizer,
    )

    source = grid(2, 3)
    target = linear(6)
    # Tiny keeps CI in seconds; the full instance is hard enough (~15 s
    # sequential) that probe work dominates worker startup, which is what
    # makes cooperation visible on wall clock even on one core.
    if tiny:
        inst = queko_circuit(source, depth=4, n_gates=12, seed=3)
        workload = "queko-2x3-d4g12s3-on-line6"
    else:
        inst = queko_circuit(source, depth=6, n_gates=18, seed=1)
        workload = "queko-2x3-d6g18s1-on-line6"
    budget = 60.0 if tiny else 240.0
    base = dict(
        swap_duration=1,
        tub_ratio=1.0,
        time_budget=budget,
        solve_time_budget=budget / 2,
    )
    variants = [
        SynthesisConfig(**base),
        SynthesisConfig(cardinality="totalizer", **base),
        SynthesisConfig(injectivity="channeling", **base),
        SynthesisConfig(cardinality="adder", **base),
    ]

    def entries(n):
        return [
            PortfolioEntry(f"w{i}", variants[i % len(variants)])
            for i in range(n)
        ]

    report: dict = {
        "workload": workload,
        "objective": "swap",
        # scaling_efficiency is meaningless without knowing how many cores
        # backed the workers: on a 1-core host cooperating wall-clock is
        # roughly the *summed* worker CPU, so cooperating-N can only beat
        # sequential if bound splitting + clause sharing shrink total work
        # below the sequential descent's — template reuse removes the
        # redundant encodes but the probe work itself still replicates.
        "cpu_count": os.cpu_count(),
        "runs": {},
    }

    def run_sequential() -> dict:
        start = time.perf_counter()
        seq = IterativeSynthesizer(
            inst.circuit, target, SynthesisConfig(**base)
        ).optimize_swaps()
        return {
            "wall_sec": round(time.perf_counter() - start, 4),
            "swaps": seq.swap_count,
            "optimal": seq.optimal,
            "conflicts": seq.solver_stats.get("conflicts", 0),
        }

    def run_independent(n: int) -> dict:
        start = time.perf_counter()
        res = PortfolioSynthesizer(entries(n), time_budget=budget).synthesize(
            inst.circuit, target, objective="swap"
        )
        return {
            "wall_sec": round(time.perf_counter() - start, 4),
            "swaps": res.swap_count,
            "optimal": res.optimal,
            "winner_conflicts": res.solver_stats.get("conflicts", 0),
        }

    def run_cooperating(n: int) -> dict:
        start = time.perf_counter()
        res = ParallelDescent(
            entries=entries(n), time_budget=budget, slice_budget=0.5
        ).synthesize(inst.circuit, target, objective="swap")
        par = res.solver_stats["parallel"]
        return {
            "wall_sec": round(time.perf_counter() - start, 4),
            "swaps": res.swap_count,
            "optimal": res.optimal,
            "conflicts": par["conflicts"],
            "clauses_shared": par["clauses_exported"],
            "clauses_imported": par["clauses_imported"],
            "probes_pruned": par["pruned_probes"],
            "template_hits": par.get("template_hits", 0),
            "share_transport": par.get("share_transport"),
        }

    report["runs"]["sequential"] = _best_of(run_sequential)
    print(f"  sequential: {report['runs']['sequential']}", flush=True)
    counts = (2,) if tiny else (1, 2, 4)
    for n in counts:
        report["runs"][f"independent-{n}"] = _best_of(lambda: run_independent(n))
        print(f"  independent-{n}: {report['runs'][f'independent-{n}']}", flush=True)
    for n in counts:
        report["runs"][f"cooperating-{n}"] = _best_of(lambda: run_cooperating(n))
        print(f"  cooperating-{n}: {report['runs'][f'cooperating-{n}']}", flush=True)
    # Scaling summary (PR 10): the BENCH_PR8 negative-scaling regression
    # (cooperating-N slower than sequential) was silent because nothing
    # compared the walls.  scaling_efficiency is seq_wall / (n * coop_wall)
    # — 1.0 means perfect linear scaling, > 1/n means cooperating-N still
    # beats sequential on raw wall.
    seq_wall = report["runs"]["sequential"]["wall_sec"]
    scaling = {}
    slower = []
    for n in counts:
        coop = report["runs"][f"cooperating-{n}"]
        if coop["wall_sec"] > 0:
            scaling[str(n)] = round(seq_wall / (n * coop["wall_sec"]), 3)
        if coop["wall_sec"] > seq_wall:
            slower.append(n)
    report["scaling_efficiency"] = scaling
    report["cooperating_slower_than_sequential"] = slower
    if slower:
        print(
            f"  WARNING: cooperating-{slower} slower than sequential "
            f"({seq_wall}s) — negative scaling",
            flush=True,
        )
    return report


def bench_proof_checker(tiny: bool) -> dict:
    """Old (naive fixpoint) vs new (watched-literal) RUP checker.

    Builds an ascending ladder of UNSAT refutations, then asks each
    checker: what is the largest refutation (in proof steps) you can fully
    certify within one fixed wall-clock budget?  The ladder is walked in
    size order and stops for a checker once a check exceeds the budget (or
    once the projected time would blow far past it), so the slow checker
    never burns minutes on hopeless sizes.
    """
    from repro.sat import CNF
    from repro.sat.proof import check_unsat_proof, check_unsat_proof_slow

    budget = 4.0 if tiny else 10.0
    hard_cap = 8 * budget

    def php(n):
        cnf = CNF()
        x = [[cnf.new_var() for _ in range(n)] for _ in range(n + 1)]
        for p in range(n + 1):
            cnf.add_clause([mk_lit(x[p][h]) for h in range(n)])
        for h in range(n):
            for p1 in range(n + 1):
                for p2 in range(p1 + 1, n + 1):
                    cnf.add_clause(
                        [mk_lit(x[p1][h], True), mk_lit(x[p2][h], True)]
                    )
        return cnf

    def r3sat(n, seed):
        rng = random.Random(seed)
        cnf = CNF()
        cnf.new_vars(n)
        for _ in range(int(5.2 * n)):
            vs = rng.sample(range(n), 3)
            cnf.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
        return cnf

    specs = [("php-5-4", php(4)), ("php-6-5", php(5))]
    # The jump from 130 to 200 variables is deliberate: proof length grows
    # ~16x across it, so the rung separates a near-linear checker from a
    # quadratic one without burning minutes on intermediate sizes.
    sizes = (60, 100, 130, 200, 250)
    specs += [(f"r3sat-{n}", r3sat(n, seed=n)) for n in sizes]

    ladder = []
    for name, cnf in specs:
        solver = Solver(proof_log=True)
        cnf.to_solver(solver)
        if solver.solve(time_budget=60.0) is not SatResult.UNSAT:
            continue  # a rare satisfiable draw: not a refutation workload
        ladder.append((name, cnf, solver.proof))
    ladder.sort(key=lambda item: len(item[2]))

    def largest_within_budget(checker):
        best = 0
        runs = []
        last_time, last_steps = 0.0, 0
        for name, cnf, proof in ladder:
            if last_steps:
                # Extrapolate quadratically in proof length: a checker whose
                # projected time blows far past the budget never starts, so
                # the naive checker cannot burn minutes on hopeless rungs.
                est = last_time * (len(proof) / last_steps) ** 2
                if est > hard_cap:
                    continue
            start = time.perf_counter()
            ok = checker(cnf, proof)
            elapsed = time.perf_counter() - start
            assert ok, f"{name}: refutation did not certify"
            runs.append(
                {"workload": name, "steps": len(proof), "wall_sec": round(elapsed, 4)}
            )
            last_time, last_steps = elapsed, len(proof)
            if elapsed <= budget:
                best = max(best, len(proof))
            else:
                break
        return best, runs

    def one_pass() -> dict:
        old_best, old_runs = largest_within_budget(check_unsat_proof_slow)
        new_best, new_runs = largest_within_budget(check_unsat_proof)
        wall = sum(r["wall_sec"] for r in old_runs + new_runs)
        return {
            "budget_sec": budget,
            "ladder_steps": [len(proof) for _, _, proof in ladder],
            "old_checker": {"largest_steps": old_best, "runs": old_runs},
            "new_checker": {"largest_steps": new_best, "runs": new_runs},
            "size_ratio": round(new_best / max(1, old_best), 2),
            "wall_sec": round(wall, 4),
        }

    # The ladder (solving each refutation) is built once above; only the
    # checking phase repeats — that is the part being measured.
    return _best_of(one_pass)


def _percentile(values, pct: float) -> float:
    """Nearest-rank percentile of a non-empty list (pct in [0, 100])."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def bench_service(tiny: bool) -> dict:
    """The PR 6 acceptance workload: batch service, warm vs cold pool.

    A workload of base circuits plus relabeled-isomorphic copies is
    driven through one :class:`SynthesisService` three times:

    * **cold** — fresh pool, empty cache: every equivalence class costs
      one solver dispatch, the copies are cache hits (the acceptance
      criterion: k relabeled copies -> 1 dispatch, k-1 hits);
    * **warm_cache** — the identical batch again: 100% cache hits, no
      dispatches; this is the service's steady-state latency floor;
    * **warm_pool** — cache cleared, batch again: every class solves
      again, but on workers whose device caches and learnt-clause banks
      the cold pass warmed, isolating pool warmth from result caching.

    Latencies are per-response wall times (queueing included — this is
    what a client observes), summarized as p50/p95.
    """
    import asyncio

    from repro.circuit import Gate, QuantumCircuit
    from repro.service import CompileRequest, SynthesisService
    from repro.workloads import qaoa_circuit

    rng = random.Random(9)
    n_base = 2 if tiny else 4
    n_copies = 2 if tiny else 3
    device = "line-5"
    cfg = SynthesisConfig(swap_duration=1, time_budget=60.0).to_dict()

    def relabeled(circuit, perm):
        out = QuantumCircuit(circuit.n_qubits)
        for g in circuit.gates:
            out.append(Gate(g.name, tuple(perm[q] for q in g.qubits), g.params))
        return out

    # Distinct (n_qubits, degree) pairs give structurally distinct base
    # circuits.  Varying only the seed at 4 qubits would not: every
    # 3-regular graph on 4 nodes is K4, so the canonicalizer would
    # (rightly) collapse the seeds into a single equivalence class.
    shapes = [(4, 3), (4, 1), (5, 2), (4, 2)][:n_base]
    requests = []
    for i, (n, degree) in enumerate(shapes):
        base = qaoa_circuit(n, seed=i, degree=degree)
        family = [base]
        for _ in range(n_copies):
            perm = list(range(base.n_qubits))
            rng.shuffle(perm)
            family.append(relabeled(base, perm))
        for circuit in family:
            requests.append(
                CompileRequest.from_circuit(
                    circuit, device, budget=60.0, config=dict(cfg)
                )
            )

    async def drive():
        phases = {}
        async with SynthesisService(n_workers=1) as service:
            for phase in ("cold", "warm_cache", "warm_pool"):
                if phase == "warm_pool":
                    service.cache.clear()
                before = service.stats()
                start = time.perf_counter()
                responses = await service.submit_batch(requests)
                wall = time.perf_counter() - start
                after = service.stats()
                assert all(r.ok for r in responses), [r.error for r in responses]
                latencies = [r.wall_time for r in responses]
                phases[phase] = {
                    "wall_sec": round(wall, 4),
                    "p50_sec": round(_percentile(latencies, 50), 4),
                    "p95_sec": round(_percentile(latencies, 95), 4),
                    "cache_hit_rate": round(
                        (after["cache_hits"] - before["cache_hits"])
                        / len(requests),
                        3,
                    ),
                    "solver_dispatches": after["solver_dispatches"]
                    - before["solver_dispatches"],
                    "bank_clauses_served": after["pool"]["bank_clauses_served"]
                    - before["pool"]["bank_clauses_served"],
                }
                print(f"  {phase}: {phases[phase]}", flush=True)
            final = service.stats()
        return phases, final

    phases, final = asyncio.run(drive())
    n_classes = n_base
    assert phases["cold"]["solver_dispatches"] == n_classes, phases["cold"]
    assert phases["warm_cache"]["solver_dispatches"] == 0, phases["warm_cache"]
    return {
        "requests": len(requests),
        "equivalence_classes": n_classes,
        "copies_per_class": n_copies + 1,
        "device": device,
        "wall_sec": round(sum(p["wall_sec"] for p in phases.values()), 4),
        "phases": phases,
        "final_stats": {
            "cache": final["cache"],
            "pool": final["pool"],
            "coalesced": final["coalesced"],
            "max_queue_depth": final["max_queue_depth"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR10.json"),
        help="output JSON path (default: BENCH_PR10.json at the repo root)",
    )
    parser.add_argument(
        "--tiny", action="store_true", help="shrunken workloads for CI smoke runs"
    )
    args = parser.parse_args(argv)

    from repro.sat.kernel import resolve_backend

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu": _cpu_model(),
        "kernel": resolve_backend("auto"),
        "tiny": args.tiny,
        "baseline": None if args.tiny else BASELINE,
        "baseline_pr4": None if args.tiny else BASELINE_PR4,
        "baseline_pr5": None if args.tiny else BASELINE_PR5,
        "results": {},
    }
    print("prop_network ...", flush=True)
    report["results"]["prop_network"] = _best_of(
        lambda: bench_prop_network(
            n_vars=800 if args.tiny else 3000, rounds=10 if args.tiny else 40
        )
    )
    print("sat_engine ...", flush=True)
    report["results"]["sat_engine"] = _best_of(lambda: bench_sat_engine(args.tiny))
    print("encode ...", flush=True)
    report["results"]["encode"] = bench_encode(args.tiny)
    print("kernel ...", flush=True)
    report["results"]["kernel"] = bench_kernel(args.tiny)
    print("sanitize ...", flush=True)
    report["results"]["sanitize"] = bench_sanitize_cost(args.tiny)
    print("queko_synthesis ...", flush=True)
    report["results"]["queko_synthesis"] = _best_of(
        lambda: bench_queko_synthesis(args.tiny)
    )
    print("large_device ...", flush=True)
    report["results"]["large_device"] = bench_large_device(args.tiny)
    print("parallel_portfolio ...", flush=True)
    report["results"]["parallel_portfolio"] = bench_parallel_portfolio(args.tiny)
    print("proof_checker ...", flush=True)
    report["results"]["proof_checker"] = bench_proof_checker(args.tiny)
    print("service ...", flush=True)
    report["results"]["service"] = _best_of(lambda: bench_service(args.tiny))

    if not args.tiny:
        for key in ("prop_network", "sat_engine"):
            now = report["results"][key]["props_per_sec"]
            then = BASELINE[key]["props_per_sec"]
            report["results"][key]["speedup_vs_baseline"] = round(now / then, 2)
        queko = report["results"]["queko_synthesis"]
        queko["conflicts_vs_baseline"] = round(
            queko["conflicts"] / BASELINE["queko_synthesis"]["conflicts"], 2
        )
        # PR 5 acceptance ratios (inprocessing vs the PR 4 commit).
        sat = report["results"]["sat_engine"]
        sat["speedup_vs_pr4"] = round(
            sat["props_per_sec"] / BASELINE_PR4["sat_engine"]["props_per_sec"], 2
        )
        queko["conflicts_vs_pr4"] = round(
            queko["conflicts"] / BASELINE_PR4["queko_synthesis"]["conflicts"], 2
        )
        # PR 7 acceptance ratios (compiled kernel vs the PR 5 interpreter).
        sat["speedup_vs_pr5"] = round(
            sat["props_per_sec"] / BASELINE_PR5["sat_engine"]["props_per_sec"], 2
        )
        pr5 = BASELINE_PR5["sat_engine"]["props_per_sec"]
        for name, rep in report["results"]["kernel"]["backends"].items():
            rep["speedup_vs_pr5"] = round(rep["props_per_sec"] / pr5, 2)
        report["results"]["kernel"]["pr5_like_for_like"] = PR5_LIKE_FOR_LIKE

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["results"], indent=2))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
