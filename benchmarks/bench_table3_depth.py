"""Table III — depth optimization: SABRE vs OLSQ2.

Paper shape: OLSQ2's depth is never worse than SABRE's (average 6.66x
better), and on QUEKO rows OLSQ2 hits the known-optimal depth exactly
(the driver asserts that internally).

Run standalone:  python benchmarks/bench_table3_depth.py
"""

from conftest import run_once

from repro.harness import print_experiment, run_table3

BUDGET = 120.0


def test_table3_depth(benchmark):
    headers, rows, notes = run_once(benchmark, run_table3, time_budget=BUDGET)
    print()
    print_experiment(headers, rows, notes, "Table III (scaled reproduction)")
    data = rows[:-1]
    for row in data:
        sabre_depth, olsq2_depth = row[2], row[3]
        if olsq2_depth is not None:
            assert olsq2_depth <= sabre_depth, row
    ratios = [row[5] for row in data if row[5] is not None]
    assert ratios and sum(ratios) / len(ratios) >= 1.0


if __name__ == "__main__":
    headers, rows, notes = run_table3(time_budget=BUDGET)
    print_experiment(headers, rows, notes, "Table III (scaled reproduction)")
