"""Ablation — heuristic-guided search (paper Sec. V future direction).

"We may be able to provide a better ordering based on our domain
knowledge."  This bench seeds the SAT search with SABRE's initial mapping
(phase-saving polarity hints on the t=0 mapping variables) and compares
depth-optimization wall time against the unguided default.  Hints never
constrain the problem, so both runs must agree on the optimum.

Run standalone:  python benchmarks/bench_ablation_warmstart.py
"""

import time

from conftest import run_once

from repro.arch import grid
from repro.core import OLSQ2, SynthesisConfig
from repro.harness import format_table
from repro.workloads import qaoa_circuit, queko_circuit

BUDGET = 120.0


def run_ablation(time_budget: float = BUDGET):
    device = grid(3, 3)
    cases = [
        ("QAOA(6)", qaoa_circuit(6, seed=1)),
        ("QAOA(8)", qaoa_circuit(8, seed=1)),
        ("QUEKO(9/18)", queko_circuit(device, 6, 18, seed=1).circuit),
    ]
    rows = []
    for name, circuit in cases:
        timings = {}
        depths = {}
        for label, warm in (("plain", None), ("warm", "sabre")):
            cfg = SynthesisConfig(
                swap_duration=1,
                time_budget=time_budget,
                solve_time_budget=time_budget / 2,
                warm_start=warm,
            )
            start = time.monotonic()
            res = OLSQ2(cfg).synthesize(circuit, device, objective="depth")
            timings[label] = time.monotonic() - start
            depths[label] = res.depth
        assert depths["plain"] == depths["warm"], "hints must not change the optimum"
        rows.append(
            [
                name,
                depths["plain"],
                timings["plain"],
                timings["warm"],
                timings["plain"] / timings["warm"],
            ]
        )
    headers = ["Case", "depth*", "plain (s)", "warm-start (s)", "speedup"]
    return headers, rows


def test_ablation_warmstart(benchmark):
    headers, rows = run_once(benchmark, run_ablation, time_budget=BUDGET)
    print()
    print(format_table(headers, rows, title="Ablation: SABRE warm-start"))
    # Agreement is asserted inside the driver; timing may go either way on
    # tiny cases, so only sanity-check that both modes completed.
    assert all(row[2] > 0 and row[3] > 0 for row in rows)


if __name__ == "__main__":
    headers, rows = run_ablation()
    print(format_table(headers, rows, title="Ablation: SABRE warm-start"))
