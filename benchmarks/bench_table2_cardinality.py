"""Table II — cardinality-constraint encodings under a SWAP bound.

Paper shape: OLSQ2(CNF sequential counter) solves everything and beats
OLSQ; OLSQ2(AtMost -> adder-network/pseudo-Boolean path) is erratic and
sometimes loses to OLSQ; the transition-based TB-OLSQ2(CNF) is fastest by
orders of magnitude and insensitive to problem size.

Run standalone:  python benchmarks/bench_table2_cardinality.py
"""

from conftest import run_once

from repro.harness import print_experiment, run_table2

TIMEOUT = 90.0


def test_table2_cardinality(benchmark):
    headers, rows, notes = run_once(benchmark, run_table2, timeout=TIMEOUT)
    print()
    print_experiment(headers, rows, notes, "Table II (scaled reproduction)")
    data = rows[:-1]  # drop Avg.
    idx_cnf = headers.index("OLSQ2(CNF) (s)")
    idx_tb = headers.index("TB-OLSQ2(CNF) (s)")
    idx_olsq = headers.index("OLSQ (s)")
    # Shape 1: the CNF encoding solves every case.
    assert all(row[idx_cnf] is not None for row in data)
    # Shape 2: TB-OLSQ2 is the fastest configuration on every case.
    for row in data:
        others = [row[i] for i in (idx_olsq, idx_cnf) if row[i] is not None]
        assert row[idx_tb] is not None
        assert row[idx_tb] <= min(others) * 1.2  # noise tolerance


if __name__ == "__main__":
    headers, rows, notes = run_table2(timeout=TIMEOUT)
    print_experiment(headers, rows, notes, "Table II (scaled reproduction)")
