"""Ablation — CNF preprocessing on layout-synthesis instances.

Measures how much the SatELite-style pipeline (unit propagation,
subsumption, self-subsuming resolution, bounded variable elimination)
shrinks OLSQ2 instances and what it does to solve time.  Models found on
the simplified formula are extended back and re-checked against the
original clauses.

Run standalone:  python benchmarks/bench_ablation_preprocess.py
"""

import time

from conftest import run_once

from repro.arch import grid
from repro.core import LayoutEncoder, SynthesisConfig
from repro.harness import format_table
from repro.sat import preprocess, preprocess_stats, SatResult, Solver
from repro.smt import cnf_context
from repro.workloads import qaoa_circuit

TIMEOUT = 90.0


def run_ablation(timeout: float = TIMEOUT):
    cases = [((2, 3), 6), ((3, 3), 8)]
    rows = []
    for (gr, gc), n in cases:
        device = grid(gr, gc)
        circuit = qaoa_circuit(n, seed=1)
        ctx = cnf_context()
        enc = LayoutEncoder(
            circuit, device, horizon=8, config=SynthesisConfig(swap_duration=1), ctx=ctx
        )
        enc.encode()
        original = ctx.sink

        start = time.monotonic()
        plain = Solver()
        original.to_solver(plain)
        status_plain = plain.solve(time_budget=timeout)
        t_plain = time.monotonic() - start

        start = time.monotonic()
        simplified, recon = preprocess(original)
        t_pre = time.monotonic() - start
        solver = Solver()
        simplified.to_solver(solver)
        start = time.monotonic()
        status_pre = solver.solve(time_budget=timeout)
        t_solve = time.monotonic() - start
        assert status_plain == status_pre
        if status_pre is SatResult.SAT:
            full = recon.extend(solver.model)
            assert original.evaluate(full[: original.n_vars])

        stats = preprocess_stats(original, simplified)
        rows.append(
            [
                f"QAOA({n}) {gr}x{gc}",
                stats["clauses_before"],
                stats["clauses_after"],
                f"{100 * stats['clause_reduction']:.0f}%",
                t_plain,
                t_pre,
                t_solve,
            ]
        )
    headers = [
        "Case",
        "clauses",
        "after",
        "reduction",
        "plain (s)",
        "preprocess (s)",
        "solve (s)",
    ]
    return headers, rows


def test_ablation_preprocess(benchmark):
    headers, rows = run_once(benchmark, run_ablation, timeout=TIMEOUT)
    print()
    print(format_table(headers, rows, title="Ablation: CNF preprocessing"))
    for row in rows:
        assert row[2] < row[1]  # real shrinkage on every instance


if __name__ == "__main__":
    headers, rows = run_ablation()
    print(format_table(headers, rows, title="Ablation: CNF preprocessing"))
