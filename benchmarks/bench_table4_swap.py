"""Table IV — SWAP-count optimization: SABRE vs SATMap vs TB-OLSQ2.

Paper shape: TB-OLSQ2 never uses more SWAPs than SATMap, which never beats
it; SABRE is far behind both (109x / 12x average ratios in the paper); and
QUEKO rows come out at exactly 0 SWAPs for TB-OLSQ2.

Run standalone:  python benchmarks/bench_table4_swap.py
"""

from conftest import run_once

from repro.harness import print_experiment, run_table4

BUDGET = 120.0


def test_table4_swap(benchmark):
    headers, rows, notes = run_once(benchmark, run_table4, time_budget=BUDGET)
    print()
    print_experiment(headers, rows, notes, "Table IV (scaled reproduction)")
    data = rows[:-1]
    for row in data:
        sabre, satmap, tb = row[2], row[3], row[4]
        if tb is None:
            continue
        assert tb <= sabre, row
        if satmap is not None:
            assert tb <= satmap, row
        if "QUEKO" in row[1]:
            assert tb == 0, f"QUEKO must need zero SWAPs: {row}"


if __name__ == "__main__":
    headers, rows, notes = run_table4(time_budget=BUDGET)
    print_experiment(headers, rows, notes, "Table IV (scaled reproduction)")
