"""Ablation D5 — depth-optimization strategy.

The paper starts from the dependency lower bound T_LB and relaxes upward
(easy, tightly constrained problems first), then descends by one.  The
naive alternative starts from the horizon T_UB and descends one step at a
time, wading through many loosely-constrained satisfiable solves.  Compare
solve counts and total time to the (identical) optimum.

Run standalone:  python benchmarks/bench_ablation_optloop.py
"""

import time

from conftest import run_once

from repro.arch import grid
from repro.circuit import depth_upper_bound, longest_chain_length
from repro.core import LayoutEncoder, OLSQ2, SynthesisConfig
from repro.harness import format_table
from repro.workloads import qaoa_circuit
from repro.sat import SatResult

TIMEOUT = 120.0


def naive_descent(circuit, device, timeout: float):
    """Start at T_UB, descend by one until UNSAT; return (depth, time, solves)."""
    cfg = SynthesisConfig(swap_duration=1)
    horizon = depth_upper_bound(circuit)
    enc = LayoutEncoder(circuit, device, horizon, config=cfg)
    enc.encode()
    start = time.monotonic()
    deadline = start + timeout
    bound = horizon
    best = None
    solves = 0
    while bound >= 1 and time.monotonic() < deadline:
        solves += 1
        status = enc.ctx.solve(
            assumptions=[enc.depth_guard(bound)],
            time_budget=deadline - time.monotonic(),
        )
        if status is SatResult.SAT:
            best = bound
            bound -= 1
        else:
            break
    return best, time.monotonic() - start, solves


def paper_loop(circuit, device, timeout: float):
    cfg = SynthesisConfig(swap_duration=1, time_budget=timeout, solve_time_budget=timeout)
    synth = OLSQ2(cfg)
    start = time.monotonic()
    res = synth.synthesize(circuit, device, objective="depth")
    return res.depth, time.monotonic() - start, synth.last_synthesizer.iterations


def run_ablation(timeout: float = TIMEOUT):
    cases = [(6, (2, 3)), (8, (3, 3)), (10, (3, 4))]
    rows = []
    for n, (gr, gc) in cases:
        circuit = qaoa_circuit(n, seed=1)
        device = grid(gr, gc)
        d_paper, t_paper, s_paper = paper_loop(circuit, device, timeout)
        d_naive, t_naive, s_naive = naive_descent(circuit, device, timeout)
        rows.append(
            [f"QAOA({n}) {gr}x{gc}", d_paper, t_paper, s_paper, d_naive, t_naive, s_naive]
        )
    headers = [
        "Case",
        "depth*",
        "paper (s)",
        "solves",
        "naive depth",
        "naive (s)",
        "solves",
    ]
    return headers, rows


def test_ablation_optloop(benchmark):
    headers, rows = run_once(benchmark, run_ablation, timeout=TIMEOUT)
    print()
    print(format_table(headers, rows, title="Ablation D5: optimization loop"))
    for row in rows:
        # Both strategies must find the same optimum when both finish.
        if row[1] is not None and row[4] is not None:
            # naive bound counts gates-only depth; allow equality check
            assert row[1] <= row[4]


if __name__ == "__main__":
    headers, rows = run_ablation()
    print(format_table(headers, rows, title="Ablation D5: optimization loop"))
