"""Shared pytest-benchmark configuration for the paper-reproduction benches.

Every bench runs a whole experiment driver once (``pedantic`` mode): the
drivers are minutes-scale end-to-end sweeps, not microseconds-scale kernels,
so statistical repetition is pointless — the interesting output is the
paper-style table each bench prints and the shape assertions it makes.
"""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
