"""Ablation D6 — incremental solving vs fresh solver per bound.

The paper reuses learned clauses across optimization iterations via
assumption-based incremental solving (Sec. III-B).  Here we run the same
descending-bound schedule twice: once on one persistent solver with
assumption guards, once recreating the solver for every bound, and compare
total time.

Run standalone:  python benchmarks/bench_ablation_incremental.py
"""

import time

from conftest import run_once

from repro.arch import grid
from repro.circuit import depth_upper_bound, longest_chain_length
from repro.core import LayoutEncoder, SynthesisConfig
from repro.harness import format_table
from repro.workloads import qaoa_circuit
from repro.sat import SatResult

TIMEOUT = 120.0


def _schedule(circuit):
    """The descending depth-bound schedule both modes run."""
    t_ub = depth_upper_bound(circuit)
    t_lb = longest_chain_length(circuit)
    return list(range(t_ub, t_lb - 1, -1))


def incremental_mode(circuit, device, timeout):
    cfg = SynthesisConfig(swap_duration=1)
    enc = LayoutEncoder(circuit, device, depth_upper_bound(circuit), config=cfg)
    enc.encode()
    start = time.monotonic()
    deadline = start + timeout
    statuses = []
    for bound in _schedule(circuit):
        status = enc.ctx.solve(
            assumptions=[enc.depth_guard(bound)],
            time_budget=max(0.1, deadline - time.monotonic()),
        )
        statuses.append(status)
        if status is SatResult.UNSAT:
            break
    return statuses, time.monotonic() - start


def fresh_mode(circuit, device, timeout):
    cfg = SynthesisConfig(swap_duration=1)
    start = time.monotonic()
    deadline = start + timeout
    statuses = []
    for bound in _schedule(circuit):
        enc = LayoutEncoder(circuit, device, depth_upper_bound(circuit), config=cfg)
        enc.encode()
        status = enc.ctx.solve(
            assumptions=[enc.depth_guard(bound)],
            time_budget=max(0.1, deadline - time.monotonic()),
        )
        statuses.append(status)
        if status is SatResult.UNSAT:
            break
    return statuses, time.monotonic() - start


def run_ablation(timeout: float = TIMEOUT):
    cases = [(6, (2, 3)), (8, (3, 3))]
    rows = []
    for n, (gr, gc) in cases:
        circuit = qaoa_circuit(n, seed=1)
        device = grid(gr, gc)
        st_inc, t_inc = incremental_mode(circuit, device, timeout)
        st_fresh, t_fresh = fresh_mode(circuit, device, timeout)
        assert st_inc == st_fresh, "modes must agree on every bound's status"
        rows.append([f"QAOA({n}) {gr}x{gc}", len(st_inc), t_inc, t_fresh, t_fresh / t_inc])
    headers = ["Case", "bounds", "incremental (s)", "fresh (s)", "ratio"]
    return headers, rows


def test_ablation_incremental(benchmark):
    headers, rows = run_once(benchmark, run_ablation, timeout=TIMEOUT)
    print()
    print(format_table(headers, rows, title="Ablation D6: incremental solving"))
    # Incremental should not lose on aggregate (encoding is paid once).
    total_inc = sum(row[2] for row in rows)
    total_fresh = sum(row[3] for row in rows)
    assert total_inc <= total_fresh * 1.25


if __name__ == "__main__":
    headers, rows = run_ablation()
    print(format_table(headers, rows, title="Ablation D6: incremental solving"))
