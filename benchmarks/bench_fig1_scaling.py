"""Fig. 1 — SMT solving time vs coupling-graph size and gate count.

Paper: OLSQ's formulation explodes past 40 hours on a 9x9 grid / 36 gates,
while OLSQ2's stays under 10 minutes.  Scaled here to 2x3..4x4 grids and
QAOA circuits of 9-15 gates on the pure-Python substrate; the shape to
check is that OLSQ(int)'s time grows much faster than OLSQ2(bv)'s, so the
speedup ratio grows with instance size.

Run standalone:  python benchmarks/bench_fig1_scaling.py
"""

from conftest import run_once

from repro.harness import print_experiment, run_fig1

TIMEOUT = 60.0


def test_fig1_scaling(benchmark):
    headers, rows, notes = run_once(benchmark, run_fig1, timeout=TIMEOUT)
    print()
    print_experiment(headers, rows, notes, "Fig. 1 (scaled reproduction)")
    # Shape: on the largest solved case the speedup must clearly exceed 1,
    # and the largest case must be slower than the smallest for OLSQ.
    speedups = [row[4] for row in rows if row[4] is not None]
    assert speedups, "no case produced a ratio"
    assert max(speedups) > 2.0, f"expected OLSQ2 to win big somewhere: {speedups}"
    olsq_times = [row[2] for row in rows if row[2] is not None]
    assert olsq_times[-1] > olsq_times[0], "OLSQ time should grow with size"


if __name__ == "__main__":
    headers, rows, notes = run_fig1(timeout=TIMEOUT)
    print_experiment(headers, rows, notes, "Fig. 1 (scaled reproduction)")
