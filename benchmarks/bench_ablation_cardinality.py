"""Ablation D4 — cardinality encodings vs bound tightness.

Beyond Table II's single bound, sweep the SWAP bound from loose to tight on
one layout instance and compare the sequential counter, totalizer, and
adder-network encodings.  Expected: the CNF counting circuits (seqcounter,
totalizer) degrade gracefully as the bound tightens, while the adder
network (the AtMost/pseudo-Boolean stand-in) pays a growing penalty —
it is not arc-consistent, so tight bounds force search instead of
propagation.

Run standalone:  python benchmarks/bench_ablation_cardinality.py
"""

import time

from conftest import run_once

from repro.arch import grid
from repro.core import CARD_ADDER, CARD_SEQUENTIAL, CARD_TOTALIZER, LayoutEncoder, SynthesisConfig
from repro.harness import format_table
from repro.workloads import qaoa_circuit
from repro.sat import SatResult

TIMEOUT = 60.0
METHODS = (CARD_SEQUENTIAL, CARD_TOTALIZER, CARD_ADDER)
BOUNDS = (12, 8, 6, 4)


def run_ablation(timeout: float = TIMEOUT):
    circuit = qaoa_circuit(8, seed=1)
    device = grid(3, 3)
    rows = []
    for bound in BOUNDS:
        row = [bound]
        for method in METHODS:
            cfg = SynthesisConfig(cardinality=method, swap_duration=1)
            enc = LayoutEncoder(circuit, device, horizon=8, config=cfg)
            enc.encode()
            enc.init_swap_counter(max_bound=max(BOUNDS))
            guard = enc.swap_guard(bound)
            start = time.monotonic()
            status = enc.ctx.solve(
                assumptions=[guard] if guard is not None else [], time_budget=timeout
            )
            seconds = time.monotonic() - start
            row.append(seconds if status is not SatResult.UNKNOWN else None)
            row.append("TO" if status is SatResult.UNKNOWN else str(status))
        rows.append(row)
    headers = ["S_B"]
    for m in METHODS:
        headers.extend([f"{m} (s)", ""])
    return headers, rows


def test_ablation_cardinality(benchmark):
    headers, rows = run_once(benchmark, run_ablation, timeout=TIMEOUT)
    print()
    print(format_table(headers, rows, title="Ablation D4: cardinality vs bound"))
    # All encodings must agree on sat/unsat wherever they finished.
    for row in rows:
        statuses = {row[i] for i in (2, 4, 6) if row[i] != "TO"}
        assert len(statuses) <= 1, row


if __name__ == "__main__":
    headers, rows = run_ablation()
    print(format_table(headers, rows, title="Ablation D4: cardinality vs bound"))
