"""Public synthesizer classes: :class:`OLSQ2` and :class:`TBOLSQ2`.

Typical use::

    from repro import OLSQ2, QuantumCircuit
    from repro.arch import ibm_qx2

    qc = QuantumCircuit(3)
    qc.cx(0, 1); qc.cx(1, 2); qc.cx(0, 2)
    result = OLSQ2().synthesize(qc, ibm_qx2(), objective="depth")
    print(result.summary())
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from .config import SynthesisConfig
from .interface import OBJECTIVES, check_initial_mapping, check_objective
from .optimizer import IterativeSynthesizer
from .result import SynthesisResult

__all__ = ["OBJECTIVES", "OLSQ2", "TBOLSQ2"]


class OLSQ2:
    """The exact layout synthesizer of the paper (Sec. III).

    ``objective="depth"`` minimises circuit depth optimally;
    ``objective="swap"`` runs the 2-D depth/SWAP Pareto refinement and
    returns the best SWAP count found (Pareto-optimal when the loop
    terminated by proof rather than budget).
    """

    transition_based = False

    def __init__(self, config: Optional[SynthesisConfig] = None, share=None):
        self.config = config or SynthesisConfig()
        self.last_synthesizer: Optional[IterativeSynthesizer] = None
        # Optional repro.sat.sharing.ShareEndpoint: lets this synthesizer's
        # solvers trade learnt clauses with portfolio siblings.
        self.share = share

    def _encoder_cls(self):
        from .encoder import LayoutEncoder

        return LayoutEncoder

    def synthesize(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        *,
        objective: str = "depth",
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> SynthesisResult:
        """Synthesize ``circuit`` onto ``device``.

        ``initial_mapping`` (program qubit -> physical qubit) pins the t=0
        placement — useful for composing with an external placer or for
        continuing a partially-executed program; leave ``None`` to let the
        solver choose optimally.
        """
        check_objective(type(self).__name__, objective)
        mapping = check_initial_mapping(circuit, device, initial_mapping)
        encoder_kwargs = {}
        if mapping is not None:
            encoder_kwargs["initial_mapping"] = mapping
        synthesizer = IterativeSynthesizer(
            circuit,
            device,
            config=self.config,
            transition_based=self.transition_based,
            encoder_cls=self._encoder_cls(),
            encoder_kwargs=encoder_kwargs,
            share=self.share,
        )
        self.last_synthesizer = synthesizer
        if objective == "depth":
            return synthesizer.optimize_depth()
        return synthesizer.optimize_swaps()


class TBOLSQ2(OLSQ2):
    """Transition-based OLSQ2 (Sec. III-D): near-optimal SWAP minimisation
    at much larger scale via the coarse-grained block model.

    Results are flattened back to concrete time steps, so they satisfy the
    same validity constraints (and validator) as OLSQ2 results; only the
    achieved *depth* is not optimised.
    """

    transition_based = True
