"""Public synthesizer classes: :class:`OLSQ2` and :class:`TBOLSQ2`.

Typical use::

    from repro import OLSQ2, QuantumCircuit
    from repro.arch import ibm_qx2

    qc = QuantumCircuit(3)
    qc.cx(0, 1); qc.cx(1, 2); qc.cx(0, 2)
    result = OLSQ2().synthesize(qc, ibm_qx2(), objective="depth")
    print(result.summary())
"""

from __future__ import annotations

import time as _time
from typing import Optional, Sequence

from ..arch.coupling import CouplingGraph
from ..arch.subarch import extract_candidates, translate_result
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import longest_chain_length
from .config import SUBARCH_ON, SynthesisConfig
from .interface import OBJECTIVES, check_initial_mapping, check_objective
from .optimizer import (
    IterativeSynthesizer,
    SynthesisTimeout,
    analytic_swap_lower_bound,
)
from .result import SynthesisResult

__all__ = ["OBJECTIVES", "OLSQ2", "TBOLSQ2"]


class OLSQ2:
    """The exact layout synthesizer of the paper (Sec. III).

    ``objective="depth"`` minimises circuit depth optimally;
    ``objective="swap"`` runs the 2-D depth/SWAP Pareto refinement and
    returns the best SWAP count found (Pareto-optimal when the loop
    terminated by proof rather than budget).
    """

    transition_based = False

    def __init__(self, config: Optional[SynthesisConfig] = None, share=None):
        self.config = config or SynthesisConfig()
        self.last_synthesizer: Optional[IterativeSynthesizer] = None
        # Optional repro.sat.sharing.ShareEndpoint: lets this synthesizer's
        # solvers trade learnt clauses with portfolio siblings.
        self.share = share

    def _encoder_cls(self):
        from .encoder import LayoutEncoder

        return LayoutEncoder

    def synthesize(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        *,
        objective: str = "depth",
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> SynthesisResult:
        """Synthesize ``circuit`` onto ``device``.

        ``initial_mapping`` (program qubit -> physical qubit) pins the t=0
        placement — useful for composing with an external placer or for
        continuing a partially-executed program; leave ``None`` to let the
        solver choose optimally.
        """
        check_objective(type(self).__name__, objective)
        mapping = check_initial_mapping(circuit, device, initial_mapping)
        if self._subarch_applies(circuit, device, mapping):
            result = self._synthesize_subarch(circuit, device, objective)
            if result is not None:
                return result
        return self._synthesize_direct(
            circuit, device, objective, mapping, self.config
        )

    def _synthesize_direct(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        objective: str,
        mapping: Optional[Sequence[int]],
        config: SynthesisConfig,
    ) -> SynthesisResult:
        """One full-encoding run on exactly ``device`` (no region pruning)."""
        encoder_kwargs = {}
        if mapping is not None:
            encoder_kwargs["initial_mapping"] = list(mapping)
        synthesizer = IterativeSynthesizer(
            circuit,
            device,
            config=config,
            transition_based=self.transition_based,
            encoder_cls=self._encoder_cls(),
            encoder_kwargs=encoder_kwargs,
            share=self.share,
        )
        self.last_synthesizer = synthesizer
        if objective == "depth":
            return synthesizer.optimize_depth()
        return synthesizer.optimize_swaps()

    # -- subarchitecture driver (ROADMAP item 3) --------------------------

    def _subarch_applies(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        mapping: Optional[Sequence[int]],
    ) -> bool:
        """Whether to solve on extracted regions instead of the full device.

        Never with a pinned initial mapping (its physical labels may lie
        outside every region) and never under ``certify`` (certificates
        refer to one concrete encoding; a region proof is not a full-device
        proof).  ``auto`` additionally requires the device to be at least
        twice the circuit width — below that the encoding saving cannot
        amortize the candidate enumeration.
        """
        cfg = self.config
        if cfg.subarch == "off" or cfg.certify or mapping is not None:
            return False
        if circuit.n_qubits < 1 or device.n_qubits <= circuit.n_qubits:
            return False
        if cfg.subarch == SUBARCH_ON:
            return True
        return device.n_qubits >= 2 * circuit.n_qubits

    def _globally_optimal(
        self,
        local: SynthesisResult,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        objective: str,
    ) -> bool:
        """Candidate-local optimality promotes to full-device optimality
        only when the achieved objective meets a device-independent lower
        bound — a bound proved unsatisfiable *on a region* says nothing
        about the rest of the device."""
        if not local.optimal:
            return False
        if objective == "depth":
            if self.transition_based:
                # One transition block == a swap-free mapping exists; no
                # device can do better than a single block.
                synth = self.last_synthesizer
                return synth is not None and synth._current_bound_of(local) <= 1
            return local.depth == max(1, longest_chain_length(circuit))
        return local.swap_count <= analytic_swap_lower_bound(circuit, device)

    def _synthesize_subarch(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        objective: str,
    ) -> Optional[SynthesisResult]:
        """Solve on extracted regions, translating winners back.

        Candidates are tried densest-first on an even split of the time
        budget; the first region whose result is provably optimal for the
        *full* device short-circuits the rest.  Returns None (fall back to
        the full encoding) when no region yields any schedule.
        """
        started = _time.monotonic()
        candidates = extract_candidates(
            circuit, device, max_candidates=self.config.subarch_candidates
        )
        if not candidates:
            return None
        best: Optional[SynthesisResult] = None
        best_key = None
        best_region = None
        for index, candidate in enumerate(candidates):
            remaining = self.config.time_budget - (_time.monotonic() - started)
            if remaining <= 0:
                break
            share = max(1.0, remaining / (len(candidates) - index))
            cfg = self.config.replace(
                subarch="off",
                time_budget=share,
                solve_time_budget=min(self.config.solve_time_budget, share),
                warm_start=self.config.warm_start or "sabre",
            )
            try:
                local = self._synthesize_direct(
                    circuit, candidate.graph, objective, None, cfg
                )
            except SynthesisTimeout:
                continue
            proven = self._globally_optimal(local, circuit, device, objective)
            translated = translate_result(local, candidate.qubits, device)
            translated.optimal = proven
            translated.solver_stats["subarch"] = {
                "region": list(candidate.qubits),
                "anchor": candidate.anchor,
                "candidates": len(candidates),
                "candidate_index": index,
                "global_proof": proven,
            }
            translated.wall_time = _time.monotonic() - started
            if proven:
                return translated
            key = (
                (translated.swap_count, translated.depth)
                if objective == "swap"
                else (translated.depth, translated.swap_count)
            )
            if best_key is None or key < best_key:
                best, best_key, best_region = translated, key, index
        if best is not None:
            best.solver_stats["subarch"]["winning_candidate"] = best_region
            best.wall_time = _time.monotonic() - started
        return best


class TBOLSQ2(OLSQ2):
    """Transition-based OLSQ2 (Sec. III-D): near-optimal SWAP minimisation
    at much larger scale via the coarse-grained block model.

    Results are flattened back to concrete time steps, so they satisfy the
    same validity constraints (and validator) as OLSQ2 results; only the
    achieved *depth* is not optimised.
    """

    transition_based = True
