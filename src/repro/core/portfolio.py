"""Portfolio parallel layout synthesis (paper Sec. V future direction).

"We aim to support parallel layout synthesis by solving multiple instances
simultaneously.  Since each instance is independent of one another, we can
build a portfolio of instances by generating configurations for a wide
range of objective bounds [and] different encoding methods."

:class:`PortfolioSynthesizer` does exactly that: it launches one worker
process per configuration (different variable encodings, injectivity
methods, cardinality encodings, transition granularity, warm-start
seeding...) on the same problem and returns the best result.

* ``objective="depth"`` — first proven-optimal result wins (all exact
  configurations agree on the optimum, so the fastest prover decides);
  if nothing proves optimality in budget, the best depth found wins.
* ``objective="swap"`` — best SWAP count within the budget wins
  (ties broken by depth, then by finish order).

Workers are separate processes (the CDCL loop holds the GIL), so the
portfolio genuinely uses multiple cores.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..sat.sharing import ShareRelay
from .config import SynthesisConfig
from .interface import check_initial_mapping, check_objective
from .olsq2 import OLSQ2, TBOLSQ2
from .optimizer import SynthesisTimeout
from .result import SynthesisResult
from .validator import validate_result


@dataclass
class PortfolioEntry:
    """One configuration in the portfolio."""

    name: str
    config: SynthesisConfig
    transition_based: bool = False


def default_portfolio(
    swap_duration: int = 3, time_budget: float = 300.0
) -> List[PortfolioEntry]:
    """A reasonable spread of configurations, per the paper's suggestion."""
    base = dict(
        swap_duration=swap_duration,
        time_budget=time_budget,
        solve_time_budget=time_budget / 2,
    )
    return [
        PortfolioEntry("bv", SynthesisConfig(**base)),
        PortfolioEntry(
            "bv+euf", SynthesisConfig(injectivity="channeling", **base)
        ),
        PortfolioEntry(
            "bv+totalizer", SynthesisConfig(cardinality="totalizer", **base)
        ),
        PortfolioEntry(
            "bv+warmstart", SynthesisConfig(warm_start="sabre", **base)
        ),
    ]


def _worker(
    entry: PortfolioEntry,
    circuit,
    device,
    objective,
    initial_mapping,
    queue,
    share=None,
) -> None:
    """Run one configuration; push (name, result-or-None, error) to the queue."""
    try:
        cls = TBOLSQ2 if entry.transition_based else OLSQ2
        result = cls(entry.config, share=share).synthesize(
            circuit, device, objective=objective, initial_mapping=initial_mapping
        )
        validate_result(result, strict_dependencies=True)
        queue.put((entry.name, result, None))
    except SynthesisTimeout as exc:
        queue.put((entry.name, None, f"timeout: {exc}"))
    except Exception as exc:  # pragma: no cover - surfaced to caller
        queue.put((entry.name, None, f"{type(exc).__name__}: {exc}"))


class PortfolioSynthesizer:
    """Run several synthesizer configurations in parallel, keep the best."""

    def __init__(
        self,
        entries: Optional[Sequence[PortfolioEntry]] = None,
        time_budget: float = 300.0,
        share: bool = False,
        share_buffer: int = 64,
    ):
        self.entries = list(entries) if entries is not None else default_portfolio(
            time_budget=time_budget
        )
        if not self.entries:
            raise ValueError("portfolio needs at least one entry")
        self.time_budget = time_budget
        # Learnt-clause sharing between workers (see repro.sat.sharing).
        # Off by default: the independent race is the paper's Sec. V
        # proposal; ParallelDescent turns it on.
        self.share = share
        self.share_buffer = share_buffer
        self.outcomes: List[Tuple[str, Optional[str]]] = []

    def synthesize(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        *,
        objective: str = "depth",
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> SynthesisResult:
        check_objective("PortfolioSynthesizer", objective)
        mapping = check_initial_mapping(circuit, device, initial_mapping)
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        queue: mp.Queue = ctx.Queue()
        relay = None
        endpoints: List[Optional[object]] = [None] * len(self.entries)
        if self.share and len(self.entries) > 1:
            relay = ShareRelay(
                len(self.entries),
                buffer=self.share_buffer,
                queue_factory=lambda: ctx.Queue(self.share_buffer),
            )
            endpoints = [relay.endpoint(i) for i in range(len(self.entries))]
            relay.start()
        processes = [
            ctx.Process(
                target=_worker,
                args=(entry, circuit, device, objective, mapping, queue,
                      endpoints[i]),
                daemon=True,
            )
            for i, entry in enumerate(self.entries)
        ]
        for proc in processes:
            proc.start()
        deadline = time.monotonic() + self.time_budget
        best: Optional[SynthesisResult] = None
        best_name = ""
        pending = len(processes)
        self.outcomes = []
        try:
            while pending and time.monotonic() < deadline:
                timeout = max(0.05, deadline - time.monotonic())
                try:
                    name, result, error = queue.get(timeout=timeout)
                except _queue.Empty:
                    break  # overall deadline reached
                pending -= 1
                self.outcomes.append((name, error))
                if result is None:
                    continue
                if self._better(result, best, objective):
                    best, best_name = result, name
                if best is not None and best.optimal:
                    # First optimality proof settles the race for either
                    # objective: all exact configurations agree on the
                    # optimal depth, and a proven-Pareto SWAP result cannot
                    # be beaten on the primary key either.
                    break
        finally:
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for proc in processes:
                proc.join(timeout=5)
            if relay is not None:
                relay.stop()
        if best is None:
            raise SynthesisTimeout(
                "no portfolio configuration produced a solution in budget; "
                f"outcomes: {self.outcomes}"
            )
        best.solver_stats = dict(best.solver_stats)
        best.solver_stats["portfolio_winner"] = best_name
        return best

    @staticmethod
    def _better(candidate, incumbent, objective) -> bool:
        if incumbent is None:
            return True
        if objective == "swap":
            key = lambda r: (r.swap_count, r.depth, not r.optimal)
        else:
            key = lambda r: (r.depth, r.swap_count, not r.optimal)
        return key(candidate) < key(incumbent)
