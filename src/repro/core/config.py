"""Configuration for the layout synthesizers.

Bundles every knob the paper ablates (Sec. III): variable encoding
(bit-vector vs one-hot/"integer"), injectivity encoding (pairwise vs
EUF-style channeling), cardinality encoding for the SWAP bound (sequential
counter CNF vs totalizer vs adder-network/"AtMost"), the SWAP gate duration,
the T_UB ratio, and the optimization time budget — plus the observability
hooks (``tracer`` / ``progress_callback``) every synthesizer honours.

All string-valued knobs are validated in ``__post_init__``: a typo like
``SynthesisConfig(encoding="bogus")`` fails at construction with the list
of valid choices, not deep inside the encoder.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field, fields, replace
from typing import Any, Callable, Dict, Optional

from ..encodings.cardinality import SEQUENTIAL
from ..smt.domain import BITVEC, ENCODINGS, INT, ONEHOT
from ..smt.injectivity import CHANNELING_INJ, INJECTIVITY_METHODS, PAIRWISE_INJ

CARD_SEQUENTIAL = "seqcounter"
CARD_TOTALIZER = "totalizer"
CARD_ADDER = "adder"
CARDINALITY_METHODS = (CARD_SEQUENTIAL, CARD_TOTALIZER, CARD_ADDER)

WARM_START_SOURCES = (None, "sabre")

SUBARCH_OFF = "off"
SUBARCH_AUTO = "auto"
SUBARCH_ON = "on"
SUBARCH_MODES = (SUBARCH_OFF, SUBARCH_AUTO, SUBARCH_ON)

#: Default candidate-region count for the sequential subarch driver.
DEFAULT_SUBARCH_CANDIDATES = 4

SIMPLIFY_OFF = "off"
SIMPLIFY_INPROCESS = "inprocess"
SIMPLIFY_FULL = "full"
SIMPLIFY_MODES = (SIMPLIFY_OFF, SIMPLIFY_INPROCESS, SIMPLIFY_FULL)

#: Runtime sanitizer modes (mirrors repro.analysis.sanitize.SANITIZE_MODES,
#: spelled out here so validating a config never imports the analysis
#: package).  ``None`` defers to the REPRO_SANITIZE environment variable.
SANITIZE_MODES = (None, "off", "light", "full")

#: Bulk clause loading at encode time (repro.sat.solver begin_bulk /
#: end_bulk): "on" (default) stages each constraint family's clauses and
#: lands them through one arena bulk allocation (and, in native mode, one
#: k_load_clauses FFI call); "off" forces the per-clause add path.  Both
#: produce byte-identical solver state; "off" exists for differential
#: testing and the encode-throughput microbench.
BULK_MODES = ("on", "off")

#: Encoded-state template reuse (repro.sat.snapshot): "on" (default) lets
#: synthesizers consult ``template_store`` (when one is attached) for a
#: post-encode snapshot keyed by the instance's encode-relevant shape,
#: skipping Python encoding on a hit; "off" always encodes from scratch.
TEMPLATE_MODES = ("on", "off")

#: Sentinel distinguishing "verbose was not passed" from any user value, so
#: the removed kwarg can be rejected with a migration hint instead of the
#: bare TypeError a plain unknown keyword would produce.
_VERBOSE_REMOVED = object()

#: Fields dropped by ``to_dict`` — the process-local observability hooks.
#: They hold live objects (a Tracer with open sinks, an arbitrary callable)
#: that cannot survive serialization; a deserialized config starts with
#: both unset and callers re-attach what they need.  This is the one rule
#: the service wire format, the tuning store, and bench reports share.
NON_SERIALIZABLE_FIELDS = ("tracer", "progress_callback", "template_store")


def _choice(name: str, value, valid) -> None:
    """Reject ``value`` unless it is one of ``valid``, listing the choices."""
    if value not in valid:
        choices = sorted(str(v) for v in valid if v is not None)
        raise ValueError(
            f"unknown {name} {value!r}; valid choices: {', '.join(choices)}"
        )


@dataclass
class SynthesisConfig:
    """All knobs of the OLSQ2 formulation and optimization loops.

    The defaults are the paper's winning configuration: bit-vector
    variables, pairwise injectivity, sequential-counter CNF cardinality,
    SWAP duration 3 (set to 1 for QAOA per Sec. IV), and the
    ``T_UB = 1.5 x T_LB`` horizon.

    Observability:

    * ``tracer`` — a :class:`repro.telemetry.Tracer`; every phase of the
      run (encoding, each solver query, each optimization iteration) is
      recorded through it,
    * ``progress_callback`` — shorthand for cooperative cancellation: it
      receives every trace record and returning ``False`` aborts the run
      cleanly with the best result found so far.

    The long-deprecated ``verbose`` flag is gone: pass
    ``tracer=Tracer(sinks=[StderrSink()])`` from :mod:`repro.telemetry`
    instead.  Both observability hooks are process-local and excluded from
    :meth:`to_dict` (see :data:`NON_SERIALIZABLE_FIELDS`).
    """

    encoding: str = BITVEC
    injectivity: str = PAIRWISE_INJ
    cardinality: str = CARD_SEQUENTIAL
    swap_duration: int = 3
    tub_ratio: float = 1.5
    time_budget: float = 600.0  # seconds for a whole optimization run
    solve_time_budget: float = 300.0  # per individual SAT query
    depth_relax_small: float = 1.3  # bound growth while T_B < 100 (Sec. III-B.1)
    depth_relax_large: float = 1.1  # bound growth once T_B >= 100
    depth_relax_threshold: int = 100
    max_pareto_rounds: int = 4  # depth relaxations in the 2-D SWAP search
    warm_start: Optional[str] = None  # None or "sabre": heuristic search seeding
    # Subarchitecture pruning (repro.arch.subarch): "off" always encodes
    # the full device; "auto" (recommended for 50+ qubit devices) solves
    # on an extracted circuit-width region when the device is at least
    # twice the circuit width; "on" forces region extraction whenever the
    # device is strictly larger than the circuit.  Results are always
    # translated back to full-device labels and re-validated; optimality
    # is only claimed when the achieved objective meets a
    # device-independent lower bound.  Ignored when the caller pins an
    # initial mapping (pinned physical labels may lie outside any region).
    subarch: str = SUBARCH_OFF
    # How many distinct (post-pruning) candidate regions to try in the
    # sequential driver; ParallelDescent instead races one candidate per
    # worker.
    subarch_candidates: int = DEFAULT_SUBARCH_CANDIDATES
    certify: bool = False  # re-prove the final UNSAT bound with a checked RUP proof
    # Formula simplification (repro.sat.inprocess): "off" disables it,
    # "inprocess" (default) runs restart-time vivification / probing /
    # subsumption plus a bounded encode-time pass, "full" additionally
    # runs bounded variable elimination over the thawed auxiliary
    # variables at encode time.
    simplify: str = SIMPLIFY_INPROCESS
    # SAT-solver backend (repro.sat.kernel): "python" forces the pure
    # interpreter loops, "native" requires the compiled kernel, "auto"
    # (default) uses the kernel when built, honouring the REPRO_KERNEL
    # environment variable.  Both backends are byte-for-byte equivalent.
    kernel: str = "auto"
    # Runtime sanitizer (repro.analysis.sanitize): "off" disables it,
    # "light" validates trail/level and kernel generation invariants at
    # the solver's level-0 safe points, "full" adds watcher completeness,
    # the python/C watch mirror comparison, online proof-log discipline
    # (add-before-delete, RUP at emission) and shared-ring checks.  The
    # default None defers to the REPRO_SANITIZE environment variable
    # (off when unset).  A debugging knob: "full" is deliberately slow.
    sanitize: Optional[str] = None
    # Encode-time bulk clause loading (see BULK_MODES).  Byte-identical to
    # the per-clause path; "off" is a differential-testing/microbench knob.
    encode_bulk: str = "on"
    # Encoded-state template reuse (see TEMPLATE_MODES).  Only effective
    # when a ``template_store`` is attached (the service worker pool and
    # ParallelDescent do this themselves).
    templates: str = "on"
    tracer: Optional[Any] = field(default=None, compare=False)
    progress_callback: Optional[Callable] = field(default=None, compare=False)
    # Process-local repro.sat.snapshot.TemplateStore consulted by the
    # synthesizers when ``templates == "on"``.  Like the tracer, it holds
    # live state (snapshot bytes, hit counters) and never crosses a wire.
    template_store: Optional[Any] = field(default=None, compare=False)
    # Removed knob: accepted only so the rejection can name the replacement.
    verbose: InitVar[Any] = _VERBOSE_REMOVED

    def __post_init__(self, verbose):
        if verbose is not _VERBOSE_REMOVED:
            raise TypeError(
                "SynthesisConfig(verbose=...) was removed after a five-PR "
                "deprecation; attach a stderr telemetry sink instead: "
                "SynthesisConfig(tracer=Tracer(sinks=[StderrSink()])) "
                "with Tracer and StderrSink from repro.telemetry"
            )
        _choice("variable encoding", self.encoding, ENCODINGS)
        _choice("injectivity method", self.injectivity, INJECTIVITY_METHODS)
        _choice("cardinality method", self.cardinality, CARDINALITY_METHODS)
        _choice("warm-start source", self.warm_start, WARM_START_SOURCES)
        _choice("subarch mode", self.subarch, SUBARCH_MODES)
        _choice("simplify mode", self.simplify, SIMPLIFY_MODES)
        _choice("sanitize mode", self.sanitize, SANITIZE_MODES)
        _choice("encode_bulk mode", self.encode_bulk, BULK_MODES)
        _choice("templates mode", self.templates, TEMPLATE_MODES)
        if self.subarch_candidates < 1:
            raise ValueError("subarch candidate count must be >= 1")
        # Validate kernel choice *and* availability up front: asking for
        # the native backend without the built extension should fail at
        # config construction with the remedy, not deep inside a solve.
        from ..sat.kernel import BACKENDS, native_available

        _choice("solver kernel", self.kernel, BACKENDS)
        if self.kernel == "native" and not native_available():
            raise ValueError(
                "kernel='native' requested but the compiled kernel is not "
                "available; build it with 'python -m repro.sat.kernel.build' "
                "or use kernel='auto' to fall back to the pure-Python solver"
            )
        if self.swap_duration < 1:
            raise ValueError("swap duration must be >= 1")
        if self.tub_ratio < 1.0:
            raise ValueError("T_UB ratio must be >= 1")
        # Zero is allowed (it means "no time left": the loops raise
        # SynthesisTimeout on their first budget check); negatives are typos.
        if self.time_budget < 0:
            raise ValueError("time budget must be >= 0")
        if self.solve_time_budget < 0:
            raise ValueError("per-solve time budget must be >= 0")
        if self.progress_callback is not None and not callable(self.progress_callback):
            raise ValueError("progress_callback must be callable")

    def replace(self, **kwargs) -> "SynthesisConfig":
        return replace(self, **kwargs)

    def make_tracer(self):
        """Resolve the effective tracer for one synthesis run.

        Priority: an explicit ``tracer`` wins (with ``progress_callback``
        attached to it if it has none); otherwise ``progress_callback``
        gets a fresh :class:`~repro.telemetry.Tracer`; otherwise the
        shared no-op :data:`~repro.telemetry.NULL_TRACER`.
        """
        from ..telemetry import NULL_TRACER, Tracer

        if self.tracer is not None:
            tracer = self.tracer
            if self.progress_callback is not None and tracer.progress_callback is None:
                tracer.progress_callback = self.progress_callback
            return tracer
        if self.progress_callback is not None:
            return Tracer(progress_callback=self.progress_callback)
        return NULL_TRACER

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The config as a JSON-serializable dict.

        Every knob round-trips losslessly through :meth:`from_dict`; only
        the process-local observability hooks in
        :data:`NON_SERIALIZABLE_FIELDS` are dropped (they hold live
        objects that cannot cross a wire or a process boundary).
        """
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in NON_SERIALIZABLE_FIELDS
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SynthesisConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected (a typo'd knob must not silently become
        a default), with the same construction-time validation as direct
        instantiation.
        """
        dropped = set(data) & set(NON_SERIALIZABLE_FIELDS)
        if dropped:
            raise ValueError(
                f"fields {sorted(dropped)} are process-local and not part "
                "of the wire format; attach them after from_dict()"
            )
        valid = {
            f.name for f in fields(cls) if f.name not in NON_SERIALIZABLE_FIELDS
        }
        unknown = set(data) - valid
        if unknown:
            raise ValueError(
                f"unknown SynthesisConfig fields: {sorted(unknown)}; "
                f"valid fields: {sorted(valid)}"
            )
        return cls(**data)


def qaoa_config(**kwargs) -> SynthesisConfig:
    """The paper's QAOA setting: SWAP duration 1 (Sec. IV)."""
    kwargs.setdefault("swap_duration", 1)
    return SynthesisConfig(**kwargs)


def paper_variant(name: str, **kwargs) -> SynthesisConfig:
    """Named encoding variants from Table I.

    ``olsq2-bv`` (default winner), ``olsq2-int``, ``olsq2-euf-int``,
    ``olsq2-euf-bv``.  The OLSQ (space-variable) variants live in
    :mod:`repro.baselines.olsq` and reuse these configs.
    """
    variants = {
        "olsq2-bv": dict(encoding=BITVEC, injectivity=PAIRWISE_INJ),
        "olsq2-int": dict(encoding=INT, injectivity=PAIRWISE_INJ),
        "olsq2-euf-int": dict(encoding=INT, injectivity=CHANNELING_INJ),
        "olsq2-euf-bv": dict(encoding=BITVEC, injectivity=CHANNELING_INJ),
        "olsq2-onehot": dict(encoding=ONEHOT, injectivity=PAIRWISE_INJ),
        "olsq2-order": dict(encoding="order", injectivity=PAIRWISE_INJ),
    }
    if name not in variants:
        raise ValueError(f"unknown variant {name!r}; choose from {sorted(variants)}")
    merged = dict(variants[name])
    merged.update(kwargs)
    return SynthesisConfig(**merged)
