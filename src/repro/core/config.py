"""Configuration for the layout synthesizers.

Bundles every knob the paper ablates (Sec. III): variable encoding
(bit-vector vs one-hot/"integer"), injectivity encoding (pairwise vs
EUF-style channeling), cardinality encoding for the SWAP bound (sequential
counter CNF vs totalizer vs adder-network/"AtMost"), the SWAP gate duration,
the T_UB ratio, and the optimization time budget — plus the observability
hooks (``tracer`` / ``progress_callback``) every synthesizer honours.

All string-valued knobs are validated in ``__post_init__``: a typo like
``SynthesisConfig(encoding="bogus")`` fails at construction with the list
of valid choices, not deep inside the encoder.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from ..encodings.cardinality import SEQUENTIAL
from ..smt.domain import BITVEC, ENCODINGS, INT, ONEHOT
from ..smt.injectivity import CHANNELING_INJ, INJECTIVITY_METHODS, PAIRWISE_INJ

CARD_SEQUENTIAL = "seqcounter"
CARD_TOTALIZER = "totalizer"
CARD_ADDER = "adder"
CARDINALITY_METHODS = (CARD_SEQUENTIAL, CARD_TOTALIZER, CARD_ADDER)

WARM_START_SOURCES = (None, "sabre")

SIMPLIFY_OFF = "off"
SIMPLIFY_INPROCESS = "inprocess"
SIMPLIFY_FULL = "full"
SIMPLIFY_MODES = (SIMPLIFY_OFF, SIMPLIFY_INPROCESS, SIMPLIFY_FULL)


def _choice(name: str, value, valid) -> None:
    """Reject ``value`` unless it is one of ``valid``, listing the choices."""
    if value not in valid:
        choices = sorted(str(v) for v in valid if v is not None)
        raise ValueError(
            f"unknown {name} {value!r}; valid choices: {', '.join(choices)}"
        )


@dataclass
class SynthesisConfig:
    """All knobs of the OLSQ2 formulation and optimization loops.

    The defaults are the paper's winning configuration: bit-vector
    variables, pairwise injectivity, sequential-counter CNF cardinality,
    SWAP duration 3 (set to 1 for QAOA per Sec. IV), and the
    ``T_UB = 1.5 x T_LB`` horizon.

    Observability:

    * ``tracer`` — a :class:`repro.telemetry.Tracer`; every phase of the
      run (encoding, each solver query, each optimization iteration) is
      recorded through it,
    * ``progress_callback`` — shorthand for cooperative cancellation: it
      receives every trace record and returning ``False`` aborts the run
      cleanly with the best result found so far,
    * ``verbose`` — **deprecated** alias for attaching a human-readable
      stderr telemetry sink.
    """

    encoding: str = BITVEC
    injectivity: str = PAIRWISE_INJ
    cardinality: str = CARD_SEQUENTIAL
    swap_duration: int = 3
    tub_ratio: float = 1.5
    time_budget: float = 600.0  # seconds for a whole optimization run
    solve_time_budget: float = 300.0  # per individual SAT query
    depth_relax_small: float = 1.3  # bound growth while T_B < 100 (Sec. III-B.1)
    depth_relax_large: float = 1.1  # bound growth once T_B >= 100
    depth_relax_threshold: int = 100
    max_pareto_rounds: int = 4  # depth relaxations in the 2-D SWAP search
    warm_start: Optional[str] = None  # None or "sabre": heuristic search seeding
    certify: bool = False  # re-prove the final UNSAT bound with a checked RUP proof
    # Formula simplification (repro.sat.inprocess): "off" disables it,
    # "inprocess" (default) runs restart-time vivification / probing /
    # subsumption plus a bounded encode-time pass, "full" additionally
    # runs bounded variable elimination over the thawed auxiliary
    # variables at encode time.
    simplify: str = SIMPLIFY_INPROCESS
    tracer: Optional[Any] = field(default=None, compare=False)
    progress_callback: Optional[Callable] = field(default=None, compare=False)
    verbose: bool = False

    def __post_init__(self):
        _choice("variable encoding", self.encoding, ENCODINGS)
        _choice("injectivity method", self.injectivity, INJECTIVITY_METHODS)
        _choice("cardinality method", self.cardinality, CARDINALITY_METHODS)
        _choice("warm-start source", self.warm_start, WARM_START_SOURCES)
        _choice("simplify mode", self.simplify, SIMPLIFY_MODES)
        if self.swap_duration < 1:
            raise ValueError("swap duration must be >= 1")
        if self.tub_ratio < 1.0:
            raise ValueError("T_UB ratio must be >= 1")
        # Zero is allowed (it means "no time left": the loops raise
        # SynthesisTimeout on their first budget check); negatives are typos.
        if self.time_budget < 0:
            raise ValueError("time budget must be >= 0")
        if self.solve_time_budget < 0:
            raise ValueError("per-solve time budget must be >= 0")
        if self.progress_callback is not None and not callable(self.progress_callback):
            raise ValueError("progress_callback must be callable")
        if self.verbose:
            warnings.warn(
                "SynthesisConfig(verbose=True) is deprecated; pass "
                "tracer=Tracer(sinks=[StderrSink()]) from repro.telemetry "
                "instead (verbose now merely installs that sink for you)",
                DeprecationWarning,
                stacklevel=3,
            )

    def replace(self, **kwargs) -> "SynthesisConfig":
        return replace(self, **kwargs)

    def make_tracer(self):
        """Resolve the effective tracer for one synthesis run.

        Priority: an explicit ``tracer`` wins (with ``progress_callback``
        attached to it if it has none); otherwise ``verbose`` /
        ``progress_callback`` get a fresh :class:`~repro.telemetry.Tracer`
        (with a stderr sink when verbose); otherwise the shared no-op
        :data:`~repro.telemetry.NULL_TRACER`.
        """
        from ..telemetry import NULL_TRACER, StderrSink, Tracer

        if self.tracer is not None:
            tracer = self.tracer
            if self.progress_callback is not None and tracer.progress_callback is None:
                tracer.progress_callback = self.progress_callback
            if self.verbose and not any(
                isinstance(s, StderrSink) for s in tracer.sinks
            ):
                tracer.add_sink(StderrSink())
            return tracer
        if self.verbose or self.progress_callback is not None:
            sinks = [StderrSink()] if self.verbose else []
            return Tracer(sinks=sinks, progress_callback=self.progress_callback)
        return NULL_TRACER


def qaoa_config(**kwargs) -> SynthesisConfig:
    """The paper's QAOA setting: SWAP duration 1 (Sec. IV)."""
    kwargs.setdefault("swap_duration", 1)
    return SynthesisConfig(**kwargs)


def paper_variant(name: str, **kwargs) -> SynthesisConfig:
    """Named encoding variants from Table I.

    ``olsq2-bv`` (default winner), ``olsq2-int``, ``olsq2-euf-int``,
    ``olsq2-euf-bv``.  The OLSQ (space-variable) variants live in
    :mod:`repro.baselines.olsq` and reuse these configs.
    """
    variants = {
        "olsq2-bv": dict(encoding=BITVEC, injectivity=PAIRWISE_INJ),
        "olsq2-int": dict(encoding=INT, injectivity=PAIRWISE_INJ),
        "olsq2-euf-int": dict(encoding=INT, injectivity=CHANNELING_INJ),
        "olsq2-euf-bv": dict(encoding=BITVEC, injectivity=CHANNELING_INJ),
        "olsq2-onehot": dict(encoding=ONEHOT, injectivity=PAIRWISE_INJ),
        "olsq2-order": dict(encoding="order", injectivity=PAIRWISE_INJ),
    }
    if name not in variants:
        raise ValueError(f"unknown variant {name!r}; choose from {sorted(variants)}")
    merged = dict(variants[name])
    merged.update(kwargs)
    return SynthesisConfig(**merged)
