"""Configuration for the layout synthesizers.

Bundles every knob the paper ablates (Sec. III): variable encoding
(bit-vector vs one-hot/"integer"), injectivity encoding (pairwise vs
EUF-style channeling), cardinality encoding for the SWAP bound (sequential
counter CNF vs totalizer vs adder-network/"AtMost"), the SWAP gate duration,
the T_UB ratio, and the optimization time budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..encodings.cardinality import SEQUENTIAL
from ..smt.domain import BITVEC, ENCODINGS, INT, ONEHOT
from ..smt.injectivity import CHANNELING_INJ, INJECTIVITY_METHODS, PAIRWISE_INJ

CARD_SEQUENTIAL = "seqcounter"
CARD_TOTALIZER = "totalizer"
CARD_ADDER = "adder"
CARDINALITY_METHODS = (CARD_SEQUENTIAL, CARD_TOTALIZER, CARD_ADDER)


@dataclass
class SynthesisConfig:
    """All knobs of the OLSQ2 formulation and optimization loops.

    The defaults are the paper's winning configuration: bit-vector
    variables, pairwise injectivity, sequential-counter CNF cardinality,
    SWAP duration 3 (set to 1 for QAOA per Sec. IV), and the
    ``T_UB = 1.5 x T_LB`` horizon.
    """

    encoding: str = BITVEC
    injectivity: str = PAIRWISE_INJ
    cardinality: str = CARD_SEQUENTIAL
    swap_duration: int = 3
    tub_ratio: float = 1.5
    time_budget: float = 600.0  # seconds for a whole optimization run
    solve_time_budget: float = 300.0  # per individual SAT query
    depth_relax_small: float = 1.3  # bound growth while T_B < 100 (Sec. III-B.1)
    depth_relax_large: float = 1.1  # bound growth once T_B >= 100
    depth_relax_threshold: int = 100
    max_pareto_rounds: int = 4  # depth relaxations in the 2-D SWAP search
    warm_start: Optional[str] = None  # None or "sabre": heuristic search seeding
    certify: bool = False  # re-prove the final UNSAT bound with a checked RUP proof
    verbose: bool = False

    def __post_init__(self):
        if self.encoding not in ENCODINGS:
            raise ValueError(f"unknown variable encoding {self.encoding!r}")
        if self.injectivity not in INJECTIVITY_METHODS:
            raise ValueError(f"unknown injectivity method {self.injectivity!r}")
        if self.cardinality not in CARDINALITY_METHODS:
            raise ValueError(f"unknown cardinality method {self.cardinality!r}")
        if self.swap_duration < 1:
            raise ValueError("swap duration must be >= 1")
        if self.tub_ratio < 1.0:
            raise ValueError("T_UB ratio must be >= 1")
        if self.warm_start not in (None, "sabre"):
            raise ValueError(f"unknown warm-start source {self.warm_start!r}")

    def replace(self, **kwargs) -> "SynthesisConfig":
        return replace(self, **kwargs)


def qaoa_config(**kwargs) -> SynthesisConfig:
    """The paper's QAOA setting: SWAP duration 1 (Sec. IV)."""
    kwargs.setdefault("swap_duration", 1)
    return SynthesisConfig(**kwargs)


def paper_variant(name: str, **kwargs) -> SynthesisConfig:
    """Named encoding variants from Table I.

    ``olsq2-bv`` (default winner), ``olsq2-int``, ``olsq2-euf-int``,
    ``olsq2-euf-bv``.  The OLSQ (space-variable) variants live in
    :mod:`repro.baselines.olsq` and reuse these configs.
    """
    variants = {
        "olsq2-bv": dict(encoding=BITVEC, injectivity=PAIRWISE_INJ),
        "olsq2-int": dict(encoding=INT, injectivity=PAIRWISE_INJ),
        "olsq2-euf-int": dict(encoding=INT, injectivity=CHANNELING_INJ),
        "olsq2-euf-bv": dict(encoding=BITVEC, injectivity=CHANNELING_INJ),
        "olsq2-onehot": dict(encoding=ONEHOT, injectivity=PAIRWISE_INJ),
        "olsq2-order": dict(encoding="order", injectivity=PAIRWISE_INJ),
    }
    if name not in variants:
        raise ValueError(f"unknown variant {name!r}; choose from {sorted(variants)}")
    merged = dict(variants[name])
    merged.update(kwargs)
    return SynthesisConfig(**merged)
