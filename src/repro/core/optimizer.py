"""Iterative optimization loops (paper Sec. III-B).

Z3's built-in optimizer was the paper's bottleneck; OLSQ2 replaces it with
hand-rolled loops over incremental SAT queries:

* **Depth**: start from the dependency lower bound T_LB, geometrically relax
  the bound (x1.3 below 100, x1.1 above) until the first satisfiable case,
  then descend by 1 until unsatisfiable.  If the bound outgrows the variable
  horizon T_UB, the formulation is regenerated with a larger horizon.
* **SWAP count**: *iterative descent* — because loosening the SWAP bound
  only enlarges the feasible set (the monotone property), the first solve
  uses the count of an existing solution as the upper bound and walks down
  one at a time; the first UNSAT proves optimality.  A 2-D search then
  relaxes the depth bound and retries, producing Pareto-optimal points.

All bounds are activated through assumption literals, so learned clauses
persist across iterations (incremental solving).
"""

from __future__ import annotations

import math
import time as _time
from typing import List, Optional, Tuple

from ..analysis.certify import (
    Certificate,
    RefutationRecord,
    certify_bound,
    check_records,
)
from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import depth_upper_bound, longest_chain_length
from ..sat.result import SatResult
from ..sat.sharing import ShareClient
from ..sat.solver import Solver
from ..smt.context import SMTContext
from .config import SynthesisConfig
from .encoder import LayoutEncoder
from .result import SwapEvent, SynthesisResult
from .validator import is_valid


def analytic_swap_lower_bound(
    circuit: QuantumCircuit, device: CouplingGraph
) -> int:
    """A sound mapping-independent SWAP-count lower bound.

    Two counting arguments, both valid for *every* schedule on ``device``
    (any initial mapping, any depth), with ``D`` the device's maximum
    degree:

    * **Adjacency budget** — every distinct interacting program pair must
      be mapped to a device edge at some time step.  At ``t = 0`` at most
      ``min(|E|, k*D/2)`` pairs are adjacent (``k`` mapped qubits cannot
      induce more edges), and one SWAP exchanges two program qubits whose
      pair was already adjacent, granting each at most ``D - 1`` new
      neighbours: at most ``2(D - 1)`` newly adjacent pairs per SWAP.
    * **Per-qubit budget** — a program qubit interacting with ``g``
      distinct partners starts with at most ``D`` neighbours; a SWAP
      moving it adds at most ``D - 1`` ever-seen neighbours, and a SWAP
      next to it moves at most 2 program qubits into adjacency.

    Both bounds degrade gracefully to 0 (never over-claim), so they are
    safe to use as descent floors and as the ``lb`` seed of
    :class:`~repro.core.parallel.ParallelDescent`'s interval.
    """
    pairs = set()
    partners: List[set] = [set() for _ in range(circuit.n_qubits)]
    for gate in circuit.gates:
        if gate.is_two_qubit:
            a, b = gate.qubits
            pairs.add((min(a, b), max(a, b)))
            partners[a].add(b)
            partners[b].add(a)
    if not pairs:
        return 0
    max_deg = max(len(adj) for adj in device.adjacency)
    if max_deg <= 1:
        return 0  # degenerate coupling; infeasibility surfaces in encoding
    k = min(circuit.n_qubits, device.n_qubits)
    adjacency_budget = min(len(pairs), device.num_edges, (k * max_deg) // 2)
    lower = 0
    deficit = len(pairs) - adjacency_budget
    if deficit > 0:
        lower = -(-deficit // (2 * (max_deg - 1)))
    per_swap_gain = max(max_deg - 1, 2)
    for neighbours in partners:
        need = len(neighbours) - max_deg
        if need > 0:
            lower = max(lower, -(-need // per_swap_gain))
    return lower


class SynthesisTimeout(RuntimeError):
    """Raised when no valid solution was found within the time budget."""


class SynthesisCancelled(SynthesisTimeout):
    """Raised when the progress callback cancelled the run before any
    solution existed.  (Cancellation *after* a solution is found returns
    that best-so-far result instead of raising.)"""


class IterativeSynthesizer:
    """Shared driver for OLSQ2 and TB-OLSQ2 optimization loops."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        config: Optional[SynthesisConfig] = None,
        transition_based: bool = False,
        encoder_cls=LayoutEncoder,
        encoder_kwargs: Optional[dict] = None,
        share=None,
    ):
        self.circuit = circuit
        self.device = device
        self.config = config or SynthesisConfig()
        self.transition_based = transition_based
        self.encoder_cls = encoder_cls
        self.encoder_kwargs = dict(encoder_kwargs or {})
        self.encoder: Optional[LayoutEncoder] = None
        self.tracer = self.config.make_tracer()
        self._deadline = 0.0
        self.iterations = 0
        # Optional repro.sat.sharing.ShareEndpoint: when set, every encoder
        # this synthesizer builds gets a ShareClient so its solver trades
        # learnt clauses with sibling portfolio workers (see sat.sharing).
        self.share = share
        # Live UNSAT verdicts captured for certificate checking
        # (config.certify); reset at the start of each depth optimization.
        self._refutations: List[RefutationRecord] = []
        self._depth_cert_target: Optional[int] = None
        # While the SWAP loop runs its inner depth pass, defer certificate
        # assembly to the end so the depth records are checked only once.
        self._in_swap_phase = False
        # Cached SABRE reference solution (config.warm_start == "sabre"):
        # seeds solver phases AND provides a sound initial depth upper
        # bound, so the relax ladder never overshoots the heuristic.
        self._warm_result: Optional[SynthesisResult] = None
        self._warm_attempted = False
        # Interval telemetry of the last optimization: analytic lower
        # bounds and warm upper bounds, surfaced in solver_stats so the
        # benchmarks can report how tight the search started.
        self.interval: dict = {}
        # Encoded-state template traffic of this synthesizer (see
        # repro.sat.snapshot): hits restored a snapshot instead of
        # encoding, stores snapshot a fresh encode for later reuse.
        self.template_events = {"hits": 0, "misses": 0, "stored": 0}

    # -- helpers ---------------------------------------------------------

    def _remaining(self) -> float:
        return self._deadline - _time.monotonic()

    @property
    def cancelled(self) -> bool:
        return self.tracer.cancelled

    def _initial_horizon(self) -> int:
        if self.transition_based:
            # Footnote 2: the TB horizon is empirically ~4x smaller.
            t_ub = depth_upper_bound(self.circuit, self.config.tub_ratio)
            return max(2, math.ceil(t_ub / 4))
        return max(2, depth_upper_bound(self.circuit, self.config.tub_ratio))

    def _template_eligible(self) -> bool:
        """Whether encoded-state templates may serve/capture this build.

        Requires an attached store and the plain :class:`LayoutEncoder`
        with a default context: subclasses and injected contexts can
        allocate differently from the encode that produced a snapshot, and
        ``certify`` needs a proof log anchored at the clause additions
        (snapshots refuse proof logging).
        """
        return (
            self.config.templates == "on"
            and self.config.template_store is not None
            and not self.config.certify
            and self.encoder_cls is LayoutEncoder
            and "ctx" not in self.encoder_kwargs
        )

    def _encoder_from_template(self, horizon: int) -> Optional[LayoutEncoder]:
        """Restore + replay an encoder from a stored snapshot, or None."""
        from ..sat.snapshot import restore_solver
        from .templates import template_key

        store = self.config.template_store
        key = template_key(
            self.circuit,
            self.device,
            horizon,
            self.config,
            transition_based=self.transition_based,
            initial_mapping=self.encoder_kwargs.get("initial_mapping"),
        )
        blob = store.get(key)
        if blob is None:
            self.template_events["misses"] += 1
            return None
        solver = restore_solver(
            blob, kernel=self.config.kernel, sanitize=self.config.sanitize
        )
        # Replay the builders over the restored formula: new_var hands the
        # existing variables back in order, add_clause drops clauses, and
        # the encoder's Python-side objects (domain vars, step vars,
        # selector lists, activation literal) come out exactly as the
        # original encode left them.
        solver.begin_replay()
        try:
            encoder = self.encoder_cls(
                self.circuit,
                self.device,
                horizon,
                config=self.config,
                transition_based=self.transition_based,
                tracer=self.tracer,
                ctx=SMTContext(sink=solver),
                **{
                    k: v
                    for k, v in self.encoder_kwargs.items()
                    if k != "ctx"
                },
            )
            encoder.encode()
        finally:
            replayed = solver.end_replay()
        if replayed != solver.n_vars:
            # The replay allocated a different variable count than the
            # snapshot holds: the builders diverged from the encode that
            # produced it (a template_key bug).  Fail loudly — silently
            # re-encoding would mask unsound reuse.
            raise AssertionError(
                f"template replay allocated {replayed} of {solver.n_vars} "
                "snapshot variables; template_key is missing an "
                "encode-relevant input"
            )
        self.template_events["hits"] += 1
        return encoder

    def _store_template(self, encoder: LayoutEncoder, horizon: int) -> None:
        """Snapshot a freshly encoded solver into the template store."""
        from ..sat.snapshot import SnapshotUnsupported, snapshot_solver
        from .templates import template_key

        if not isinstance(encoder.ctx.sink, Solver):
            return
        try:
            blob = snapshot_solver(encoder.ctx.sink)
        except SnapshotUnsupported:
            return
        key = template_key(
            self.circuit,
            self.device,
            horizon,
            self.config,
            transition_based=self.transition_based,
            initial_mapping=self.encoder_kwargs.get("initial_mapping"),
        )
        self.config.template_store.put(key, blob)
        self.template_events["stored"] += 1

    def _build_encoder(self, horizon: int) -> LayoutEncoder:
        kwargs = dict(self.encoder_kwargs)
        if self.config.certify and "ctx" not in kwargs:
            # Live proof logging: every learnt clause of the whole
            # incremental run lands on one log, so UNSAT verdicts under
            # assumptions certify without re-solving.  Clause *imports* are
            # automatically refused under proof logging (the sharing
            # exclusivity rule); exports remain sound and stay on.
            kwargs["ctx"] = SMTContext(
                sink=Solver(
                    proof_log=True,
                    kernel=self.config.kernel,
                    sanitize=self.config.sanitize,
                )
            )
        encoder = None
        template_ok = self._template_eligible()
        if template_ok:
            encoder = self._encoder_from_template(horizon)
        if encoder is None:
            encoder = self.encoder_cls(
                self.circuit,
                self.device,
                horizon,
                config=self.config,
                transition_based=self.transition_based,
                tracer=self.tracer,
                **kwargs,
            )
            encoder.encode()
            if template_ok:
                # Snapshot before share attach and warm-start seeding: both
                # are re-applied for real on the restore path too.
                self._store_template(encoder, horizon)
        if self.share is not None and isinstance(encoder.ctx.sink, Solver):
            # A rebuild at a larger horizon renumbers the base prefix, so
            # each encoder gets a fresh client keyed to its own numbering;
            # workers on mismatched keys simply drop each other's batches.
            encoder.ctx.sink.share = ShareClient(
                self.share, encoder.share_key(), encoder.base_vars
            )
        if self.config.warm_start == "sabre":
            self._seed_from_sabre(encoder)
        self.encoder = encoder
        return encoder

    def _seed_from_sabre(self, encoder: LayoutEncoder) -> None:
        """Heuristic search guidance (paper Sec. V): phase hints from SABRE."""
        heuristic = self._warm_reference()
        if heuristic is not None:
            encoder.seed_initial_mapping(heuristic.initial_mapping)

    def _warm_reference(self) -> Optional[SynthesisResult]:
        """The cached SABRE solution for this problem, or None.

        A heuristic schedule is a feasible model of the encoding, so its
        depth is a *sound* upper bound on the optimum — provided it really
        is feasible, which the independent validator re-checks here before
        the bound is trusted.  A pinned initial mapping is forwarded to
        SABRE (a route ignoring the pin would bound a different, larger
        feasible set).  SABRE failures (e.g. unroutable disconnected
        placements) downgrade to "no warm start", never to an error.
        """
        if self.config.warm_start != "sabre":
            return None
        if self._warm_attempted:
            return self._warm_result
        self._warm_attempted = True
        from ..baselines.sabre import SABRE  # runtime import; avoids a cycle

        with self.tracer.span("warm_start", source="sabre") as span:
            try:
                heuristic = SABRE(
                    swap_duration=self.config.swap_duration, seed=0
                ).synthesize(
                    self.circuit,
                    self.device,
                    initial_mapping=self.encoder_kwargs.get("initial_mapping"),
                )
            except (RuntimeError, ValueError):
                heuristic = None
            if heuristic is not None and is_valid(heuristic):
                self._warm_result = heuristic
                span.set(depth=heuristic.depth, swaps=heuristic.swap_count)
            else:
                span.set(depth=None)
        return self._warm_result

    def _result_from_warm(
        self,
        warm: SynthesisResult,
        objective: str,
        optimal: bool,
        started: float,
    ) -> SynthesisResult:
        """Promote the SABRE reference into this run's returned result."""
        result = SynthesisResult(
            circuit=self.circuit,
            device=self.device,
            initial_mapping=list(warm.initial_mapping),
            gate_times=list(warm.gate_times),
            swaps=list(warm.swaps),
            swap_duration=self.config.swap_duration,
            objective=objective,
            solver_stats=(
                self.encoder.ctx.stats() if self.encoder is not None else {}
            ),
            optimal=optimal,
            wall_time=_time.monotonic() - started,
        )
        result.solver_stats["warm_start_model"] = True
        result.solver_stats["interval"] = dict(self.interval)
        return result

    def _extract(self) -> Tuple[List[int], List[int], List[SwapEvent]]:
        with self.tracer.span("extract"):
            return self.encoder.extract()

    def _solve(self, assumptions, phase: str, bound: int) -> SatResult:
        """One bounded solver query, recorded as a ``solve`` span."""
        if self.tracer.cancelled:
            return SatResult.UNKNOWN
        budget = min(self._remaining(), self.config.solve_time_budget)
        if budget <= 0:
            return SatResult.UNKNOWN
        self.iterations += 1
        with self.tracer.span(
            "solve",
            phase=phase,
            bound=bound,
            horizon=self.encoder.horizon,
            iteration=self.iterations,
        ) as span:
            started = _time.monotonic()
            status = self.encoder.solve(assumptions=assumptions, time_budget=budget)
            sink = self.encoder.ctx.sink
            if self.share is not None and isinstance(sink, Solver):
                # Post-solve safe point: flush exports and install foreign
                # clauses even when the query finished without a restart.
                sink.share_sync()
            verdict = status.value
            if status is SatResult.UNKNOWN and self.tracer.cancelled:
                verdict = "cancelled"
            span.set(verdict=verdict, time=_time.monotonic() - started)
        return status

    def _next_depth_bound(self, bound: int) -> int:
        ratio = (
            self.config.depth_relax_small
            if bound < self.config.depth_relax_threshold
            else self.config.depth_relax_large
        )
        if self.transition_based:
            return bound + 1  # Sec. III-D: block bound grows by one
        return max(bound + 1, math.ceil(ratio * bound))

    def _make_result(
        self,
        extraction: Tuple[List[int], List[int], List[SwapEvent]],
        objective: str,
        optimal: bool,
        started: float,
        pareto: Optional[List[Tuple[int, int]]] = None,
    ) -> SynthesisResult:
        initial, times, swaps = extraction
        raw_times, raw_swaps = list(times), list(swaps)
        if self.transition_based:
            times, swaps = serialize_blocks(
                self.circuit,
                times,
                swaps,
                self.config.swap_duration,
                initial_mapping=initial,
                n_phys=self.device.n_qubits,
            )
        result = SynthesisResult(
            circuit=self.circuit,
            device=self.device,
            initial_mapping=initial,
            gate_times=times,
            swaps=swaps,
            swap_duration=self.config.swap_duration,
            objective=objective,
            solver_stats=self.encoder.ctx.stats(),
            pareto_points=list(pareto or []),
            optimal=optimal,
            wall_time=_time.monotonic() - started,
        )
        # Keep the raw (pre-serialization) form so the SWAP loop can reuse a
        # depth-phase solution without re-deriving block indices.
        result._raw_times = raw_times
        result._raw_swaps = raw_swaps
        if self.interval:
            result.solver_stats["interval"] = dict(self.interval)
        if any(self.template_events.values()):
            result.solver_stats["templates"] = dict(self.template_events)
        return result

    # -- depth optimization --------------------------------------------------

    def optimize_depth(self) -> SynthesisResult:
        """Minimise circuit depth (TB: block count).  Sec. III-B.1."""
        with self.tracer.span(
            "optimize", objective="depth", transition_based=self.transition_based
        ) as span:
            result = self._optimize_depth(span)
        return result

    def _optimize_depth(self, span) -> SynthesisResult:
        started = _time.monotonic()
        self._deadline = started + self.config.time_budget
        self._refutations = []
        t_lb = 1 if self.transition_based else longest_chain_length(self.circuit)
        t_lb = max(1, t_lb)
        # Warm start: a validated SABRE schedule bounds the optimum from
        # above, so the relax ladder never probes past it — and when the
        # heuristic already meets the dependency-chain lower bound it *is*
        # the optimum, no solver query required.  (Bound units are time
        # steps, so the cap only applies to the time-resolved model.)
        warm = None if self.transition_based else self._warm_reference()
        warm_depth = warm.depth if warm is not None else None
        self.interval = {"depth_lb": t_lb}
        if warm_depth is not None:
            self.interval["warm_depth_ub"] = warm_depth
        if (
            warm is not None
            and warm_depth == t_lb
            and not self._in_swap_phase
            and not self.config.certify
        ):
            span.set(depth=warm_depth, optimal=True, iterations=self.iterations)
            return self._result_from_warm(warm, "depth", True, started)
        horizon = self._initial_horizon()
        if warm_depth is not None:
            # No schedule beyond the warm bound will ever be probed, so
            # the variable horizon (and with it the formula) shrinks to it.
            horizon = max(2, min(horizon, warm_depth))
        self._build_encoder(horizon)

        bound = t_lb
        best: Optional[Tuple] = None
        best_bound = None
        # Phase 1: relax until the first satisfiable bound.
        while best is None:
            if bound > self.encoder.horizon:
                horizon = max(bound, math.ceil(self.encoder.horizon * 1.5))
                # Extend the live formula so learnt clauses, activities and
                # saved phases survive horizon growth; rebuild only when the
                # encoder cannot extend (subclasses, built SWAP counters).
                if not self.encoder.extend_horizon(horizon):
                    self._build_encoder(horizon)
            guard = self.encoder.depth_guard(bound)
            status = self._solve([guard], phase="relax", bound=bound)
            if status is SatResult.SAT:
                best = self._extract()
                best_bound = bound
            elif status is SatResult.UNSAT:
                self._record_unsat("depth", bound, None, (guard,))
                if warm_depth is not None and bound >= warm_depth:
                    # The encoder refuted the heuristic's own bound: that
                    # would mean an encoding/heuristic mismatch — distrust
                    # the cap and let the ladder continue rather than spin.
                    warm = None
                    warm_depth = None
                bound = self._next_depth_bound(bound)
                if warm_depth is not None:
                    bound = min(bound, warm_depth)
            elif warm is not None:
                # Budget exhausted (or cancelled) before the solver found a
                # schedule, but the validated heuristic model is one: return
                # it instead of failing, optimal only if it meets T_LB.
                optimal = bool(warm_depth == t_lb and not self.config.certify)
                span.set(
                    depth=warm_depth, optimal=optimal,
                    iterations=self.iterations, warm_fallback=True,
                )
                return self._result_from_warm(warm, "depth", optimal, started)
            elif self.tracer.cancelled:
                raise SynthesisCancelled(
                    f"cancelled by progress callback before any schedule "
                    f"was found (last depth bound {bound})"
                )
            else:
                raise SynthesisTimeout(
                    f"no schedule found within the time budget "
                    f"(last depth bound {bound})"
                )

        # Phase 2: descend by one until UNSAT (skip for TB: +1 steps from
        # the lower bound mean the first SAT is already optimal).
        optimal = bound == t_lb or self.transition_based
        proven_unsat_bound = None
        while not optimal and best_bound > t_lb:
            probe = best_bound - 1
            guard = self.encoder.depth_guard(probe)
            status = self._solve([guard], phase="descend", bound=probe)
            if status is SatResult.SAT:
                best = self._extract()
                best_bound = probe
                if best_bound == t_lb:
                    optimal = True
            elif status is SatResult.UNSAT:
                optimal = True
                proven_unsat_bound = probe
                self._record_unsat("depth", probe, None, (guard,))
            else:
                break  # timeout or cancellation: keep best, not proven optimal
        span.set(depth=best_bound, optimal=optimal, iterations=self.iterations)
        result = self._make_result(best, "depth", optimal, started)
        if self.config.certify and optimal:
            # Certify the UNSAT bound the descent proved; when the optimum
            # sits at T_LB itself no descent probe ran, but depth T_LB - 1
            # is unsatisfiable too (it violates the dependency chain) and
            # certifies just as well.
            target = proven_unsat_bound
            if target is None and best_bound > 1:
                target = best_bound - 1
            self._depth_cert_target = target
            if not self._in_swap_phase:
                self._attach_certificate(result, "depth", target)
                if target is not None:
                    result.solver_stats["certified"] = (
                        result.certificate.refutations_ok
                    )
        else:
            self._depth_cert_target = None
        return result

    # -- certification -----------------------------------------------------

    def _record_unsat(
        self,
        phase: str,
        depth_bound: Optional[int],
        swap_bound: Optional[int],
        assumptions: Tuple[int, ...],
    ) -> None:
        """Capture a live UNSAT verdict for later certificate checking."""
        if not self.config.certify:
            return
        sink = self.encoder.ctx.sink
        if not isinstance(sink, Solver) or sink.proof is None:
            return
        full = tuple(self.encoder.ctx.persistent_assumptions) + tuple(assumptions)
        self._refutations.append(
            RefutationRecord(
                encoder=self.encoder,
                phase=phase,
                depth_bound=depth_bound,
                swap_bound=swap_bound,
                assumptions=full,
                proof_len=len(sink.proof),
            )
        )

    def _probe_depth_refutation(self, bound: int) -> None:
        """Issue one extra live probe to obtain the UNSAT proof at ``bound``
        (needed when the optimum was found without a descent probe)."""
        guard = self.encoder.depth_guard(bound)
        status = self._solve([guard], phase="certify", bound=bound)
        if status is SatResult.UNSAT:
            self._record_unsat("depth", bound, None, (guard,))

    def _attach_certificate(
        self,
        result: SynthesisResult,
        objective: str,
        depth_target: Optional[int],
        swap_expected: int = 0,
        swap_fallback: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        """Build the optimality certificate and attach it to ``result``.

        ``depth_target`` is the depth bound whose infeasibility the
        optimality claim rests on (None when the optimum is depth 1 and the
        claim is vacuous).  ``swap_expected`` counts Pareto rounds that
        ended in a proven UNSAT; ``swap_fallback`` is the headline
        ``(depth_bound, swap_bound, counter_max)`` to certify post-hoc when
        no live proof exists.
        """
        started = _time.monotonic()
        expected = swap_expected
        records = list(self._refutations)
        if depth_target is not None:
            expected += 1
            if not any(
                r.phase == "depth" and r.depth_bound == depth_target
                for r in records
            ):
                self._probe_depth_refutation(depth_target)
                records = list(self._refutations)
        # The relax and descend phases can both prove the same bound UNSAT
        # (the descent re-probes the last relax failure); keep the latest
        # record per distinct claim so each is checked once.
        seen = set()
        deduped: List[RefutationRecord] = []
        for record in reversed(records):
            key = (
                record.phase,
                record.depth_bound,
                record.swap_bound,
                id(record.encoder),
            )
            if key not in seen:
                seen.add(key)
                deduped.append(record)
        records = list(reversed(deduped))
        refutations = check_records(records)
        if not records:
            # No live proof log (e.g. an injected context): fall back to
            # independent re-solve certificates for the headline bounds.
            kwargs = {
                k: v for k, v in self.encoder_kwargs.items() if k != "ctx"
            }
            budget = max(1.0, self._remaining())
            if depth_target is not None:
                refutations.append(
                    certify_bound(
                        self.circuit,
                        self.device,
                        self.encoder.horizon,
                        depth_bound=depth_target,
                        config=self.config,
                        transition_based=self.transition_based,
                        encoder_cls=self.encoder_cls,
                        encoder_kwargs=kwargs,
                        time_budget=budget,
                    )
                )
            if swap_fallback is not None and swap_expected:
                depth_bound, swap_bound, counter_max = swap_fallback
                expected = (1 if depth_target is not None else 0) + 1
                refutations.append(
                    certify_bound(
                        self.circuit,
                        self.device,
                        self.encoder.horizon,
                        depth_bound=depth_bound,
                        swap_bound=swap_bound,
                        swap_counter_max=counter_max,
                        config=self.config,
                        transition_based=self.transition_based,
                        encoder_cls=self.encoder_cls,
                        encoder_kwargs=kwargs,
                        time_budget=budget,
                    )
                )
        certificate = Certificate(
            objective=objective,
            depth=result.depth,
            swap_count=result.swap_count,
            model_valid=is_valid(result),
            refutations=refutations,
            expected_refutations=expected,
            check_time=_time.monotonic() - started,
        )
        result.certificate = certificate
        if self.tracer is not None:
            self.tracer.event(
                "certify",
                complete=certificate.complete,
                refutations=len(refutations),
                expected=expected,
            )

    # -- SWAP optimization ----------------------------------------------------

    def optimize_swaps(self) -> SynthesisResult:
        """Minimise SWAP count via iterative descent + 2-D Pareto search.

        Sec. III-B.2: start from a depth-optimal solution (tight depth bound
        trims the space), descend the SWAP bound by one until UNSAT, then
        relax the depth bound and retry; stop when relaxation brings no
        improvement, the budget runs out, cancellation is requested, or
        zero SWAPs is reached.
        """
        with self.tracer.span(
            "optimize", objective="swap", transition_based=self.transition_based
        ) as span:
            result = self._optimize_swaps(span)
        return result

    def _optimize_swaps(self, span) -> SynthesisResult:
        started = _time.monotonic()
        self._in_swap_phase = True
        try:
            depth_result = self.optimize_depth()
        finally:
            self._in_swap_phase = False
        self._deadline = started + self.config.time_budget

        encoder = self.encoder
        depth_bound = self._current_bound_of(depth_result)
        best_extraction = (
            depth_result.initial_mapping,
            self._raw_times(depth_result),
            self._raw_swaps(depth_result),
        )
        best_swaps = len(best_extraction[2])
        best_depth_bound = depth_bound
        pareto: List[Tuple[int, int]] = []
        # The analytic lower bound floors the descent: no probe below it can
        # be SAT, so once the count reaches the floor optimality is proven
        # without a (potentially very slow) final UNSAT query.  The floor is
        # device-independent of the mapping, hence equally sound here and
        # after subarchitecture translation.  Certified runs keep the floor
        # at zero: the certificate contract promises a *checked* refutation
        # of S*-1 per Pareto round, which the analytic shortcut would skip.
        swap_floor = analytic_swap_lower_bound(self.circuit, self.device)
        self.interval["swap_lb"] = swap_floor
        if self.config.certify:
            swap_floor = 0
        self.interval["swap_ub_initial"] = best_swaps
        encoder.init_swap_counter(max_bound=best_swaps)
        proven_pareto = False
        swap_unsat_rounds = 0

        rounds = 0
        while True:
            # Iterative descent at the current depth bound.
            improved_this_round = False
            bound_at_depth = best_swaps
            while bound_at_depth > swap_floor:
                probe = bound_at_depth - 1
                guard = encoder.swap_guard(probe)
                assumptions = [encoder.depth_guard(depth_bound)]
                if guard is not None:
                    assumptions.append(guard)
                status = self._solve(assumptions, phase="swap_descend", bound=probe)
                if status is SatResult.SAT:
                    extraction = self._extract()
                    bound_at_depth = len(extraction[2])
                    if bound_at_depth < best_swaps:
                        best_swaps = bound_at_depth
                        best_extraction = extraction
                        best_depth_bound = depth_bound
                        improved_this_round = True
                elif status is SatResult.UNSAT:
                    proven_pareto = True
                    swap_unsat_rounds += 1
                    self._record_unsat(
                        "swap", depth_bound, probe, tuple(assumptions)
                    )
                    break
                else:
                    break  # timeout or cancellation: keep best-so-far
            pareto.append((depth_bound, bound_at_depth))
            if best_swaps <= swap_floor:
                proven_pareto = True
                break
            rounds += 1
            if (
                rounds > self.config.max_pareto_rounds
                or self._remaining() <= 0
                or self.tracer.cancelled
            ):
                break
            if rounds > 1 and not improved_this_round:
                break  # condition (2): relaxing depth no longer helps
            # Relax the depth bound by one step and retry.
            depth_bound += 1
            if depth_bound > encoder.horizon:
                horizon = max(depth_bound, math.ceil(encoder.horizon * 1.5))
                encoder = self._build_encoder(horizon)
                encoder.init_swap_counter(max_bound=best_swaps)

        span.set(
            swaps=best_swaps,
            optimal=proven_pareto,
            rounds=rounds,
            iterations=self.iterations,
            cancelled=self.tracer.cancelled,
        )
        result = self._make_result(
            best_extraction, "swap", proven_pareto, started, pareto
        )
        if self.config.certify:
            depth_target = (
                self._depth_cert_target if depth_result.optimal else None
            )
            fallback = None
            if proven_pareto and best_swaps > 0 and swap_unsat_rounds:
                fallback = (best_depth_bound, best_swaps - 1, best_swaps)
            self._attach_certificate(
                result,
                "swap",
                depth_target,
                swap_expected=swap_unsat_rounds,
                swap_fallback=fallback,
            )
            if proven_pareto:
                result.solver_stats["certified"] = (
                    result.certificate.refutations_ok
                )
        return result

    # -- raw-form helpers (undo TB serialization for reuse) --------------------

    def _current_bound_of(self, depth_result: SynthesisResult) -> int:
        if self.transition_based:
            return max(self._raw_times(depth_result)) + 1 if depth_result.gate_times else 1
        return depth_result.depth

    def _raw_times(self, result: SynthesisResult) -> List[int]:
        raw = getattr(result, "_raw_times", None)
        return raw if raw is not None else list(result.gate_times)

    def _raw_swaps(self, result: SynthesisResult) -> List[SwapEvent]:
        raw = getattr(result, "_raw_swaps", None)
        return raw if raw is not None else list(result.swaps)


def serialize_blocks(
    circuit: QuantumCircuit,
    block_of_gate: List[int],
    transition_swaps: List[SwapEvent],
    swap_duration: int,
    initial_mapping: Optional[List[int]] = None,
    n_phys: Optional[int] = None,
) -> Tuple[List[int], List[SwapEvent]]:
    """Flatten a transition-based solution into concrete time steps.

    ``SwapEvent.finish_time`` holds the *transition index* on input.  With
    ``initial_mapping`` (and ``n_phys``) given, scheduling is list-based
    with per-qubit frontiers: a gate or SWAP starts as soon as both its
    program-qubit dependencies and its physical qubits are free, so work in
    later blocks overlaps transitions that do not touch it.  Without a
    mapping the scheduler falls back to conservative full barriers between
    blocks and SWAP layers (physical positions unknown).

    Either way the output satisfies the strict (time-resolved) validity
    constraints, so TB results are checked by the very same validator as
    OLSQ2 results.
    """
    if initial_mapping is None:
        return _serialize_blocks_barrier(
            circuit, block_of_gate, transition_swaps, swap_duration
        )
    n_blocks = max(block_of_gate) + 1 if block_of_gate else 1
    swaps_by_transition: dict = {}
    for swap in transition_swaps:
        swaps_by_transition.setdefault(swap.finish_time, []).append(swap)

    if n_phys is None:
        n_phys = max(
            [max(initial_mapping, default=0)]
            + [max(s.p, s.p_prime) for s in transition_swaps]
        ) + 1
    mapping = list(initial_mapping)
    prog_frontier = [0] * circuit.n_qubits
    phys_frontier = [0] * n_phys
    gate_times = [0] * len(block_of_gate)
    out_swaps: List[SwapEvent] = []
    for k in range(n_blocks):
        for idx, gate in enumerate(circuit.gates):
            if block_of_gate[idx] != k:
                continue
            phys = [mapping[q] for q in gate.qubits]
            t = max(
                [prog_frontier[q] for q in gate.qubits]
                + [phys_frontier[p] for p in phys]
            )
            gate_times[idx] = t
            for q in gate.qubits:
                prog_frontier[q] = t + 1
            for p in phys:
                phys_frontier[p] = t + 1
        for swap in swaps_by_transition.get(k, ()):  # disjoint edges
            start = max(phys_frontier[swap.p], phys_frontier[swap.p_prime])
            finish = start + swap_duration - 1
            out_swaps.append(SwapEvent(swap.p, swap.p_prime, finish))
            phys_frontier[swap.p] = finish + 1
            phys_frontier[swap.p_prime] = finish + 1
            for q, p in enumerate(mapping):
                if p == swap.p:
                    mapping[q] = swap.p_prime
                elif p == swap.p_prime:
                    mapping[q] = swap.p
    return gate_times, out_swaps


def _serialize_blocks_barrier(
    circuit: QuantumCircuit,
    block_of_gate: List[int],
    transition_swaps: List[SwapEvent],
    swap_duration: int,
) -> Tuple[List[int], List[SwapEvent]]:
    """Conservative fallback: full barriers between blocks and SWAP layers."""
    n_blocks = max(block_of_gate) + 1 if block_of_gate else 1
    swaps_by_transition: dict = {}
    for swap in transition_swaps:
        swaps_by_transition.setdefault(swap.finish_time, []).append(swap)

    gate_times = [0] * len(block_of_gate)
    frontier = [0] * circuit.n_qubits
    offset = 0
    out_swaps: List[SwapEvent] = []
    for k in range(n_blocks):
        block_end = offset
        for idx, gate in enumerate(circuit.gates):
            if block_of_gate[idx] != k:
                continue
            t = max([offset] + [frontier[q] for q in gate.qubits])
            gate_times[idx] = t
            for q in gate.qubits:
                frontier[q] = t + 1
            block_end = max(block_end, t + 1)
        layer = swaps_by_transition.get(k, [])
        if layer:
            finish = block_end + swap_duration - 1
            for swap in layer:
                out_swaps.append(SwapEvent(swap.p, swap.p_prime, finish))
            offset = finish + 1
        else:
            offset = block_end
    return gate_times, out_swaps
