"""Independent validator for layout-synthesis results.

Re-checks constraints (1)-(5) of Sec. II-A directly against a
:class:`~repro.core.result.SynthesisResult`, sharing no code with the SMT
encoders — every synthesizer (OLSQ2, TB-OLSQ2, the OLSQ baselines, SABRE,
SATMap) is validated through this single path in the integration tests.
"""

from __future__ import annotations

from typing import List

from ..circuit.dag import dependencies
from .result import SynthesisResult, _apply_swap


class ValidationError(AssertionError):
    """Raised when a synthesis result violates a layout constraint."""


def validate_result(result: SynthesisResult, strict_dependencies: bool = True) -> None:
    """Raise :class:`ValidationError` on any violated constraint.

    ``strict_dependencies=False`` relaxes constraint (2) to ``<=`` for
    transition-based results, where dependent gates may share a block as
    long as they respect program order inside it (Sec. III-D).
    """
    circuit, device = result.circuit, result.device
    if len(result.initial_mapping) != circuit.n_qubits:
        raise ValidationError("initial mapping size != number of program qubits")
    if len(result.gate_times) != circuit.num_gates:
        raise ValidationError("schedule size != number of gates")

    # Constraint (1): mapping injectivity at t=0 (SWAPs preserve it).
    if len(set(result.initial_mapping)) != circuit.n_qubits:
        raise ValidationError("initial mapping is not injective")
    for p in result.initial_mapping:
        if not 0 <= p < device.n_qubits:
            raise ValidationError(f"physical qubit {p} out of range")

    # Constraint (2): gate dependencies.
    for earlier, later in dependencies(circuit):
        t_e, t_l = result.gate_times[earlier], result.gate_times[later]
        if strict_dependencies:
            if not t_e < t_l:
                raise ValidationError(
                    f"dependency violated: gate {earlier}@{t_e} !< gate {later}@{t_l}"
                )
        else:
            if not t_e <= t_l:
                raise ValidationError(
                    f"dependency violated: gate {earlier}@{t_e} !<= gate {later}@{t_l}"
                )

    for t in result.gate_times:
        if t < 0:
            raise ValidationError("negative gate time")

    # Reconstruct the mapping trace step by step.
    horizon = result.depth + 1
    swaps_by_finish = {}
    for swap in result.swaps:
        swaps_by_finish.setdefault(swap.finish_time, []).append(swap)

    mapping = list(result.initial_mapping)
    mapping_trace: List[List[int]] = [list(mapping)]
    for t in range(horizon):
        for swap in swaps_by_finish.get(t, ()):  # effects visible at t+1
            if not device.are_adjacent(swap.p, swap.p_prime):
                raise ValidationError(
                    f"SWAP on non-edge ({swap.p},{swap.p_prime})"
                )
            _apply_swap(mapping, swap.p, swap.p_prime)
        mapping_trace.append(list(mapping))

    def mapping_at(t: int) -> List[int]:
        return mapping_trace[min(t, len(mapping_trace) - 1)]

    # Constraint (3): two-qubit gates on adjacent physical qubits.
    for idx, gate in enumerate(circuit.gates):
        if not gate.is_two_qubit:
            continue
        t = result.gate_times[idx]
        m = mapping_at(t)
        pa, pb = m[gate.qubits[0]], m[gate.qubits[1]]
        if not device.are_adjacent(pa, pb):
            raise ValidationError(
                f"gate {idx} ({gate.name}) at t={t} on non-adjacent "
                f"physical qubits ({pa},{pb})"
            )

    # Constraint (5): SWAPs don't overlap gates on the affected qubits.
    duration = result.swap_duration
    for swap in result.swaps:
        start = swap.finish_time - duration + 1
        if start < 0:
            raise ValidationError(
                f"SWAP finishing at {swap.finish_time} starts before t=0"
            )
        for idx, gate in enumerate(circuit.gates):
            t = result.gate_times[idx]
            if not start <= t <= swap.finish_time:
                continue
            m = mapping_at(t)
            touched = {m[q] for q in gate.qubits}
            if touched & {swap.p, swap.p_prime}:
                raise ValidationError(
                    f"gate {idx} at t={t} overlaps SWAP "
                    f"({swap.p},{swap.p_prime})@{swap.finish_time}"
                )

    # SWAPs don't overlap SWAPs that share a qubit (incl. same edge).
    for i, a in enumerate(result.swaps):
        for b in result.swaps[i + 1 :]:
            if {a.p, a.p_prime} & {b.p, b.p_prime}:
                if abs(a.finish_time - b.finish_time) < duration:
                    raise ValidationError(
                        f"overlapping SWAPs ({a.p},{a.p_prime})@{a.finish_time} "
                        f"and ({b.p},{b.p_prime})@{b.finish_time}"
                    )


def is_valid(result: SynthesisResult, strict_dependencies: bool = True) -> bool:
    """Boolean wrapper around :func:`validate_result`."""
    try:
        validate_result(result, strict_dependencies=strict_dependencies)
    except ValidationError:
        return False
    return True
