"""Cooperating parallel portfolio: bound splitting + clause sharing.

:class:`~repro.core.portfolio.PortfolioSynthesizer` races *independent*
workers: every process walks the full Sec. III-B optimization loop on its
own, so N workers do roughly N times the work of one.  This module makes
the workers cooperate along two channels:

1. **Bound splitting** — the Sec. III-B loops are sequences of bounded
   SAT probes ("is depth <= B feasible?").  :class:`ParallelDescent`
   turns the portfolio into a team of *probe servers*: the coordinator
   hands each worker a distinct bound from the open interval
   ``[lb, ub)``, and every verdict shrinks the interval for everyone —
   an UNSAT at ``B`` prunes every probe at or below ``B`` (monotone:
   tightening a bound only shrinks the feasible set), a SAT achieving
   ``d`` retargets every probe at or above ``d``.  With one worker the
   schedule degenerates to the classic relax-then-descend walk of
   :class:`~repro.core.optimizer.IterativeSynthesizer`, so the optimum
   found is the same by construction.

2. **Learnt-clause sharing** — each worker's CDCL solver exports its
   good learnt clauses (LBD/size-filtered, restricted to the common
   variable prefix) through a :class:`~repro.sat.sharing.ShareRelay`,
   so a conflict analysed in one process prunes the search of all the
   others.  See ``repro.sat.sharing`` for the soundness argument.

Workers are processes (the CDCL loop holds the GIL); the coordinator
keeps a command queue per worker and one shared result queue.  A worker
solves in short slices and re-checks its command queue between slices,
so retargeting latency is bounded by ``slice_budget`` seconds.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import queue as _queue
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..arch.subarch import extract_candidates, translate_result
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import longest_chain_length
from ..sat.result import SatResult
from ..sat.sharing import SharedClauseRing, ShareRelay
from ..sat.snapshot import (
    SnapshotUnsupported,
    TemplateStore,
    snapshot_solver,
)
from ..sat.solver import Solver
from ..telemetry import NULL_TRACER
from .encoder import LayoutEncoder
from .interface import check_initial_mapping, check_objective
from .optimizer import (
    IterativeSynthesizer,
    SynthesisTimeout,
    analytic_swap_lower_bound,
)
from .portfolio import PortfolioEntry, default_portfolio
from .result import SynthesisResult
from .templates import template_key
from .validator import is_valid, validate_result

# Command tuples: ("probe", phase, depth_bound, swap_bound, counter_max)
# or ("stop",).  Result tuples: ("ready", wid, name),
# ("verdict", wid, phase, depth_bound, swap_bound, verdict, result,
#  achieved, stats) or ("error", wid, text).


def _worker_stats(synth: IterativeSynthesizer) -> dict:
    encoder = synth.encoder
    if encoder is None:
        return {}
    stats = encoder.ctx.stats()
    share = getattr(encoder.ctx.sink, "share", None)
    if share is not None:
        for k, v in share.stats.as_dict().items():
            stats["share_" + k] = v
    stats["template_hits"] = synth.template_events["hits"]
    return stats


def _descent_worker(
    wid: int,
    name: str,
    config,
    transition_based: bool,
    circuit,
    device,
    region,
    full_device,
    initial_mapping,
    cmd_q,
    res_q,
    endpoint,
    slice_budget: float,
    deadline: float,
    template=None,
) -> None:
    """Probe server: answer bounded feasibility questions until told to stop.

    Each probe is solved in ``slice_budget``-second slices; between slices
    the worker exchanges clauses with the bus and drains its command queue
    so the coordinator can retarget it (keeping only the newest command).

    ``region`` (with ``full_device``) marks a *subarchitecture worker*: it
    encodes only the ``region`` qubits of the full device and translates
    every SAT model back to full-device labels before reporting it, so the
    coordinator only ever sees full-device schedules.  The achieved bounds
    are computed *before* translation (translation preserves depth and
    SWAP count exactly).

    ``template`` is an optional ``(key, blob)`` encoded-state snapshot the
    coordinator pre-encoded for this worker's instance shape (see
    :func:`ParallelDescent._prepare_templates`): it is seeded into a
    single-entry template store so the initial ``_build_encoder`` restores
    a clone instead of re-encoding the formula from scratch.
    """
    try:
        if template is not None:
            store = TemplateStore(max_entries=1)
            store.put(template[0], template[1])
            config = config.replace(template_store=store)
        synth = IterativeSynthesizer(
            circuit,
            device,
            config=config,
            transition_based=transition_based,
            encoder_kwargs=(
                {"initial_mapping": initial_mapping}
                if initial_mapping is not None
                else {}
            ),
            share=endpoint,
        )
        encoder = synth._build_encoder(synth._initial_horizon())
        res_q.put(("ready", wid, name))
        cmd = cmd_q.get()
        while cmd[0] != "stop":
            _, phase, depth_bound, swap_bound, counter_max = cmd
            started = time.monotonic()
            if depth_bound > encoder.horizon:
                horizon = max(depth_bound, math.ceil(encoder.horizon * 1.5))
                if not encoder.extend_horizon(horizon):
                    encoder = synth._build_encoder(horizon)
            if phase == "swap" and encoder._swap_counter is None:
                encoder.init_swap_counter(max_bound=counter_max)
            assumptions = [encoder.depth_guard(depth_bound)]
            if phase == "swap":
                guard = encoder.swap_guard(swap_bound)
                if guard is not None:
                    assumptions.append(guard)
            cmd = None
            while cmd is None:
                budget = min(slice_budget, deadline - time.monotonic())
                if budget <= 0:
                    res_q.put(
                        ("verdict", wid, phase, depth_bound, swap_bound,
                         "unknown", None, None, _worker_stats(synth))
                    )
                    cmd = cmd_q.get()
                    break
                status = encoder.solve(assumptions=assumptions, time_budget=budget)
                sink = encoder.ctx.sink
                if isinstance(sink, Solver):
                    sink.share_sync()
                if status is SatResult.SAT:
                    extraction = encoder.extract()
                    result = synth._make_result(
                        extraction,
                        "depth" if phase == "depth" else "swap",
                        False,
                        started,
                    )
                    validate_result(result, strict_dependencies=True)
                    achieved = (
                        synth._current_bound_of(result),
                        len(extraction[2]),
                    )
                    if region is not None:
                        # Relabel to full-device qubits; translate_result
                        # re-validates against the full coupling graph.
                        result = translate_result(result, region, full_device)
                    res_q.put(
                        ("verdict", wid, phase, depth_bound, swap_bound,
                         "sat", result, achieved, _worker_stats(synth))
                    )
                    cmd = cmd_q.get()
                elif status is SatResult.UNSAT:
                    res_q.put(
                        ("verdict", wid, phase, depth_bound, swap_bound,
                         "unsat", None, None, _worker_stats(synth))
                    )
                    cmd = cmd_q.get()
                else:
                    # Slice expired: adopt the newest retarget, if any.
                    try:
                        while True:
                            cmd = cmd_q.get_nowait()
                    except _queue.Empty:
                        pass
        res_q.put(("verdict", wid, "stopped", 0, 0, "stopped", None, None,
                   _worker_stats(synth)))
    except Exception as exc:  # pragma: no cover - surfaced to coordinator
        res_q.put(("error", wid, f"{type(exc).__name__}: {exc}"))


class _WorkerPool:
    """Coordinator-side bookkeeping: who is probing what, who is idle."""

    def __init__(self, cmd_qs, res_q, names: List[str]):
        self.cmd_qs = cmd_qs
        self.res_q = res_q
        self.names = names
        n = len(names)
        self.alive: Set[int] = set(range(n))
        self.idle: Set[int] = set(range(n))
        #: wid -> (phase, depth_bound, swap_bound) of the newest command.
        self.assigned: Dict[int, Optional[Tuple[str, int, Optional[int]]]] = {}
        self.stats: Dict[int, dict] = {}
        self.errors: List[Tuple[str, str]] = []

    def send(self, wid: int, cmd) -> None:
        self.assigned[wid] = (cmd[1], cmd[2], cmd[3])
        self.idle.discard(wid)
        self.cmd_qs[wid].put(cmd)

    def taken_bounds(self, phase: str, depth_bound: Optional[int]) -> Set[int]:
        """Bounds currently being probed (for this phase/round)."""
        out: Set[int] = set()
        for wid, probe in self.assigned.items():
            if wid not in self.alive or probe is None or probe[0] != phase:
                continue
            if phase == "swap":
                if probe[1] == depth_bound:
                    out.add(probe[2])
            else:
                out.add(probe[1])
        return out

    def recv(self, timeout: float):
        try:
            return self.res_q.get(timeout=timeout)
        except _queue.Empty:
            return None

    def note_verdict(self, wid, phase, depth_bound, swap_bound) -> None:
        """A worker goes idle iff the verdict answers its *newest* command
        (a verdict for an older probe means a retarget is already queued)."""
        if self.assigned.get(wid) == (phase, depth_bound, swap_bound):
            self.assigned[wid] = None
            self.idle.add(wid)

    def reap(self, procs) -> None:
        """Drop workers whose process died without reporting an error."""
        for wid in list(self.alive):
            if not procs[wid].is_alive():
                self.alive.discard(wid)
                self.idle.discard(wid)
                self.errors.append((self.names[wid], "worker process died"))


class ParallelDescent:
    """Cooperating parallel descent over the Sec. III-B optimization loops.

    Parameters
    ----------
    entries:
        Portfolio configurations, one worker each.  All entries must agree
        on ``transition_based`` (bound units must be comparable).  Default:
        :func:`~repro.core.portfolio.default_portfolio`, cycled to
        ``n_workers`` entries.
    n_workers:
        Worker count when ``entries`` is not given (default 2).
    share:
        Exchange learnt clauses between workers (needs >= 2 workers).
    share_transport:
        ``"shm"`` — zero-copy shared-memory ring
        (:class:`~repro.sat.sharing.SharedClauseRing`); ``"queue"`` — the
        relay-thread queue bus; ``"auto"`` (default) — the ring, falling
        back to queues if shared memory is unavailable on the platform.
    slice_budget:
        Seconds per solver slice; bounds the retargeting latency.
    certify:
        Attach a machine-checkable optimality certificate to the result.
        Workers' UNSAT verdicts may rest on *imported* learnt clauses that
        are not locally derivable, so their proof logs cannot certify them
        (the proof-logging-vs-clause-sharing exclusivity rule); instead the
        coordinator re-proves the headline bounds post-hoc on a fresh
        proof-logging solver via :func:`repro.analysis.certify.certify_bound`
        after the race finishes.
    """

    def __init__(
        self,
        entries: Optional[Sequence[PortfolioEntry]] = None,
        n_workers: Optional[int] = None,
        time_budget: float = 300.0,
        share: bool = True,
        share_transport: str = "auto",
        slice_budget: float = 1.0,
        share_buffer: int = 64,
        swap_duration: int = 3,
        tracer=None,
        certify: bool = False,
    ):
        if entries is None:
            base = default_portfolio(
                swap_duration=swap_duration, time_budget=time_budget
            )
            n = n_workers if n_workers is not None else 2
            entries = [
                PortfolioEntry(
                    f"{base[i % len(base)].name}#{i}",
                    base[i % len(base)].config,
                    base[i % len(base)].transition_based,
                )
                for i in range(max(1, n))
            ]
        elif n_workers is not None and n_workers != len(entries):
            entries = [entries[i % len(entries)] for i in range(max(1, n_workers))]
        self.entries = list(entries)
        if not self.entries:
            raise ValueError("ParallelDescent needs at least one entry")
        if len({e.transition_based for e in self.entries}) > 1:
            raise ValueError(
                "ParallelDescent workers must share one transition model; "
                "mixing time-resolved and transition-based entries would "
                "make their depth bounds incomparable"
            )
        if share_transport not in ("auto", "shm", "queue"):
            raise ValueError(
                f"share_transport must be 'auto', 'shm' or 'queue', "
                f"got {share_transport!r}"
            )
        self.time_budget = time_budget
        self.share = share
        self.share_transport = share_transport
        self.slice_budget = slice_budget
        self.share_buffer = share_buffer
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.certify = certify
        self.outcomes: List[Tuple[str, Optional[str]]] = []
        # Headline bounds to certify post-hoc (set by _run/_swap_phase):
        # refuted depth bound, and (depth_bound, swap_bound, counter_max).
        self._depth_cert: Optional[int] = None
        self._swap_cert: Optional[Tuple[int, int, int]] = None
        # Subarchitecture portfolio dimension (set per synthesize() call):
        # wid -> full-device qubit labels of the worker's region (None =
        # full device), and the set of wids whose UNSAT verdicts are valid
        # for the full device (region UNSATs are local knowledge only).
        self._regions: List[Optional[Tuple[int, ...]]] = []
        self._prover_wids: Set[int] = set()
        # Interval telemetry of the last run (analytic lower bounds, warm
        # upper bounds), surfaced in solver_stats["interval"].
        self._interval: dict = {}

    # -- public API -------------------------------------------------------

    def synthesize(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        *,
        objective: str = "depth",
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> SynthesisResult:
        check_objective("ParallelDescent", objective)
        mapping = check_initial_mapping(circuit, device, initial_mapping)
        n = len(self.entries)
        started = time.monotonic()
        self._interval = {}
        self._assign_regions(circuit, device, mapping)
        templates = self._prepare_templates(circuit, device, mapping)
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        relay = None
        ring = None
        ring_final_stats = None
        transport_used = None
        endpoints: List[Optional[object]] = [None] * n
        if self.share and n > 1:
            if self.share_transport in ("auto", "shm"):
                # Zero-copy path: one shared-memory ring every worker
                # appends to and reads from directly — no relay thread,
                # no pickling, no per-hop queue copy.
                try:
                    ring = SharedClauseRing(
                        capacity_words=max(1 << 14, self.share_buffer * 512),
                        ctx=ctx,
                    )
                    endpoints = [ring.endpoint(i) for i in range(n)]
                    transport_used = "shm"
                except Exception:
                    if self.share_transport == "shm":
                        raise
                    ring = None
            if ring is None:
                relay = ShareRelay(
                    n,
                    buffer=self.share_buffer,
                    queue_factory=lambda: ctx.Queue(self.share_buffer),
                )
                endpoints = [relay.endpoint(i) for i in range(n)]
                relay.start()
                transport_used = "queue"
        res_q = ctx.Queue()
        cmd_qs = [ctx.Queue() for _ in range(n)]
        # Workers outlive the depth deadline when a swap phase follows
        # (the sequential loop also re-arms its deadline between phases).
        worker_deadline = started + self.time_budget * (
            2 if objective == "swap" else 1
        ) + 30.0
        procs = []
        for wid, entry in enumerate(self.entries):
            cfg = entry.config.replace(tracer=None, progress_callback=None)
            region = self._regions[wid]
            worker_device = (
                device if region is None else self._region_graphs[wid]
            )
            procs.append(
                ctx.Process(
                    target=_descent_worker,
                    args=(wid, entry.name, cfg, entry.transition_based,
                          circuit, worker_device, region,
                          None if region is None else device,
                          mapping, cmd_qs[wid], res_q,
                          endpoints[wid], self.slice_budget, worker_deadline,
                          templates[wid]),
                    daemon=True,
                )
            )
        for proc in procs:
            proc.start()
        pool = _WorkerPool(cmd_qs, res_q, [e.name for e in self.entries])
        counters = {"pruned": 0}
        try:
            with self.tracer.span(
                "parallel.synthesize",
                workers=n,
                objective=objective,
                share=transport_used is not None,
                share_transport=transport_used,
            ):
                result = self._run(
                    circuit, device, mapping, objective, pool, procs,
                    counters, started,
                )
        finally:
            for q in cmd_qs:
                try:
                    q.put_nowait(("stop",))
                except Exception:
                    pass
            # Give workers one slice to exit cleanly and report their final
            # counters; whatever is still alive after that gets terminated.
            stop_deadline = time.monotonic() + min(2.0, 2 * self.slice_budget)
            waiting = set(pool.alive)
            while waiting and time.monotonic() < stop_deadline:
                msg = pool.recv(timeout=0.1)
                if msg is None:
                    pool.reap(procs)
                    waiting &= pool.alive
                    continue
                if msg[0] == "verdict":
                    pool.stats[msg[1]] = msg[8]
                    if msg[2] == "stopped":
                        waiting.discard(msg[1])
                elif msg[0] == "error":
                    waiting.discard(msg[1])
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=5)
            if relay is not None:
                relay.stop()
            if ring is not None:
                # Workers are gone; the coordinator owns the segment.
                ring_final_stats = ring.stats()
                ring.close(unlink=True)
        self.outcomes = [(name, err) for name, err in pool.errors]
        result.wall_time = time.monotonic() - started
        result.solver_stats = dict(result.solver_stats)
        per_worker = {
            pool.names[wid]: pool.stats.get(wid, {}) for wid in range(n)
        }
        parallel = {
            "workers": n,
            "share": transport_used is not None,
            "share_transport": transport_used,
            "pruned_probes": counters["pruned"],
            "clauses_exported": sum(
                s.get("exported_clauses", 0) for s in per_worker.values()
            ),
            "clauses_imported": sum(
                s.get("imported_clauses", 0) for s in per_worker.values()
            ),
            "conflicts": sum(
                s.get("conflicts", 0) for s in per_worker.values()
            ),
            "template_hits": sum(
                s.get("template_hits", 0) for s in per_worker.values()
            ),
            "per_worker": per_worker,
        }
        if relay is not None:
            parallel["relay"] = relay.stats()
        if ring_final_stats is not None:
            parallel["ring"] = ring_final_stats
        if any(r is not None for r in self._regions):
            parallel["subarch_regions"] = {
                pool.names[wid]: list(region)
                for wid, region in enumerate(self._regions)
                if region is not None
            }
        result.solver_stats["parallel"] = parallel
        if self._interval:
            result.solver_stats["interval"] = dict(self._interval)
        if self.certify:
            self._attach_certificate(result, circuit, device, mapping, objective)
        self.tracer.event("parallel.summary", **{
            k: v for k, v in parallel.items() if k != "per_worker"
        })
        result.wall_time = time.monotonic() - started
        return result

    def _assign_regions(self, circuit, device, mapping) -> None:
        """Decide the subarchitecture portfolio dimension for this run.

        Worker 0 always stays on the full device — it is the *global
        prover*: only its UNSAT verdicts (and those of other full-device
        workers) may raise the shared lower bound, so optimality proofs
        never rest on region-local infeasibility.  Workers 1..n-1 are
        assigned distinct extracted candidate regions (cycled when there
        are more workers than candidates); their SAT models are translated
        back to full-device labels inside the worker, their UNSATs only
        retire their own region.  Region assignment follows the first
        entry's ``subarch`` config knob and is skipped entirely for a
        pinned initial mapping (its labels may lie outside every region).
        """
        n = len(self.entries)
        self._regions = [None] * n
        self._region_graphs: List[Optional[CouplingGraph]] = [None] * n
        self._prover_wids = set(range(n))
        cfg = self.entries[0].config
        if (
            n < 2
            or mapping is not None
            or cfg.subarch == "off"
            or device.n_qubits <= circuit.n_qubits
            or circuit.n_qubits < 1
        ):
            return
        if cfg.subarch != "on" and device.n_qubits < 2 * circuit.n_qubits:
            return
        candidates = extract_candidates(
            circuit, device, max_candidates=max(1, n - 1)
        )
        if not candidates:
            return
        for wid in range(1, n):
            candidate = candidates[(wid - 1) % len(candidates)]
            self._regions[wid] = candidate.qubits
            self._region_graphs[wid] = candidate.graph
            self._prover_wids.discard(wid)

    def _prepare_templates(
        self, circuit, device, mapping
    ) -> List[Optional[Tuple[tuple, bytes]]]:
        """Pre-encode one snapshot per shared instance shape.

        Workers used to rebuild the same formula independently — pure
        Python encoding, done N times, which is what turned the parallel
        scaling negative once propagation moved into the compiled kernel.
        Here the coordinator groups workers by their encode key (portfolio
        entries differing only in post-encode knobs such as ``cardinality``
        share one), encodes each multi-member group's formula **once**, and
        ships the snapshot to every member; singleton groups keep encoding
        locally (a coordinator pre-encode would only serialize their work).
        Returns a per-wid list of ``(key, blob)`` or ``None``.
        """
        n = len(self.entries)
        templates: List[Optional[Tuple[tuple, bytes]]] = [None] * n
        groups: Dict[tuple, List[int]] = {}
        for wid, entry in enumerate(self.entries):
            cfg = entry.config
            if cfg.templates != "on" or cfg.certify:
                continue
            worker_device = (
                device if self._regions[wid] is None
                else self._region_graphs[wid]
            )
            horizon = IterativeSynthesizer(
                circuit,
                worker_device,
                config=cfg,
                transition_based=entry.transition_based,
            )._initial_horizon()
            key = template_key(
                circuit,
                worker_device,
                horizon,
                cfg,
                transition_based=entry.transition_based,
                initial_mapping=mapping,
            )
            groups.setdefault(key, []).append(wid)
        for key, wids in groups.items():
            if len(wids) < 2:
                continue
            wid0 = wids[0]
            entry = self.entries[wid0]
            encoder = LayoutEncoder(
                circuit,
                device if self._regions[wid0] is None
                else self._region_graphs[wid0],
                # key[4] is the horizon the group's members agreed on.
                key[4],
                config=entry.config.replace(
                    tracer=None, progress_callback=None
                ),
                transition_based=entry.transition_based,
                initial_mapping=list(mapping) if mapping is not None else None,
            ).encode()
            try:
                blob = snapshot_solver(encoder.ctx.sink)
            except SnapshotUnsupported:  # pragma: no cover - defensive
                continue
            for wid in wids:
                templates[wid] = (key, blob)
        return templates

    def _attach_certificate(
        self, result, circuit, device, mapping, objective
    ) -> None:
        """Post-hoc certificate: re-prove the headline UNSAT bounds on a
        fresh proof-logging solver (workers' own proofs are unusable when
        clause imports were on) and validate the returned model."""
        from ..analysis.certify import Certificate, certify_bound
        from .validator import is_valid

        cfg = self.entries[0].config
        tb = self.entries[0].transition_based
        horizon = IterativeSynthesizer(
            circuit, device, config=cfg, transition_based=tb
        )._initial_horizon()
        budget = min(60.0, self.time_budget)
        refutations = []
        expected = 0
        if result.optimal and self._depth_cert is not None:
            expected += 1
            refutations.append(
                certify_bound(
                    circuit,
                    device,
                    max(horizon, self._depth_cert),
                    depth_bound=self._depth_cert,
                    config=cfg,
                    transition_based=tb,
                    initial_mapping=mapping,
                    time_budget=budget,
                )
            )
        if result.optimal and objective == "swap" and self._swap_cert is not None:
            depth_bound, swap_bound, counter_max = self._swap_cert
            expected += 1
            refutations.append(
                certify_bound(
                    circuit,
                    device,
                    max(horizon, depth_bound),
                    depth_bound=depth_bound,
                    swap_bound=swap_bound,
                    swap_counter_max=counter_max,
                    config=cfg,
                    transition_based=tb,
                    initial_mapping=mapping,
                    time_budget=budget,
                )
            )
        certificate = Certificate(
            objective=objective,
            depth=result.depth,
            swap_count=result.swap_count,
            model_valid=is_valid(result),
            refutations=refutations,
            expected_refutations=expected,
            check_time=sum(r.check_time for r in refutations),
        )
        result.certificate = certificate
        if result.optimal:
            result.solver_stats["certified"] = certificate.refutations_ok
        self.tracer.event(
            "certify",
            complete=certificate.complete,
            refutations=len(refutations),
            expected=expected,
        )

    # -- phases -----------------------------------------------------------

    def _run(
        self, circuit, device, mapping, objective, pool, procs, counters,
        started,
    ):
        tb = self.entries[0].transition_based
        t_lb = max(1, 1 if tb else longest_chain_length(circuit))
        deadline = started + self.time_budget
        best: Dict[str, object] = {"result": None, "name": "", "key": None}
        self._interval["depth_lb"] = t_lb

        def apply_depth_sat(payload, achieved, d, s, wid, stale):
            key = (achieved[0], achieved[1])
            if best["result"] is None or key < best["key"]:
                best.update(result=payload, name=pool.names[wid], key=key)
            return achieved[0]

        # Warm start: one coordinator-side SABRE run seeds the race with a
        # validated full-device model, so the relax ladder is skipped and
        # the interval opens at [t_lb, warm_depth) instead of unbounded.
        # Sound because a validated heuristic schedule is a feasible model;
        # TB entries are excluded (block counts and time-resolved depths
        # are not comparable bound units).
        warm_ub = None
        if not tb and any(
            e.config.warm_start == "sabre" for e in self.entries
        ):
            warm = self._warm_reference(circuit, device, mapping)
            if warm is not None:
                warm.objective = "depth"
                warm.solver_stats = dict(warm.solver_stats)
                warm.solver_stats["warm_start_model"] = True
                raw_swaps = getattr(warm, "_raw_swaps", warm.swaps)
                best.update(
                    result=warm,
                    name="sabre-warm",
                    key=(warm.depth, len(raw_swaps)),
                )
                warm_ub = warm.depth
                self._interval["warm_depth_ub"] = warm_ub

        with self.tracer.span("parallel.phase", phase="depth") as span:
            lb, ub, proven = self._race(
                pool, procs, "depth", t_lb, warm_ub, None,
                [t_lb], tb, apply_depth_sat, deadline, counters,
            )
            span.set(lb=lb, ub=ub, proven=proven)
        # Headline UNSAT bound of the depth phase (monotonicity: the race
        # refuted lb - 1 >= ub - 1, so ub - 1 is the tightest claim).
        self._depth_cert = (
            ub - 1 if proven and ub is not None and ub > 1 else None
        )
        self._swap_cert = None
        if best["result"] is None:
            raise SynthesisTimeout(
                "no worker found a schedule within the time budget; "
                f"errors: {pool.errors}"
            )
        if objective == "depth":
            result = best["result"]
            result.optimal = proven
            result.solver_stats = dict(result.solver_stats)
            result.solver_stats["portfolio_winner"] = best["name"]
            return result
        return self._swap_phase(
            circuit, device, pool, procs, best, ub, counters, started
        )

    def _warm_reference(self, circuit, device, mapping):
        """A validated full-device SABRE schedule, or None on any failure."""
        from ..baselines.sabre import SABRE  # runtime import; avoids a cycle

        cfg = self.entries[0].config
        with self.tracer.span("warm_start", source="sabre") as span:
            try:
                heuristic = SABRE(
                    swap_duration=cfg.swap_duration, seed=0
                ).synthesize(circuit, device, initial_mapping=mapping)
            except (RuntimeError, ValueError):
                heuristic = None
            if heuristic is not None and is_valid(heuristic):
                span.set(depth=heuristic.depth, swaps=heuristic.swap_count)
                return heuristic
            span.set(depth=None)
        return None

    def _swap_phase(
        self, circuit, device, pool, procs, best, depth_ub, counters, started
    ):
        """2-D Pareto search (Sec. III-B.2), with each round's swap descent
        parallelised the same way as the depth phase."""
        deadline = time.monotonic() + self.time_budget
        depth_result = best["result"]
        depth_bound = depth_ub
        best_swaps = len(getattr(depth_result, "_raw_swaps", depth_result.swaps))
        counter_max = best_swaps
        # The analytic bound floors every round's descent: probes below it
        # cannot be SAT on any device region, so the race opens on
        # [floor, best_swaps) and reaching the floor proves optimality
        # without a final (often slowest) UNSAT query.  Certified runs keep
        # the floor at zero — the post-hoc certificate re-proves S*-1, which
        # the analytic shortcut would otherwise leave unrecorded.
        swap_floor = analytic_swap_lower_bound(circuit, device)
        self._interval["swap_lb"] = swap_floor
        if self.certify:
            swap_floor = 0
        self._interval["swap_ub_initial"] = best_swaps
        max_rounds = self.entries[0].config.max_pareto_rounds
        pareto: List[Tuple[int, int]] = []
        proven_any = False
        rounds = 0
        while True:
            entering = best_swaps
            round_floor = {"value": best_swaps}

            def apply_swap_sat(payload, achieved, d, s, wid, stale,
                               _floor=round_floor, _depth=depth_bound):
                nonlocal best_swaps
                if not stale and d == _depth:
                    _floor["value"] = min(_floor["value"], achieved[1])
                if achieved[1] < best_swaps:
                    best_swaps = achieved[1]
                    best.update(result=payload, name=pool.names[wid])
                    return achieved[1]
                return None

            with self.tracer.span(
                "parallel.phase", phase="swap", round=rounds + 1,
                depth_bound=depth_bound,
            ) as span:
                _lb, ub, proven = self._race(
                    pool, procs, "swap", swap_floor, best_swaps, depth_bound,
                    None, False, apply_swap_sat, deadline, counters,
                    counter_max=counter_max,
                )
                best_swaps = min(best_swaps, ub)
                span.set(swaps=best_swaps, proven=proven)
            pareto.append((depth_bound, round_floor["value"]))
            proven_any = proven_any or proven
            if proven and best_swaps > swap_floor:
                self._swap_cert = (depth_bound, best_swaps - 1, best_swaps)
            rounds += 1
            if best_swaps <= swap_floor:
                proven_any = True
                break
            if (
                rounds > max_rounds
                or time.monotonic() >= deadline
                or not pool.alive
            ):
                break
            if rounds > 1 and best_swaps >= entering:
                break  # relaxing depth no longer helps
            depth_bound += 1

        result = best["result"]
        result.objective = "swap"
        result.optimal = proven_any
        result.pareto_points = pareto
        result.solver_stats = dict(result.solver_stats)
        result.solver_stats["portfolio_winner"] = best["name"]
        return result

    # -- the interval race ------------------------------------------------

    def _race(
        self,
        pool: _WorkerPool,
        procs,
        phase: str,
        lb: int,
        ub: Optional[int],
        depth_bound: Optional[int],
        rung_state: Optional[List[int]],
        tb: bool,
        apply_sat,
        deadline: float,
        counters: dict,
        counter_max: Optional[int] = None,
    ) -> Tuple[int, Optional[int], bool]:
        """Drive the pool over probe bounds in ``[lb, ub)`` until the
        interval empties (optimality proven) or the deadline passes.

        ``ub is None`` starts in *relax* mode: probes walk the geometric
        ladder in ``rung_state`` until the first SAT establishes ``ub``.
        Returns ``(lb, ub, proven)``.

        Subarchitecture workers get *private* floors: their UNSAT verdicts
        only retire bounds for their own region (the full device might
        still satisfy them), so ``lb`` — and with it any optimality claim —
        advances on full-device (prover) verdicts alone.  When every alive
        worker's effective floor reaches ``ub`` with ``lb`` still below it,
        the race is stalled (all regions exhausted, no prover left) and
        returns unproven.
        """
        cfg = self.entries[0].config
        provers = self._prover_wids if self._prover_wids else set(pool.alive)
        #: wid -> region-local lower bound (UNSATs on that worker's region).
        floors: Dict[int, int] = {}

        # Sanitizer hook (repro.analysis.sanitize): under REPRO_SANITIZE or
        # config.sanitize, verify once that every shared-lower-bound writer
        # is a full-device prover, and re-verify at each raise site.  Off
        # costs one None check per shared-lb raise.
        lb_guard = None
        sanitize_mode = cfg.sanitize if cfg.sanitize is not None else (
            os.environ.get("REPRO_SANITIZE") or "off"
        )
        if sanitize_mode != "off" and self._regions:
            from ..analysis.sanitize import check_prover_assignment

            check_prover_assignment(provers, self._regions)

            def lb_guard(wid: int) -> None:
                check_prover_assignment((wid,), self._regions)

        def next_rung(b: int) -> int:
            if tb:
                return b + 1
            ratio = (
                cfg.depth_relax_small
                if b < cfg.depth_relax_threshold
                else cfg.depth_relax_large
            )
            return max(b + 1, math.ceil(ratio * b))

        def make_cmd(b: int):
            if phase == "swap":
                return ("probe", "swap", depth_bound, b, counter_max)
            return ("probe", "depth", b, None, None)

        def floor_of(wid: int) -> int:
            return max(lb, floors.get(wid, lb))

        def pick(wid: int) -> Optional[int]:
            if ub is None:
                b = rung_state[0]
                rung_state[0] = next_rung(b)
                return b
            lo = floor_of(wid)
            hi = ub - 1
            if hi < lo:
                return None
            taken = pool.taken_bounds(phase, depth_bound)
            k = max(1, len(pool.alive))
            width = hi - lo
            # Quantile split of the open interval: worker 0 probes the
            # classic descend bound ub-1, the rest bisect what remains.
            for j in range(k):
                b = hi - (j * width) // k
                if b >= lo and b not in taken:
                    return b
            for b in range(hi, lo - 1, -1):
                if b not in taken:
                    return b
            return None

        while True:
            if ub is not None and lb >= ub:
                return lb, ub, True
            if time.monotonic() >= deadline or not pool.alive:
                return lb, ub, False
            if ub is not None and all(
                floor_of(wid) >= ub for wid in pool.alive
            ):
                # Every region (and any surviving prover) has retired the
                # whole interval privately, but lb < ub: nothing left to
                # probe, nothing proven for the full device.
                return lb, ub, False
            for wid in sorted(pool.idle & pool.alive):
                b = pick(wid)
                if b is None:
                    continue
                pool.send(wid, make_cmd(b))
                self.tracer.event(
                    "parallel.dispatch", worker=wid, phase=phase,
                    bound=b, depth_bound=depth_bound,
                )
            # Retarget busy workers whose probe the interval has outrun,
            # plus ones still chewing on a previous phase's or round's probe.
            for wid in sorted(pool.alive - pool.idle):
                probe = pool.assigned.get(wid)
                if probe is None:
                    continue
                if probe[0] == phase and (
                    phase != "swap" or probe[1] == depth_bound
                ):
                    b = probe[2] if phase == "swap" else probe[1]
                    if not (
                        b < floor_of(wid) or (ub is not None and b >= ub)
                    ):
                        continue
                    reason = "unsat_below" if b < floor_of(wid) else "sat_above"
                else:
                    b = probe[2] if probe[0] == "swap" else probe[1]
                    reason = "stale"
                nb = pick(wid)
                if nb is None:
                    continue
                counters["pruned"] += 1
                self.tracer.event(
                    "parallel.prune", worker=wid, phase=phase, bound=b,
                    reason=reason,
                )
                pool.send(wid, make_cmd(nb))
            msg = pool.recv(
                timeout=min(0.25, max(0.01, deadline - time.monotonic()))
            )
            if msg is None:
                pool.reap(procs)
                continue
            kind = msg[0]
            if kind == "ready":
                continue
            if kind == "error":
                wid = msg[1]
                pool.errors.append((pool.names[wid], msg[2]))
                pool.alive.discard(wid)
                pool.idle.discard(wid)
                continue
            _, wid, vphase, d, s, verdict, payload, achieved, stats = msg
            pool.stats[wid] = stats
            pool.note_verdict(wid, vphase, d, s)
            self.tracer.event(
                "parallel.verdict", worker=wid, phase=vphase,
                depth_bound=d, swap_bound=s, verdict=verdict,
            )
            if verdict == "sat":
                # A solution is a solution even when the probe is stale
                # (e.g. a depth-phase answer landing mid-swap-phase).
                new_ub = apply_sat(payload, achieved, d, s, wid, vphase != phase)
                if new_ub is not None:
                    ub = new_ub if ub is None else min(ub, new_ub)
            elif verdict == "unsat" and vphase == phase:
                if phase == "swap":
                    # UNSAT at a *tighter* depth proves nothing here.
                    if d == depth_bound:
                        if wid in provers:
                            if lb_guard is not None:
                                lb_guard(wid)
                            if s >= lb:
                                lb = s + 1
                        else:
                            floors[wid] = max(floors.get(wid, 0), s + 1)
                elif wid in provers:
                    if lb_guard is not None:
                        lb_guard(wid)
                    if d >= lb:
                        lb = d + 1
                else:
                    floors[wid] = max(floors.get(wid, 0), d + 1)
