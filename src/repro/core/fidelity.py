"""Success-rate estimation for mapped circuits.

The paper's premise (Sec. I): "the success rate of quantum programs suffers
from short qubit coherence time, imperfect gate operations, and
environmental noises.  Thus, an effective layout synthesizer should minimize
the number of inserted SWAP gates ... and circuit depth".  This module
closes that loop quantitatively: given per-gate error rates and coherence
times, it estimates the success probability of a
:class:`~repro.core.result.SynthesisResult`, so depth/SWAP improvements can
be reported in the unit users actually care about.

The model is the standard first-order one used in mapping papers:

    P = prod(gate fidelities)  *  prod_q exp(-t_active(q) / T_coherence)

where a SWAP counts as three CNOTs and ``t_active(q)`` is the wall-clock
window a physical qubit stays live.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .result import SynthesisResult


@dataclass
class NoiseModel:
    """Per-device error parameters.

    ``two_qubit_error`` applies per CNOT (a SWAP costs three), and may be
    overridden per edge via ``edge_errors``; ``single_qubit_error`` per
    one-qubit gate; ``gate_time`` is the duration of one scheduler time
    step and ``t1`` the coherence time, both in the same (arbitrary) unit.
    """

    two_qubit_error: float = 0.01
    single_qubit_error: float = 0.001
    edge_errors: Dict[Tuple[int, int], float] = field(default_factory=dict)
    gate_time: float = 1.0
    t1: float = 1000.0

    def __post_init__(self):
        for name in ("two_qubit_error", "single_qubit_error"):
            value = getattr(self, name)
            if not 0 <= value < 1:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.gate_time <= 0 or self.t1 <= 0:
            raise ValueError("gate_time and t1 must be positive")

    def edge_error(self, p: int, q: int) -> float:
        return self.edge_errors.get((min(p, q), max(p, q)), self.two_qubit_error)

    @classmethod
    def uniform(cls, two_qubit_error: float = 0.01, **kwargs) -> "NoiseModel":
        return cls(two_qubit_error=two_qubit_error, **kwargs)


def estimate_success_rate(
    result: SynthesisResult, model: Optional[NoiseModel] = None
) -> float:
    """Estimated probability that the mapped circuit runs error-free."""
    model = model or NoiseModel()
    log_p = 0.0

    # Gate errors.
    for idx, gate in enumerate(result.circuit.gates):
        t = result.gate_times[idx]
        mapping = result.mapping_at(t)
        if gate.is_two_qubit:
            pa, pb = (mapping[q] for q in gate.qubits)
            log_p += math.log1p(-model.edge_error(pa, pb))
        else:
            log_p += math.log1p(-model.single_qubit_error)
    # SWAPs: three CNOTs each on their edge.
    for swap in result.swaps:
        log_p += 3 * math.log1p(-model.edge_error(swap.p, swap.p_prime))

    # Decoherence: every physical qubit the program touches stays live from
    # initialisation (t=0) until the final measurement at the circuit's end,
    # so each used qubit decoheres over the full depth — which is exactly
    # why the paper optimises depth.
    used = set()
    for idx, gate in enumerate(result.circuit.gates):
        t = result.gate_times[idx]
        mapping = result.mapping_at(t)
        used.update(mapping[q] for q in gate.qubits)
    for swap in result.swaps:
        used.add(swap.p)
        used.add(swap.p_prime)

    active = result.depth * model.gate_time
    log_p -= len(used) * active / model.t1
    return math.exp(log_p)


def compare_success_rates(
    results: Dict[str, SynthesisResult], model: Optional[NoiseModel] = None
) -> Dict[str, float]:
    """Success-rate table for several synthesizers' outputs."""
    return {
        name: estimate_success_rate(result, model)
        for name, result in results.items()
    }
