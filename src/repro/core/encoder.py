"""The OLSQ2 succinct SMT formulation (paper Sec. III-A) over our SAT core.

Variables (no space variables — Improvement 1):

* mapping ``pi[q][t]`` — bounded-domain variable over physical qubits,
* time ``time[g]`` — bounded-domain variable over ``[0, horizon)``,
* SWAP ``sigma[e][t]`` — Boolean, true iff a SWAP on edge ``e`` finishes at
  time ``t`` (it occupies ``t - S_D + 1 .. t``; the mapping change becomes
  visible at ``t + 1``).

Constraint groups (Sec. II-A numbering):

1. mapping injectivity per time step (pairwise or EUF-style channeling),
2. gate dependencies (``t_g < t_g'``; ``<=`` in the transition-based model),
3. valid two-qubit scheduling via edge-selector literals (Eq. 1) — gate
   positions are *inferred* from mapping + time, the paper's key idea,
4. SWAP mapping transformation (stay/move clauses),
5. SWAPs don't overlap gates (Eq. 2-3) or other SWAPs.

The encoder also owns the *incremental bound machinery*: depth bounds and
SWAP-count bounds are activated per solve via assumption literals, so the
optimization loops in :mod:`repro.core.optimizer` reuse all learned clauses
across iterations (Sec. III-B).  Gate-time variables use the extensible
:class:`repro.smt.stepvar.StepVar` encoding so :meth:`LayoutEncoder.extend_horizon` can grow the formula *in place* when the relax phase needs
more time steps — the solver (and everything it has learned) survives.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import dependencies
from ..encodings.adder import IncrementalAdder
from ..encodings.cardinality import IncrementalCounter, IncrementalTotalizer
from ..sat.result import SatResult
from ..sat.solver import Solver
from ..sat.types import neg
from ..smt.context import SMTContext
from ..smt.domain import make_domain_var
from ..smt.injectivity import encode_injectivity
from ..smt.stepvar import StepVar
from ..telemetry import NULL_TRACER
from .config import (
    CARD_ADDER,
    CARD_SEQUENTIAL,
    CARD_TOTALIZER,
    SIMPLIFY_FULL,
    SIMPLIFY_OFF,
    SynthesisConfig,
)
from .result import SwapEvent


class LayoutEncoder:
    """Encodes one layout-synthesis instance at a fixed horizon.

    ``transition_based=True`` switches to the TB-OLSQ2 coarse-grained model
    (Sec. III-D): time steps become blocks, dependencies become non-strict,
    the SWAP/gate overlap constraints disappear, and SWAPs happen in the
    transitions between consecutive blocks.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        horizon: int,
        config: Optional[SynthesisConfig] = None,
        transition_based: bool = False,
        ctx: Optional[SMTContext] = None,
        initial_mapping: Optional[List[int]] = None,
        tracer=None,
    ):
        if circuit.n_qubits > device.n_qubits:
            raise ValueError(
                f"circuit needs {circuit.n_qubits} qubits but device has "
                f"{device.n_qubits}"
            )
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.circuit = circuit
        self.device = device
        self.horizon = horizon
        self.config = config or SynthesisConfig()
        self.transition_based = transition_based
        # The default sink honours the config's kernel choice ("auto" /
        # "python" / "native") and sanitize mode; an explicitly passed ctx
        # keeps its sink.
        self.ctx = ctx or SMTContext(
            sink=Solver(
                kernel=self.config.kernel, sanitize=self.config.sanitize
            )
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer is not NULL_TRACER and isinstance(self.ctx.sink, Solver):
            # Let the solver publish per-solve stats snapshots into the
            # same trace (and poll cancellation at restarts).
            self.ctx.sink.tracer = self.tracer
        if initial_mapping is not None:
            if len(initial_mapping) != circuit.n_qubits:
                raise ValueError("initial mapping size != circuit qubits")
            if len(set(initial_mapping)) != len(initial_mapping):
                raise ValueError("initial mapping must be injective")
        self.initial_mapping = initial_mapping
        # Bulk clause loading (config.encode_bulk): each constraint family
        # stages its clauses and lands them through one arena bulk alloc.
        # Only a Solver sink has the staging API; CNF sinks (certify) keep
        # the plain per-clause path.
        self._bulk = self.config.encode_bulk != "off" and isinstance(
            self.ctx.sink, Solver
        )

        self.pi: List[List] = []  # [q][t] -> domain var over P
        self.time: List[StepVar] = []  # [g] -> extensible step var
        self.sigma: List[List[int]] = []  # [e][t] -> swap literal
        self.swap_lits: List[Tuple[int, int, int]] = []  # (lit, e_idx, t)
        self._depth_guards: Dict[int, int] = {}
        self._swap_counter = None
        self._encoded = False
        # Activation literal of the *current* horizon: assumed at every
        # solve (via the context's persistent assumptions) and implied by
        # every depth guard; it arms the at-least-one of each time var.
        self._act: Optional[int] = None
        # Number of variables after _make_variables at the *initial*
        # horizon: the pi/time/sigma prefix whose numbering is identical
        # across every encoder built for the same (circuit, device,
        # horizon, encoding) — the clause-sharing window (see share_key).
        self.base_vars = 0
        self._horizon0 = horizon
        self._share_key: Optional[tuple] = None
        # Edge-selector auxiliary variables from the adjacency encoding
        # (Eq. 1).  They are defined by their clauses and never read back
        # by extract(), so they are the one variable family the encoder
        # thaws for bounded variable elimination (config.simplify="full").
        self._aux_selectors: List[int] = []
        # Operation journal: every variable-allocating call after encode(),
        # in order, so repro.analysis.certify can replay this encoder onto a
        # CNF sink and reproduce the exact variable numbering (the encoding
        # itself is deterministic; the journal pins the call sequence).
        self.journal: List[Tuple[str, object]] = []
        # Worker-private constraint groups (bounds, counters): label plus
        # the clause-index range they contributed.  The ranges are only
        # meaningful on a CNF sink, which keeps every clause verbatim.
        self._private_groups: List[dict] = []

    # -- encoding ----------------------------------------------------------

    def encode(self) -> "LayoutEncoder":
        """Build all variables and static constraints.  Idempotent."""
        if self._encoded:
            return self
        self._encoded = True
        started = time.monotonic()
        with self.tracer.span(
            "encode",
            horizon=self.horizon,
            transition_based=self.transition_based,
            encoding=self.config.encoding,
        ) as span:
            self._traced("variables", self._make_variables)
            self.base_vars = self.ctx.n_vars
            self._horizon0 = self.horizon
            if self.initial_mapping is not None:
                for q, p in enumerate(self.initial_mapping):
                    self.pi[q][0].fix(p)
            self._traced("injectivity", self._encode_injectivity)
            self._traced("dependencies", self._encode_dependencies)
            self._traced("adjacency", self._encode_two_qubit_adjacency)
            self._traced("transformation", self._encode_mapping_transformation)
            if not self.transition_based:
                self._traced("swap_gate_exclusion", self._encode_swap_gate_exclusion)
            self._traced("swap_swap_exclusion", self._encode_swap_swap_exclusion)
            self._configure_simplify()
            span.set(n_vars=self.ctx.n_vars, n_clauses=self.ctx.num_clauses)
        sink = self.ctx.sink
        if isinstance(sink, Solver):
            # Encode-side wall clock (the counterpart of solve_wall_sec,
            # which solve() accumulates): replaying onto a restored
            # snapshot also lands here, so a template hit shows up as a
            # near-zero encode share instead of a missing one.
            sink.stats.encode_wall_sec += time.monotonic() - started
        return self

    def _configure_simplify(self) -> None:
        """Apply ``config.simplify`` to a live solver sink.

        ``off`` disables restart-time inprocessing; ``inprocess`` (default)
        keeps it on and runs one bounded subsume+vivify pass over the
        freshly encoded formula (probing is deferred to restart-time
        passes: failed-literal cancellations at encode time perturb the
        saved-phase trajectory of structured encodings badly enough to
        cost more conflicts than the derived units save); ``full`` additionally thaws the adjacency
        edge-selector auxiliaries so bounded variable elimination may
        resolve them away (their models are rebuilt by the solver's
        :class:`~repro.sat.preprocess.ModelReconstructor`).  Everything
        else — the shared ``base_vars`` prefix, activation literals, bound
        guards — stays frozen, which keeps ``extend_horizon`` and clause
        sharing sound.
        """
        sink = self.ctx.sink
        if not isinstance(sink, Solver):
            return
        if sink.replaying:
            # Snapshot restore: the encode-time pass already ran (and its
            # effects are in the restored state); re-running it would
            # diverge the restored solver from the one that was snapshot.
            return
        mode = self.config.simplify
        sink.inprocessing = mode != SIMPLIFY_OFF
        if mode == SIMPLIFY_OFF:
            return
        eliminate = mode == SIMPLIFY_FULL
        if eliminate:
            sink.thaw(self._aux_selectors)
        with self.tracer.span("simplify", mode=mode) as span:
            ok = sink.simplify(eliminate=eliminate, probe=False, vivify=True)
            span.set(
                ok=ok,
                subsumed=sink.stats.subsumed_clauses,
                strengthened=sink.stats.strengthened_clauses,
                failed_literals=sink.stats.failed_literals,
                eliminated=sink.stats.eliminated_vars,
            )

    def _traced(self, family: str, build) -> None:
        """Run one constraint-family builder under a span that records the
        variable/clause counts it contributed.

        With bulk loading on, the family's clauses are staged and flushed
        at the family boundary — inside this method, so the span's clause
        delta still sees the landed count.  Replay mode (snapshot restore)
        skips staging: add_clause is a no-op there.
        """
        with self.tracer.span("encode." + family) as span:
            v0, c0 = self.ctx.n_vars, self.ctx.num_clauses
            sink = self.ctx.sink
            if self._bulk and not sink.replaying:
                sink.begin_bulk()
                try:
                    build()
                finally:
                    sink.end_bulk()
            else:
                build()
            span.set(vars=self.ctx.n_vars - v0, clauses=self.ctx.num_clauses - c0)

    def _make_variables(self) -> None:
        ctx, cfg = self.ctx, self.config
        n_phys = self.device.n_qubits
        horizon = self.horizon
        self.pi = [
            [make_domain_var(ctx, n_phys, cfg.encoding) for _ in range(horizon)]
            for _ in range(self.circuit.n_qubits)
        ]
        self.time = [StepVar(ctx, horizon) for _ in range(self.circuit.num_gates)]
        self._activate_horizon()
        # SWAP literals.  Non-TB: sigma[e][t] = swap finishing at t; only
        # t in [S_D-1, horizon-1) is meaningful.  TB: sigma[e][k] = swap in
        # the transition after block k, k in [0, horizon-1).
        n_transitions = horizon - 1
        self.sigma = []
        for e_idx in range(self.device.num_edges):
            col = []
            for t in range(n_transitions):
                lit = ctx.new_bool()
                col.append(lit)
                if not self.transition_based and t < cfg.swap_duration - 1:
                    ctx.add([neg(lit)])  # cannot finish before one full duration
                else:
                    self.swap_lits.append((lit, e_idx, t))
            self.sigma.append(col)

    def _activate_horizon(self) -> None:
        """(Re-)arm the guarded at-least-one of every time variable.

        A fresh activation literal ``act`` is created with
        ``act -> (z_0 | ... | z_{H-1})`` per gate; it replaces the previous
        horizon's literal in the context's persistent assumptions, so old
        at-least-ones retire silently when the horizon grows.
        """
        act = self.ctx.new_bool()
        for var in self.time:
            self.ctx.add([neg(act)] + list(var.selectors))
        if self._act is not None:
            self.ctx.persistent_assumptions.remove(self._act)
        self._act = act
        self.ctx.persistent_assumptions.append(act)

    @property
    def horizon_act(self) -> int:
        """The current horizon's activation literal (see extend_horizon)."""
        self.encode()
        return self._act

    def share_key(self) -> tuple:
        """The clause-sharing context key for this encoder's base prefix.

        Two workers may exchange learnt clauses over variables below
        :attr:`base_vars` exactly when their keys are equal: the key pins
        everything that determines both the *numbering* (circuit shape,
        device size, initial horizon, variable encoding) and the
        *semantics* (transition model, SWAP duration, pinned initial
        mapping) of those variables.  Knobs that only add auxiliary
        variables above the prefix (injectivity method, cardinality
        encoding, warm-start hints) deliberately stay out of the key —
        sharing across those configurations is the whole point.  The key
        is fixed at first encode: clauses over the initial-horizon prefix
        stay sound when a worker later extends its horizon in place, since
        extension only ever appends clauses and every model of the shorter
        formula extends to the longer one.
        """
        self.encode()
        if self._share_key is None:
            mapping = (
                tuple(self.initial_mapping)
                if self.initial_mapping is not None
                else None
            )
            self._share_key = (
                "olsq2",
                self.config.encoding,
                self.transition_based,
                self.config.swap_duration,
                self._horizon0,
                self.base_vars,
                self.circuit.num_gates,
                self.circuit.n_qubits,
                self.device.n_qubits,
                self.device.num_edges,
                mapping,
            )
        return self._share_key

    def _encode_injectivity(self) -> None:
        for t in range(self.horizon):
            encode_injectivity(
                self.ctx,
                [self.pi[q][t] for q in range(self.circuit.n_qubits)],
                self.device.n_qubits,
                method=self.config.injectivity,
                encoding=self.config.encoding,
            )

    def _encode_dependencies(self) -> None:
        for earlier, later in dependencies(self.circuit):
            if self.transition_based:
                self.time[earlier].less_equal(self.time[later])
            else:
                self.time[earlier].less_than(self.time[later])

    def _encode_two_qubit_adjacency(self) -> None:
        """Eq. 1: a two-qubit gate's qubits sit on some edge at its time.

        For each gate g(q, q') and time t, an edge-selector literal
        ``s[g,t,e]`` commits the gate to edge e; the selector implies both
        qubits lie on e's endpoints (injectivity then forces them onto the
        two distinct endpoints).
        """
        ctx = self.ctx
        edges = self.device.edges
        for g_idx, gate in self.circuit.two_qubit_gates:
            q, q_prime = gate.qubits
            for t in range(self.horizon):
                z = self.time[g_idx].eq_lit(t)
                selectors = []
                for a, b in edges:
                    s = ctx.new_bool()
                    selectors.append(s)
                    self._aux_selectors.append(s >> 1)
                    ctx.add([neg(s), self.pi[q][t].eq_lit(a), self.pi[q][t].eq_lit(b)])
                    ctx.add(
                        [
                            neg(s),
                            self.pi[q_prime][t].eq_lit(a),
                            self.pi[q_prime][t].eq_lit(b),
                        ]
                    )
                ctx.add([neg(z)] + selectors)

    def _encode_mapping_transformation(self) -> None:
        """Constraint (4): the mapping evolves only through SWAPs.

        Between steps t-1 and t the mapping of q changes exactly when a SWAP
        finishing at t-1 (TB: in transition t-1) touches q's position.
        """
        ctx = self.ctx
        edges = self.device.edges
        incident = self.device.incident_edges
        for t in range(1, self.horizon):
            for q in range(self.circuit.n_qubits):
                prev_var, cur_var = self.pi[q][t - 1], self.pi[q][t]
                for p in range(self.device.n_qubits):
                    x_prev = prev_var.eq_lit(p)
                    # Stay clause: no incident swap => same position.
                    stay = [neg(x_prev)]
                    stay.extend(self.sigma[e][t - 1] for e in incident[p])
                    stay.append(cur_var.eq_lit(p))
                    ctx.add(stay)
                    # Move clauses: incident swap => other endpoint.
                    for e in incident[p]:
                        a, b = edges[e]
                        other = b if a == p else a
                        ctx.add(
                            [
                                neg(x_prev),
                                neg(self.sigma[e][t - 1]),
                                cur_var.eq_lit(other),
                            ]
                        )

    def _encode_swap_gate_exclusion(self) -> None:
        """Eq. 2-3: a SWAP occupying ``t-S_D+1..t`` on edge e excludes gates
        scheduled in that window whose qubits sit on e's endpoints."""
        ctx = self.ctx
        duration = self.config.swap_duration
        edges = self.device.edges
        for lit, e_idx, t in self.swap_lits:
            a, b = edges[e_idx]
            window = range(max(0, t - duration + 1), t + 1)
            for g_idx, gate in enumerate(self.circuit.gates):
                for t_prime in window:
                    z = self.time[g_idx].eq_lit(t_prime)
                    for q in gate.qubits:
                        # Mapping is stable across the window (no other swap
                        # may touch these qubits meanwhile), so testing the
                        # position at the finish time t is sound (cf. paper).
                        ctx.add([neg(z), neg(self.pi[q][t].eq_lit(a)), neg(lit)])
                        ctx.add([neg(z), neg(self.pi[q][t].eq_lit(b)), neg(lit)])

    def _encode_swap_swap_exclusion(self) -> None:
        """Two SWAPs sharing a qubit cannot overlap in time.

        In the TB model this degenerates to: within one transition, the
        chosen swap edges form a matching (one layer of parallel SWAPs).
        """
        ctx = self.ctx
        duration = 1 if self.transition_based else self.config.swap_duration
        edges = self.device.edges
        n_transitions = self.horizon - 1
        # Pairs of distinct edges sharing an endpoint.
        incident_pairs = []
        for p in range(self.device.n_qubits):
            inc = self.device.incident_edges[p]
            for i in range(len(inc)):
                for j in range(i + 1, len(inc)):
                    incident_pairs.append((inc[i], inc[j]))
        incident_pairs = sorted(set(incident_pairs))
        for t in range(n_transitions):
            for e1, e2 in incident_pairs:
                for dt in range(duration):
                    t2 = t + dt
                    if t2 >= n_transitions:
                        break
                    ctx.add([neg(self.sigma[e1][t]), neg(self.sigma[e2][t2])])
                    if dt > 0:
                        ctx.add([neg(self.sigma[e2][t]), neg(self.sigma[e1][t2])])
            # Same edge twice within the duration window.
            if duration > 1:
                for e in range(len(edges)):
                    for dt in range(1, duration):
                        t2 = t + dt
                        if t2 >= n_transitions:
                            break
                        ctx.add([neg(self.sigma[e][t]), neg(self.sigma[e][t2])])

    # -- incremental horizon extension ------------------------------------------

    def _supports_extension(self) -> bool:
        """Whether :meth:`extend_horizon` can grow this encoder in place.

        Subclasses with extra constraint families (e.g. the OLSQ baseline's
        space variables) must override their own extension or fall back to a
        rebuild; a built SWAP cardinality layer is pinned to the current
        ``swap_lits`` and cannot be widened, so it also forces a rebuild.
        """
        return type(self) is LayoutEncoder and self._swap_counter is None

    def extend_horizon(self, new_horizon: int) -> bool:
        """Grow the encoded formula in place to ``new_horizon`` time steps.

        Appends the new steps' variables and constraints to the *existing*
        solver, so learnt clauses, VSIDS activities, and saved phases all
        survive (the point of Sec. III-B's incremental loop).  Returns
        ``False`` when this encoder cannot extend (see
        :meth:`_supports_extension`) — the caller should rebuild instead.
        A ``new_horizon`` at or below the current one is a successful no-op.
        """
        self.encode()
        if new_horizon <= self.horizon:
            return True
        if not self._supports_extension():
            return False
        started = time.monotonic()
        with self.tracer.span(
            "extend", old_horizon=self.horizon, new_horizon=new_horizon
        ) as span:
            v0, c0 = self.ctx.n_vars, self.ctx.num_clauses
            sink = self.ctx.sink
            if self._bulk and not sink.replaying:
                sink.begin_bulk()
                try:
                    self._extend_to(new_horizon)
                finally:
                    sink.end_bulk()
            else:
                self._extend_to(new_horizon)
            span.set(vars=self.ctx.n_vars - v0, clauses=self.ctx.num_clauses - c0)
        self.journal.append(("extend", new_horizon))
        # The new steps' clauses have never been simplified; re-run the
        # bounded encode-time pass over the grown formula.
        self._configure_simplify()
        if isinstance(sink, Solver):
            sink.stats.encode_wall_sec += time.monotonic() - started
        return True

    def _extend_to(self, new_h: int) -> None:
        ctx, cfg = self.ctx, self.config
        old_h = self.horizon
        n_phys = self.device.n_qubits
        edges = self.device.edges
        incident = self.device.incident_edges

        # Variables: wider time domains, new mapping columns, new SWAPs.
        for var in self.time:
            var.grow(new_h)
        for q in range(self.circuit.n_qubits):
            self.pi[q].extend(
                make_domain_var(ctx, n_phys, cfg.encoding)
                for _ in range(old_h, new_h)
            )
        old_nt, new_nt = old_h - 1, new_h - 1
        new_swap_lits: List[Tuple[int, int, int]] = []
        for e_idx in range(self.device.num_edges):
            col = self.sigma[e_idx]
            for t in range(old_nt, new_nt):
                lit = ctx.new_bool()
                col.append(lit)
                if not self.transition_based and t < cfg.swap_duration - 1:
                    ctx.add([neg(lit)])
                else:
                    entry = (lit, e_idx, t)
                    self.swap_lits.append(entry)
                    new_swap_lits.append(entry)

        # Constraints, mirroring encode() restricted to the new steps.
        for t in range(old_h, new_h):
            encode_injectivity(
                ctx,
                [self.pi[q][t] for q in range(self.circuit.n_qubits)],
                n_phys,
                method=cfg.injectivity,
                encoding=cfg.encoding,
            )
        for var in self.time:
            var.extend_orders(old_h)
        for g_idx, gate in self.circuit.two_qubit_gates:
            q, q_prime = gate.qubits
            for t in range(old_h, new_h):
                z = self.time[g_idx].eq_lit(t)
                selectors = []
                for a, b in edges:
                    sel = ctx.new_bool()
                    selectors.append(sel)
                    self._aux_selectors.append(sel >> 1)
                    ctx.add([neg(sel), self.pi[q][t].eq_lit(a), self.pi[q][t].eq_lit(b)])
                    ctx.add(
                        [
                            neg(sel),
                            self.pi[q_prime][t].eq_lit(a),
                            self.pi[q_prime][t].eq_lit(b),
                        ]
                    )
                ctx.add([neg(z)] + selectors)
        for t in range(max(1, old_h), new_h):
            for q in range(self.circuit.n_qubits):
                prev_var, cur_var = self.pi[q][t - 1], self.pi[q][t]
                for p_ in range(n_phys):
                    x_prev = prev_var.eq_lit(p_)
                    stay = [neg(x_prev)]
                    stay.extend(self.sigma[e][t - 1] for e in incident[p_])
                    stay.append(cur_var.eq_lit(p_))
                    ctx.add(stay)
                    for e in incident[p_]:
                        a, b = edges[e]
                        other = b if a == p_ else a
                        ctx.add(
                            [
                                neg(x_prev),
                                neg(self.sigma[e][t - 1]),
                                cur_var.eq_lit(other),
                            ]
                        )
        if not self.transition_based:
            duration = cfg.swap_duration
            for lit, e_idx, t in new_swap_lits:
                a, b = edges[e_idx]
                window = range(max(0, t - duration + 1), t + 1)
                for g_idx, gate in enumerate(self.circuit.gates):
                    for t_prime in window:
                        z = self.time[g_idx].eq_lit(t_prime)
                        for q in gate.qubits:
                            ctx.add([neg(z), neg(self.pi[q][t].eq_lit(a)), neg(lit)])
                            ctx.add([neg(z), neg(self.pi[q][t].eq_lit(b)), neg(lit)])
        self._extend_swap_swap_exclusion(old_nt, new_nt)

        self.horizon = new_h
        self._activate_horizon()

        # Cached depth guards keep their meaning: forbid every new time
        # step (all are >= the old horizon > bound - 1) and every new SWAP.
        for bound, guard in self._depth_guards.items():
            for var in self.time:
                for t in range(old_h, new_h):
                    ctx.add([neg(guard), neg(var.selectors[t])])
            for lit, _e, t in new_swap_lits:
                if t >= bound - 1:
                    ctx.add([neg(guard), neg(lit)])

    def _extend_swap_swap_exclusion(self, old_nt: int, new_nt: int) -> None:
        """The swap/swap pairs whose later endpoint lands in the new steps."""
        ctx = self.ctx
        duration = 1 if self.transition_based else self.config.swap_duration
        incident_pairs = []
        for p_ in range(self.device.n_qubits):
            inc = self.device.incident_edges[p_]
            for i in range(len(inc)):
                for j in range(i + 1, len(inc)):
                    incident_pairs.append((inc[i], inc[j]))
        incident_pairs = sorted(set(incident_pairs))
        for t in range(new_nt):
            for e1, e2 in incident_pairs:
                for dt in range(duration):
                    t2 = t + dt
                    if t2 >= new_nt:
                        break
                    if t2 < old_nt:
                        continue  # both endpoints predate the extension
                    ctx.add([neg(self.sigma[e1][t]), neg(self.sigma[e2][t2])])
                    if dt > 0:
                        ctx.add([neg(self.sigma[e2][t]), neg(self.sigma[e1][t2])])
            if duration > 1:
                for e in range(self.device.num_edges):
                    for dt in range(1, duration):
                        t2 = t + dt
                        if t2 >= new_nt:
                            break
                        if t2 < old_nt:
                            continue
                        ctx.add([neg(self.sigma[e][t]), neg(self.sigma[e][t2])])

    # -- incremental bounds -----------------------------------------------------

    def depth_guard(self, bound: int) -> int:
        """Assumption literal enforcing depth (block count) <= ``bound``.

        Gates must finish by ``bound - 1``; SWAPs whose effect would only be
        visible at or beyond ``bound`` are forbidden as useless.
        """
        if not 1 <= bound <= self.horizon:
            raise ValueError(f"bound {bound} outside [1, {self.horizon}]")
        guard = self._depth_guards.get(bound)
        if guard is not None:
            return guard
        c0 = self.ctx.num_clauses
        guard = self.ctx.new_bool()
        # The guard arms the current horizon (so a certifying caller may
        # assert the guard as a unit clause and needs no assumptions).
        self.ctx.add([neg(guard), self._act])
        for time_var in self.time:
            time_var.leq_const(bound - 1, guard=guard)
        for lit, _e, t in self.swap_lits:
            if t >= bound - 1:
                self.ctx.add([neg(guard), neg(lit)])
        self._depth_guards[bound] = guard
        self.journal.append(("depth_guard", bound))
        self._private_groups.append(
            {
                "kind": "private",
                "label": f"depth_guard[{bound}]",
                "guard": guard,
                "clause_range": (c0, self.ctx.num_clauses),
            }
        )
        return guard

    def init_swap_counter(self, max_bound: int) -> None:
        """Build the cardinality layer for SWAP-count bounds (once).

        ``max_bound`` should be the SWAP count of an already-found solution;
        the iterative descent only ever asks for bounds below it.
        """
        if self._swap_counter is not None:
            return
        lits = [lit for lit, _e, _t in self.swap_lits]
        method = self.config.cardinality
        c0 = self.ctx.num_clauses
        if method == CARD_SEQUENTIAL:
            self._swap_counter = IncrementalCounter(
                self.ctx.sink, lits, max_bound=max_bound
            )
        elif method == CARD_TOTALIZER:
            self._swap_counter = IncrementalTotalizer(self.ctx.sink, lits)
        elif method == CARD_ADDER:
            self._swap_counter = IncrementalAdder(self.ctx.sink, lits)
        else:  # pragma: no cover - config validates
            raise ValueError(f"unknown cardinality method {method!r}")
        self.journal.append(("swap_counter", max_bound))
        self._private_groups.append(
            {
                "kind": "private",
                "label": f"swap_counter[{method}]",
                "guard": None,
                "clause_range": (c0, self.ctx.num_clauses),
            }
        )

    def swap_guard(self, bound: int) -> Optional[int]:
        """Assumption literal enforcing total SWAP count <= ``bound``."""
        if self._swap_counter is None:
            raise RuntimeError("call init_swap_counter() first")
        c0 = self.ctx.num_clauses
        lit = self._swap_counter.bound_literal(bound)
        self.journal.append(("swap_guard", bound))
        if self.ctx.num_clauses != c0:
            # Some cardinality layers (the adder) lazily encode each new
            # bound's comparison; track those clauses like any other
            # worker-private bound group.
            self._private_groups.append(
                {
                    "kind": "private",
                    "label": f"swap_guard[{bound}]",
                    "guard": lit,
                    "clause_range": (c0, self.ctx.num_clauses),
                }
            )
        return lit

    # -- search guidance -----------------------------------------------------

    def seed_initial_mapping(self, mapping: List[int]) -> None:
        """Warm-start the solver toward a given t=0 mapping.

        The mapping (e.g. produced by SABRE) is turned into phase-saving
        polarity hints on the ``pi[q][0]`` variables — the paper's Sec. V
        idea of guiding the generic SAT search with application-specific
        heuristics.  Hints never constrain the problem.
        """
        self.encode()
        if len(mapping) != self.circuit.n_qubits:
            raise ValueError("mapping size != number of program qubits")
        self.journal.append(("seed_mapping", tuple(mapping)))
        hints: Dict[int, bool] = {}
        for q, p in enumerate(mapping):
            var = self.pi[q][0]
            hints.update(var.polarity_hints(p))
            # Also cover the (cached) equality-indicator auxiliaries — the
            # solver may branch on those before the raw value bits.
            for value in range(var.size):
                lit = var.eq_lit(value)
                hints[lit >> 1] = (value == p) ^ bool(lit & 1)
        # A CNF sink has no notion of phase saving; the eq_lit walk above
        # still matters there, so a certification mirror replaying this call
        # allocates the same equality auxiliaries as the live solver did.
        warm = getattr(self.ctx.sink, "warm_start", None)
        if warm is not None:
            warm(hints)

    def seed_schedule(self, gate_times: List[int]) -> None:
        """Warm-start the solver toward a given gate schedule."""
        self.encode()
        if len(gate_times) != self.circuit.num_gates:
            raise ValueError("schedule size != number of gates")
        self.journal.append(("seed_schedule", tuple(gate_times)))
        hints: Dict[int, bool] = {}
        for g_idx, t in enumerate(gate_times):
            if 0 <= t < self.horizon:
                var = self.time[g_idx]
                hints.update(var.polarity_hints(t))
                for value in range(var.size):
                    lit = var.eq_lit(value)
                    hints[lit >> 1] = (value == t) ^ bool(lit & 1)
        warm = getattr(self.ctx.sink, "warm_start", None)
        if warm is not None:
            warm(hints)

    # -- static-analysis metadata --------------------------------------------

    def constraint_groups(self) -> List[dict]:
        """Structured metadata about the encoding's constraint groups.

        Consumed by :mod:`repro.analysis.lint` to verify that the CNF the
        encoder produced actually contains the clauses each group promises:

        * ``amo``/``alo`` — a gate-time variable's pairwise at-most-one and
          its act-guarded at-least-one (the selectors plus guard literal),
        * ``exactly_one`` — a one-hot mapping variable's value group,
        * ``ladder`` — the sequential counter's register rows (Sinz LT_{n,k}),
        * ``private`` — worker-local bound machinery (depth guards, SWAP
          cardinality) whose every clause must carry at least one literal
          outside the shared :attr:`base_vars` prefix, so it can never leak
          through ``ShareClient`` exports into a sibling solver that does
          not share the same bounds.

        ``private`` clause ranges index into ``ctx.sink.clauses`` and are
        only meaningful on a CNF sink (a live solver drops and simplifies
        clauses as it goes).
        """
        self.encode()
        from ..smt.domain import OneHotVar

        groups: List[dict] = []
        for g_idx, var in enumerate(self.time):
            selectors = list(var.selectors)
            groups.append(
                {"kind": "amo", "label": f"time[{g_idx}]", "lits": selectors}
            )
            groups.append(
                {
                    "kind": "alo",
                    "label": f"time[{g_idx}]",
                    "lits": selectors,
                    "guard": self._act,
                }
            )
        for q, column in enumerate(self.pi):
            for t, dom in enumerate(column):
                if isinstance(dom, OneHotVar):
                    groups.append(
                        {
                            "kind": "exactly_one",
                            "label": f"pi[{q}][{t}]",
                            "lits": list(dom.selectors),
                        }
                    )
        counter = self._swap_counter
        if isinstance(counter, IncrementalCounter) and counter.registers:
            groups.append(
                {
                    "kind": "ladder",
                    "label": "swap_counter",
                    "inputs": list(counter.lits),
                    "rows": [list(row) for row in counter.registers],
                }
            )
        groups.extend(self._private_groups)
        return groups

    # -- solving / extraction ----------------------------------------------------

    def solve(self, assumptions=(), time_budget=None) -> SatResult:
        self.encode()
        return self.ctx.solve(assumptions=assumptions, time_budget=time_budget)

    def extract(self) -> Tuple[List[int], List[int], List[SwapEvent]]:
        """Read (initial mapping, gate times, swaps) from the current model."""
        model = self.ctx.sink.model
        if not model:
            raise RuntimeError("no model available")
        initial = [self.pi[q][0].decode(model) for q in range(self.circuit.n_qubits)]
        times = [var.decode(model) for var in self.time]
        swaps = []
        for lit, e_idx, t in self.swap_lits:
            if model[lit >> 1] ^ bool(lit & 1):
                a, b = self.device.edges[e_idx]
                swaps.append(SwapEvent(a, b, t))
        swaps.sort(key=lambda s: s.finish_time)
        return initial, times, swaps
