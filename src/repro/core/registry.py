"""Backend registry and the one-call ``repro.synthesize`` entrypoint.

Before this module, every caller that wanted "a synthesizer by name" —
the CLI ``compile`` subcommand, the service workers, ad-hoc experiment
scripts — hand-rolled its own ``if name == ...`` dispatch, each with a
slightly different name vocabulary and config plumbing.  The registry is
the single source of truth: a backend *name* maps to a *factory* taking
``(config, share)`` and returning an object satisfying the
:class:`~repro.core.interface.Synthesizer` protocol.

    import repro
    result = repro.synthesize(qc, dev, backend="tb-olsq2", objective="swap")

Factories that do not understand a keyword (SABRE has no ``share``
channel) simply ignore it; factories pull the knobs they honour out of
the shared :class:`SynthesisConfig` so one config object drives every
backend uniformly — the property the service wire format relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from .config import SynthesisConfig
from .interface import Synthesizer
from .result import SynthesisResult

#: A factory builds a ready-to-run synthesizer from a config and an
#: optional clause-sharing endpoint (ignored by backends without one).
BackendFactory = Callable[[SynthesisConfig, Optional[object]], Synthesizer]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or override) a backend factory under ``name``."""
    _REGISTRY[name.lower()] = factory


def available_backends() -> List[str]:
    """Sorted names accepted by :func:`resolve_backend` / :func:`synthesize`."""
    return sorted(_REGISTRY)


def resolve_backend(
    name: str,
    config: Optional[SynthesisConfig] = None,
    share: Optional[object] = None,
) -> Synthesizer:
    """Build the named backend; unknown names list the valid choices."""
    factory = _REGISTRY.get(name.lower())
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; "
            f"valid choices: {', '.join(available_backends())}"
        )
    return factory(config or SynthesisConfig(), share)


def synthesize(
    circuit: QuantumCircuit,
    device: CouplingGraph,
    *,
    backend: str = "olsq2",
    objective: str = "depth",
    initial_mapping: Optional[Sequence[int]] = None,
    config: Optional[SynthesisConfig] = None,
) -> SynthesisResult:
    """One-call layout synthesis through the backend registry.

    ``backend`` names the synthesizer (see :func:`available_backends`:
    ``olsq2``, ``tb-olsq2``, ``olsq``, ``tb-olsq``, ``sabre``,
    ``satmap``); the remaining keywords are the unified
    :class:`~repro.core.interface.Synthesizer` surface.  This is the
    entrypoint the CLI and the :mod:`repro.service` workers dispatch
    through, so a backend registered here is immediately servable.
    """
    return resolve_backend(backend, config).synthesize(
        circuit, device, objective=objective, initial_mapping=initial_mapping
    )


# -- built-in backends ----------------------------------------------------


def _olsq2(config: SynthesisConfig, share: Optional[object]) -> Synthesizer:
    from .olsq2 import OLSQ2

    return OLSQ2(config, share=share)


def _tb_olsq2(config: SynthesisConfig, share: Optional[object]) -> Synthesizer:
    from .olsq2 import TBOLSQ2

    return TBOLSQ2(config, share=share)


def _olsq(config: SynthesisConfig, share: Optional[object]) -> Synthesizer:
    from ..baselines.olsq import OLSQ

    return OLSQ(config)


def _tb_olsq(config: SynthesisConfig, share: Optional[object]) -> Synthesizer:
    from ..baselines.olsq import TBOLSQ

    return TBOLSQ(config)


def _sabre(config: SynthesisConfig, share: Optional[object]) -> Synthesizer:
    from ..baselines.sabre import SABRE

    return SABRE(swap_duration=config.swap_duration)


def _satmap(config: SynthesisConfig, share: Optional[object]) -> Synthesizer:
    from ..baselines.satmap import SATMap

    return SATMap(config=config)


register_backend("olsq2", _olsq2)
register_backend("tb-olsq2", _tb_olsq2)
register_backend("olsq", _olsq)
register_backend("tb-olsq", _tb_olsq)
register_backend("sabre", _sabre)
register_backend("satmap", _satmap)
