"""The paper's primary contribution: OLSQ2 and TB-OLSQ2."""

from .config import (
    CARD_ADDER,
    CARD_SEQUENTIAL,
    CARD_TOTALIZER,
    CARDINALITY_METHODS,
    SUBARCH_AUTO,
    SUBARCH_MODES,
    SUBARCH_OFF,
    SUBARCH_ON,
    SynthesisConfig,
    paper_variant,
    qaoa_config,
)
from .encoder import LayoutEncoder
from .fidelity import NoiseModel, compare_success_rates, estimate_success_rate
from .interface import (
    OBJECTIVES,
    Synthesizer,
    check_initial_mapping,
    check_objective,
)
from .olsq2 import OLSQ2, TBOLSQ2
from .optimizer import (
    IterativeSynthesizer,
    SynthesisTimeout,
    analytic_swap_lower_bound,
    serialize_blocks,
)
from .parallel import ParallelDescent
from .portfolio import PortfolioEntry, PortfolioSynthesizer, default_portfolio
from .reference import exists_swap_free_mapping, min_swaps_lower_bound
from .registry import (
    available_backends,
    register_backend,
    resolve_backend,
    synthesize,
)
from .result import SwapEvent, SynthesisResult
from .validator import ValidationError, is_valid, validate_result

__all__ = [
    "SynthesisConfig",
    "qaoa_config",
    "paper_variant",
    "CARD_SEQUENTIAL",
    "CARD_TOTALIZER",
    "CARD_ADDER",
    "CARDINALITY_METHODS",
    "SUBARCH_OFF",
    "SUBARCH_AUTO",
    "SUBARCH_ON",
    "SUBARCH_MODES",
    "analytic_swap_lower_bound",
    "LayoutEncoder",
    "OLSQ2",
    "TBOLSQ2",
    "OBJECTIVES",
    "Synthesizer",
    "check_objective",
    "check_initial_mapping",
    "IterativeSynthesizer",
    "SynthesisTimeout",
    "serialize_blocks",
    "synthesize",
    "resolve_backend",
    "register_backend",
    "available_backends",
    "ParallelDescent",
    "PortfolioEntry",
    "PortfolioSynthesizer",
    "default_portfolio",
    "NoiseModel",
    "estimate_success_rate",
    "compare_success_rates",
    "exists_swap_free_mapping",
    "min_swaps_lower_bound",
    "SwapEvent",
    "SynthesisResult",
    "ValidationError",
    "validate_result",
    "is_valid",
]
