"""The unified synthesizer surface.

Every synthesizer in the repository — exact (``OLSQ2``, ``TBOLSQ2``),
baseline (``OLSQ``, ``TBOLSQ``, ``SABRE``, ``SATMap``) and meta
(``PortfolioSynthesizer``) — conforms to one calling convention::

    synthesize(circuit, device, *, objective="depth", initial_mapping=None)

``objective`` and ``initial_mapping`` are keyword-only.  A backend that
does not support a requested option must raise a :class:`ValueError`
naming what it *does* support (e.g. SATMap rejects ``objective="depth"``)
instead of silently ignoring it — the pre-redesign behaviour that made
cross-backend comparisons quietly incomparable.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from .result import SynthesisResult

OBJECTIVES = ("depth", "swap")


@runtime_checkable
class Synthesizer(Protocol):
    """Anything that maps a circuit onto a device's coupling graph."""

    def synthesize(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        *,
        objective: str = "depth",
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> SynthesisResult:
        """Synthesize ``circuit`` onto ``device``.

        ``objective`` selects what to optimise (``"depth"`` or ``"swap"``);
        ``initial_mapping`` (program qubit -> physical qubit) pins the t=0
        placement, ``None`` leaves it to the backend.
        """
        ...  # pragma: no cover - protocol


def check_objective(
    backend: str, objective: str, supported: Sequence[str] = OBJECTIVES
) -> str:
    """Validate ``objective`` for ``backend``; returns it on success.

    Raises :class:`ValueError` both for strings outside the global
    :data:`OBJECTIVES` vocabulary and for objectives the specific backend
    cannot honour.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"objective must be one of {OBJECTIVES}, got {objective!r}"
        )
    if objective not in supported:
        raise ValueError(
            f"{backend} does not support objective={objective!r}; "
            f"supported: {tuple(supported)}"
        )
    return objective


def check_initial_mapping(
    circuit: QuantumCircuit,
    device: CouplingGraph,
    initial_mapping: Optional[Sequence[int]],
) -> Optional[List[int]]:
    """Normalise and validate an initial mapping (``None`` passes through)."""
    if initial_mapping is None:
        return None
    mapping = list(initial_mapping)
    if len(mapping) != circuit.n_qubits:
        raise ValueError(
            f"initial mapping covers {len(mapping)} qubits, "
            f"circuit has {circuit.n_qubits}"
        )
    if len(set(mapping)) != len(mapping):
        raise ValueError("initial mapping must be injective")
    for p in mapping:
        if not 0 <= p < device.n_qubits:
            raise ValueError(
                f"initial mapping targets physical qubit {p}, "
                f"device has {device.n_qubits}"
            )
    return mapping
