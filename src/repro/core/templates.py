"""Template keys for encoded-state reuse (see :mod:`repro.sat.snapshot`).

A *template* is a post-encode solver snapshot.  It can seed any synthesis
run whose encode would have produced the same formula, so the key must pin
exactly the inputs the encoder reads while building clauses — and nothing
more, or equal shapes stop sharing:

* the circuit's gate structure **verbatim** (gate order and qubit indices;
  the variable numbering follows them).  Label-invariant reuse happens one
  layer up: the service canonicalizes circuits before dispatch, so
  relabeled requests already collapse onto one canonical circuit;
* the device's edge list **in order** (``sigma`` columns follow it);
* the horizon, the transition-based flag and any pinned initial mapping;
* the encode-relevant config slice: variable ``encoding``, ``injectivity``
  method, ``swap_duration`` and ``simplify`` mode.

Deliberately excluded: ``kernel`` (snapshots restore across backends),
``encode_bulk`` (byte-identical by construction), ``cardinality`` and the
bound/budget knobs (they only shape post-encode work), ``warm_start``
(phase seeding is re-applied after restore) and ``sanitize`` (a checker,
not state).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from .config import SynthesisConfig


def encode_config_slice(config: SynthesisConfig) -> Tuple:
    """The config fields that shape the encoded formula, as a tuple."""
    return (
        config.encoding,
        config.injectivity,
        config.swap_duration,
        config.simplify,
    )


def template_key(
    circuit: QuantumCircuit,
    device: CouplingGraph,
    horizon: int,
    config: SynthesisConfig,
    transition_based: bool = False,
    initial_mapping: Optional[List[int]] = None,
) -> Tuple:
    """A hashable key equal iff two encodes produce the same formula."""
    return (
        circuit.n_qubits,
        tuple(tuple(g.qubits) for g in circuit.gates),
        device.n_qubits,
        tuple(device.edges),
        horizon,
        bool(transition_based),
        tuple(initial_mapping) if initial_mapping is not None else None,
        encode_config_slice(config),
    )
