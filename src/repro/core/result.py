"""Layout-synthesis results: mappings, schedules, SWAP insertions.

The synthesizer outputs exactly what Sec. II-A specifies: the mapping
``pi_q^t`` (represented compactly as an initial mapping plus the SWAP events
that evolve it), the schedule ``t_g``, and the inserted SWAP gates.  This
module also reconstructs the physical circuit (with SWAPs decomposed into
three CNOTs, as in Fig. 4) and computes the achieved depth and SWAP count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate


@dataclass(frozen=True)
class SwapEvent:
    """A SWAP on physical edge ``(p, p_prime)`` finishing at ``finish_time``.

    With duration ``d`` the gate occupies time steps
    ``finish_time - d + 1 .. finish_time`` and the mapping change becomes
    visible at ``finish_time + 1``.
    """

    p: int
    p_prime: int
    finish_time: int

    @property
    def edge(self) -> Tuple[int, int]:
        return (min(self.p, self.p_prime), max(self.p, self.p_prime))


@dataclass
class SynthesisResult:
    """The output of one layout-synthesis run."""

    circuit: QuantumCircuit
    device: CouplingGraph
    initial_mapping: List[int]  # program qubit -> physical qubit at t=0
    gate_times: List[int]  # t_g per gate index
    swaps: List[SwapEvent]
    swap_duration: int
    objective: str = "depth"
    solver_stats: Dict = field(default_factory=dict)
    pareto_points: List[Tuple[int, int]] = field(default_factory=list)
    optimal: bool = False
    wall_time: float = 0.0
    # Optimality certificate (repro.analysis.certify.Certificate) attached
    # when the run was made with ``certify=True``; None otherwise.
    certificate: object = None

    # -- derived quantities ------------------------------------------------

    @property
    def swap_count(self) -> int:
        return len(self.swaps)

    @property
    def depth(self) -> int:
        """Achieved circuit depth: latest time step used, plus one."""
        latest = -1
        if self.gate_times:
            latest = max(latest, max(self.gate_times))
        for swap in self.swaps:
            latest = max(latest, swap.finish_time)
        return latest + 1

    def mapping_at(self, t: int) -> List[int]:
        """The program-to-physical mapping in force at time step ``t``."""
        mapping = list(self.initial_mapping)
        for swap in sorted(self.swaps, key=lambda s: s.finish_time):
            if swap.finish_time < t:
                _apply_swap(mapping, swap.p, swap.p_prime)
        return mapping

    @property
    def final_mapping(self) -> List[int]:
        return self.mapping_at(self.depth)

    def schedule_table(self) -> List[Tuple[int, str, Tuple[int, ...], int]]:
        """Human-readable schedule rows: (time, kind, physical qubits, index)."""
        rows = []
        for idx, gate in enumerate(self.circuit.gates):
            t = self.gate_times[idx]
            mapping = self.mapping_at(t)
            phys = tuple(mapping[q] for q in gate.qubits)
            rows.append((t, gate.name, phys, idx))
        for swap in self.swaps:
            rows.append((swap.finish_time, "swap", (swap.p, swap.p_prime), -1))
        rows.sort(key=lambda r: (r[0], r[3]))
        return rows

    def to_physical_circuit(self, decompose_swaps: bool = True) -> QuantumCircuit:
        """The executable circuit over physical qubits, SWAPs inserted.

        Gates are emitted in time order; each SWAP becomes three CNOTs when
        ``decompose_swaps`` is set (the Fig. 4 convention).
        """
        events: List[Tuple[int, int, Gate]] = []
        for idx, gate in enumerate(self.circuit.gates):
            t = self.gate_times[idx]
            mapping = self.mapping_at(t)
            events.append((t, 0, gate.remapped({q: mapping[q] for q in gate.qubits})))
        for swap in self.swaps:
            # Order swaps between the gates they precede: a swap finishing at
            # t must appear after gates at times <= t - duration and before
            # gates that use the new mapping.
            events.append((swap.finish_time, 1, Gate("swap", (swap.p, swap.p_prime))))
        events.sort(key=lambda e: (e[0], e[1]))
        out = QuantumCircuit(self.device.n_qubits, name=f"{self.circuit.name}-mapped")
        for _t, _k, gate in events:
            if gate.name == "swap" and decompose_swaps:
                a, b = gate.qubits
                out.cx(a, b)
                out.cx(b, a)
                out.cx(a, b)
            else:
                out.append(gate)
        return out

    def summary(self) -> str:
        return (
            f"{self.circuit.name or 'circuit'} on {self.device.name or 'device'}: "
            f"depth={self.depth}, swaps={self.swap_count}, "
            f"objective={self.objective}, optimal={self.optimal}, "
            f"wall={self.wall_time:.2f}s"
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable form; losslessly round-trips via :meth:`from_dict`.

        The one documented exception: ``certificate`` is dropped.  It wraps
        live encoder/proof objects whose whole value is that they were
        checked *in this process*; a deserialized copy could no longer be
        re-verified, so shipping it would launder an unchecked claim into a
        checked-looking one.  ``solver_stats`` ships as plain data with
        dict keys coerced to strings (JSON would do that anyway; doing it
        here makes ``to_dict`` output identical before and after a JSON
        round trip).
        """
        return {
            "circuit": self.circuit.to_dict(),
            "device": self.device.to_dict(),
            "initial_mapping": list(self.initial_mapping),
            "gate_times": list(self.gate_times),
            "swaps": [[s.p, s.p_prime, s.finish_time] for s in self.swaps],
            "swap_duration": self.swap_duration,
            "objective": self.objective,
            "solver_stats": _json_stable(self.solver_stats),
            "pareto_points": [list(p) for p in self.pareto_points],
            "optimal": self.optimal,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SynthesisResult":
        """Rebuild a result from :meth:`to_dict` output.

        The reconstructed result carries real :class:`QuantumCircuit` /
        :class:`CouplingGraph` objects, so every derived quantity
        (``depth``, ``final_mapping``, ``to_physical_circuit()``) and the
        independent :mod:`repro.core.validator` work on it unchanged.
        """
        return cls(
            circuit=QuantumCircuit.from_dict(data["circuit"]),
            device=CouplingGraph.from_dict(data["device"]),
            initial_mapping=list(data["initial_mapping"]),
            gate_times=list(data["gate_times"]),
            swaps=[SwapEvent(p, pp, t) for p, pp, t in data["swaps"]],
            swap_duration=data["swap_duration"],
            objective=data["objective"],
            solver_stats=dict(data.get("solver_stats") or {}),
            pareto_points=[tuple(p) for p in data.get("pareto_points", [])],
            optimal=data["optimal"],
            wall_time=data.get("wall_time", 0.0),
        )


def _json_stable(value):
    """Coerce dict keys to strings, recursively, matching JSON semantics."""
    if isinstance(value, dict):
        return {str(k): _json_stable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_stable(v) for v in value]
    return value


def _apply_swap(mapping: List[int], p: int, p_prime: int) -> None:
    """Exchange the program qubits sitting on ``p`` and ``p_prime`` (if any)."""
    for q, phys in enumerate(mapping):
        if phys == p:
            mapping[q] = p_prime
        elif phys == p_prime:
            mapping[q] = p
