"""Brute-force reference procedures for cross-checking the synthesizers.

Exhaustive subgraph-isomorphism-style search over injective mappings; only
usable at test scale, which is exactly where it is used: property tests
compare TB-OLSQ2's "zero SWAPs" answers against
:func:`exists_swap_free_mapping`, giving an encoder-independent ground
truth for the boundary case that QUEKO also exercises.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit


def interaction_graph(circuit: QuantumCircuit) -> List[Set[int]]:
    """Adjacency sets of the program-qubit interaction graph."""
    adj: List[Set[int]] = [set() for _ in range(circuit.n_qubits)]
    for gate in circuit.gates:
        if gate.is_two_qubit:
            a, b = gate.qubits
            adj[a].add(b)
            adj[b].add(a)
    return adj


def exists_swap_free_mapping(
    circuit: QuantumCircuit, device: CouplingGraph
) -> Optional[List[int]]:
    """Find an injective mapping executing every gate without SWAPs.

    Returns one such mapping (program -> physical) or ``None``.  This is a
    backtracking subgraph-monomorphism search of the interaction graph into
    the coupling graph, with degree pruning.
    """
    if circuit.n_qubits > device.n_qubits:
        return None
    program_adj = interaction_graph(circuit)
    order = sorted(
        range(circuit.n_qubits), key=lambda q: len(program_adj[q]), reverse=True
    )
    mapping: Dict[int, int] = {}
    used: Set[int] = set()

    def feasible(q: int, p: int) -> bool:
        if device.degree(p) < len(program_adj[q]):
            return False
        for neighbour in program_adj[q]:
            if neighbour in mapping and not device.are_adjacent(p, mapping[neighbour]):
                return False
        return True

    def backtrack(idx: int) -> bool:
        if idx == len(order):
            return True
        q = order[idx]
        for p in range(device.n_qubits):
            if p in used or not feasible(q, p):
                continue
            mapping[q] = p
            used.add(p)
            if backtrack(idx + 1):
                return True
            del mapping[q]
            used.discard(p)
        return False

    if backtrack(0):
        return [mapping[q] for q in range(circuit.n_qubits)]
    return None


def min_swaps_lower_bound(circuit: QuantumCircuit, device: CouplingGraph) -> int:
    """A cheap SWAP-count lower bound: 0 if a swap-free mapping exists, else 1.

    (Stronger bounds exist; this one is enough to certify the zero/nonzero
    boundary that the QUEKO experiments rely on.)
    """
    return 0 if exists_swap_free_mapping(circuit, device) is not None else 1
