"""Reproduction of "Scalable Optimal Layout Synthesis for NISQ Quantum
Processors" (OLSQ2, DAC 2023).

Quickstart::

    from repro import OLSQ2, QuantumCircuit
    from repro.arch import ibm_qx2

    qc = QuantumCircuit(3)
    qc.cx(0, 1); qc.cx(1, 2); qc.cx(0, 2)
    result = OLSQ2().synthesize(qc, ibm_qx2(), objective="depth")
    print(result.summary())

Subpackages:

* :mod:`repro.sat` — from-scratch CDCL SAT solver substrate,
* :mod:`repro.encodings` — cardinality and gate CNF encodings,
* :mod:`repro.smt` — bounded-domain (bit-vector / one-hot) layer over SAT,
* :mod:`repro.circuit` — quantum circuit IR and OpenQASM 2.0 front end,
* :mod:`repro.arch` — device coupling graphs,
* :mod:`repro.core` — the OLSQ2 and TB-OLSQ2 synthesizers (the paper's
  contribution), plus the result validator,
* :mod:`repro.baselines` — OLSQ, TB-OLSQ, SABRE and SATMap comparators,
* :mod:`repro.workloads` — QAOA, QUEKO, QFT/Toffoli/Ising generators.
"""

__version__ = "1.0.0"

from .arch import CouplingGraph, devices
from .circuit import Gate, QuantumCircuit, load_qasm, parse_qasm
from .core import (
    OLSQ2,
    TBOLSQ2,
    SynthesisConfig,
    SynthesisResult,
    Synthesizer,
    available_backends,
    is_valid,
    resolve_backend,
    synthesize,
    validate_result,
)

__all__ = [
    "__version__",
    "CouplingGraph",
    "devices",
    "Gate",
    "QuantumCircuit",
    "parse_qasm",
    "load_qasm",
    "OLSQ2",
    "TBOLSQ2",
    "SynthesisConfig",
    "SynthesisResult",
    "Synthesizer",
    "synthesize",
    "resolve_backend",
    "available_backends",
    "validate_result",
    "is_valid",
]
