"""Command-line interface: ``olsq2``.

Subcommands:

* ``compile``  — synthesize an OpenQASM 2.0 circuit onto a device,
* ``devices``  — list the built-in coupling graphs,
* ``generate`` — emit benchmark circuits (QAOA / QUEKO / QFT / ...) as QASM,
* ``bench``    — run one of the paper's experiment drivers,
* ``request``  — build a service CompileRequest JSON from a QASM file,
* ``serve``    — run a batch of CompileRequests through the async service.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .arch import devices
from .circuit.qasm import load_qasm
from .core.config import (
    BULK_MODES,
    SIMPLIFY_INPROCESS,
    SIMPLIFY_MODES,
    SUBARCH_MODES,
    SUBARCH_OFF,
    TEMPLATE_MODES,
    SynthesisConfig,
)
from .core.registry import available_backends, resolve_backend
from .core.validator import validate_result
from .harness import experiments
from .workloads import qaoa_circuit, qft, queko_circuit, toffoli


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="olsq2",
        description="Scalable optimal layout synthesis (OLSQ2, DAC 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compile", help="synthesize a QASM circuit onto a device")
    comp.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    comp.add_argument("--device", default="qx2", help="device name (see 'devices')")
    comp.add_argument(
        "--objective", choices=("depth", "swap"), default="depth"
    )
    comp.add_argument(
        "--synthesizer",
        choices=tuple(available_backends()),
        default="olsq2",
        help="backend from the registry (repro.core.registry)",
    )
    comp.add_argument("--swap-duration", type=int, default=3)
    comp.add_argument("--time-budget", type=float, default=600.0)
    comp.add_argument(
        "--simplify",
        choices=SIMPLIFY_MODES,
        default=SIMPLIFY_INPROCESS,
        help="formula simplification: 'off', 'inprocess' (restart-time "
        "vivification/probing/subsumption plus an encode-time pass; the "
        "default), or 'full' (additionally eliminates auxiliary variables "
        "at encode time)",
    )
    comp.add_argument(
        "--kernel",
        choices=("auto", "python", "native"),
        default="auto",
        help="SAT-solver backend: 'native' requires the compiled kernel "
        "(python -m repro.sat.kernel.build), 'python' forces the pure "
        "interpreter loops, 'auto' picks native when built",
    )
    comp.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="run a cooperating portfolio of N worker processes "
        "(bound splitting + learnt-clause sharing); 0 = sequential",
    )
    comp.add_argument(
        "--subarch",
        choices=SUBARCH_MODES,
        default=SUBARCH_OFF,
        help="solve on an extracted circuit-width region of large devices: "
        "'auto' when the device is at least twice the circuit width, 'on' "
        "whenever it is strictly larger; results are translated back to "
        "full-device labels and re-validated (with --parallel, workers "
        "race distinct candidate regions while worker 0 proves bounds on "
        "the full device)",
    )
    comp.add_argument(
        "--warm-start",
        choices=("none", "sabre"),
        default="none",
        help="seed the descent with a validated SABRE schedule: its depth "
        "caps the relax ladder as a sound upper bound and its mapping "
        "seeds solver phases",
    )
    comp.add_argument(
        "--encode-bulk",
        choices=BULK_MODES,
        default="on",
        help="load encoder constraint families into the solver in bulk "
        "batches (byte-identical to per-clause loading; 'off' is a "
        "debugging escape hatch)",
    )
    comp.add_argument(
        "--templates",
        choices=TEMPLATE_MODES,
        default="on",
        help="with --parallel: encode each shared instance shape once and "
        "ship post-encode solver snapshots to the workers instead of "
        "re-encoding per process",
    )
    comp.add_argument(
        "--no-share",
        action="store_true",
        help="with --parallel: split bounds but do not share learnt clauses",
    )
    comp.add_argument(
        "--certify",
        action="store_true",
        help="attach a machine-checkable optimality certificate: validated "
        "model plus checked RUP refutations of the next-tighter bounds",
    )
    comp.add_argument("--output", help="write the mapped circuit as QASM here")
    comp.add_argument(
        "--trace",
        metavar="PATH",
        help="write a structured JSONL trace of the run to this path",
    )
    comp.add_argument(
        "--trace-summary",
        action="store_true",
        help="print a per-phase timing breakdown after synthesis",
    )
    comp.add_argument("--verbose", action="store_true")

    sub.add_parser("devices", help="list built-in coupling graphs")

    gen = sub.add_parser("generate", help="emit a benchmark circuit as QASM")
    gen.add_argument(
        "family", choices=("qaoa", "queko", "qft", "toffoli")
    )
    gen.add_argument("--qubits", type=int, default=8)
    gen.add_argument("--depth", type=int, default=5, help="QUEKO target depth")
    gen.add_argument("--gates", type=int, default=15, help="QUEKO gate count")
    gen.add_argument("--device", default="grid-3x3", help="QUEKO device")
    gen.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench", help="run a paper experiment")
    bench.add_argument(
        "experiment",
        choices=("fig1", "table1", "table2", "table3", "table4", "speedup", "all"),
    )
    bench.add_argument("--timeout", type=float, default=120.0)
    bench.add_argument(
        "--output", help="for 'all': write a markdown report to this path"
    )

    ana = sub.add_parser(
        "analyze",
        help="lint a formula before solving: CNF hygiene, constraint-group "
        "structure, clause-sharing soundness (or, with --contracts, lint "
        "the repro source tree itself against its documented invariants)",
    )
    ana.add_argument(
        "path",
        nargs="?",
        default=None,
        help="a DIMACS .cnf file, or an OpenQASM 2.0 file to encode; with "
        "--contracts, the source directory to lint (default: src)",
    )
    ana.add_argument(
        "--contracts",
        action="store_true",
        help="run the project contract linter (repro.analysis.contracts) "
        "over the given source tree instead of linting a formula",
    )
    ana.add_argument(
        "--device", default="qx2", help="device for QASM input (see 'devices')"
    )
    ana.add_argument(
        "--horizon",
        type=int,
        default=0,
        help="encoding horizon for QASM input (0 = the T_UB heuristic)",
    )
    ana.add_argument(
        "--depth-bound",
        type=int,
        default=None,
        help="also build and lint the depth guard at this bound",
    )
    ana.add_argument(
        "--swap-bound",
        type=int,
        default=None,
        help="also build and lint the SWAP cardinality layer at this bound",
    )
    ana.add_argument(
        "--transition-based",
        action="store_true",
        help="lint the TB-OLSQ2 encoding instead of the time-resolved one",
    )
    ana.add_argument("--swap-duration", type=int, default=3)
    ana.add_argument(
        "--simplify",
        action="store_true",
        help="also run SatELite-style preprocessing on the formula and "
        "report the size reduction next to the lint diagnostics (the "
        "share prefix stays frozen for encoder input)",
    )

    sat = sub.add_parser("sat", help="solve a DIMACS CNF with the built-in solver")
    sat.add_argument("dimacs", help="path to a DIMACS .cnf file")
    sat.add_argument("--time-budget", type=float, default=300.0)
    sat.add_argument(
        "--certify", action="store_true", help="log and check a RUP proof on UNSAT"
    )
    sat.add_argument(
        "--preprocess", action="store_true", help="run SatELite-style preprocessing"
    )
    sat.add_argument(
        "--kernel",
        choices=("auto", "python", "native"),
        default="auto",
        help="solver backend (see 'compile --kernel')",
    )

    req = sub.add_parser(
        "request", help="build a service CompileRequest JSON from a QASM file"
    )
    req.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    req.add_argument("--device", default="qx2", help="device name (see 'devices')")
    req.add_argument("--objective", choices=("depth", "swap"), default="depth")
    req.add_argument(
        "--backend", choices=tuple(available_backends()), default="olsq2"
    )
    req.add_argument(
        "--budget",
        type=float,
        default=None,
        help="per-request wall-time budget in seconds (over-budget requests "
        "return their best-so-far result flagged 'partial')",
    )
    req.add_argument("--swap-duration", type=int, default=None)
    req.add_argument("--time-budget", type=float, default=None)
    req.add_argument(
        "--config",
        metavar="JSON",
        help="full SynthesisConfig wire dict as JSON "
        "(overrides --swap-duration/--time-budget)",
    )
    req.add_argument("--request-id", default=None)
    req.add_argument("--output", help="write the request JSON here (default stdout)")

    srv = sub.add_parser(
        "serve", help="run a batch of CompileRequests through the async service"
    )
    srv.add_argument(
        "batch",
        help="JSON file holding a list of CompileRequest dicts (or "
        '{"requests": [...]}); \'-\' reads stdin',
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=1,
        help="persistent solver worker processes (0 = solve inline)",
    )
    srv.add_argument(
        "--max-pending", type=int, default=64, help="admission queue bound"
    )
    srv.add_argument(
        "--output",
        help="write the CompileResponse list as JSON here (default stdout)",
    )
    srv.add_argument(
        "--stats",
        action="store_true",
        help="print cache/dispatch/queue statistics to stderr afterwards",
    )
    srv.add_argument(
        "--trace",
        metavar="PATH",
        help="write a structured JSONL event trace of the service run",
    )
    srv.add_argument(
        "--kernel",
        choices=("auto", "python", "native"),
        default=None,
        help="force a solver backend for every request in the batch "
        "(overrides each request's config; see 'compile --kernel')",
    )
    return parser


def _cmd_compile(args) -> int:
    from .telemetry import JsonlSink, MemorySink, StderrSink, Tracer

    circuit = load_qasm(args.qasm)
    device = devices.by_name(args.device)
    tracer = None
    memory = None
    if args.trace or args.trace_summary or args.verbose:
        sinks = []
        if args.trace:
            sinks.append(JsonlSink(args.trace))
        if args.trace_summary:
            memory = MemorySink()
            sinks.append(memory)
        if args.verbose:
            sinks.append(StderrSink())
        tracer = Tracer(sinks=sinks)
    try:
        if args.parallel > 0:
            from .core import ParallelDescent, PortfolioEntry, default_portfolio

            base = default_portfolio(
                swap_duration=args.swap_duration, time_budget=args.time_budget
            )
            entries = [
                PortfolioEntry(
                    f"{base[i % len(base)].name}#{i}",
                    base[i % len(base)].config.replace(
                        simplify=args.simplify,
                        kernel=args.kernel,
                        subarch=args.subarch,
                        encode_bulk=args.encode_bulk,
                        templates=args.templates,
                        warm_start=(
                            None if args.warm_start == "none" else args.warm_start
                        ),
                    ),
                    args.synthesizer == "tb-olsq2",
                )
                for i in range(args.parallel)
            ]
            synthesizer = ParallelDescent(
                entries=entries,
                time_budget=args.time_budget,
                share=not args.no_share,
                tracer=tracer,
                certify=args.certify,
            )
            result = synthesizer.synthesize(
                circuit, device, objective=args.objective
            )
        else:
            config = SynthesisConfig(
                swap_duration=args.swap_duration,
                time_budget=args.time_budget,
                solve_time_budget=args.time_budget / 2,
                tracer=tracer,
                certify=args.certify,
                simplify=args.simplify,
                kernel=args.kernel,
                subarch=args.subarch,
                encode_bulk=args.encode_bulk,
                templates=args.templates,
                warm_start=(
                    None if args.warm_start == "none" else args.warm_start
                ),
            )
            synthesizer = resolve_backend(args.synthesizer, config)
            result = synthesizer.synthesize(
                circuit, device, objective=args.objective
            )
    finally:
        if tracer is not None:
            tracer.close()
    validate_result(result)
    print(result.summary())
    print(f"initial mapping: {result.initial_mapping}")
    status = 0
    if args.certify:
        certificate = result.certificate
        if certificate is None:
            print("no certificate produced (synthesizer does not support one)")
            status = 1
        else:
            print(certificate.summary())
            if not certificate.complete:
                status = 1
    if args.trace:
        print(f"trace written to {args.trace}")
    if memory is not None:
        from .harness import trace_summary

        print(trace_summary(memory))
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(result.to_physical_circuit().to_qasm())
        print(f"mapped circuit written to {args.output}")
    return status


def _cmd_devices(_args) -> int:
    rows = [
        devices.ibm_qx2(),
        devices.rigetti_aspen4(),
        devices.google_sycamore(),
        devices.ibm_eagle(),
        devices.grid(3, 3),
        devices.linear(5),
    ]
    print(f"{'name':<12} {'qubits':>6} {'edges':>5}")
    for dev in rows:
        print(f"{dev.name:<12} {dev.n_qubits:>6} {dev.num_edges:>5}")
    print("also: grid-RxC, line-N, ring-N, full-N")
    return 0


def _cmd_generate(args) -> int:
    if args.family == "qaoa":
        circuit = qaoa_circuit(args.qubits, seed=args.seed)
    elif args.family == "queko":
        device = devices.by_name(args.device)
        circuit = queko_circuit(device, args.depth, args.gates, seed=args.seed).circuit
    elif args.family == "qft":
        circuit = qft(args.qubits)
    else:
        circuit = toffoli(max(2, args.qubits - 1) // 2 + 1)
    sys.stdout.write(circuit.to_qasm())
    return 0


def _cmd_bench(args) -> int:
    if args.experiment == "all":
        from .harness.report import generate_report

        text = generate_report(budget=args.timeout)
        if args.output:
            with open(args.output, "w") as fp:
                fp.write(text)
            print(f"report written to {args.output}")
        else:
            print(text)
        return 0
    runners = {
        "fig1": lambda: experiments.run_fig1(timeout=args.timeout),
        "table1": lambda: experiments.run_table1(timeout=args.timeout),
        "table2": lambda: experiments.run_table2(timeout=args.timeout),
        "table3": lambda: experiments.run_table3(time_budget=args.timeout),
        "table4": lambda: experiments.run_table4(time_budget=args.timeout),
        "speedup": lambda: experiments.run_speedup_summary(time_budget=args.timeout),
    }
    headers, rows, notes = runners[args.experiment]()
    experiments.print_experiment(headers, rows, notes, args.experiment)
    return 0


def _cmd_analyze(args) -> int:
    """Lint a CNF file, or encode a QASM circuit and lint the encoding.

    With ``--contracts``, lint the project's own source tree against its
    documented invariants instead (see repro.analysis.contracts).
    """
    if args.contracts:
        from .analysis.contracts import main as contracts_main

        return contracts_main([args.path or "src"])
    if args.path is None:
        print("error: analyze needs a path (or --contracts)")
        return 2

    from .analysis import lint_cnf, lint_encoder

    if args.path.endswith((".cnf", ".dimacs")):
        from .sat.dimacs import read_dimacs

        try:
            with open(args.path) as fp:
                cnf = read_dimacs(fp)
        except ValueError as exc:
            print(f"error: parse: {exc}")
            return 1
        report = lint_cnf(cnf, simplify=args.simplify)
    else:
        circuit = load_qasm(args.path)
        device = devices.by_name(args.device)
        horizon = args.horizon
        if horizon <= 0:
            from .circuit.dag import depth_upper_bound

            horizon = max(2, depth_upper_bound(circuit))
        config = SynthesisConfig(swap_duration=args.swap_duration)
        report = lint_encoder(
            circuit,
            device,
            horizon,
            config=config,
            transition_based=args.transition_based,
            depth_bound=args.depth_bound,
            swap_bound=args.swap_bound,
            simplify=args.simplify,
        )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_sat(args) -> int:
    from .sat import SatResult, Solver, check_unsat_proof, lit_to_dimacs, preprocess
    from .sat.dimacs import read_dimacs
    from .sat.preprocess import Unsatisfiable

    with open(args.dimacs) as fp:
        cnf = read_dimacs(fp)
    print(f"c parsed {cnf.n_vars} vars, {cnf.num_clauses} clauses")
    recon = None
    formula = cnf
    if args.preprocess:
        try:
            formula, recon = preprocess(cnf)
        except Unsatisfiable:
            print("s UNSATISFIABLE")
            print("c (refuted during preprocessing)")
            return 20
        print(f"c preprocessed to {formula.num_clauses} clauses")
    solver = Solver(
        proof_log=args.certify and not args.preprocess, kernel=args.kernel
    )
    formula.to_solver(solver)
    status = solver.solve(time_budget=args.time_budget)
    if status is SatResult.UNKNOWN:
        print("s UNKNOWN")
        return 0
    if status is SatResult.SAT:
        model = recon.extend(solver.model) if recon else solver.model
        print("s SATISFIABLE")
        lits = [
            lit_to_dimacs(2 * v + (0 if model[v] else 1))
            for v in range(cnf.n_vars)
        ]
        print("v " + " ".join(str(l) for l in lits) + " 0")
        return 10
    print("s UNSATISFIABLE")
    if args.certify and solver.proof is not None:
        ok = check_unsat_proof(formula, solver.proof)
        print(f"c proof check: {'VERIFIED' if ok else 'FAILED'}")
        if not ok:
            return 1
    return 20


def _cmd_request(args) -> int:
    """Client mode: serialize one CompileRequest for a later ``serve`` run."""
    import json

    from .service import CompileRequest

    circuit = load_qasm(args.qasm)
    if args.config:
        config = json.loads(args.config)
        SynthesisConfig.from_dict(config)  # fail fast on a typo'd knob
    else:
        knobs = {}
        if args.swap_duration is not None:
            knobs["swap_duration"] = args.swap_duration
        if args.time_budget is not None:
            knobs["time_budget"] = args.time_budget
        config = SynthesisConfig(**knobs).to_dict() if knobs else None
    request = CompileRequest.from_circuit(
        circuit,
        args.device,
        objective=args.objective,
        backend=args.backend,
        budget=args.budget,
        config=config,
        request_id=args.request_id,
    )
    text = json.dumps(request.to_dict(), indent=2)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(text + "\n")
        print(f"request written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args) -> int:
    """Run a request batch through the async service and emit responses."""
    import asyncio
    import json

    from .service import CompileRequest
    from .service.server import serve_batch

    if args.batch == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.batch) as fp:
            data = json.load(fp)
    if isinstance(data, dict):
        data = data.get("requests", [])
    if not isinstance(data, list):
        print("error: batch must be a JSON list of CompileRequest dicts")
        return 1
    if args.kernel is not None:
        # Force one solver backend batch-wide; requests' configs keep
        # every other knob they specified.
        data = [
            {**d, "config": {**(d.get("config") or {}), "kernel": args.kernel}}
            for d in data
        ]
    try:
        requests = [CompileRequest.from_dict(d) for d in data]
    except (TypeError, ValueError) as exc:
        print(f"error: bad request in batch: {exc}")
        return 1

    tracer = None
    if args.trace:
        from .telemetry import JsonlSink, Tracer

        tracer = Tracer(sinks=[JsonlSink(args.trace)])
    try:
        responses, stats = asyncio.run(
            serve_batch(
                requests,
                n_workers=args.workers,
                max_pending=args.max_pending,
                tracer=tracer,
            )
        )
    finally:
        if tracer is not None:
            tracer.close()

    payload = json.dumps([r.to_dict() for r in responses], indent=2)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(payload + "\n")
        print(f"{len(responses)} responses written to {args.output}")
    else:
        print(payload)
    if args.stats:
        print(
            f"requests={stats['requests']} "
            f"dispatches={stats['solver_dispatches']} "
            f"cache_hits={stats['cache_hits']} "
            f"coalesced={stats['coalesced']} "
            f"errors={stats['errors']} "
            f"max_queue_depth={stats['max_queue_depth']} "
            f"bank_clauses_served={stats['pool']['bank_clauses_served']}",
            file=sys.stderr,
        )
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0 if all(r.ok for r in responses) else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "compile": _cmd_compile,
        "devices": _cmd_devices,
        "generate": _cmd_generate,
        "bench": _cmd_bench,
        "analyze": _cmd_analyze,
        "sat": _cmd_sat,
        "request": _cmd_request,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
