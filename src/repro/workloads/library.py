"""Arithmetic/algorithmic benchmark circuits: QFT, Toffoli ladders, Ising.

The paper's Table III/IV rows ``QFT(8/106)``, ``tof_4(7,55)``,
``barenco_tof_4(7,72)``, ``tof_5(9,75)``, ``barenco_tof_5(9,104)`` and
``ising_10(10,480)`` come from the Qiskit/Amy-et-al benchmark files.  The
constructions below are the standard textbook decompositions into the
{1-qubit, CX} gate set; gate counts are in the same regime but not
bit-identical to the distributed QASM files (noted in EXPERIMENTS.md).
"""

from __future__ import annotations

import math

from ..circuit.circuit import QuantumCircuit


def _cp(qc: QuantumCircuit, theta: float, a: int, b: int) -> None:
    """Controlled-phase decomposed into the {rz, cx} gate set."""
    qc.rz(theta / 2, a)
    qc.cx(a, b)
    qc.rz(-theta / 2, b)
    qc.cx(a, b)
    qc.rz(theta / 2, b)


def qft(n_qubits: int, include_swaps: bool = False) -> QuantumCircuit:
    """The quantum Fourier transform, controlled phases lowered to CX+RZ.

    ``include_swaps=True`` appends the final qubit-reversal SWAPs (usually
    elided by compilers via relabelling, and elided in the paper's counts).
    """
    if n_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    qc = QuantumCircuit(n_qubits, name=f"qft-{n_qubits}")
    for i in range(n_qubits):
        qc.h(i)
        for j in range(i + 1, n_qubits):
            _cp(qc, math.pi / (1 << (j - i)), j, i)
    if include_swaps:
        for i in range(n_qubits // 2):
            qc.swap(i, n_qubits - 1 - i)
    return qc


def _toffoli(qc: QuantumCircuit, a: int, b: int, c: int) -> None:
    """The standard 15-gate Toffoli decomposition (6 CX, 9 one-qubit)."""
    qc.h(c)
    qc.cx(b, c)
    qc.tdg(c)
    qc.cx(a, c)
    qc.t(c)
    qc.cx(b, c)
    qc.tdg(c)
    qc.cx(a, c)
    qc.t(b)
    qc.t(c)
    qc.h(c)
    qc.cx(a, b)
    qc.t(a)
    qc.tdg(b)
    qc.cx(a, b)


def toffoli(n_controls: int = 2) -> QuantumCircuit:
    """``tof_n``: an n-controlled NOT via the clean-ancilla Toffoli ladder.

    Uses ``n_controls - 2`` ancillas (V-chain), i.e. ``2n - 3`` qubits and
    ``2(n_controls - 2) + 1`` Toffolis, each 15 gates.  ``toffoli(2)`` is
    the plain 3-qubit Toffoli of the paper's Fig. 2 example.
    """
    if n_controls < 2:
        raise ValueError("need at least two controls")
    n_anc = n_controls - 2
    n_qubits = n_controls + 1 + n_anc
    qc = QuantumCircuit(n_qubits, name=f"tof_{n_controls}")
    controls = list(range(n_controls))
    target = n_controls
    anc = list(range(n_controls + 1, n_qubits))
    if n_anc == 0:
        _toffoli(qc, controls[0], controls[1], target)
        return qc
    # compute
    _toffoli(qc, controls[0], controls[1], anc[0])
    for i in range(1, n_anc):
        _toffoli(qc, controls[i + 1], anc[i - 1], anc[i])
    _toffoli(qc, controls[-1], anc[-1], target)
    # uncompute
    for i in range(n_anc - 1, 0, -1):
        _toffoli(qc, controls[i + 1], anc[i - 1], anc[i])
    _toffoli(qc, controls[0], controls[1], anc[0])
    return qc


def barenco_toffoli(n_controls: int = 2) -> QuantumCircuit:
    """``barenco_tof_n``: Barenco et al.'s recursive decomposition.

    Larger than the V-chain ladder (the extra root/controlled-V structure),
    matching the paper's ``barenco_tof > tof`` gate-count ordering.
    """
    if n_controls < 2:
        raise ValueError("need at least two controls")
    n_anc = max(0, n_controls - 2)
    n_qubits = n_controls + 1 + n_anc
    qc = QuantumCircuit(n_qubits, name=f"barenco_tof_{n_controls}")
    controls = list(range(n_controls))
    target = n_controls
    anc = list(range(n_controls + 1, n_qubits))

    def recurse(ctrls, tgt, ancillas):
        if len(ctrls) == 1:
            qc.cx(ctrls[0], tgt)
            return
        if len(ctrls) == 2:
            _toffoli(qc, ctrls[0], ctrls[1], tgt)
            return
        head = ancillas[-1]
        # Barenco Lemma 7.3 shape: two Toffolis around two recursions.
        _toffoli(qc, ctrls[-1], head, tgt)
        recurse(ctrls[:-1], head, ancillas[:-1])
        _toffoli(qc, ctrls[-1], head, tgt)
        recurse(ctrls[:-1], head, ancillas[:-1])
    recurse(controls, target, anc)
    return qc


def ghz(n_qubits: int) -> QuantumCircuit:
    """A GHZ-state preparation: one H and a CNOT ladder."""
    if n_qubits < 2:
        raise ValueError("GHZ needs at least two qubits")
    qc = QuantumCircuit(n_qubits, name=f"ghz-{n_qubits}")
    qc.h(0)
    for q in range(n_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def bernstein_vazirani(secret: int, n_qubits: int) -> QuantumCircuit:
    """Bernstein-Vazirani for an n-bit secret (oracle lowered to CNOTs).

    Qubit ``n_qubits`` is the phase ancilla; a CNOT per set secret bit.
    """
    if n_qubits < 1:
        raise ValueError("need at least one data qubit")
    if secret >= (1 << n_qubits) or secret < 0:
        raise ValueError("secret does not fit the register")
    qc = QuantumCircuit(n_qubits + 1, name=f"bv-{n_qubits}")
    anc = n_qubits
    qc.x(anc)
    for q in range(n_qubits + 1):
        qc.h(q)
    for q in range(n_qubits):
        if (secret >> q) & 1:
            qc.cx(q, anc)
    for q in range(n_qubits):
        qc.h(q)
    return qc


def cuccaro_adder(n_bits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder on ``2*n_bits + 2`` qubits.

    The MAJ / UMA ladder in the {CX, Toffoli} gate set with Toffolis
    decomposed — a representative "arithmetic circuit from IBM Qiskit"
    in the spirit of the paper's Table III benchmark families.
    """
    if n_bits < 1:
        raise ValueError("adder needs at least one bit")
    n_qubits = 2 * n_bits + 2
    qc = QuantumCircuit(n_qubits, name=f"adder-{n_bits}")
    # layout: c0, a0, b0, a1, b1, ..., carry-out
    carry_in = 0
    a = [1 + 2 * i for i in range(n_bits)]
    b = [2 + 2 * i for i in range(n_bits)]
    carry_out = n_qubits - 1

    def maj(x, y, z):
        qc.cx(z, y)
        qc.cx(z, x)
        _toffoli(qc, x, y, z)

    def uma(x, y, z):
        _toffoli(qc, x, y, z)
        qc.cx(z, x)
        qc.cx(x, y)

    maj(carry_in, b[0], a[0])
    for i in range(1, n_bits):
        maj(a[i - 1], b[i], a[i])
    qc.cx(a[n_bits - 1], carry_out)
    for i in range(n_bits - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(carry_in, b[0], a[0])
    return qc


def ising(n_qubits: int, steps: int = 10) -> QuantumCircuit:
    """``ising_n``: first-order Trotterized 1-D transverse-field Ising chain.

    Per step: ZZ couplings on even then odd bonds (each lowered to
    ``cx; rz; cx``), then an RX on every qubit —
    ``steps * (3*(n-1) + n)`` gates (480 for ``ising(10, steps=10)``, the
    paper's ``ising_10(10,480)`` row).
    """
    if n_qubits < 2:
        raise ValueError("Ising chain needs at least two qubits")
    qc = QuantumCircuit(n_qubits, name=f"ising_{n_qubits}")
    bonds = [(i, i + 1) for i in range(0, n_qubits - 1, 2)] + [
        (i, i + 1) for i in range(1, n_qubits - 1, 2)
    ]
    for _ in range(steps):
        for a, b in bonds:
            qc.cx(a, b)
            qc.rz(0.7, b)
            qc.cx(a, b)
        for q in range(n_qubits):
            qc.rx(0.3, q)
    return qc
