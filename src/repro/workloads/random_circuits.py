"""Generic random circuit generator for tests and stress runs."""

from __future__ import annotations

import random
from ..circuit.circuit import QuantumCircuit

_ONE_QUBIT_NAMES = ("h", "t", "tdg", "x")


def random_circuit(
    n_qubits: int,
    n_gates: int,
    two_qubit_fraction: float = 0.5,
    seed: int = 0,
) -> QuantumCircuit:
    """A random circuit with the given two-qubit gate fraction."""
    if n_qubits < 1:
        raise ValueError("need at least one qubit")
    if not 0.0 <= two_qubit_fraction <= 1.0:
        raise ValueError("two_qubit_fraction must be in [0, 1]")
    if n_qubits < 2 and two_qubit_fraction > 0:
        raise ValueError("two-qubit gates need at least two qubits")
    rng = random.Random(seed)
    qc = QuantumCircuit(n_qubits, name=f"random-{n_qubits}-{n_gates}-s{seed}")
    for _ in range(n_gates):
        if n_qubits >= 2 and rng.random() < two_qubit_fraction:
            a, b = rng.sample(range(n_qubits), 2)
            qc.cx(a, b)
        else:
            qc.add_gate(rng.choice(_ONE_QUBIT_NAMES), [rng.randrange(n_qubits)])
    return qc
