"""Benchmark workload generators: QAOA, QUEKO, QFT/Toffoli/Ising, random."""

from .library import (
    barenco_toffoli,
    bernstein_vazirani,
    cuccaro_adder,
    ghz,
    ising,
    qft,
    toffoli,
)
from .qaoa import qaoa_circuit, qaoa_paper_instance
from .queko import QuekoInstance, queko_circuit, queko_paper_row
from .random_circuits import random_circuit

__all__ = [
    "qaoa_circuit",
    "qaoa_paper_instance",
    "QuekoInstance",
    "queko_circuit",
    "queko_paper_row",
    "qft",
    "toffoli",
    "barenco_toffoli",
    "ising",
    "ghz",
    "bernstein_vazirani",
    "cuccaro_adder",
    "random_circuit",
]
