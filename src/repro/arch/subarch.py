"""Subarchitecture extraction: solve small, translate back (ROADMAP item 3).

The SAT encoding scales with ``n_physical x timesteps``, so synthesizing a
6-qubit circuit directly on ``ibm_eagle()`` (127 qubits) pays for 121
physical qubits the circuit never touches.  Practical subarchitecture
pruning (Milkevych & van de Pol, arXiv:2507.12976) cuts that cost: carve
connected induced subgraphs just large enough to host the circuit, solve
on the small graph, and relabel the result back to full-device qubits.

Pipeline:

1. **Anchor selection** — candidate regions grow from high-degree qubits
   (ties broken by qubit id for determinism).  High-degree anchors seed
   the densest regions, which host the most circuits swap-free.
2. **BFS-region growth** — from each anchor, greedily add the frontier
   qubit with the most edges back into the region (then highest device
   degree), keeping every prefix connected by construction.
3. **Signature pruning** — a candidate's *signature* is its induced
   subgraph's ``(degree_sequence, distance_profile)``, both isomorphism
   invariants: isomorphic regions share a signature, so only one copy of
   each signature is kept and a region *dominated* by a kept one (no
   better on any coordinate of either invariant) is dropped.  Lattice
   devices are vertex-transitive up to boundary effects, so dozens of
   anchors typically collapse to a handful of genuinely distinct shapes.
4. **Translation** — a result solved on the relabelled candidate graph is
   mapped back through ``candidate.qubits`` and re-checked by the
   independent validator against the *full* device.

Soundness: a translated model is a real schedule on the full device (the
validator re-proves this), so candidate solving never produces wrong
answers — but a bound proved *unsatisfiable on a candidate* says nothing
about the full device.  Optimality claims therefore only survive
translation when the achieved objective meets a device-independent lower
bound (the dependency-chain depth bound, or the analytic SWAP bound of
:func:`repro.core.optimizer.analytic_swap_lower_bound`); callers own that
check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .coupling import CouplingGraph

#: Candidate-enumeration defaults: how many distinct (post-pruning) regions
#: to return, and how many anchors to grow before pruning.
DEFAULT_MAX_CANDIDATES = 4
DEFAULT_MAX_ANCHORS = 24


@dataclass(frozen=True)
class SubarchCandidate:
    """One connected region of the device, relabelled to ``0..k-1``.

    ``qubits[i]`` is the full-device label of local qubit ``i``; ``graph``
    is the induced subgraph over exactly those qubits in that order.
    """

    qubits: Tuple[int, ...]
    graph: CouplingGraph
    anchor: int
    signature: Tuple[Tuple[int, ...], Tuple[int, ...]]

    @property
    def n_qubits(self) -> int:
        return len(self.qubits)

    def to_full(self, local: int) -> int:
        """Full-device label of candidate-local physical qubit ``local``."""
        return self.qubits[local]


def candidate_signature(
    graph: CouplingGraph,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The isomorphism-invariant signature used for candidate pruning."""
    return (graph.degree_sequence(), graph.distance_profile())


def dominates(
    sig_a: Tuple[Tuple[int, ...], Tuple[int, ...]],
    sig_b: Tuple[Tuple[int, ...], Tuple[int, ...]],
) -> bool:
    """True when region A is at least as well-connected as region B.

    Coordinate-wise: A's sorted degree sequence is pointwise >= B's and
    A's *cumulative* distance profile is pointwise >= B's (for every
    ``d``, A has at least as many pairs within distance ``d``).  A
    dominated region offers no placement A's shape lacks room for in
    practice, so it is pruned; this is a search-space heuristic, not a
    soundness requirement (any candidate yields validator-checked
    results).
    """
    deg_a, prof_a = sig_a
    deg_b, prof_b = sig_b
    if len(deg_a) != len(deg_b):
        return False
    if any(a < b for a, b in zip(deg_a, deg_b)):
        return False
    cum_a = cum_b = 0
    for a, b in zip(prof_a, prof_b):
        cum_a += a
        cum_b += b
        if cum_a < cum_b:
            return False
    return True


def _grow_region(device: CouplingGraph, anchor: int, width: int) -> Optional[List[int]]:
    """Greedy densest-first BFS region of ``width`` qubits from ``anchor``."""
    region = [anchor]
    in_region = {anchor}
    frontier = set(device.neighbors(anchor))
    while len(region) < width:
        if not frontier:
            return None  # component exhausted before reaching width
        best = max(
            frontier,
            key=lambda p: (
                sum(1 for nb in device.adjacency[p] if nb in in_region),
                device.degree(p),
                -p,
            ),
        )
        frontier.discard(best)
        region.append(best)
        in_region.add(best)
        for nb in device.adjacency[best]:
            if nb not in in_region:
                frontier.add(nb)
    return region


def enumerate_candidates(
    device: CouplingGraph,
    width: int,
    *,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    max_anchors: int = DEFAULT_MAX_ANCHORS,
) -> List[SubarchCandidate]:
    """Distinct connected ``width``-qubit regions of ``device``, best first.

    Regions are grown from up to ``max_anchors`` high-degree anchors,
    collapsed by signature (isomorphic duplicates solved once), pruned by
    dominance, and ranked densest-first (more edges, then shorter
    distances).  Returns at most ``max_candidates`` candidates; empty when
    no connected component has ``width`` qubits.
    """
    if width < 1:
        raise ValueError("candidate width must be >= 1")
    if width >= device.n_qubits:
        if width > device.n_qubits:
            return []
        whole = device.subgraph(tuple(range(device.n_qubits)), name=device.name)
        return [
            SubarchCandidate(
                qubits=tuple(range(device.n_qubits)),
                graph=whole,
                anchor=0,
                signature=candidate_signature(whole),
            )
        ]
    anchors = sorted(range(device.n_qubits), key=lambda p: (-device.degree(p), p))
    kept: List[SubarchCandidate] = []
    seen_signatures = set()
    for anchor in anchors[: max(1, max_anchors)]:
        region = _grow_region(device, anchor, width)
        if region is None:
            continue
        graph = device.subgraph(
            region, name=f"{device.name or 'device'}[sub{width}@{anchor}]"
        )
        signature = candidate_signature(graph)
        if signature in seen_signatures:
            continue
        if any(dominates(k.signature, signature) for k in kept):
            continue
        kept = [k for k in kept if not dominates(signature, k.signature)]
        seen_signatures.add(signature)
        kept.append(
            SubarchCandidate(
                qubits=tuple(region), graph=graph, anchor=anchor,
                signature=signature,
            )
        )
    kept.sort(
        key=lambda c: (
            -c.graph.num_edges,
            sum(d * n for d, n in enumerate(c.signature[1], start=1)),
            c.anchor,
        )
    )
    return kept[: max(1, max_candidates)]


def extract_candidates(
    circuit,
    device: CouplingGraph,
    *,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    max_anchors: int = DEFAULT_MAX_ANCHORS,
) -> List[SubarchCandidate]:
    """Candidates sized to host ``circuit`` (its full program-qubit width)."""
    return enumerate_candidates(
        device,
        circuit.n_qubits,
        max_candidates=max_candidates,
        max_anchors=max_anchors,
    )


def translate_result(result, qubits: Sequence[int], device: CouplingGraph):
    """Relabel a candidate-local result to full-device physical labels.

    ``result.device`` must be the induced subgraph whose local qubit ``i``
    is full-device qubit ``qubits[i]``.  The translated result carries the
    full ``device``, the mapped initial mapping and SWAP endpoints, and is
    re-checked by the independent validator before being returned — a
    mistranslation cannot escape as a plausible-looking schedule.

    Gate times are label-free and survive unchanged, so depth and SWAP
    count are preserved exactly.
    """
    # Function-level imports: repro.core imports repro.arch at package
    # init, so a module-level import here would be circular.
    from ..core.result import SwapEvent, SynthesisResult
    from ..core.validator import validate_result

    if result.device.n_qubits != len(qubits):
        raise ValueError(
            f"candidate has {len(qubits)} qubits but result was solved on "
            f"{result.device.n_qubits}"
        )
    labels = list(qubits)
    translated = SynthesisResult(
        circuit=result.circuit,
        device=device,
        initial_mapping=[labels[p] for p in result.initial_mapping],
        gate_times=list(result.gate_times),
        swaps=[
            SwapEvent(labels[s.p], labels[s.p_prime], s.finish_time)
            for s in result.swaps
        ],
        swap_duration=result.swap_duration,
        objective=result.objective,
        solver_stats=dict(result.solver_stats),
        pareto_points=list(result.pareto_points),
        optimal=result.optimal,
        wall_time=result.wall_time,
        certificate=result.certificate,
    )
    # Keep the raw (pre-serialization) forms consistent for downstream
    # consumers that reuse depth-phase solutions (transition-based flows).
    raw_times = getattr(result, "_raw_times", None)
    if raw_times is not None:
        translated._raw_times = list(raw_times)
    raw_swaps = getattr(result, "_raw_swaps", None)
    if raw_swaps is not None:
        translated._raw_swaps = [
            SwapEvent(labels[s.p], labels[s.p_prime], s.finish_time)
            for s in raw_swaps
        ]
    validate_result(translated, strict_dependencies=True)
    return translated
