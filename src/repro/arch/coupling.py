"""Device coupling graphs (paper Sec. II-A).

A coupling graph ``(P, E)`` has one vertex per physical qubit and one edge
per qubit pair that supports a two-qubit gate.  Layout synthesis needs fast
adjacency tests, edge indexing (the SWAP variables sigma_e^t are per-edge),
and all-pairs distances (used by the SABRE heuristic baseline and by
sanity checks).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class CouplingGraph:
    """An undirected coupling graph over physical qubits ``0..n-1``."""

    def __init__(self, n_qubits: int, edges: Iterable[Tuple[int, int]], name: str = ""):
        if n_qubits < 1:
            raise ValueError("coupling graph needs at least one qubit")
        self.n_qubits = n_qubits
        self.name = name
        seen: set = set()
        self.edges: List[Tuple[int, int]] = []
        for a, b in edges:
            if not (0 <= a < n_qubits and 0 <= b < n_qubits):
                raise ValueError(f"edge ({a},{b}) out of range")
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            self.edges.append(key)
        self._edge_index: Dict[Tuple[int, int], int] = {
            e: i for i, e in enumerate(self.edges)
        }
        self.adjacency: List[List[int]] = [[] for _ in range(n_qubits)]
        self.incident_edges: List[List[int]] = [[] for _ in range(n_qubits)]
        for i, (a, b) in enumerate(self.edges):
            self.adjacency[a].append(b)
            self.adjacency[b].append(a)
            self.incident_edges[a].append(i)
            self.incident_edges[b].append(i)
        self._dist: Optional[Tuple[Tuple[int, ...], ...]] = None

    # -- basic queries -----------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def are_adjacent(self, p: int, q: int) -> bool:
        return (min(p, q), max(p, q)) in self._edge_index

    def edge_index(self, p: int, q: int) -> int:
        """Index of the edge between ``p`` and ``q`` (raises if absent)."""
        return self._edge_index[(min(p, q), max(p, q))]

    def neighbors(self, p: int) -> List[int]:
        return self.adjacency[p]

    def degree(self, p: int) -> int:
        return len(self.adjacency[p])

    # -- distances -----------------------------------------------------------

    def distance_matrix(self) -> Tuple[Tuple[int, ...], ...]:
        """All-pairs shortest-path distances (BFS; cached).

        Unreachable pairs get distance ``n_qubits`` (an impossible real
        distance, safely larger than any path).  The matrix is returned as
        a read-only tuple-of-tuples: every caller shares the one cached
        instance, so handing out a mutable list would let any of them
        silently corrupt the distances for everyone else.
        """
        if self._dist is None:
            n = self.n_qubits
            inf = n
            dist = [[inf] * n for _ in range(n)]
            for src in range(n):
                row = dist[src]
                row[src] = 0
                queue = deque([src])
                while queue:
                    u = queue.popleft()
                    for v in self.adjacency[u]:
                        if row[v] == inf:
                            row[v] = row[u] + 1
                            queue.append(v)
            self._dist = tuple(tuple(row) for row in dist)
        return self._dist

    def distance(self, p: int, q: int) -> int:
        return self.distance_matrix()[p][q]

    def is_connected(self) -> bool:
        return all(d < self.n_qubits for d in self.distance_matrix()[0])

    # -- shape invariants --------------------------------------------------

    def max_degree(self) -> int:
        return max(len(adj) for adj in self.adjacency)

    def degree_sequence(self) -> Tuple[int, ...]:
        """Vertex degrees, sorted descending — an isomorphism invariant."""
        return tuple(sorted((len(adj) for adj in self.adjacency), reverse=True))

    def distance_profile(self) -> Tuple[int, ...]:
        """Count of unordered qubit pairs at each distance ``1..n-1``.

        ``profile[d-1]`` is the number of pairs exactly ``d`` apart
        (unreachable pairs are not counted).  Together with the degree
        sequence this is the candidate signature used by
        :mod:`repro.arch.subarch` to collapse isomorphic region choices:
        isomorphic graphs always agree on both, so distinct signatures
        are a proof of non-isomorphism (the converse is heuristic).
        """
        dist = self.distance_matrix()
        counts = [0] * max(1, self.n_qubits - 1)
        for p in range(self.n_qubits):
            row = dist[p]
            for q in range(p + 1, self.n_qubits):
                d = row[q]
                if 1 <= d < self.n_qubits:
                    counts[d - 1] += 1
        return tuple(counts)

    def shortest_path(self, src: int, dst: int) -> List[int]:
        """One shortest path from ``src`` to ``dst`` (inclusive)."""
        if src == dst:
            return [src]
        prev = {src: None}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in self.adjacency[u]:
                if v not in prev:
                    prev[v] = u
                    if v == dst:
                        path = [v]
                        while prev[path[-1]] is not None:
                            path.append(prev[path[-1]])
                        return path[::-1]
                    queue.append(v)
        raise ValueError(f"no path between {src} and {dst}")

    # -- derived graphs ---------------------------------------------------------

    def subgraph(self, qubits: Sequence[int], name: str = "") -> "CouplingGraph":
        """Induced subgraph over ``qubits``, relabelled to ``0..k-1``.

        Used to carve laptop-scale regions out of the large device graphs
        (Sycamore, Eagle) for the scaled-down experiments.
        """
        index = {p: i for i, p in enumerate(qubits)}
        if len(index) != len(qubits):
            raise ValueError("duplicate qubits in subgraph selection")
        edges = [
            (index[a], index[b])
            for a, b in self.edges
            if a in index and b in index
        ]
        return CouplingGraph(len(qubits), edges, name=name or f"{self.name}[sub{len(qubits)}]")

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form: qubit count, name, and the edge list."""
        return {
            "n_qubits": self.n_qubits,
            "name": self.name,
            "edges": [list(e) for e in self.edges],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CouplingGraph":
        """Rebuild a coupling graph from :meth:`to_dict` output."""
        return cls(
            data["n_qubits"],
            [(a, b) for a, b in data["edges"]],
            name=data.get("name", ""),
        )

    def to_networkx(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_qubits))
        graph.add_edges_from(self.edges)
        return graph

    @classmethod
    def from_networkx(cls, graph, name: str = "") -> "CouplingGraph":
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[a], index[b]) for a, b in graph.edges()]
        return cls(len(nodes), edges, name=name)

    def __repr__(self) -> str:  # pragma: no cover
        label = f" {self.name!r}" if self.name else ""
        return f"CouplingGraph{label}(qubits={self.n_qubits}, edges={len(self.edges)})"
