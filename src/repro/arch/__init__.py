"""Device coupling graphs and the device factory library."""

from . import devices
from .coupling import CouplingGraph
from .devices import (
    by_name,
    eagle_region,
    full,
    google_sycamore,
    grid,
    heavy_hex,
    ibm_eagle,
    ibm_falcon,
    ibm_qx2,
    ibm_tokyo,
    linear,
    rigetti_aspen4,
    ring,
    sycamore_region,
)

__all__ = [
    "CouplingGraph",
    "devices",
    "by_name",
    "grid",
    "linear",
    "ring",
    "full",
    "ibm_qx2",
    "rigetti_aspen4",
    "google_sycamore",
    "ibm_eagle",
    "ibm_tokyo",
    "ibm_falcon",
    "heavy_hex",
    "sycamore_region",
    "eagle_region",
]
