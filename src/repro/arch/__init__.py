"""Device coupling graphs, the device factory library, and
subarchitecture extraction (solve-small regions of big devices)."""

from . import devices, subarch
from .coupling import CouplingGraph
from .devices import (
    by_name,
    eagle_region,
    full,
    google_sycamore,
    grid,
    heavy_hex,
    ibm_eagle,
    ibm_falcon,
    ibm_qx2,
    ibm_tokyo,
    linear,
    rigetti_aspen4,
    ring,
    sycamore_region,
)
from .subarch import (
    SubarchCandidate,
    enumerate_candidates,
    extract_candidates,
    translate_result,
)

__all__ = [
    "CouplingGraph",
    "devices",
    "subarch",
    "SubarchCandidate",
    "enumerate_candidates",
    "extract_candidates",
    "translate_result",
    "by_name",
    "grid",
    "linear",
    "ring",
    "full",
    "ibm_qx2",
    "rigetti_aspen4",
    "google_sycamore",
    "ibm_eagle",
    "ibm_tokyo",
    "ibm_falcon",
    "heavy_hex",
    "sycamore_region",
    "eagle_region",
]
