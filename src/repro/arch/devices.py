"""Factories for the coupling graphs used in the paper's evaluation.

* rectangular grids (the Fig. 1 / Table I-II sweep architectures),
* IBM QX2 — the 5-qubit device of the paper's running example (Fig. 3),
* Rigetti Aspen-4 — 16 qubits, two octagonal rings joined by two rungs,
* Google Sycamore — 54 qubits on a diagonal (rotated) square lattice,
* IBM Eagle — 127 qubits on the heavy-hex lattice.

The Sycamore and Eagle graphs follow the published lattice patterns (degree
<= 4 diagonal grid; heavy-hex with 7 long rows and 4-qubit bridge rows).
Exact vendor qubit numberings differ between calibrations; what layout
synthesis depends on — qubit count, degree distribution, and lattice shape —
matches the devices the paper targets.

Every factory is memoized with :func:`functools.lru_cache`: repeated calls
(`ibm_eagle()` alone builds 127 qubits of heavy-hex edges, and callers like
the subarchitecture enumerator and the service pool resolve devices per
request) return the one shared :class:`CouplingGraph` instance.  That is
safe because the graphs are immutable in practice — construction freezes
the edge list and ``distance_matrix()`` is already a cached read-only
tuple-of-tuples view.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from .coupling import CouplingGraph


@lru_cache(maxsize=None)
def grid(rows: int, cols: int) -> CouplingGraph:
    """A rows-by-cols rectangular grid (the paper's sweep architectures)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            if c + 1 < cols:
                edges.append((p, p + 1))
            if r + 1 < rows:
                edges.append((p, p + cols))
    return CouplingGraph(rows * cols, edges, name=f"grid-{rows}x{cols}")


@lru_cache(maxsize=None)
def ibm_qx2() -> CouplingGraph:
    """IBM QX2: 5 qubits, 6 edges (paper Fig. 3)."""
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]
    return CouplingGraph(5, edges, name="ibm-qx2")


@lru_cache(maxsize=None)
def rigetti_aspen4() -> CouplingGraph:
    """Rigetti Aspen-4: 16 qubits in two octagonal rings with two rungs."""
    edges: List[Tuple[int, int]] = []
    for base in (0, 8):
        for i in range(8):
            edges.append((base + i, base + (i + 1) % 8))
    # Rungs joining the octagons.
    edges.append((1, 14))
    edges.append((2, 13))
    return CouplingGraph(16, edges, name="aspen-4")


@lru_cache(maxsize=None)
def google_sycamore() -> CouplingGraph:
    """Google Sycamore: 54 qubits on a diagonal square lattice (6 x 9).

    Qubit ``(r, c)`` couples to the two diagonal neighbours in the next row,
    giving the rotated-grid connectivity (degree <= 4) of the Sycamore chip.
    """
    rows, cols = 6, 9
    edges = []
    for r in range(rows - 1):
        for c in range(cols):
            p = r * cols + c
            down = (r + 1) * cols + c
            edges.append((p, down))
            if r % 2 == 0:
                if c + 1 < cols:
                    edges.append((p, down + 1))
            else:
                if c - 1 >= 0:
                    edges.append((p, down - 1))
    return CouplingGraph(rows * cols, edges, name="sycamore")


@lru_cache(maxsize=None)
def ibm_eagle() -> CouplingGraph:
    """IBM Eagle: 127 qubits on the heavy-hex lattice.

    Seven long rows (the first and last hold 14 qubits, the middle five hold
    15) are joined by six bridge rows of 4 qubits each; bridges attach every
    fourth column, offset by two in alternating gaps: 14 + 5*15 + 14 + 6*4
    = 127 qubits.
    """
    long_rows: List[List[int]] = []
    next_id = 0
    row_cols: List[List[int]] = []
    for r in range(7):
        if r == 0:
            cols = list(range(0, 14))
        elif r == 6:
            cols = list(range(1, 15))
        else:
            cols = list(range(0, 15))
        row_cols.append(cols)
        ids = []
        for _ in cols:
            ids.append(next_id)
            next_id += 1
        long_rows.append(ids)

    edges: List[Tuple[int, int]] = []
    col_to_id: List[dict] = []
    for r in range(7):
        mapping = dict(zip(row_cols[r], long_rows[r]))
        col_to_id.append(mapping)
        ids = long_rows[r]
        for a, b in zip(ids, ids[1:]):
            edges.append((a, b))

    for gap in range(6):
        bridge_cols = (0, 4, 8, 12) if gap % 2 == 0 else (2, 6, 10, 14)
        for col in bridge_cols:
            bridge = next_id
            next_id += 1
            upper = col_to_id[gap].get(col)
            lower = col_to_id[gap + 1].get(col)
            if upper is not None:
                edges.append((upper, bridge))
            if lower is not None:
                edges.append((bridge, lower))
    return CouplingGraph(next_id, edges, name="eagle")


@lru_cache(maxsize=None)
def ibm_tokyo() -> CouplingGraph:
    """IBM Q20 Tokyo: 20 qubits, 4x5 grid plus diagonal couplings.

    The classic SABRE evaluation target (Li et al. ASPLOS'19).
    """
    rows, cols = 4, 5
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            if c + 1 < cols:
                edges.append((p, p + 1))
            if r + 1 < rows:
                edges.append((p, p + cols))
    # Diagonal pairs of the published coupling map.
    diagonals = [
        (1, 7), (2, 6), (3, 9), (4, 8),
        (5, 11), (6, 10), (7, 13), (8, 12),
        (11, 17), (12, 16), (13, 19), (14, 18),
    ]
    edges.extend(diagonals)
    return CouplingGraph(rows * cols, edges, name="tokyo")


@lru_cache(maxsize=None)
def heavy_hex(rows: int, row_width: int) -> CouplingGraph:
    """A generic heavy-hex lattice: ``rows`` long rows of ``row_width``
    qubits joined by bridge qubits every fourth column (offset by two in
    alternating gaps) — the IBM Falcon/Hummingbird/Eagle family pattern.
    """
    if rows < 2 or row_width < 5:
        raise ValueError("heavy-hex needs >= 2 rows of >= 5 qubits")
    next_id = 0
    long_rows: List[List[int]] = []
    for _ in range(rows):
        long_rows.append(list(range(next_id, next_id + row_width)))
        next_id += row_width
    edges: List[Tuple[int, int]] = []
    for ids in long_rows:
        edges.extend(zip(ids, ids[1:]))
    for gap in range(rows - 1):
        bridge_cols = range(0, row_width, 4) if gap % 2 == 0 else range(
            2, row_width, 4
        )
        for col in bridge_cols:
            bridge = next_id
            next_id += 1
            edges.append((long_rows[gap][col], bridge))
            edges.append((bridge, long_rows[gap + 1][col]))
    return CouplingGraph(next_id, edges, name=f"heavy-hex-{rows}x{row_width}")


@lru_cache(maxsize=None)
def ibm_falcon() -> CouplingGraph:
    """IBM Falcon-class heavy-hex processor (27 qubits, e.g. ibmq_mumbai)."""
    edges = [
        (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
        (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
        (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
        (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
    ]
    return CouplingGraph(27, edges, name="falcon")


@lru_cache(maxsize=None)
def linear(n: int) -> CouplingGraph:
    """A 1-by-n line — the most SWAP-hungry connected topology."""
    return CouplingGraph(n, [(i, i + 1) for i in range(n - 1)], name=f"line-{n}")


@lru_cache(maxsize=None)
def ring(n: int) -> CouplingGraph:
    """An n-qubit cycle."""
    if n < 3:
        raise ValueError("ring needs at least 3 qubits")
    return CouplingGraph(n, [(i, (i + 1) % n) for i in range(n)], name=f"ring-{n}")


@lru_cache(maxsize=None)
def full(n: int) -> CouplingGraph:
    """All-to-all connectivity (no SWAPs ever needed)."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return CouplingGraph(n, edges, name=f"full-{n}")


def _bfs_region(device: CouplingGraph, n_qubits: int, name: str) -> CouplingGraph:
    """A connected ``n_qubits``-qubit induced subgraph grown BFS from qubit 0."""
    if not 1 <= n_qubits <= device.n_qubits:
        raise ValueError(f"region size must be in [1, {device.n_qubits}]")
    from collections import deque

    picked: List[int] = []
    seen = {0}
    queue = deque([0])
    while queue and len(picked) < n_qubits:
        u = queue.popleft()
        picked.append(u)
        for v in device.neighbors(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    if len(picked) < n_qubits:
        raise ValueError("device graph too disconnected for requested region")
    return device.subgraph(picked, name=name)


@lru_cache(maxsize=None)
def sycamore_region(n_qubits: int) -> CouplingGraph:
    """A connected ``n_qubits``-qubit region of the Sycamore lattice.

    The scaled-down stand-in for whole-Sycamore targets in the laptop-scale
    experiments (see DESIGN.md).
    """
    return _bfs_region(google_sycamore(), n_qubits, f"sycamore[{n_qubits}]")


@lru_cache(maxsize=None)
def eagle_region(n_qubits: int) -> CouplingGraph:
    """A connected ``n_qubits``-qubit region of the Eagle heavy-hex lattice."""
    return _bfs_region(ibm_eagle(), n_qubits, f"eagle[{n_qubits}]")


DEVICE_FACTORIES = {
    "qx2": ibm_qx2,
    "aspen4": rigetti_aspen4,
    "sycamore": google_sycamore,
    "eagle": ibm_eagle,
    "tokyo": ibm_tokyo,
    "falcon": ibm_falcon,
}


@lru_cache(maxsize=None)
def by_name(name: str) -> CouplingGraph:
    """Look up a device by short name (``qx2``, ``aspen4``, ``sycamore``,
    ``eagle``, ``grid-RxC``, ``line-N``, ``ring-N``, ``full-N``).

    Memoized like every factory (an invalid name caches nothing: the
    lookup raises before returning), so the name-parsing cost is paid
    once per distinct spelling.
    """
    if name in DEVICE_FACTORIES:
        return DEVICE_FACTORIES[name]()
    for prefix, factory in (("line-", linear), ("ring-", ring), ("full-", full)):
        if name.startswith(prefix):
            return factory(int(name[len(prefix):]))
    if name.startswith("grid-"):
        rows, cols = name[len("grid-"):].split("x")
        return grid(int(rows), int(cols))
    raise ValueError(f"unknown device {name!r}")
