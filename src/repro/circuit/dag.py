"""Gate dependency analysis (paper Sec. II-A, constraint (2)).

Two gates that act on a common program qubit must execute in program order.
The *dependency list* D holds the per-wire consecutive pairs — their
transitive closure is the full order, so consecutive pairs are all a solver
needs.  The longest chain in the dependency DAG is the depth lower bound
T_LB that seeds the depth-optimization loop (Sec. III-B.1), and the paper's
default variable horizon is ``T_UB = 1.5 * T_LB``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .circuit import QuantumCircuit


def dependencies(circuit: QuantumCircuit) -> List[Tuple[int, int]]:
    """Per-wire consecutive dependency pairs ``(earlier, later)`` by gate index."""
    last_on_wire: Dict[int, int] = {}
    deps: List[Tuple[int, int]] = []
    for idx, gate in enumerate(circuit.gates):
        for q in gate.qubits:
            prev = last_on_wire.get(q)
            if prev is not None:
                deps.append((prev, idx))
            last_on_wire[q] = idx
    return deps


def longest_chain_length(circuit: QuantumCircuit) -> int:
    """Length (in gates) of the longest dependency chain — the paper's T_LB."""
    return circuit.depth()


def longest_chain(circuit: QuantumCircuit) -> List[int]:
    """Gate indices of one longest dependency chain (e.g. Fig. 5's red chain)."""
    n = len(circuit.gates)
    if n == 0:
        return []
    depth_at = [0] * n
    pred = [-1] * n
    frontier: Dict[int, int] = {}  # wire -> last gate index
    for idx, gate in enumerate(circuit.gates):
        best_prev, best_depth = -1, 0
        for q in gate.qubits:
            prev = frontier.get(q)
            if prev is not None and depth_at[prev] > best_depth:
                best_prev, best_depth = prev, depth_at[prev]
        depth_at[idx] = best_depth + 1
        pred[idx] = best_prev
        for q in gate.qubits:
            frontier[q] = idx
    end = max(range(n), key=lambda i: depth_at[i])
    chain = []
    while end != -1:
        chain.append(end)
        end = pred[end]
    return chain[::-1]


def asap_layers(circuit: QuantumCircuit) -> List[List[int]]:
    """Group gate indices into as-soon-as-possible dependency layers."""
    layers: List[List[int]] = []
    frontier = [0] * circuit.n_qubits
    for idx, gate in enumerate(circuit.gates):
        level = max(frontier[q] for q in gate.qubits)
        if level == len(layers):
            layers.append([])
        layers[level].append(idx)
        for q in gate.qubits:
            frontier[q] = level + 1
    return layers


def depth_upper_bound(circuit: QuantumCircuit, ratio: float = 1.5) -> int:
    """The paper's empirical horizon ``T_UB = ceil(ratio * T_LB)``.

    When no schedule exists within this horizon the optimizer regenerates
    the formulation with a larger T_UB (Sec. III-B.1), so this only needs to
    be a good first guess, not a guarantee.
    """
    t_lb = longest_chain_length(circuit)
    return max(1, math.ceil(ratio * t_lb))


def dependency_graph(circuit: QuantumCircuit):
    """The dependency DAG as a :mod:`networkx` DiGraph (for analysis/plots)."""
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(circuit.gates)))
    graph.add_edges_from(dependencies(circuit))
    return graph
