"""Quantum gate representation.

Layout synthesis only cares about which qubits a gate touches and in what
order gates appear (Sec. II-A: "the gates to be scheduled are one- or
two-qubit"), so a gate is a name, a qubit tuple, and optional real
parameters.  Semantics (unitaries) are irrelevant to the mapping problem and
deliberately not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

SINGLE_QUBIT_GATES = frozenset(
    {
        "id",
        "h",
        "x",
        "y",
        "z",
        "s",
        "sdg",
        "t",
        "tdg",
        "sx",
        "sxdg",
        "rx",
        "ry",
        "rz",
        "u1",
        "u2",
        "u3",
        "p",
        "u",
    }
)

TWO_QUBIT_GATES = frozenset(
    {"cx", "cnot", "cz", "cy", "ch", "cp", "cu1", "crz", "rzz", "swap", "iswap"}
)


@dataclass(frozen=True)
class Gate:
    """A single- or two-qubit quantum gate instance.

    >>> Gate("cx", (0, 1))
    Gate(name='cx', qubits=(0, 1), params=())
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self):
        if len(self.qubits) not in (1, 2):
            raise ValueError(
                f"gate {self.name!r} touches {len(self.qubits)} qubits; "
                "only 1- and 2-qubit gates are supported (Sec. II-A)"
            )
        if len(self.qubits) == 2 and self.qubits[0] == self.qubits[1]:
            raise ValueError(f"gate {self.name!r} repeats qubit {self.qubits[0]}")

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2

    @property
    def is_single_qubit(self) -> bool:
        return len(self.qubits) == 1

    def remapped(self, mapping) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each qubit ``q``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def qasm(self) -> str:
        """The gate as one OpenQASM 2.0 statement (register name ``q``)."""
        if self.params:
            args = ",".join(_fmt_param(p) for p in self.params)
            head = f"{self.name}({args})"
        else:
            head = self.name
        operands = ",".join(f"q[{q}]" for q in self.qubits)
        return f"{head} {operands};"


def _fmt_param(p: float) -> str:
    if p == int(p):
        return str(int(p))
    return repr(p)
