"""ASCII rendering of circuits and layout-synthesis schedules.

Produces text diagrams in the style of the paper's figures: one wire per
qubit, gates placed in their dependency (or scheduled) time slots, SWAPs
shown as ``x--x`` pairs.  Used by examples and handy for debugging results
in a terminal.
"""

from __future__ import annotations

from typing import List

from .circuit import QuantumCircuit
from .dag import asap_layers


def _blank_grid(n_rows: int, n_cols: int, cell: int) -> List[List[str]]:
    return [["-" * cell for _ in range(n_cols)] for _ in range(n_rows)]


def _place(grid, row: int, col: int, text: str, cell: int) -> None:
    grid[row][col] = text.center(cell, "-")


def draw_circuit(circuit: QuantumCircuit, max_width: int = 100) -> str:
    """Render a circuit with gates in ASAP dependency layers.

    >>> qc = QuantumCircuit(2)
    >>> qc.h(0)
    >>> qc.cx(0, 1)
    >>> print(draw_circuit(qc))
    q0: ---H-----*---
    q1: ---------X---
    """
    layers = asap_layers(circuit)
    cell = 5
    grid = _blank_grid(circuit.n_qubits, len(layers), cell)
    for col, layer in enumerate(layers):
        for idx in layer:
            gate = circuit.gates[idx]
            if gate.is_single_qubit:
                _place(grid, gate.qubits[0], col, gate.name.upper()[:3], cell)
            elif gate.name in ("cx", "cnot"):
                _place(grid, gate.qubits[0], col, "*", cell)
                _place(grid, gate.qubits[1], col, "X", cell)
            elif gate.name == "swap":
                _place(grid, gate.qubits[0], col, "x", cell)
                _place(grid, gate.qubits[1], col, "x", cell)
            else:
                label = gate.name[:3]
                _place(grid, gate.qubits[0], col, label, cell)
                _place(grid, gate.qubits[1], col, label, cell)
    label_width = len(f"q{circuit.n_qubits - 1}: ")
    lines = []
    for q in range(circuit.n_qubits):
        label = f"q{q}: ".ljust(label_width)
        wire = "-".join(grid[q]) if grid[q] else ""
        lines.append((label + "-" + wire + "-")[:max_width])
    return "\n".join(lines)


def draw_schedule(result, max_width: int = 120) -> str:
    """Render a :class:`~repro.core.result.SynthesisResult` over *physical*
    wires with concrete time steps; SWAPs appear in their finish column.
    """
    n_phys = result.device.n_qubits
    horizon = result.depth
    cell = 5
    grid = _blank_grid(n_phys, max(horizon, 1), cell)
    for idx, gate in enumerate(result.circuit.gates):
        t = result.gate_times[idx]
        mapping = result.mapping_at(t)
        phys = [mapping[q] for q in gate.qubits]
        if gate.is_single_qubit:
            _place(grid, phys[0], t, gate.name.upper()[:3], cell)
        elif gate.name in ("cx", "cnot"):
            _place(grid, phys[0], t, "*", cell)
            _place(grid, phys[1], t, "X", cell)
        else:
            label = gate.name[:3]
            _place(grid, phys[0], t, label, cell)
            _place(grid, phys[1], t, label, cell)
    for swap in result.swaps:
        _place(grid, swap.p, swap.finish_time, "x", cell)
        _place(grid, swap.p_prime, swap.finish_time, "x", cell)
    label_width = len(f"p{n_phys - 1}: ")
    header = " " * label_width + " " + " ".join(
        f"t={t}".center(cell) for t in range(horizon)
    )
    lines = [header[:max_width]]
    for p in range(n_phys):
        label = f"p{p}: ".ljust(label_width)
        lines.append((label + " " + " ".join(grid[p]))[:max_width])
    return "\n".join(lines)
