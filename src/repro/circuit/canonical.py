"""Canonical circuit form: a fingerprint invariant under qubit relabeling.

Layout synthesis is label-blind: relabeling the program qubits of a
circuit permutes the *rows* of the mapping ``pi_q^t`` but changes nothing
about the physical schedule, the SWAP count, or the depth.  Two circuits
that differ only by a qubit permutation therefore have interchangeable
synthesis results — solve one, translate the mapping, and you have solved
the other.  The service layer (:mod:`repro.service`) exploits this: its
result cache is keyed by the canonical fingerprint computed here, and a
hit is translated back through the relabeling returned alongside it.

The canonical form is cheap and exact for this equivalence (it is *not*
graph-isomorphism-complete — it does not try to identify circuits whose
gate *lists* differ, even commutatively).  A qubit relabeling permutes the
labels inside each gate but cannot reorder the gate list itself, so
walking the gates in program order and renaming each qubit by first
appearance yields the same relabeled gate sequence no matter which
labeling we started from.  Qubits never touched by a gate contribute only
their count.

>>> qc = QuantumCircuit(3); qc.cx(2, 0); qc.h(2)
>>> qd = QuantumCircuit(3); qd.cx(0, 1); qd.h(0)
>>> circuit_fingerprint(qc) == circuit_fingerprint(qd)
True
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from .circuit import QuantumCircuit
from .gates import Gate


def canonical_relabeling(circuit: QuantumCircuit) -> List[int]:
    """The first-appearance relabeling: ``perm[q]`` is the canonical index
    of program qubit ``q``.

    Qubits are numbered 0, 1, 2, ... in the order they first appear in the
    gate list (a two-qubit gate introduces its qubits in operand order);
    qubits no gate touches are appended afterwards in ascending original
    order.  Any relabeling of ``circuit`` produces the same canonical
    circuit because the gate list order — the only thing the walk depends
    on — is unchanged by relabeling.
    """
    perm: List[int] = [-1] * circuit.n_qubits
    nxt = 0
    for gate in circuit.gates:
        for q in gate.qubits:
            if perm[q] < 0:
                perm[q] = nxt
                nxt += 1
    for q in range(circuit.n_qubits):
        if perm[q] < 0:
            perm[q] = nxt
            nxt += 1
    return perm


def canonical_circuit(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, List[int]]:
    """The canonical relabeled copy of ``circuit`` plus the relabeling.

    Returns ``(canon, perm)`` with ``perm = canonical_relabeling(circuit)``
    and ``canon`` the same gate sequence acting on ``perm[q]`` wherever
    ``circuit`` acts on ``q``.  A synthesis result for ``canon`` converts
    to one for ``circuit`` by ``mapping[q] = canon_mapping[perm[q]]`` —
    gate times and SWAPs live in physical space and carry over verbatim.
    """
    perm = canonical_relabeling(circuit)
    canon = QuantumCircuit(circuit.n_qubits, name=circuit.name)
    for gate in circuit.gates:
        canon.append(Gate(gate.name, tuple(perm[q] for q in gate.qubits), gate.params))
    return canon, perm


def canonical_key(circuit: QuantumCircuit) -> Tuple:
    """A hashable tuple identifying ``circuit`` up to qubit relabeling.

    The circuit *name* is deliberately excluded — it is metadata, not
    structure.  ``n_qubits`` is included because the synthesized mapping
    has one entry per program qubit, touched or not.
    """
    perm = canonical_relabeling(circuit)
    return (
        circuit.n_qubits,
        tuple(
            (g.name, tuple(perm[q] for q in g.qubits), g.params)
            for g in circuit.gates
        ),
    )


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """A sha256 hex digest of :func:`canonical_key`.

    Equal for any two circuits that differ only by a qubit relabeling;
    collisions between structurally different circuits require a sha256
    collision.  Stable across processes and sessions (no ``hash()``
    randomization), so it is usable as a persistent cache key.
    """
    n_qubits, gates = canonical_key(circuit)
    h = hashlib.sha256()
    h.update(f"q{n_qubits}".encode())
    for name, qubits, params in gates:
        h.update(
            ("|" + name + ":" + ",".join(map(str, qubits))).encode()
        )
        if params:
            h.update((":" + ",".join(repr(p) for p in params)).encode())
    return h.hexdigest()
