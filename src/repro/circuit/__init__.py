"""Quantum circuit IR, dependency analysis, and OpenQASM 2.0 I/O."""

from .canonical import (
    canonical_circuit,
    canonical_key,
    canonical_relabeling,
    circuit_fingerprint,
)
from .circuit import QuantumCircuit
from .dag import (
    asap_layers,
    dependencies,
    dependency_graph,
    depth_upper_bound,
    longest_chain,
    longest_chain_length,
)
from .draw import draw_circuit, draw_schedule
from .gates import SINGLE_QUBIT_GATES, TWO_QUBIT_GATES, Gate
from .metrics import CircuitMetrics, MappingMetrics, circuit_metrics, mapping_metrics
from .qasm import QasmError, load_qasm, parse_qasm

__all__ = [
    "QuantumCircuit",
    "Gate",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "dependencies",
    "dependency_graph",
    "depth_upper_bound",
    "longest_chain",
    "longest_chain_length",
    "asap_layers",
    "canonical_circuit",
    "canonical_key",
    "canonical_relabeling",
    "circuit_fingerprint",
    "QasmError",
    "parse_qasm",
    "load_qasm",
    "draw_circuit",
    "draw_schedule",
    "CircuitMetrics",
    "MappingMetrics",
    "circuit_metrics",
    "mapping_metrics",
]
