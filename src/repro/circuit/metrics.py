"""Circuit and result metrics: the numbers mapping papers report.

Covers both *logical* circuit statistics (two-qubit depth, interaction
degree, parallelism) and *mapped-result* statistics (SWAP overhead, depth
overhead, utilisation), so benchmark rows and examples can report a
consistent set of figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .circuit import QuantumCircuit
from .dag import asap_layers, longest_chain_length


@dataclass(frozen=True)
class CircuitMetrics:
    """Logical statistics of a circuit (before mapping)."""

    n_qubits: int
    n_gates: int
    n_two_qubit: int
    depth: int
    two_qubit_depth: int
    max_interaction_degree: int
    parallelism: float  # average gates per dependency layer

    def as_dict(self) -> Dict:
        return {
            "n_qubits": self.n_qubits,
            "n_gates": self.n_gates,
            "n_two_qubit": self.n_two_qubit,
            "depth": self.depth,
            "two_qubit_depth": self.two_qubit_depth,
            "max_interaction_degree": self.max_interaction_degree,
            "parallelism": self.parallelism,
        }


def circuit_metrics(circuit: QuantumCircuit) -> CircuitMetrics:
    """Compute logical statistics for ``circuit``."""
    # Two-qubit depth: longest chain counting only two-qubit gates.
    frontier = [0] * circuit.n_qubits
    for gate in circuit.gates:
        weight = 1 if gate.is_two_qubit else 0
        level = max(frontier[q] for q in gate.qubits) + weight
        for q in gate.qubits:
            frontier[q] = level
    two_qubit_depth = max(frontier, default=0)

    degree: Dict[int, set] = {q: set() for q in range(circuit.n_qubits)}
    for gate in circuit.gates:
        if gate.is_two_qubit:
            a, b = gate.qubits
            degree[a].add(b)
            degree[b].add(a)
    max_degree = max((len(s) for s in degree.values()), default=0)

    layers = asap_layers(circuit)
    parallelism = (
        circuit.num_gates / len(layers) if layers else 0.0
    )
    return CircuitMetrics(
        n_qubits=circuit.n_qubits,
        n_gates=circuit.num_gates,
        n_two_qubit=circuit.num_two_qubit_gates,
        depth=longest_chain_length(circuit),
        two_qubit_depth=two_qubit_depth,
        max_interaction_degree=max_degree,
        parallelism=parallelism,
    )


@dataclass(frozen=True)
class MappingMetrics:
    """Overhead statistics of a layout-synthesis result."""

    logical_depth: int
    mapped_depth: int
    depth_overhead: float  # mapped / logical
    swap_count: int
    cnot_overhead: float  # (original_cx + 3*swaps) / original_cx
    physical_qubits_used: int
    device_utilisation: float

    def as_dict(self) -> Dict:
        return {
            "logical_depth": self.logical_depth,
            "mapped_depth": self.mapped_depth,
            "depth_overhead": self.depth_overhead,
            "swap_count": self.swap_count,
            "cnot_overhead": self.cnot_overhead,
            "physical_qubits_used": self.physical_qubits_used,
            "device_utilisation": self.device_utilisation,
        }


def mapping_metrics(result) -> MappingMetrics:
    """Compute overhead statistics for a SynthesisResult."""
    circuit = result.circuit
    logical_depth = longest_chain_length(circuit)
    used = set()
    for idx, gate in enumerate(circuit.gates):
        mapping = result.mapping_at(result.gate_times[idx])
        used.update(mapping[q] for q in gate.qubits)
    for swap in result.swaps:
        used.add(swap.p)
        used.add(swap.p_prime)
    n_cx = circuit.num_two_qubit_gates
    cnot_overhead = (n_cx + 3 * result.swap_count) / n_cx if n_cx else 1.0
    return MappingMetrics(
        logical_depth=logical_depth,
        mapped_depth=result.depth,
        depth_overhead=result.depth / logical_depth if logical_depth else 1.0,
        swap_count=result.swap_count,
        cnot_overhead=cnot_overhead,
        physical_qubits_used=len(used),
        device_utilisation=len(used) / result.device.n_qubits,
    )
