"""The quantum circuit IR: an ordered gate list over program qubits."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate


class QuantumCircuit:
    """A quantum program: ``n_qubits`` program qubits and an ordered gate list.

    >>> qc = QuantumCircuit(3)
    >>> qc.h(0)
    >>> qc.cx(0, 1)
    >>> qc.cx(1, 2)
    >>> qc.num_gates
    3
    >>> qc.depth()
    3
    """

    def __init__(self, n_qubits: int, gates: Optional[Iterable[Gate]] = None, name: str = ""):
        if n_qubits < 1:
            raise ValueError("circuit needs at least one qubit")
        self.n_qubits = n_qubits
        self.name = name
        self.gates: List[Gate] = []
        if gates:
            for gate in gates:
                self.append(gate)

    # -- construction ----------------------------------------------------

    def append(self, gate: Gate) -> None:
        """Append a gate, validating qubit indices."""
        for q in gate.qubits:
            if not 0 <= q < self.n_qubits:
                raise ValueError(
                    f"gate {gate.name!r} references qubit {q}; "
                    f"circuit has {self.n_qubits}"
                )
        self.gates.append(gate)

    def add_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()):
        self.append(Gate(name, tuple(qubits), tuple(params)))

    # Convenience constructors for the common gate set.
    def h(self, q: int) -> None:
        self.add_gate("h", [q])

    def x(self, q: int) -> None:
        self.add_gate("x", [q])

    def t(self, q: int) -> None:
        self.add_gate("t", [q])

    def tdg(self, q: int) -> None:
        self.add_gate("tdg", [q])

    def rz(self, theta: float, q: int) -> None:
        self.add_gate("rz", [q], [theta])

    def rx(self, theta: float, q: int) -> None:
        self.add_gate("rx", [q], [theta])

    def cx(self, control: int, target: int) -> None:
        self.add_gate("cx", [control, target])

    def cz(self, a: int, b: int) -> None:
        self.add_gate("cz", [a, b])

    def swap(self, a: int, b: int) -> None:
        self.add_gate("swap", [a, b])

    def rzz(self, theta: float, a: int, b: int) -> None:
        self.add_gate("rzz", [a, b], [theta])

    # -- queries -----------------------------------------------------------

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def two_qubit_gates(self) -> List[Tuple[int, Gate]]:
        """(index, gate) pairs for gates in G2."""
        return [(i, g) for i, g in enumerate(self.gates) if g.is_two_qubit]

    @property
    def single_qubit_gates(self) -> List[Tuple[int, Gate]]:
        """(index, gate) pairs for gates in G1."""
        return [(i, g) for i, g in enumerate(self.gates) if g.is_single_qubit]

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(1 for g in self.gates if g.is_two_qubit)

    def used_qubits(self) -> set:
        used = set()
        for g in self.gates:
            used.update(g.qubits)
        return used

    def depth(self) -> int:
        """Logical depth: length of the longest dependency chain.

        This equals the paper's T_LB when every gate takes one time step.
        """
        frontier = [0] * self.n_qubits
        for gate in self.gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def count_ops(self) -> dict:
        counts: dict = {}
        for g in self.gates:
            counts[g.name] = counts.get(g.name, 0) + 1
        return counts

    # -- transformation ------------------------------------------------------

    def remapped(self, mapping: Sequence[int], n_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Apply a qubit relabelling to every gate."""
        out = QuantumCircuit(n_qubits or self.n_qubits, name=self.name)
        for gate in self.gates:
            out.append(gate.remapped(mapping))
        return out

    def reversed(self) -> "QuantumCircuit":
        """Gates in reverse order (used by SABRE's bidirectional passes)."""
        out = QuantumCircuit(self.n_qubits, name=self.name)
        for gate in reversed(self.gates):
            out.append(gate)
        return out

    def copy(self) -> "QuantumCircuit":
        return QuantumCircuit(self.n_qubits, self.gates, name=self.name)

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form: qubit count, name, and the gate list.

        Losslessly round-trips through :meth:`from_dict` (gates keep name,
        qubit tuple, and parameters; program order is the list order).
        """
        return {
            "n_qubits": self.n_qubits,
            "name": self.name,
            "gates": [
                [g.name, list(g.qubits), list(g.params)] for g in self.gates
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantumCircuit":
        """Rebuild a circuit from :meth:`to_dict` output."""
        out = cls(data["n_qubits"], name=data.get("name", ""))
        for name, qubits, params in data["gates"]:
            out.append(Gate(name, tuple(qubits), tuple(params)))
        return out

    def to_qasm(self) -> str:
        """Emit OpenQASM 2.0 with a single register ``q``."""
        lines = [
            "OPENQASM 2.0;",
            'include "qelib1.inc";',
            f"qreg q[{self.n_qubits}];",
        ]
        lines.extend(g.qasm() for g in self.gates)
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover
        label = f" {self.name!r}" if self.name else ""
        return (
            f"QuantumCircuit{label}(qubits={self.n_qubits}, "
            f"gates={len(self.gates)}, depth={self.depth()})"
        )
