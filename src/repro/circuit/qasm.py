"""OpenQASM 2.0 front end (the subset layout synthesis needs).

The paper's benchmark circuits (QAOA, Qiskit arithmetic circuits, QUEKO) are
distributed as OpenQASM 2.0 files.  This parser handles the constructs those
files use: the version header, ``include``, ``qreg``/``creg`` declarations,
gate applications with optional parameter lists, ``barrier`` and ``measure``
(both ignored for mapping purposes), and comments.  Custom ``gate``
definitions are parsed and inlined one level deep.

Parameter expressions (``pi/2``, ``-3*pi/4`` ...) are evaluated to floats
with a tiny recursive-descent evaluator — no ``eval``.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from .circuit import QuantumCircuit
from .gates import Gate


class QasmError(ValueError):
    """Raised on malformed OpenQASM input."""


_TOKEN_RE = re.compile(r"\s*(?:(\d+\.\d*|\.\d+|\d+)|(pi)|([+\-*/()])|$)")


def _eval_param(expr: str) -> float:
    """Evaluate a parameter arithmetic expression over numbers and ``pi``."""
    tokens: List[str] = []
    pos = 0
    expr = expr.strip()
    while pos < len(expr):
        m = _TOKEN_RE.match(expr, pos)
        if not m or m.end() == pos:
            raise QasmError(f"cannot tokenise parameter expression {expr!r}")
        if m.group(1):
            tokens.append(m.group(1))
        elif m.group(2):
            tokens.append("pi")
        elif m.group(3):
            tokens.append(m.group(3))
        pos = m.end()
    result, rest = _parse_sum(tokens)
    if rest:
        raise QasmError(f"trailing tokens in parameter expression {expr!r}")
    return result


def _parse_sum(tokens: List[str]) -> Tuple[float, List[str]]:
    value, tokens = _parse_product(tokens)
    while tokens and tokens[0] in "+-":
        op = tokens[0]
        rhs, tokens = _parse_product(tokens[1:])
        value = value + rhs if op == "+" else value - rhs
    return value, tokens


def _parse_product(tokens: List[str]) -> Tuple[float, List[str]]:
    value, tokens = _parse_atom(tokens)
    while tokens and tokens[0] in "*/":
        op = tokens[0]
        rhs, tokens = _parse_atom(tokens[1:])
        value = value * rhs if op == "*" else value / rhs
    return value, tokens


def _parse_atom(tokens: List[str]) -> Tuple[float, List[str]]:
    if not tokens:
        raise QasmError("unexpected end of parameter expression")
    tok = tokens[0]
    if tok == "-":
        value, rest = _parse_atom(tokens[1:])
        return -value, rest
    if tok == "+":
        return _parse_atom(tokens[1:])
    if tok == "(":
        value, rest = _parse_sum(tokens[1:])
        if not rest or rest[0] != ")":
            raise QasmError("unbalanced parentheses in parameter expression")
        return value, rest[1:]
    if tok == "pi":
        return math.pi, tokens[1:]
    try:
        return float(tok), tokens[1:]
    except ValueError:
        raise QasmError(f"unexpected token {tok!r} in parameter expression")


_STMT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\(\s*(?P<params>.*)\s*\))?\s*"
    r"(?P<args>[^;()]*)$"
)


def _split_params(params: str) -> List[str]:
    """Split a parameter list on top-level commas (parens may nest)."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in params:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]
_ARG_RE = re.compile(r"^(?P<reg>[A-Za-z_][A-Za-z0-9_]*)\s*(?:\[\s*(?P<idx>\d+)\s*\])?$")


class _GateDef:
    """A user-defined gate body, inlined at application time."""

    def __init__(self, params: List[str], qargs: List[str], body: List[str]):
        self.params = params
        self.qargs = qargs
        self.body = body


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return text


def parse_qasm(text: str, name: str = "") -> QuantumCircuit:
    """Parse OpenQASM 2.0 source into a :class:`QuantumCircuit`.

    Multiple quantum registers are flattened into one contiguous index space
    in declaration order.  Measurements, barriers, classical registers and
    conditionals are skipped — they do not affect layout synthesis.
    """
    text = _strip_comments(text)
    # Pull out gate definitions first (they contain ';' inside braces).
    gate_defs: Dict[str, _GateDef] = {}

    def _collect_gate_def(match: re.Match) -> str:
        header, body = match.group(1), match.group(2)
        m = _STMT_RE.match(header.strip())
        if not m:
            raise QasmError(f"malformed gate definition header {header!r}")
        gname = m.group("name")
        params = [p.strip() for p in (m.group("params") or "").split(",") if p.strip()]
        qargs = [a.strip() for a in m.group("args").split(",") if a.strip()]
        body_stmts = [s.strip() for s in body.split(";") if s.strip()]
        gate_defs[gname] = _GateDef(params, qargs, body_stmts)
        return ""

    text = re.sub(r"gate\s+([^{]+)\{([^}]*)\}", _collect_gate_def, text)

    statements = [s.strip() for s in text.split(";") if s.strip()]
    reg_offsets: Dict[str, int] = {}
    reg_sizes: Dict[str, int] = {}
    n_qubits = 0
    gates: List[Gate] = []

    def _resolve(arg: str) -> List[int]:
        m = _ARG_RE.match(arg.strip())
        if not m:
            raise QasmError(f"malformed operand {arg!r}")
        reg = m.group("reg")
        if reg not in reg_offsets:
            raise QasmError(f"unknown quantum register {reg!r}")
        if m.group("idx") is None:
            base = reg_offsets[reg]
            return list(range(base, base + reg_sizes[reg]))
        idx = int(m.group("idx"))
        if idx >= reg_sizes[reg]:
            raise QasmError(f"index {idx} out of range for register {reg!r}")
        return [reg_offsets[reg] + idx]

    def _apply(gname: str, params: List[float], qubits: List[int]):
        nonlocal gates
        if gname in gate_defs:
            definition = gate_defs[gname]
            if len(definition.qargs) != len(qubits):
                raise QasmError(f"gate {gname!r} arity mismatch")
            pmap = dict(zip(definition.params, params))
            qmap = dict(zip(definition.qargs, qubits))
            for stmt in definition.body:
                m = _STMT_RE.match(stmt)
                if not m:
                    raise QasmError(f"malformed statement in gate body: {stmt!r}")
                inner = m.group("name")
                inner_params = []
                if m.group("params"):
                    for p in _split_params(m.group("params")):
                        inner_params.append(pmap[p] if p in pmap else _eval_param(p))
                inner_qubits = []
                for a in m.group("args").split(","):
                    a = a.strip()
                    if a not in qmap:
                        raise QasmError(f"unknown qubit {a!r} in gate body")
                    inner_qubits.append(qmap[a])
                _apply(inner, inner_params, inner_qubits)
            return
        gates.append(Gate(gname.lower(), tuple(qubits), tuple(params)))

    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        if stmt.startswith("creg") or stmt.startswith("barrier"):
            continue
        if stmt.startswith("measure") or stmt.startswith("reset") or stmt.startswith("if"):
            continue
        m = re.match(r"^qreg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$", stmt)
        if m:
            reg, size = m.group(1), int(m.group(2))
            reg_offsets[reg] = n_qubits
            reg_sizes[reg] = size
            n_qubits += size
            continue
        m = _STMT_RE.match(stmt)
        if not m:
            raise QasmError(f"cannot parse statement {stmt!r}")
        gname = m.group("name")
        params = []
        if m.group("params"):
            params = [_eval_param(p) for p in _split_params(m.group("params"))]
        operand_lists = [_resolve(a) for a in m.group("args").split(",") if a.strip()]
        if not operand_lists:
            raise QasmError(f"gate {gname!r} has no operands")
        # Broadcast whole-register operands (e.g. "h q;").
        width = max(len(ops) for ops in operand_lists)
        for ops in operand_lists:
            if len(ops) not in (1, width):
                raise QasmError(f"operand broadcast mismatch in {stmt!r}")
        for i in range(width):
            qubits = [ops[i] if len(ops) > 1 else ops[0] for ops in operand_lists]
            _apply(gname, params, qubits)

    if n_qubits == 0:
        raise QasmError("no quantum register declared")
    return QuantumCircuit(n_qubits, gates, name=name)


def load_qasm(path: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file from disk."""
    with open(path) as fp:
        return parse_qasm(fp.read(), name=path)
