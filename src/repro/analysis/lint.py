"""Pre-solve formula lint: structural diagnostics for encoder output.

The encoder families of Sec. III-A each promise a recognisable clause
shape — pairwise at-most-one matrices over StepVar selectors, act-guarded
at-least-ones, one-hot exactly-one groups, the Sinz sequential-counter
ladder for the SWAP bound.  A refactor that silently drops half an AMO
matrix does not make the solver crash; it makes it return *better-looking
wrong answers*.  This linter cross-checks the produced CNF against the
constraint-group metadata :meth:`LayoutEncoder.constraint_groups` emits, on
top of generic CNF hygiene (tautologies, duplicate clauses, variables that
never occur anywhere).

It also enforces the clause-sharing soundness invariant from the parallel
portfolio: worker-private constructs (depth guards, cardinality layers)
must put at least one literal outside the shared ``base_vars`` prefix into
every clause they add.  A purely-prefix private clause would let the CDCL
core derive prefix-only learnt clauses from worker-local bounds — exactly
the clauses ``ShareClient`` exports to siblings that do not share those
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..sat.formula import CNF
from ..sat.types import neg

ERROR = "error"
WARNING = "warning"
INFO = "info"

# Cap on per-finding diagnostics of one code; the rest fold into a summary.
_MAX_PER_CODE = 10


@dataclass
class Diagnostic:
    """One lint finding."""

    code: str
    severity: str
    message: str
    clause: Optional[int] = None  # index into cnf.clauses, when applicable
    var: Optional[int] = None  # variable index, when applicable
    group: Optional[str] = None  # constraint-group label, when applicable

    def __str__(self) -> str:
        where = ""
        if self.clause is not None:
            where = f" [clause {self.clause}]"
        elif self.var is not None:
            where = f" [var {self.var}]"
        if self.group is not None:
            where += f" [group {self.group}]"
        return f"{self.severity}: {self.code}: {self.message}{where}"


@dataclass
class LintReport:
    """The outcome of one lint pass."""

    n_vars: int
    n_clauses: int
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Output of :func:`repro.sat.preprocess_stats` when the lint was asked
    #: to also measure how much SatELite-style simplification shrinks the
    #: formula (``lint_cnf(..., simplify=True)``); ``None`` otherwise.
    preprocess: Optional[dict] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    def summary(self) -> str:
        lines = [
            f"linted {self.n_vars} vars, {self.n_clauses} clauses: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend(str(d) for d in self.diagnostics)
        if self.preprocess is not None:
            pp = self.preprocess
            if pp.get("unsatisfiable"):
                lines.append("simplify: formula refuted during preprocessing")
            else:
                lines.append(
                    "simplify: {clauses_before} -> {clauses_after} clauses "
                    "({pct:.1f}% removed), {literals_before} -> "
                    "{literals_after} literals".format(
                        pct=100 * pp["clause_reduction"], **pp
                    )
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "n_vars": self.n_vars,
            "n_clauses": self.n_clauses,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity,
                    "message": d.message,
                    "clause": d.clause,
                    "var": d.var,
                    "group": d.group,
                }
                for d in self.diagnostics
            ],
            "preprocess": self.preprocess,
        }


class _Emitter:
    """Collects diagnostics, folding floods of one code into a summary."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []
        self._counts: Dict[str, int] = {}

    def emit(self, diag: Diagnostic) -> None:
        count = self._counts.get(diag.code, 0) + 1
        self._counts[diag.code] = count
        if count <= _MAX_PER_CODE:
            self.diagnostics.append(diag)

    def finish(self) -> List[Diagnostic]:
        for code, count in sorted(self._counts.items()):
            overflow = count - _MAX_PER_CODE
            if overflow > 0:
                severity = next(
                    d.severity for d in self.diagnostics if d.code == code
                )
                self.diagnostics.append(
                    Diagnostic(
                        code,
                        severity,
                        f"... and {overflow} more {code} finding(s) suppressed",
                    )
                )
        return self.diagnostics


def _clause_keys(cnf: CNF) -> FrozenSet[Tuple[int, ...]]:
    return frozenset(tuple(sorted(set(c))) for c in cnf.clauses)


def _has(keys: FrozenSet[Tuple[int, ...]], lits: Sequence[int]) -> bool:
    return tuple(sorted(set(lits))) in keys


def lint_cnf(
    cnf: CNF,
    groups: Optional[Sequence[dict]] = None,
    share_prefix: Optional[int] = None,
    simplify: bool = False,
) -> LintReport:
    """Lint a CNF, optionally against encoder constraint-group metadata.

    ``groups`` is the output of :meth:`LayoutEncoder.constraint_groups`;
    ``share_prefix`` is the encoder's ``base_vars`` (the clause-sharing
    window).  Both default to plain CNF hygiene checks only.

    ``simplify=True`` additionally runs SatELite-style preprocessing
    (:func:`repro.sat.preprocess`) on a copy of the formula and attaches
    the size-reduction summary to :attr:`LintReport.preprocess`.  When a
    ``share_prefix`` is given those variables are frozen, so the ratios
    reflect what the synthesis pipeline itself is allowed to remove.
    """
    out = _Emitter()
    seen_clauses: Dict[Tuple[int, ...], int] = {}
    occurs = bytearray(cnf.n_vars)
    for idx, clause in enumerate(cnf.clauses):
        lits = list(clause)
        distinct = set(lits)
        for lit in distinct:
            occurs[lit >> 1] = 1
        if not lits:
            out.emit(
                Diagnostic(
                    "empty-clause",
                    ERROR,
                    "formula contains the empty clause (trivially UNSAT)",
                    clause=idx,
                )
            )
            continue
        if len(distinct) < len(lits):
            out.emit(
                Diagnostic(
                    "duplicate-literal",
                    INFO,
                    "clause repeats a literal",
                    clause=idx,
                )
            )
        if any((lit ^ 1) in distinct for lit in distinct):
            out.emit(
                Diagnostic(
                    "tautology",
                    WARNING,
                    "clause contains a literal and its negation",
                    clause=idx,
                )
            )
            continue
        key = tuple(sorted(distinct))
        first = seen_clauses.setdefault(key, idx)
        if first != idx:
            out.emit(
                Diagnostic(
                    "duplicate-clause",
                    WARNING,
                    f"clause duplicates clause {first}",
                    clause=idx,
                )
            )
    for var in range(cnf.n_vars):
        if not occurs[var]:
            out.emit(
                Diagnostic(
                    "unused-var",
                    WARNING,
                    "variable occurs in no clause (unconstrained)",
                    var=var,
                )
            )
    if groups:
        keys = frozenset(seen_clauses)
        for group in groups:
            _lint_group(out, cnf, keys, group, share_prefix)
    pp = None
    if simplify:
        from ..sat import Unsatisfiable, preprocess, preprocess_stats

        frozen = range(share_prefix) if share_prefix is not None else ()
        try:
            simplified, _recon = preprocess(cnf, frozen=frozen)
        except Unsatisfiable:
            pp = {"unsatisfiable": True}
        else:
            pp = preprocess_stats(cnf, simplified)
    return LintReport(
        n_vars=cnf.n_vars,
        n_clauses=cnf.num_clauses,
        diagnostics=out.finish(),
        preprocess=pp,
    )


def _lint_group(
    out: _Emitter,
    cnf: CNF,
    keys: FrozenSet[Tuple[int, ...]],
    group: dict,
    share_prefix: Optional[int],
) -> None:
    kind = group.get("kind")
    label = group.get("label")
    if kind in ("amo", "exactly_one"):
        lits = list(group["lits"])
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                if not _has(keys, [neg(lits[i]), neg(lits[j])]):
                    out.emit(
                        Diagnostic(
                            "amo-missing-pair",
                            ERROR,
                            f"at-most-one lacks the ({i},{j}) exclusion pair",
                            group=label,
                        )
                    )
    if kind in ("alo", "exactly_one"):
        lits = list(group["lits"])
        guard = group.get("guard")
        expected = ([neg(guard)] if guard is not None else []) + lits
        if not _has(keys, expected):
            out.emit(
                Diagnostic(
                    "alo-missing",
                    ERROR,
                    "at-least-one clause absent"
                    + (" (guarded form)" if guard is not None else ""),
                    group=label,
                )
            )
    if kind == "ladder":
        _lint_ladder(out, keys, group)
    if kind == "private" and share_prefix is not None:
        lo, hi = group.get("clause_range", (0, 0))
        lit_limit = 2 * share_prefix
        for idx in range(lo, min(hi, len(cnf.clauses))):
            clause = cnf.clauses[idx]
            if clause and all(lit < lit_limit for lit in clause):
                out.emit(
                    Diagnostic(
                        "share-prefix-leak",
                        ERROR,
                        "worker-private clause lies entirely inside the "
                        "shared variable prefix; consequences of it could "
                        "be exported to workers without this bound",
                        clause=idx,
                        group=label,
                    )
                )


def _lint_ladder(out: _Emitter, keys: FrozenSet[Tuple[int, ...]], group: dict) -> None:
    """Verify a Sinz sequential-counter register block (see
    ``repro.encodings.cardinality._counter_registers``)."""
    label = group.get("label")
    inputs = list(group["inputs"])
    rows = [list(row) for row in group["rows"]]
    if len(rows) != len(inputs):
        out.emit(
            Diagnostic(
                "ladder-broken",
                ERROR,
                f"{len(inputs)} inputs but {len(rows)} register rows",
                group=label,
            )
        )
        return
    for i, row in enumerate(rows):
        if not row:
            out.emit(
                Diagnostic(
                    "ladder-broken", ERROR, f"row {i} is empty", group=label
                )
            )
            continue
        if not _has(keys, [neg(inputs[i]), row[0]]):
            out.emit(
                Diagnostic(
                    "ladder-broken",
                    ERROR,
                    f"missing seed clause x_{i} -> s[{i}][0]",
                    group=label,
                )
            )
        if i == 0:
            continue
        prev = rows[i - 1]
        for j in range(len(row)):
            if j < len(prev) and not _has(keys, [neg(prev[j]), row[j]]):
                out.emit(
                    Diagnostic(
                        "ladder-broken",
                        ERROR,
                        f"missing carry clause s[{i - 1}][{j}] -> s[{i}][{j}]",
                        group=label,
                    )
                )
            if (
                j >= 1
                and j - 1 < len(prev)
                and not _has(keys, [neg(inputs[i]), neg(prev[j - 1]), row[j]])
            ):
                out.emit(
                    Diagnostic(
                        "ladder-broken",
                        ERROR,
                        f"missing increment clause x_{i} & s[{i - 1}][{j - 1}]"
                        f" -> s[{i}][{j}]",
                        group=label,
                    )
                )


def lint_encoder(
    circuit,
    device,
    horizon: int,
    config=None,
    transition_based: bool = False,
    initial_mapping: Optional[List[int]] = None,
    depth_bound: Optional[int] = None,
    swap_bound: Optional[int] = None,
    simplify: bool = False,
) -> LintReport:
    """Encode an instance onto a CNF sink and lint the result.

    Optional ``depth_bound``/``swap_bound`` also build the incremental
    bound machinery (depth guard, SWAP cardinality layer) so its clauses —
    including the share-prefix invariant — are covered by the lint.
    ``simplify=True`` reports how much preprocessing shrinks the encoding
    with the share prefix frozen (see :func:`lint_cnf`).
    """
    from ..core.encoder import LayoutEncoder  # runtime import; avoids a cycle
    from ..smt.context import cnf_context

    encoder = LayoutEncoder(
        circuit,
        device,
        horizon,
        config=config,
        transition_based=transition_based,
        ctx=cnf_context(),
        initial_mapping=initial_mapping,
    )
    encoder.encode()
    if depth_bound is not None:
        encoder.depth_guard(depth_bound)
    if swap_bound is not None:
        encoder.init_swap_counter(max_bound=swap_bound)
        encoder.swap_guard(max(0, swap_bound - 1))
    return lint_cnf(
        encoder.ctx.sink,
        groups=encoder.constraint_groups(),
        share_prefix=encoder.base_vars,
        simplify=simplify,
    )
