"""Static verification layer: lint, certificates, sanitizer, contracts.

Five pillars (see docs/ARCHITECTURE.md):

* :mod:`repro.analysis.lint` — pre-solve CNF/encoding diagnostics checked
  against the constraint-group metadata the encoder emits,
* :mod:`repro.sat.proof` — the watched-literal RUP proof checker the
  certificates are built on (lives in the SAT layer; re-exported here),
* :mod:`repro.analysis.certify` — machine-checkable per-synthesis
  certificates: validated model plus checked refutations of the
  next-tighter bounds,
* :mod:`repro.analysis.sanitize` — the opt-in runtime sanitizer
  (``Solver(sanitize=...)`` / ``REPRO_SANITIZE``): solver-state, ring,
  proof-discipline and service invariant checks with zero cost when off,
* :mod:`repro.analysis.contracts` — the project contract linter
  (``python -m repro.analysis.contracts src/``): an AST pass enforcing
  the cross-module invariants the docs promise.
"""

from ..sat.proof import ProofError, check_unsat_proof, check_unsat_proof_slow
from .certify import (
    Certificate,
    CertificationError,
    RefutationCertificate,
    RefutationRecord,
    certify_bound,
    check_records,
    mirror_encoder,
)
from .contracts import RULES, ContractRule, Violation, contract_violations
from .lint import Diagnostic, LintReport, lint_cnf, lint_encoder
from .sanitize import (
    SANITIZE_MODES,
    CheckedProofLog,
    RingSanitizer,
    SanitizeError,
    SolverSanitizer,
    check_permutation,
    check_prover_assignment,
    compare_backends,
    env_enabled,
    fuzz_ring,
    resolve_sanitize,
    state_digest,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "lint_cnf",
    "lint_encoder",
    "Certificate",
    "CertificationError",
    "RefutationCertificate",
    "RefutationRecord",
    "certify_bound",
    "check_records",
    "mirror_encoder",
    "ProofError",
    "check_unsat_proof",
    "check_unsat_proof_slow",
    "SANITIZE_MODES",
    "CheckedProofLog",
    "RingSanitizer",
    "SanitizeError",
    "SolverSanitizer",
    "check_permutation",
    "check_prover_assignment",
    "compare_backends",
    "env_enabled",
    "fuzz_ring",
    "resolve_sanitize",
    "state_digest",
    "RULES",
    "ContractRule",
    "Violation",
    "contract_violations",
]
