"""Static verification layer: formula lint and optimality certificates.

Three pillars (see docs/ARCHITECTURE.md):

* :mod:`repro.analysis.lint` — pre-solve CNF/encoding diagnostics checked
  against the constraint-group metadata the encoder emits,
* :mod:`repro.sat.proof` — the watched-literal RUP proof checker the
  certificates are built on (lives in the SAT layer; re-exported here),
* :mod:`repro.analysis.certify` — machine-checkable per-synthesis
  certificates: validated model plus checked refutations of the
  next-tighter bounds.
"""

from ..sat.proof import ProofError, check_unsat_proof, check_unsat_proof_slow
from .certify import (
    Certificate,
    CertificationError,
    RefutationCertificate,
    RefutationRecord,
    certify_bound,
    check_records,
    mirror_encoder,
)
from .lint import Diagnostic, LintReport, lint_cnf, lint_encoder

__all__ = [
    "Diagnostic",
    "LintReport",
    "lint_cnf",
    "lint_encoder",
    "Certificate",
    "CertificationError",
    "RefutationCertificate",
    "RefutationRecord",
    "certify_bound",
    "check_records",
    "mirror_encoder",
    "ProofError",
    "check_unsat_proof",
    "check_unsat_proof_slow",
]
