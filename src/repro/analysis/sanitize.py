"""Runtime sanitizer for the solver, the clause ring, and the service.

PRs 7-8 multiplied the ways the engine can go *silently* wrong: a C kernel
that mirrors the Python propagation loops byte for byte over raw buffer
addresses, a lock-guarded shared-memory clause ring with per-reader lap
detection, prover-only shared lower-bound raises in region racing, and RUP
proof logs that must survive inprocessing.  Each of those carries
invariants that no unit test exercises continuously.  This module is the
ASan/TSan-style debug layer that does: it is selected per solver with
``Solver(sanitize=...)`` or globally with the ``REPRO_SANITIZE``
environment variable, costs *nothing* when off (the solver holds a single
``None`` attribute and the hot loops are untouched), and when on validates
the engine's own state at its level-0 safe points.

Pieces:

* :class:`SolverSanitizer` — invoked by the solver at safe points (solve
  entry, every restart, solve exit).  Checks trail/level monotonicity and
  reason-implication soundness, typed-buffer <-> arena generation
  agreement (an arena buffer must never be replaced without a
  ``version`` bump — the contract the native kernel's address cache
  depends on), and, in ``full`` mode, complete watcher coverage plus the
  python/C watch-list mirror comparison.
* :class:`CheckedProofLog` — a drop-in ``solver.proof`` list that enforces
  proof discipline online: every ``("d", lits)`` must delete a clause
  with a live ``("a", lits)`` (or input) line, and in ``full`` mode every
  emitted clause must be RUP against the current database *at emission
  time*, via a shadow :class:`repro.sat.proof.RupChecker`.
* :class:`RingSanitizer` / :func:`fuzz_ring` — validates
  :class:`repro.sat.sharing.SharedClauseRing` header/cursor/lap
  invariants, plus a (optionally cross-process) fuzz driver that injects
  lagging readers and oversize records and verifies every decoded batch.
* :func:`check_permutation` / :func:`check_prover_assignment` — the
  service-level checks: cache-translation permutations must be
  bijections, and only full-device prover workers may raise the shared
  lower bound in :class:`repro.core.parallel.ParallelDescent`.
* :func:`compare_backends` — the python-vs-native differential: the same
  formula through both kernels must produce identical results, trails and
  proof logs (the byte-for-byte equivalence claim of PR 7).

Modes (:func:`resolve_sanitize`): ``"off"`` (default), ``"light"``
(generation + trail checks at safe points), ``"full"`` (light plus
watcher completeness, kernel mirror comparison, RUP-at-emission proof
checking, and ring checks when a shared-memory share client is attached).
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sat.proof import RupChecker
from ..sat.sharing import (
    _H_DROPPED,
    _H_PUBLISHED,
    _H_WRITE,
    SharedClauseRing,
    ShmShareEndpoint,
)
from ..sat.solver import NO_CLAUSE, _addr, _packed_reason_lits
from ..sat.types import FALSE, TRUE, UNDEF

#: Environment variable consulted when ``Solver(sanitize=None)`` (the
#: default) — same contract as ``REPRO_KERNEL`` for backend selection.
ENV_VAR = "REPRO_SANITIZE"

SANITIZE_OFF = "off"
SANITIZE_LIGHT = "light"
SANITIZE_FULL = "full"
SANITIZE_MODES: Tuple[str, ...] = (SANITIZE_OFF, SANITIZE_LIGHT, SANITIZE_FULL)

#: Arena buffers whose raw addresses the native kernel caches
#: (``Solver._k_bind_arena``); replacing any of them without bumping
#: ``ClauseArena.version`` leaves the kernel reading freed memory.
_ARENA_BUFS = ("lits", "start", "size", "spos", "learnt", "act", "touch")

#: Per-variable buffers bound by ``Solver._k_bind_vars``; they are only
#: ever reallocated by ``new_var`` growth, which changes ``n_vars``.
_VAR_BUFS = ("assigns_lit", "polarity", "seen", "level", "reason", "trail")


class SanitizeError(AssertionError):
    """An engine invariant violation caught by the sanitizer.

    Subclasses :class:`AssertionError` so existing test harnesses that
    expect invariant checks to assert keep working; carries the safe
    point / structure where the violation was observed in ``location``.
    """

    def __init__(self, location: str, message: str) -> None:
        super().__init__(f"[sanitize] {location}: {message}")
        self.location = location


def resolve_sanitize(mode: Optional[str] = None) -> str:
    """Resolve a sanitize choice to a concrete mode.

    ``None`` consults the ``REPRO_SANITIZE`` environment variable (empty
    or unset means ``"off"``); an explicit mode always wins.  Unknown
    modes raise with the valid choices, mirroring
    :func:`repro.sat.kernel.resolve_backend`.
    """
    choice = mode if mode is not None else (os.environ.get(ENV_VAR) or SANITIZE_OFF)
    if choice not in SANITIZE_MODES:
        raise ValueError(
            f"unknown sanitize mode {choice!r}: expected one of {SANITIZE_MODES}"
        )
    return choice


def env_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` selects a non-off mode.

    The cheap gate used by code that has no per-instance knob (the
    service cache translation, the parallel lower-bound race).
    """
    return (os.environ.get(ENV_VAR) or SANITIZE_OFF) != SANITIZE_OFF


def _ckey(lits: Iterable[int]) -> Tuple[int, ...]:
    """Canonical clause key: sorted, deduplicated literal tuple.

    Matches the keying of :class:`repro.sat.proof.RupChecker`'s deletion
    index, so the discipline checker and the offline checker agree on
    what "the same clause" means.
    """
    return tuple(sorted(set(lits)))


# ----------------------------------------------------------------------
# Online proof-log discipline
# ----------------------------------------------------------------------


class CheckedProofLog(list):
    """A ``solver.proof`` list that verifies discipline as lines are emitted.

    Two guarantees, checked *online* so a violation is caught at the
    emitting call site instead of at offline replay:

    * **add-before-delete** — every ``("d", lits)`` step must have a live
      copy of the clause: an input clause registered via
      :meth:`note_input` or a previous un-deleted ``("a", lits)`` step.
    * **RUP at emission** (``rup=True``, i.e. ``full`` mode) — every
      ``("a", lits)`` step must be derivable by reverse unit propagation
      from the current database, checked with a shadow
      :class:`~repro.sat.proof.RupChecker` that mirrors adds/deletes.
    """

    def __init__(self, rup: bool = False) -> None:
        super().__init__()
        self._live: Dict[Tuple[int, ...], int] = {}
        self._checker: Optional[RupChecker] = RupChecker(0) if rup else None
        self.inputs = 0

    def note_input(self, lits: Sequence[int]) -> None:
        """Register one original (problem) clause as live in the database."""
        key = _ckey(lits)
        self._live[key] = self._live.get(key, 0) + 1
        self.inputs += 1
        if self._checker is not None:
            self._checker.add_clause(list(lits))

    def append(self, step: tuple) -> None:  # type: ignore[override]
        tag, lits = step
        key = _ckey(lits)
        if tag == "a":
            if self._checker is not None and not self._checker.is_rup(list(lits)):
                raise SanitizeError(
                    "proof",
                    f"emitted clause {tuple(lits)} is not RUP against the "
                    "current database",
                )
            self._live[key] = self._live.get(key, 0) + 1
            if self._checker is not None:
                self._checker.add_clause(list(lits))
        elif tag == "d":
            live = self._live.get(key, 0)
            if live <= 0:
                raise SanitizeError(
                    "proof",
                    f"delete of {tuple(lits)} precedes its add (no live copy "
                    "in the database)",
                )
            self._live[key] = live - 1
            if self._checker is not None:
                self._checker.delete_clause(list(lits))
        else:  # pragma: no cover - solver only emits "a"/"d"
            raise SanitizeError("proof", f"unknown proof step tag {tag!r}")
        super().append(step)


# ----------------------------------------------------------------------
# Solver-state checks
# ----------------------------------------------------------------------


def state_digest(solver: Any) -> str:
    """Stable digest of the solver's externally visible search state.

    Covers the assignment trail (order included), per-literal truth
    values, decision levels and the ok flag — the state both kernels
    must agree on byte for byte.
    """
    ts = solver.trail_size
    payload = repr(
        (
            solver.n_vars,
            solver.ok,
            list(solver.trail[:ts]),
            list(solver.assigns_lit),
            list(solver.level),
            list(solver.trail_lim),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class SolverSanitizer:
    """Safe-point invariant checker attached to one :class:`~repro.sat.Solver`.

    Constructed by ``Solver.__init__`` when sanitizing is on; the solver
    calls :meth:`at_safe_point` at its level-0 safe points (solve entry,
    each restart, solve exit) and :meth:`note_input_clause` from
    ``add_clause`` when proof logging is active.  The hot propagation
    loop is never touched: a solver with sanitizing off holds
    ``_sanitizer = None`` and pays exactly one identity check per safe
    point.
    """

    def __init__(self, solver: Any, mode: str) -> None:
        self.solver = solver
        self.mode = mode
        self.checks_run = 0
        self.ring = RingSanitizer()
        self._arena_snap: Optional[Tuple[int, Tuple[int, ...]]] = None
        self._var_snap: Optional[Tuple[int, Tuple[int, ...]]] = None

    # -- hooks called by the solver ------------------------------------

    def checked_proof_log(self) -> CheckedProofLog:
        """The proof list the solver should use instead of a plain list."""
        return CheckedProofLog(rup=self.mode == SANITIZE_FULL)

    def note_input_clause(self, lits: Sequence[int]) -> None:
        """Register an original clause with the proof discipline checker."""
        proof = self.solver.proof
        if isinstance(proof, CheckedProofLog):
            proof.note_input(lits)

    def at_safe_point(self, point: str) -> None:
        """Run the mode's check battery; raises :class:`SanitizeError`."""
        self.checks_run += 1
        self.check_generations(point)
        self.check_trail(point)
        if self.mode == SANITIZE_FULL:
            self.check_watchers(point)
            share = self.solver.share
            ep = getattr(share, "endpoint", None) if share is not None else None
            if isinstance(ep, ShmShareEndpoint) and ep._shm is not None:
                self.ring.check_endpoint(ep, location=point)

    # -- individual checks ---------------------------------------------

    def check_generations(self, point: str = "check") -> None:
        """Typed-buffer <-> arena generation agreement.

        The native kernel caches raw buffer addresses and relies on
        ``arena.version`` / ``n_vars`` to know when to rebind
        (``Solver._k_sync``).  Two invariants: the kernel's generation
        markers never run *ahead* of the authoritative counters, and a
        buffer address never changes while its generation counter stands
        still (that is precisely "replaced without a version bump" — the
        contract ``repro.analysis.contracts`` enforces statically).
        """
        s = self.solver
        if s._kern is None:
            return
        arena = s.arena
        if s._k_aver > arena.version:
            raise SanitizeError(
                point,
                f"kernel arena generation {s._k_aver} is ahead of "
                f"arena.version {arena.version}",
            )
        if s._k_nvars > s.n_vars:
            raise SanitizeError(
                point,
                f"kernel variable generation {s._k_nvars} is ahead of "
                f"n_vars {s.n_vars}",
            )
        addrs = tuple(_addr(getattr(arena, name)) for name in _ARENA_BUFS)
        snap = self._arena_snap
        if snap is not None and snap[0] == arena.version and snap[1] != addrs:
            moved = [
                name
                for name, old, new in zip(_ARENA_BUFS, snap[1], addrs)
                if old != new
            ]
            raise SanitizeError(
                point,
                f"arena buffer(s) {moved} replaced while arena.version "
                f"stayed at {arena.version} (generation skew: the kernel's "
                "cached addresses are stale)",
            )
        self._arena_snap = (arena.version, addrs)
        vaddrs = tuple(_addr(getattr(s, name)) for name in _VAR_BUFS)
        vsnap = self._var_snap
        if vsnap is not None and vsnap[0] == s.n_vars and vsnap[1] != vaddrs:
            moved = [
                name for name, old, new in zip(_VAR_BUFS, vsnap[1], vaddrs) if old != new
            ]
            raise SanitizeError(
                point,
                f"per-variable buffer(s) {moved} replaced while n_vars "
                f"stayed at {s.n_vars}",
            )
        self._var_snap = (s.n_vars, vaddrs)

    def check_trail(self, point: str = "check") -> None:
        """Trail/level monotonicity and reason-implication soundness.

        * decision-level marks are non-decreasing positions within the
          trail (equal marks are the dummy levels of already-satisfied
          assumptions);
        * every trail literal is TRUE, its negation FALSE, no variable
          appears twice, and its recorded level matches the number of
          decision marks at or before its position;
        * exactly ``trail_size`` variables are assigned, and the
          per-literal truth table is complementary;
        * every non-decision reason clause contains the implied literal,
          with every *other* literal FALSE and assigned earlier on the
          trail (the implication actually was an implication).
        """
        s = self.solver
        ts = s.trail_size
        lims: List[int] = list(s.trail_lim)
        for a, b in zip(lims, lims[1:]):
            if b < a:
                raise SanitizeError(point, f"decision marks not monotonic: {lims}")
        if lims and not (0 <= lims[0] and lims[-1] <= ts):
            raise SanitizeError(
                point, f"decision marks {lims} outside trail of size {ts}"
            )
        pos: Dict[int, int] = {}
        level_idx = 0
        for i in range(ts):
            lit = s.trail[i]
            var = lit >> 1
            if var in pos:
                raise SanitizeError(
                    point, f"variable {var} assigned twice on the trail"
                )
            pos[var] = i
            if s.assigns_lit[lit] != TRUE or s.assigns_lit[lit ^ 1] != FALSE:
                raise SanitizeError(
                    point,
                    f"trail literal {lit} at position {i} is not "
                    "TRUE/FALSE-complementary in assigns",
                )
            while level_idx < len(lims) and lims[level_idx] <= i:
                level_idx += 1
            if s.level[var] != level_idx:
                raise SanitizeError(
                    point,
                    f"variable {var} at trail position {i} records level "
                    f"{s.level[var]}, expected {level_idx}",
                )
        assigned = sum(
            1
            for v in range(s.n_vars)
            if s.assigns_lit[2 * v] != UNDEF or s.assigns_lit[2 * v + 1] != UNDEF
        )
        if assigned != ts:
            raise SanitizeError(
                point,
                f"{assigned} variables assigned but the trail holds {ts}",
            )
        for v in range(s.n_vars):
            a, b = s.assigns_lit[2 * v], s.assigns_lit[2 * v + 1]
            if (a == UNDEF) != (b == UNDEF) or (a != UNDEF and a == b):
                raise SanitizeError(
                    point, f"assigns for variable {v} not complementary: {a},{b}"
                )
        for var, i in pos.items():
            # Root (level-0) literals keep their trail slot but their reason
            # clause may legally be deleted (and its cref later recycled) by
            # inprocessing — _clean_top_level logs the unit to the proof
            # instead.  Only reasons above level 0 are locked and checkable.
            if s.level[var] == 0:
                continue
            lit = s.trail[i]
            r = s.reason[var]
            if r == NO_CLAUSE:
                continue
            if r < NO_CLAUSE:
                others: Sequence[int] = _packed_reason_lits(r)
            else:
                clause = s.arena.literals(r)
                if lit not in clause:
                    raise SanitizeError(
                        point,
                        f"reason clause {r} of literal {lit} does not "
                        f"contain it: {clause}",
                    )
                others = [o for o in clause if o != lit]
            for o in others:
                if s.assigns_lit[o] != FALSE:
                    raise SanitizeError(
                        point,
                        f"reason of {lit} has non-false antecedent {o}",
                    )
                opos = pos.get(o >> 1)
                if opos is None or opos >= i:
                    raise SanitizeError(
                        point,
                        f"reason antecedent {o} of {lit} was assigned at "
                        f"trail position {opos}, not before {i}",
                    )

    def check_watchers(self, point: str = "check") -> None:
        """Watcher completeness + python/C mirror agreement.

        Delegates to :meth:`repro.sat.Solver.check_watch_invariants`
        (arena span/accounting invariants, every live clause watched on
        its first two literals, binary/ternary scan lists complete, and
        — under the native kernel — the C-side watch lists byte-equal to
        the authoritative Python ones), converting its assertion into a
        located :class:`SanitizeError`.
        """
        try:
            self.solver.check_watch_invariants()
        except AssertionError as exc:
            if isinstance(exc, SanitizeError):
                raise
            raise SanitizeError(point, str(exc)) from exc


# ----------------------------------------------------------------------
# Shared-memory ring checks + fuzz driver
# ----------------------------------------------------------------------


class RingSanitizer:
    """Header/cursor/lap invariant checker for the shared clause ring.

    Observations are differential: each check snapshots the counters and
    verifies monotonicity against the previous snapshot of the same
    object, which is what catches the "reader lapped but the shared
    dropped counter was not bumped" class of bug — a lap is only legal
    when it is accounted.
    """

    def __init__(self) -> None:
        self._ring_snaps: Dict[int, Tuple[int, int, int]] = {}
        self._ep_snaps: Dict[int, Tuple[int, int, int, int]] = {}

    def check_ring(self, ring: SharedClauseRing, location: str = "ring") -> None:
        hdr = ring._hdr
        if hdr is None:  # closed — nothing to validate
            return
        w = int(hdr[_H_WRITE])
        pub = int(hdr[_H_PUBLISHED])
        drop = int(hdr[_H_DROPPED])
        if w < 0 or pub < 0 or drop < 0:
            raise SanitizeError(
                location, f"negative ring header counters: {(w, pub, drop)}"
            )
        if w > 0 and pub == 0:
            raise SanitizeError(
                location,
                f"ring advanced to write position {w} with zero published "
                "batches",
            )
        snap = self._ring_snaps.get(id(ring))
        if snap is not None and (w < snap[0] or pub < snap[1] or drop < snap[2]):
            raise SanitizeError(
                location,
                f"ring header counters went backwards: {snap} -> {(w, pub, drop)}",
            )
        self._ring_snaps[id(ring)] = (w, pub, drop)

    def check_endpoint(self, ep: ShmShareEndpoint, location: str = "endpoint") -> None:
        if ep._shm is None:  # not attached / closed — nothing to validate
            return
        hdr = ep._hdr
        assert hdr is not None
        w = int(hdr[_H_WRITE])
        drop = int(hdr[_H_DROPPED])
        cur = int(ep.cursor)
        lapped = int(ep.lapped)
        if not 0 <= cur <= w:
            raise SanitizeError(
                location,
                f"reader {ep.worker_id} cursor {cur} outside [0, write={w}]",
            )
        snap = self._ep_snaps.get(id(ep))
        if snap is not None:
            w0, cur0, lapped0, drop0 = snap
            if w < w0 or cur < cur0 or lapped < lapped0 or drop < drop0:
                raise SanitizeError(
                    location,
                    f"reader {ep.worker_id} counters went backwards: "
                    f"{snap} -> {(w, cur, lapped, drop)}",
                )
            if lapped - lapped0 > drop - drop0:
                raise SanitizeError(
                    location,
                    f"reader {ep.worker_id} recorded {lapped - lapped0} "
                    f"lap(s) but the shared dropped counter moved by "
                    f"{drop - drop0}: lap without drop accounting",
                )
        self._ep_snaps[id(ep)] = (w, cur, lapped, drop)


#: Context key every fuzz batch is published under.
_FUZZ_KEY = ("fuzz",)


def _fuzz_clause_base(wid: int, batch: int, clause: int) -> int:
    return wid * 1_000_000 + batch * 1_000 + clause * 50


def _fuzz_writer(
    ep: ShmShareEndpoint,
    batches: int,
    oversize_every: int,
    seed: int,
    delay_s: float = 0.0,
) -> None:
    """Publish ``batches`` patterned batches (module-level: spawnable).

    ``delay_s`` paces the writer so a cross-process reader actually
    interleaves with it — an unpaced writer drains its whole batch list
    in microseconds, before the reader observes anything but the lap.
    """
    rng = random.Random(seed)
    try:
        for b in range(batches):
            if delay_s:
                time.sleep(delay_s)
            if oversize_every and b % oversize_every == oversize_every - 1:
                # Deliberately larger than the whole ring: must be
                # rejected at publish time and counted as dropped.
                lits = tuple(range(ep.capacity + 8))
                if ep.publish(_FUZZ_KEY, [(lits, 2)]):
                    raise SanitizeError(
                        "fuzz-writer", "oversize batch was accepted"
                    )
                continue
            clauses = []
            for c in range(1 + rng.randrange(4)):
                size = 1 + rng.randrange(6)
                base = _fuzz_clause_base(ep.worker_id, b, c)
                clauses.append((tuple(base + j for j in range(size)), 2 + c))
            if not ep.publish(_FUZZ_KEY, clauses):
                raise SanitizeError("fuzz-writer", "in-bounds batch rejected")
    finally:
        ep.close()


def fuzz_ring(
    capacity_words: int = 512,
    n_writers: int = 3,
    batches_per_writer: int = 64,
    oversize_every: int = 13,
    drain_every: int = 29,
    processes: bool = False,
    seed: int = 1,
    writer_delay_s: float = 0.0,
) -> Dict[str, int]:
    """Storm the clause ring and validate every observable invariant.

    ``n_writers`` writers publish patterned batches (every
    ``oversize_every``-th one deliberately exceeding the whole ring); one
    reader drains only every ``drain_every``-th poll, so it repeatedly
    laps and must take the skip-to-head path.  With ``processes=True``
    the writers run in real child processes (exercising endpoint
    pickling and the cross-process lock); otherwise they run inline.

    Every decoded batch is verified against the writer pattern (framing
    corruption cannot decode back to consecutive-literal clauses), the
    header counters are checked via :class:`RingSanitizer`, and the final
    dropped count must equal reader laps plus rejected oversize batches
    exactly.  Returns the counters; raises :class:`SanitizeError` on any
    violation.
    """
    mp_ctx = None
    if processes:
        import multiprocessing

        # The ring's publish lock must come from the same start-method
        # context as the writer processes (a fork-context SemLock cannot
        # cross into a spawn child).  Spawn is deliberate: it exercises
        # endpoint pickling (__getstate__/__setstate__ re-attachment).
        mp_ctx = multiprocessing.get_context("spawn")
    ring = SharedClauseRing(capacity_words, ctx=mp_ctx)
    san = RingSanitizer()
    reader = ring.endpoint(0)
    writer_eps = [ring.endpoint(wid) for wid in range(1, n_writers + 1)]
    decoded_batches = 0
    decoded_clauses = 0

    def drain_and_verify() -> None:
        nonlocal decoded_batches, decoded_clauses
        for key, clauses in reader.drain():
            if key != _FUZZ_KEY:
                raise SanitizeError("fuzz", f"decoded batch under wrong key {key!r}")
            if not clauses:
                raise SanitizeError("fuzz", "decoded an empty batch")
            for lits, lbd in clauses:
                base = lits[0]
                wid = base // 1_000_000
                if not 1 <= wid <= n_writers:
                    raise SanitizeError(
                        "fuzz", f"decoded clause from unknown writer {wid}"
                    )
                if list(lits) != list(range(base, base + len(lits))):
                    raise SanitizeError(
                        "fuzz",
                        f"decoded clause {lits} lost the consecutive "
                        "writer pattern (record framing corrupted)",
                    )
                decoded_clauses += 1
            decoded_batches += 1
        san.check_ring(ring, "fuzz")
        san.check_endpoint(reader, "fuzz")

    try:
        if processes:
            assert mp_ctx is not None
            procs = [
                mp_ctx.Process(
                    target=_fuzz_writer,
                    args=(
                        ep,
                        batches_per_writer,
                        oversize_every,
                        seed + i,
                        writer_delay_s,
                    ),
                )
                for i, ep in enumerate(writer_eps)
            ]
            for p in procs:
                p.start()
            polls = 0
            while any(p.is_alive() for p in procs):
                polls += 1
                time.sleep(0.0002)
                if polls % drain_every == 0:
                    drain_and_verify()
            for p in procs:
                p.join()
                if p.exitcode != 0:
                    raise SanitizeError(
                        "fuzz", f"writer process exited with {p.exitcode}"
                    )
        else:
            # Inline interleaving: run each writer one batch at a time in
            # round-robin, draining rarely so the reader laps.
            rngs = [random.Random(seed + i) for i in range(n_writers)]
            step = 0
            for b in range(batches_per_writer):
                for i, ep in enumerate(writer_eps):
                    step += 1
                    if oversize_every and b % oversize_every == oversize_every - 1:
                        lits = tuple(range(ep.capacity + 8))
                        if ep.publish(_FUZZ_KEY, [(lits, 2)]):
                            raise SanitizeError(
                                "fuzz-writer", "oversize batch was accepted"
                            )
                        continue
                    clauses = []
                    for c in range(1 + rngs[i].randrange(4)):
                        size = 1 + rngs[i].randrange(6)
                        base = _fuzz_clause_base(ep.worker_id, b, c)
                        clauses.append(
                            (tuple(base + j for j in range(size)), 2 + c)
                        )
                    if not ep.publish(_FUZZ_KEY, clauses):
                        raise SanitizeError(
                            "fuzz-writer", "in-bounds batch rejected"
                        )
                    if step % drain_every == 0:
                        drain_and_verify()
        drain_and_verify()
        hdr = ring._hdr
        assert hdr is not None
        published = int(hdr[_H_PUBLISHED])
        dropped = int(hdr[_H_DROPPED])
        oversize = (
            n_writers * (batches_per_writer // oversize_every)
            if oversize_every
            else 0
        )
        if dropped != reader.lapped + oversize:
            raise SanitizeError(
                "fuzz",
                f"dropped counter {dropped} != reader laps {reader.lapped} "
                f"+ oversize rejects {oversize}",
            )
        return {
            "published": published,
            "dropped": dropped,
            "laps": reader.lapped,
            "oversize": oversize,
            "decoded_batches": decoded_batches,
            "decoded_clauses": decoded_clauses,
        }
    finally:
        reader.close()
        if not processes:
            for ep in writer_eps:
                ep.close()
        ring.close(unlink=True)


# ----------------------------------------------------------------------
# Service-level checks
# ----------------------------------------------------------------------


def check_permutation(perm: Sequence[int], n: Optional[int] = None) -> None:
    """Require ``perm`` to be a bijection over ``range(n)``.

    The service cache translates a canonical-form result back through the
    relabeling permutation (``initial_mapping[q] = canon_map[perm[q]]``,
    see ``repro.service.server``); a non-bijective ``perm`` would silently
    map two logical qubits to one physical qubit.
    """
    size = len(perm) if n is None else n
    if len(perm) != size or sorted(perm) != list(range(size)):
        raise SanitizeError(
            "cache-translation",
            f"not a permutation of range({size}): {list(perm)!r}",
        )


def check_prover_assignment(
    prover_wids: Iterable[int], regions: Sequence[Optional[Any]]
) -> None:
    """Require every shared-lower-bound writer to be a full-device prover.

    In :class:`repro.core.parallel.ParallelDescent` region racing, only
    workers solving the *full* device (``regions[wid] is None``) may raise
    the shared lower bound — a subarchitecture worker's UNSAT is local to
    its region and proves nothing globally (PR 8's soundness rule).
    """
    for wid in prover_wids:
        if wid >= len(regions) or regions[wid] is not None:
            raise SanitizeError(
                "parallel-lb",
                f"worker {wid} is a shared lower-bound writer but solves a "
                "subarchitecture region; region workers must use private "
                "floors",
            )


# ----------------------------------------------------------------------
# Python-vs-native differential
# ----------------------------------------------------------------------


def compare_backends(
    clauses: Sequence[Sequence[int]],
    n_vars: int,
    assumptions: Sequence[int] = (),
    proof_log: bool = False,
    conflict_budget: Optional[int] = None,
) -> Dict[str, Any]:
    """Solve the same formula on both kernels and require identical state.

    Literals use the solver's internal packed encoding (``2v`` /
    ``2v + 1``).  The two backends claim byte-for-byte equivalence (same
    trail, same learnts, same proof log); this runs both under the
    sanitizer and compares result, final state digest, conflict count,
    model and proof log.  Raises :class:`SanitizeError` on the first
    divergence; requires the native kernel to be built.
    """
    from ..sat.kernel import native_available
    from ..sat.solver import Solver

    if not native_available():
        raise RuntimeError("compare_backends requires the compiled kernel")
    states: Dict[str, Dict[str, Any]] = {}
    for backend in ("python", "native"):
        s = Solver(proof_log=proof_log, kernel=backend, sanitize=SANITIZE_LIGHT)
        s.new_vars(n_vars)
        s.add_clauses(clauses)
        res = s.solve(list(assumptions), conflict_budget=conflict_budget)
        states[backend] = {
            "result": res,
            "digest": state_digest(s),
            "conflicts": s.stats.conflicts,
            "model": list(s.model),
            "proof": list(s.proof) if s.proof is not None else None,
        }
    py, nat = states["python"], states["native"]
    for field in ("result", "digest", "conflicts", "model", "proof"):
        if py[field] != nat[field]:
            raise SanitizeError(
                "differential",
                f"python and native kernels diverge on {field}: "
                f"{py[field]!r} != {nat[field]!r}",
            )
    return {"result": py["result"], "digest": py["digest"], "conflicts": py["conflicts"]}
