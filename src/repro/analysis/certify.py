"""Machine-checkable optimality certificates (paper Sec. III-B).

A synthesis run's *optimality* claim decomposes into two halves:

* the SAT half — the returned schedule at depth ``d`` (SWAP count ``s``)
  really is valid.  This is certified by re-validating the extracted model
  with :func:`repro.core.validator.validate_result`, an independent
  semantic check that never looks at the solver.
* the UNSAT half — no schedule exists at ``d - 1`` (``s - 1``).  This is
  certified by replaying the solver's RUP proof log against an
  independently re-encoded copy of the formula with
  :func:`repro.sat.proof.check_unsat_proof`.

The UNSAT half has two flavours:

**Live proofs** — when the optimiser's solver was created with
``proof_log=True``, every learnt clause of the whole incremental run is on
the log, and each UNSAT verdict under assumptions ends in a logged
failed-core step.  A :class:`RefutationRecord` captures the verdict's
context (encoder, assumptions, proof length); :func:`check_records` then
replays the encoder's operation journal onto a CNF sink
(:func:`mirror_encoder`) — the encoding is deterministic, so variable
numbering matches — and checks each record's proof prefix under its
assumptions.  Soundness of checking an early prefix against the *final*
clause set follows from RUP monotonicity: every mirror clause is an axiom
of the final formula, and the certified claim ("the final formula plus
this record's assumption literals is unsatisfiable") is exactly the bound
infeasibility the optimiser relied on, because guards and activation
literals keep their meaning across in-place horizon extension.

**Post-hoc re-solve** — when no live proof exists (a worker process raced
ahead, clause imports were enabled, a custom context was injected),
:func:`certify_bound` re-encodes the instance on a fresh proof-logging
solver with the claimed bounds asserted as unit clauses, re-solves, and
checks that proof.  Costlier, but fully independent of the original run —
this is what :class:`repro.core.parallel.ParallelDescent` uses, since its
workers' verdicts may rest on imported clauses that are not locally
derivable (the proof-logging-vs-clause-sharing exclusivity rule).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sat.proof import check_unsat_proof
from ..sat.result import SatResult
from ..sat.solver import Solver
from ..smt.context import cnf_context


class CertificationError(RuntimeError):
    """Raised when certificate construction itself cannot proceed."""


@dataclass
class RefutationCertificate:
    """One checked (or check-attempted) UNSAT claim."""

    phase: str  # "depth" | "swap"
    depth_bound: Optional[int]  # refuted depth bound, or active depth (swap)
    swap_bound: Optional[int]  # refuted SWAP bound (swap phase only)
    assumptions: Tuple[int, ...]
    proof_steps: int
    n_vars: int
    n_clauses: int
    checked: bool
    reason: str = ""  # failure explanation when not checked
    check_time: float = 0.0
    ignored_deletions: int = 0

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "depth_bound": self.depth_bound,
            "swap_bound": self.swap_bound,
            "assumptions": len(self.assumptions),
            "proof_steps": self.proof_steps,
            "n_vars": self.n_vars,
            "n_clauses": self.n_clauses,
            "checked": self.checked,
            "reason": self.reason,
            "check_time": round(self.check_time, 4),
            "ignored_deletions": self.ignored_deletions,
        }


@dataclass
class Certificate:
    """The full optimality certificate of one synthesis run."""

    objective: str
    depth: int
    swap_count: int
    model_valid: bool
    refutations: List[RefutationCertificate] = field(default_factory=list)
    expected_refutations: int = 0
    check_time: float = 0.0

    @property
    def refutations_ok(self) -> bool:
        return (
            len(self.refutations) >= self.expected_refutations
            and all(r.checked for r in self.refutations)
        )

    @property
    def complete(self) -> bool:
        """Model validated AND every load-bearing UNSAT claim checked."""
        return self.model_valid and self.refutations_ok

    def summary(self) -> str:
        verdict = "COMPLETE" if self.complete else "INCOMPLETE"
        lines = [
            f"certificate [{verdict}] objective={self.objective} "
            f"depth={self.depth} swaps={self.swap_count} "
            f"model_valid={self.model_valid}"
        ]
        for ref in self.refutations:
            bound = (
                f"swap<={ref.swap_bound} @ depth<={ref.depth_bound}"
                if ref.phase == "swap"
                else f"depth<={ref.depth_bound}"
            )
            status = "OK" if ref.checked else f"FAILED ({ref.reason})"
            lines.append(
                f"  refutation {bound}: {status} "
                f"({ref.proof_steps} steps, {ref.check_time:.2f}s)"
            )
        if len(self.refutations) < self.expected_refutations:
            lines.append(
                f"  missing {self.expected_refutations - len(self.refutations)}"
                " expected refutation(s)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "objective": self.objective,
            "depth": self.depth,
            "swap_count": self.swap_count,
            "model_valid": self.model_valid,
            "complete": self.complete,
            "expected_refutations": self.expected_refutations,
            "check_time": round(self.check_time, 4),
            "refutations": [r.to_dict() for r in self.refutations],
        }


@dataclass
class RefutationRecord:
    """A captured live UNSAT verdict, checkable later via the proof log.

    ``proof_len`` snapshots the solver's proof length at verdict time;
    replaying that prefix (the terminal failed-core step included) under
    ``assumptions`` certifies the claim.  The encoder reference keeps the
    solver (and its proof list) plus the operation journal alive even if
    the optimiser later rebuilds at a larger horizon.
    """

    encoder: Any  # repro.core.encoder.LayoutEncoder (duck-typed)
    phase: str
    depth_bound: Optional[int]
    swap_bound: Optional[int]
    assumptions: Tuple[int, ...]
    proof_len: int


def mirror_encoder(encoder: Any) -> Any:
    """Re-encode ``encoder``'s instance onto a CNF sink, replaying its
    operation journal so the mirror reproduces the live solver's exact
    variable numbering (encoding is deterministic; the journal pins the
    variable-allocating call sequence: horizon extensions, bound guards,
    cardinality layers, warm-start equality auxiliaries)."""
    mirror = type(encoder)(
        encoder.circuit,
        encoder.device,
        encoder._horizon0,
        config=encoder.config,
        transition_based=encoder.transition_based,
        ctx=cnf_context(),
        initial_mapping=encoder.initial_mapping,
    )
    mirror.encode()
    for op, arg in encoder.journal:
        if op == "extend":
            mirror.extend_horizon(arg)
        elif op == "depth_guard":
            mirror.depth_guard(arg)
        elif op == "swap_counter":
            mirror.init_swap_counter(arg)
        elif op == "swap_guard":
            mirror.swap_guard(arg)
        elif op == "seed_mapping":
            mirror.seed_initial_mapping(list(arg))
        elif op == "seed_schedule":
            mirror.seed_schedule(list(arg))
        else:  # pragma: no cover - journal is append-only, ops fixed above
            raise CertificationError(f"unknown journal op {op!r}")
    return mirror


def check_records(records: Sequence[RefutationRecord]) -> List[RefutationCertificate]:
    """Check each captured live verdict against its encoder's CNF mirror.

    Mirrors are built once per distinct encoder and shared across that
    encoder's records.  A mirror whose variable count disagrees with the
    live solver marks its records unchecked rather than raising — a failed
    certificate is a result, not a crash.
    """
    mirrors: Dict[int, Any] = {}
    out: List[RefutationCertificate] = []
    for record in records:
        encoder = record.encoder
        started = _time.monotonic()
        checked = False
        reason = ""
        stats: Dict[str, int] = {}
        mirror = mirrors.get(id(encoder))
        if mirror is None:
            mirror = mirror_encoder(encoder)
            mirrors[id(encoder)] = mirror
        cnf = mirror.ctx.sink
        solver = encoder.ctx.sink
        if not isinstance(solver, Solver) or solver.proof is None:
            reason = "no proof log on the live solver"
        elif mirror.ctx.n_vars != encoder.ctx.n_vars:
            reason = (
                f"mirror re-encoding drifted: {mirror.ctx.n_vars} vars vs "
                f"{encoder.ctx.n_vars} live"
            )
        else:
            try:
                checked = check_unsat_proof(
                    cnf,
                    solver.proof[: record.proof_len],
                    assumptions=record.assumptions,
                    stats=stats,
                )
                if not checked:
                    reason = "proof replay did not refute the assumptions"
            except ValueError as exc:  # ProofError is a ValueError
                reason = str(exc)
        out.append(
            RefutationCertificate(
                phase=record.phase,
                depth_bound=record.depth_bound,
                swap_bound=record.swap_bound,
                assumptions=record.assumptions,
                proof_steps=record.proof_len,
                n_vars=cnf.n_vars,
                n_clauses=cnf.num_clauses,
                checked=checked,
                reason=reason,
                check_time=_time.monotonic() - started,
                ignored_deletions=stats.get("ignored_deletions", 0),
            )
        )
    return out


def certify_bound(
    circuit: Any,
    device: Any,
    horizon: int,
    depth_bound: int,
    swap_bound: Optional[int] = None,
    swap_counter_max: Optional[int] = None,
    config: Any = None,
    transition_based: bool = False,
    encoder_cls: Any = None,
    encoder_kwargs: Optional[dict] = None,
    initial_mapping: Optional[List[int]] = None,
    time_budget: float = 60.0,
) -> RefutationCertificate:
    """Post-hoc refutation certificate: prove ``depth <= depth_bound`` (and
    optionally ``swaps <= swap_bound`` at that depth) infeasible from
    scratch on a proof-logging solver, then check the proof against an
    identically re-encoded CNF.

    Independent of any prior run, so it certifies verdicts that have no
    usable live proof — parallel workers with clause imports enabled, or
    solvers built on injected contexts.
    """
    if encoder_cls is None:
        from ..core.encoder import LayoutEncoder

        encoder_cls = LayoutEncoder
    phase = "depth" if swap_bound is None else "swap"

    def build(ctx: Any) -> None:
        encoder = encoder_cls(
            circuit,
            device,
            horizon,
            config=config,
            transition_based=transition_based,
            ctx=ctx,
            initial_mapping=initial_mapping,
            **(encoder_kwargs or {}),
        )
        encoder.encode()
        ctx.sink.add_clause([encoder.depth_guard(depth_bound)])
        if swap_bound is not None:
            max_bound = (
                swap_counter_max if swap_counter_max is not None else swap_bound + 1
            )
            encoder.init_swap_counter(max_bound=max_bound)
            guard = encoder.swap_guard(swap_bound)
            if guard is not None:
                ctx.sink.add_clause([guard])

    started = _time.monotonic()
    from ..smt.context import SMTContext

    solver = Solver(proof_log=True)
    build(SMTContext(sink=solver))
    status = solver.solve(time_budget=time_budget)
    checked = False
    reason = ""
    proof = solver.proof or []
    stats: Dict[str, int] = {}
    mirror = cnf_context()
    if status is not SatResult.UNSAT:
        reason = f"re-solve returned {status.name}, not UNSAT"
    else:
        build(mirror)
        try:
            checked = check_unsat_proof(mirror.sink, proof, stats=stats)
            if not checked:
                reason = "proof replay did not derive the empty clause"
        except ValueError as exc:
            reason = str(exc)
    return RefutationCertificate(
        phase=phase,
        depth_bound=depth_bound,
        swap_bound=swap_bound,
        assumptions=(),
        proof_steps=len(proof),
        n_vars=mirror.sink.n_vars,
        n_clauses=mirror.sink.num_clauses,
        checked=checked,
        reason=reason,
        check_time=_time.monotonic() - started,
        ignored_deletions=stats.get("ignored_deletions", 0),
    )
