"""Project contract linter: AST rules for the codebase's hard-won invariants.

The runtime sanitizer (:mod:`repro.analysis.sanitize`) catches invariant
violations while the engine runs; this module catches the *code patterns*
that cause them before the code ever runs.  Each rule encodes a contract
the project documented when it was earned — the arena version-bump
protocol from the native-kernel PR, the proof-log add-before-delete
discipline from the inprocessing PR, the shared-memory transport rules —
and cites the doc section it guards, so a failing lint points at both the
offending line and the design rationale.

Run standalone (the CI lint gate)::

    python -m repro.analysis.contracts src/

or through the CLI as ``olsq2 analyze --contracts [path]``, or
programmatically via :func:`contract_violations`.  Exit status 1 when any
contract is violated; every violation is reported as
``path:line:col: rule-name: message``.

Rules are pluggable: subclass :class:`ContractRule`, implement
:meth:`~ContractRule.check`, and append an instance to :data:`RULES`.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Violation:
    """One contract violation at a precise source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class ContractRule:
    """Base class for one pluggable contract check.

    ``name`` is the stable rule id shown in reports; ``check`` receives
    the parsed module, its source lines and the (repo-relative when
    possible) path, and yields :class:`Violation` objects.
    """

    name = "contract"

    def check(
        self, path: str, tree: ast.Module, lines: Sequence[str]
    ) -> Iterable[Violation]:
        raise NotImplementedError

    def _v(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain (``self.arena.lits`` -> same), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ArenaVersionBumpRule(ContractRule):
    """Arena buffer growth/replacement must bump ``self.version``.

    Guards docs/ARCHITECTURE.md §1 and §10: the native kernel caches the
    raw base addresses of every ``ClauseArena`` buffer and rebinds only
    when ``arena.version`` changes (``Solver._k_sync``).  A method of
    ``ClauseArena`` that extends or replaces a bound buffer without
    ``self.version += 1`` leaves the kernel reading freed memory.  The
    in-place write path (``free`` marking ``size[cref] = -1``) is exempt:
    it never moves a buffer.
    """

    name = "arena-version-bump"

    #: The buffers ``Solver._k_bind_arena`` binds, plus the rest of the
    #: parallel metadata arrays (growing any of them can reallocate).
    BUFFERS = frozenset(
        {"lits", "start", "size", "learnt", "lbd", "spos", "act", "tier", "touch"}
    )

    def check(self, path, tree, lines):
        for cls in ast.walk(tree):
            if not (isinstance(cls, ast.ClassDef) and cls.name == "ClauseArena"):
                continue
            for fn in cls.body:
                if not isinstance(fn, ast.FunctionDef) or fn.name == "__init__":
                    continue
                grow_sites: List[ast.AST] = []
                bumps = False
                for node in ast.walk(fn):
                    if isinstance(node, ast.AugAssign):
                        if _attr_chain(node.target) == "self.version":
                            bumps = True
                    elif isinstance(node, ast.Assign):
                        for tgt in node.targets:
                            chain = _attr_chain(tgt)
                            if chain == "self.version":
                                bumps = True
                            elif chain is not None and chain.startswith("self."):
                                attr = chain.split(".", 1)[1]
                                if attr in self.BUFFERS:
                                    grow_sites.append(tgt)
                    elif isinstance(node, ast.Call):
                        func = node.func
                        if isinstance(func, ast.Attribute) and func.attr in (
                            "extend",
                            "append",
                        ):
                            chain = _attr_chain(func.value)
                            if chain is not None and chain.startswith("self."):
                                attr = chain.split(".", 1)[1]
                                if attr in self.BUFFERS:
                                    grow_sites.append(node)
                if grow_sites and not bumps:
                    for site in grow_sites:
                        yield self._v(
                            path,
                            site,
                            f"ClauseArena.{fn.name} grows or replaces a "
                            "kernel-bound buffer without 'self.version += 1' "
                            "(the native kernel's cached addresses go stale; "
                            "see docs/ARCHITECTURE.md §10)",
                        )


class NoFromBufferRule(ContractRule):
    """Never bind kernel pointers with ``from_buffer`` on exported arrays.

    Guards docs/PERFORMANCE.md and docs/ARCHITECTURE.md §10: ``ffi.
    from_buffer`` / ``ctypes`` ``from_buffer`` *export* the underlying
    buffer, which makes ``array`` resizing raise ``BufferError`` — the
    solver's buffers must stay resizable, so raw addresses are taken via
    ``buffer_info()`` (``Solver._addr``) and rebound on growth instead.
    """

    name = "no-from-buffer"

    def check(self, path, tree, lines):
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("from_buffer", "from_buffer_copy")
            ):
                yield self._v(
                    path,
                    node,
                    "from_buffer exports the array's buffer and breaks "
                    "resizing; take raw addresses via buffer_info() and "
                    "rebind on growth (docs/ARCHITECTURE.md §10)",
                )


class ProofDeleteAfterAddRule(ContractRule):
    """A proof ``delete`` line must never precede its ``add`` line.

    Guards docs/ARCHITECTURE.md §8: the RUP checker replays the log in
    order, so a function that both adds and deletes (clause replacement
    in inprocessing, ``Inprocessor._replace``) must emit the ``("a",
    new)`` line *before* the ``("d", old)`` line — the old clause must
    still be in the database to justify the new one.  Functions that only
    delete (``_reduce_db``) are exempt: their adds happened elsewhere and
    are enforced at runtime by the sanitizer's proof discipline checker.
    """

    name = "proof-delete-after-add"

    @staticmethod
    def _proof_step_tag(node: ast.Call) -> Optional[str]:
        """The "a"/"d" tag when ``node`` is ``<...>proof.append((tag, ...))``."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "append"):
            return None
        chain = _attr_chain(func.value)
        if chain is None or chain.split(".")[-1] != "proof":
            return None
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Tuple):
            return None
        elts = node.args[0].elts
        if not elts or not isinstance(elts[0], ast.Constant):
            return None
        tag = elts[0].value
        return tag if tag in ("a", "d") else None

    def check(self, path, tree, lines):
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            steps: List[Tuple[str, ast.Call]] = []
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    tag = self._proof_step_tag(node)
                    if tag is not None:
                        steps.append((tag, node))
            if not any(tag == "a" for tag, _ in steps):
                continue
            steps.sort(key=lambda s: (s[1].lineno, s[1].col_offset))
            first_add = next(i for i, (tag, _) in enumerate(steps) if tag == "a")
            for tag, node in steps[:first_add]:
                yield self._v(
                    path,
                    node,
                    f"proof delete in {fn.name} precedes every add in the "
                    "same function; emit the RUP add first so the deleted "
                    "clause can justify it (docs/ARCHITECTURE.md §8)",
                )


class DeviceFactoryCacheRule(ContractRule):
    """Public device factories must be ``lru_cache``-memoized.

    Guards docs/API.md "Circuits and devices": factories return shared
    immutable :class:`~repro.arch.CouplingGraph` instances, and large
    devices (eagle, sycamore) are expensive to rebuild — the service
    layer, the subarch extractor and the CLI all call them repeatedly and
    rely on identity-cached results.  Applies to ``repro/arch/devices``
    modules: every public function returning ``CouplingGraph`` needs a
    ``functools.lru_cache`` decorator.
    """

    name = "device-factory-cache"

    def check(self, path, tree, lines):
        norm = path.replace("\\", "/")
        if not norm.endswith("arch/devices.py"):
            return
        for fn in tree.body:
            if not isinstance(fn, ast.FunctionDef) or fn.name.startswith("_"):
                continue
            returns = fn.returns
            ret_name = None
            if isinstance(returns, ast.Name):
                ret_name = returns.id
            elif isinstance(returns, ast.Attribute):
                ret_name = returns.attr
            elif isinstance(returns, ast.Constant):
                ret_name = returns.value
            if ret_name != "CouplingGraph":
                continue
            cached = False
            for dec in fn.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                chain = _attr_chain(target)
                if chain is not None and chain.split(".")[-1] in (
                    "lru_cache",
                    "cache",
                ):
                    cached = True
            if not cached:
                yield self._v(
                    path,
                    fn,
                    f"device factory '{fn.name}' returns CouplingGraph but "
                    "is not lru_cache'd; callers share the memoized "
                    "immutable instance (docs/API.md, Circuits and devices)",
                )


class SnapshotRestoreSyncRule(ContractRule):
    """Snapshot restore must bind the kernel once, between buffer fills
    and watch-list loads.

    Guards docs/ARCHITECTURE.md (snapshot lifecycle): ``restore_solver``
    fills every Python-side buffer of a *fresh* solver, then calls
    ``_k_sync()`` exactly once so the native kernel binds the final
    addresses, and only then replays the C-owned watch lists via
    ``k_load_list``.  Three orderings corrupt the clone silently:

    * ``k_load_list`` before ``_k_sync`` writes into unbound views;
    * growing a kernel-bound buffer *after* ``_k_sync`` moves it out
      from under the cached addresses;
    * skipping the arena generation bump leaves ``_k_sync`` a no-op for
      a solver that already synced once.

    The rule applies to any function that calls ``k_load_list``.
    """

    name = "snapshot-restore-sync"

    #: Buffers the kernel binds: arena storage plus per-variable arrays.
    BOUND_BUFFERS = frozenset(
        {
            "lits", "start", "size", "learnt", "lbd", "spos", "act",
            "tier", "touch", "assigns_lit", "level", "reason", "polarity",
            "activity", "seen", "trail",
        }
    )

    def check(self, path, tree, lines):
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            loads: List[ast.Call] = []
            syncs: List[ast.Call] = []
            fills: List[ast.AST] = []
            bumps_version = False
            for node in ast.walk(fn):
                if isinstance(node, ast.AugAssign):
                    chain = _attr_chain(node.target)
                    if chain is not None and chain.endswith(".version"):
                        bumps_version = True
                elif isinstance(node, ast.Call):
                    func = node.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    if func.attr == "k_load_list":
                        loads.append(node)
                    elif func.attr == "_k_sync":
                        syncs.append(node)
                    elif func.attr == "extend":
                        chain = _attr_chain(func.value)
                        if (
                            chain is not None
                            and chain.split(".")[-1] in self.BOUND_BUFFERS
                        ):
                            fills.append(node)
            if not loads:
                continue
            if not syncs:
                yield self._v(
                    path,
                    loads[0],
                    f"{fn.name} calls k_load_list without a _k_sync(); the "
                    "kernel views are unbound (docs/ARCHITECTURE.md, "
                    "snapshot lifecycle)",
                )
                continue
            sync_line = min(c.lineno for c in syncs)
            if not bumps_version:
                yield self._v(
                    path,
                    syncs[0],
                    f"{fn.name} syncs the kernel without bumping an arena "
                    "generation ('.version += 1'); a previously synced "
                    "solver would skip the rebind (docs/ARCHITECTURE.md, "
                    "snapshot lifecycle)",
                )
            for call in loads:
                if call.lineno < sync_line:
                    yield self._v(
                        path,
                        call,
                        f"{fn.name} calls k_load_list before _k_sync(); "
                        "load watch lists only after the kernel has bound "
                        "the final buffer addresses (docs/ARCHITECTURE.md, "
                        "snapshot lifecycle)",
                    )
            for site in fills:
                if site.lineno > sync_line:
                    yield self._v(
                        path,
                        site,
                        f"{fn.name} grows a kernel-bound buffer after "
                        "_k_sync(); the cached addresses go stale "
                        "(docs/ARCHITECTURE.md, snapshot lifecycle)",
                    )


class NoBareMpQueueRule(ContractRule):
    """No bare ``multiprocessing.Queue`` — always use an explicit context.

    Guards docs/ARCHITECTURE.md §6: the portfolio pins its start method
    (``get_context``), and the shared-memory clause path mixes
    ``shared_memory`` segments with locks that must come from the *same*
    context.  ``multiprocessing.Queue()`` binds whatever the global
    default start method happens to be, which diverges from the pinned
    context on some platforms; construct queues from the context object
    (``ctx.Queue(...)``) instead.
    """

    name = "no-bare-mp-queue"

    def check(self, path, tree, lines):
        mp_aliases = {"multiprocessing"}
        bare_queue_names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "multiprocessing":
                        mp_aliases.add(alias.asname or "multiprocessing")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "multiprocessing":
                    for alias in node.names:
                        if alias.name in ("Queue", "SimpleQueue", "JoinableQueue"):
                            bare_queue_names.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            bad = False
            if isinstance(func, ast.Attribute) and func.attr in (
                "Queue",
                "SimpleQueue",
                "JoinableQueue",
            ):
                if isinstance(func.value, ast.Name) and func.value.id in mp_aliases:
                    bad = True
            elif isinstance(func, ast.Name) and func.id in bare_queue_names:
                bad = True
            if bad:
                yield self._v(
                    path,
                    node,
                    "bare multiprocessing queue constructor; build queues "
                    "from the pinned context (ctx.Queue(...)) so they match "
                    "the shm transport's start method "
                    "(docs/ARCHITECTURE.md §6)",
                )


class NoBareTypeIgnoreRule(ContractRule):
    """Every ``type: ignore`` must carry a specific error code.

    Guards the project's typing policy (pyproject ``[tool.mypy]``,
    strict): a codeless ignore comment suppresses *every* error on the
    line forever, including future regressions; ``type: ignore[code]``
    (ideally with a reason comment) suppresses exactly the reviewed one.
    """

    name = "no-bare-type-ignore"

    _BARE = re.compile(r"#\s*type:\s*ignore(?!\[)")

    def check(self, path, tree, lines):
        for lineno, text in enumerate(lines, start=1):
            m = self._BARE.search(text)
            if m is not None:
                yield Violation(
                    rule=self.name,
                    path=path,
                    line=lineno,
                    col=m.start() + 1,
                    message=(
                        "bare 'type: ignore' suppresses every future error "
                        "on this line; narrow it to 'type: ignore[code]' "
                        "with a reason comment (pyproject [tool.mypy])"
                    ),
                )


#: The active rule set, in report order.  Pluggable: append instances.
RULES: List[ContractRule] = [
    ArenaVersionBumpRule(),
    NoFromBufferRule(),
    ProofDeleteAfterAddRule(),
    DeviceFactoryCacheRule(),
    SnapshotRestoreSyncRule(),
    NoBareMpQueueRule(),
    NoBareTypeIgnoreRule(),
]


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def contract_violations(
    paths: Sequence[str], rules: Optional[Sequence[ContractRule]] = None
) -> List[Violation]:
    """Run the contract rules over ``paths``; returns all violations.

    Unparsable files are reported as a violation of a synthetic
    ``parse-error`` rule rather than crashing the lint run.
    """
    active = list(RULES if rules is None else rules)
    out: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            out.append(
                Violation(
                    rule="parse-error",
                    path=str(path),
                    line=line,
                    col=1,
                    message=str(exc),
                )
            )
            continue
        lines = source.splitlines()
        for rule in active:
            out.extend(rule.check(str(path), tree, lines))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.analysis.contracts [paths...]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.contracts",
        description="lint the codebase's documented contracts "
        "(arena version bumps, proof discipline, transport rules)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.name}: {doc}")
        return 0
    violations = contract_violations(args.paths)
    for v in violations:
        print(v.format())
    n_files = sum(1 for _ in iter_python_files(args.paths))
    if violations:
        print(f"{len(violations)} contract violation(s) in {n_files} file(s)")
        return 1
    print(f"contracts OK: {n_files} file(s), {len(RULES)} rule(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
