"""Per-phase aggregation of a trace.

Turns a flat record stream into the table every perf PR gets benchmarked
against: for each span name, how many times it ran and how much wall time
it consumed — plus *self* time (time not covered by child spans), which is
what actually pinpoints where a phase's cost lives when spans nest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .events import SpanEnd, TraceRecord, record_from_dict
from .sinks import MemorySink, read_trace


def coerce_records(trace) -> List[TraceRecord]:
    """Accept a JSONL path, an open stream, a MemorySink, or an iterable of
    records / ``to_dict()`` dicts; return a list of typed records."""
    if isinstance(trace, MemorySink):
        return list(trace.records)
    if isinstance(trace, (str, bytes)):
        return read_trace(trace)
    if hasattr(trace, "read"):
        return read_trace(trace)
    records = []
    for item in trace:
        if isinstance(item, dict):
            records.append(record_from_dict(item))
        else:
            records.append(item)
    return records


class PhaseStat:
    """Aggregate statistics for one span name."""

    __slots__ = ("name", "count", "total", "self_time", "max_duration")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0
        self.max_duration = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def aggregate_spans(trace) -> List[PhaseStat]:
    """Group completed spans by name; order by total time, descending.

    *Self* time is each span's duration minus its direct children's
    durations, so a parent phase that merely wraps sub-phases shows up
    with near-zero self time instead of double-counting.
    """
    records = coerce_records(trace)
    spans = [r for r in records if isinstance(r, SpanEnd)]
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration
            )
    stats: Dict[str, PhaseStat] = {}
    for span in spans:
        stat = stats.get(span.name)
        if stat is None:
            stat = stats[span.name] = PhaseStat(span.name)
        stat.count += 1
        stat.total += span.duration
        stat.self_time += max(0.0, span.duration - child_time.get(span.span_id, 0.0))
        stat.max_duration = max(stat.max_duration, span.duration)
    return sorted(stats.values(), key=lambda s: -s.total)


def summary_rows(
    trace,
) -> Tuple[List[str], List[List[Union[str, int, float, None]]]]:
    """``(headers, rows)`` of the per-phase breakdown, harness-table shaped."""
    stats = aggregate_spans(trace)
    top_level = sum(s.self_time for s in stats)
    headers = ["phase", "count", "total (s)", "self (s)", "mean (s)", "share"]
    rows: List[List[Union[str, int, float, None]]] = []
    for stat in stats:
        share = stat.self_time / top_level if top_level > 0 else None
        rows.append(
            [
                stat.name,
                stat.count,
                stat.total,
                stat.self_time,
                stat.mean,
                f"{100.0 * share:.1f}%" if share is not None else None,
            ]
        )
    return headers, rows


def total_time(trace, name: Optional[str] = None) -> float:
    """Total recorded span time, optionally restricted to one span name."""
    spans = [r for r in coerce_records(trace) if isinstance(r, SpanEnd)]
    if name is not None:
        spans = [s for s in spans if s.name == name]
    return sum(s.duration for s in spans)
