"""Trace sinks: where emitted records go.

A sink is anything with ``emit(record)`` and ``close()``.  Three are
provided:

* :class:`MemorySink` — collects records in a list (tests, programmatic
  analysis, :func:`repro.telemetry.summary.aggregate_spans`),
* :class:`JsonlSink` — one JSON object per line; the interchange format of
  ``olsq2 compile --trace`` and :func:`read_trace`,
* :class:`StderrSink` — human-readable, indentation shows span nesting;
  the replacement for the old ``config.verbose`` print path.
"""

from __future__ import annotations

import io
import json
import sys
from typing import IO, Iterator, List, Optional, Union

from .events import Event, SpanEnd, SpanStart, TraceRecord, record_from_dict


class MemorySink:
    """Collect records in memory."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def spans(self) -> List[SpanEnd]:
        """The completed spans, in closing order."""
        return [r for r in self.records if isinstance(r, SpanEnd)]

    def events(self, name: Optional[str] = None) -> List[Event]:
        out = [r for r in self.records if isinstance(r, Event)]
        if name is not None:
            out = [r for r in out if r.name == name]
        return out


class JsonlSink:
    """Write records as JSON Lines to a path or an open text stream."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, (str, bytes)):
            self._fp: IO[str] = open(target, "w")
            self._owned = True
        else:
            self._fp = target
            self._owned = False

    def emit(self, record: TraceRecord) -> None:
        self._fp.write(json.dumps(record.to_dict(), default=str) + "\n")

    def close(self) -> None:
        self._fp.flush()
        if self._owned:
            self._fp.close()


class StderrSink:
    """Render records as indented, human-readable lines.

    ``>`` opens a span, ``<`` closes it (with its duration), ``*`` is a
    point event.  Despite the name, any text stream can be targeted.
    """

    def __init__(self, stream: Optional[IO[str]] = None, prefix: str = "[olsq2] "):
        self._stream = stream
        self.prefix = prefix
        self._depth = 0

    def _out(self) -> IO[str]:
        # Resolve lazily so pytest's capture / late stderr redirection work.
        return self._stream if self._stream is not None else sys.stderr

    @staticmethod
    def _fmt_attrs(attrs: dict) -> str:
        if not attrs:
            return ""
        return " " + " ".join(f"{k}={v}" for k, v in attrs.items())

    def emit(self, record: TraceRecord) -> None:
        if isinstance(record, SpanStart):
            line = f"> {record.name}{self._fmt_attrs(record.attrs)}"
            indent = "  " * self._depth
            self._depth += 1
        elif isinstance(record, SpanEnd):
            self._depth = max(0, self._depth - 1)
            indent = "  " * self._depth
            line = f"< {record.name} ({record.duration:.3f}s){self._fmt_attrs(record.attrs)}"
        else:
            indent = "  " * self._depth
            line = f"* {record.name}{self._fmt_attrs(record.attrs)}"
        print(f"{self.prefix}{indent}{line}", file=self._out())

    def close(self) -> None:
        pass


def read_trace(source: Union[str, IO[str]]) -> List[TraceRecord]:
    """Parse a JSONL trace (as written by :class:`JsonlSink`) back into records."""
    if isinstance(source, (str, bytes)):
        fp: IO[str] = open(source)
        owned = True
    else:
        fp = source
        owned = False
    try:
        records = []
        for line_no, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {line_no}: invalid JSON ({exc})") from None
            records.append(record_from_dict(data))
        return records
    finally:
        if owned:
            fp.close()


def dumps_trace(records) -> str:
    """Serialise records to a JSONL string (inverse of :func:`read_trace`)."""
    buf = io.StringIO()
    sink = JsonlSink(buf)
    for record in records:
        sink.emit(record)
    return buf.getvalue()
