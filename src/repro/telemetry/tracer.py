"""The tracer: hierarchical spans, events, sinks, cooperative cancellation.

Design constraints, in order:

1. **Zero overhead when off.**  Every instrumented module holds a tracer
   reference unconditionally; when tracing is disabled that reference is
   the shared :data:`NULL_TRACER`, whose ``span()``/``event()`` allocate
   nothing.  The hot solver loop instead keeps ``tracer = None`` and
   guards with one identity check per ``solve()`` call.
2. **Single-threaded simplicity.**  A tracer belongs to one synthesis run;
   the span stack is a plain list.  (The portfolio synthesizer runs whole
   workers in separate *processes*, each with its own tracer.)
3. **Cooperative cancellation.**  An optional ``progress_callback`` sees
   every record; returning ``False`` (exactly — ``None`` means "carry
   on") flips :attr:`Tracer.cancelled`, which instrumented loops poll at
   their next safe point and abort cleanly, keeping the best result found
   so far.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from .events import Event, SpanEnd, SpanStart, TraceRecord

ProgressCallback = Callable[[TraceRecord], Optional[bool]]


class Span:
    """Handle to an open span; ``set()`` annotates it before it closes."""

    __slots__ = ("name", "span_id", "parent_id", "start_ts", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_ts: float,
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ts = start_ts
        self.attrs = attrs

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; they appear on the span's closing record."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Span({self.name!r}, id={self.span_id})"


class Tracer:
    """Emits structured trace records to pluggable sinks.

    Usage::

        tracer = Tracer(sinks=[JsonlSink("trace.jsonl")])
        with tracer.span("solve", bound=7) as sp:
            ...
            sp.set(verdict="sat")
        tracer.event("solver.restart", conflicts=123)
        tracer.close()
    """

    enabled = True

    def __init__(
        self,
        sinks: Sequence = (),
        progress_callback: Optional[ProgressCallback] = None,
    ):
        self.sinks: List = list(sinks)
        self.progress_callback = progress_callback
        self._stack: List[Span] = []
        self._next_id = 0
        self._epoch = time.monotonic()
        self._cancelled = False

    # -- plumbing ---------------------------------------------------------

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def _now(self) -> float:
        return time.monotonic() - self._epoch

    def _emit(self, record: TraceRecord) -> None:
        for sink in self.sinks:
            sink.emit(record)
        cb = self.progress_callback
        if cb is not None and cb(record) is False:
            self._cancelled = True

    # -- cancellation -----------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once the progress callback asked to stop."""
        return self._cancelled

    def cancel(self) -> None:
        """Programmatic cancellation (same effect as the callback)."""
        self._cancelled = True

    # -- recording --------------------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; closes (and emits) even on exceptions."""
        parent = self._stack[-1].span_id if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        start = self._now()
        span = Span(name, span_id, parent, start, dict(attrs))
        self._emit(SpanStart(name, span_id, parent, start, dict(attrs)))
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            end = self._now()
            self._emit(
                SpanEnd(name, span_id, parent, end, end - start, dict(span.attrs))
            )

    def event(self, name: str, **attrs: Any) -> None:
        parent = self._stack[-1].span_id if self._stack else None
        self._emit(Event(name, parent, self._now(), attrs))

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullSpan:
    """Reusable no-op stand-in for both Span and its context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer; safe to share (stateless) and to close repeatedly."""

    enabled = False
    cancelled = False
    progress_callback = None
    sinks: List = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def cancel(self) -> None:  # pragma: no cover - never meaningful
        pass

    def add_sink(self, sink) -> None:
        raise TypeError(
            "cannot attach sinks to the null tracer; build a telemetry.Tracer"
        )

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_TRACER = NullTracer()
