"""Structured telemetry and tracing for the synthesis stack.

The observability substrate the perf roadmap is benchmarked through:
hierarchical spans, typed events, pluggable sinks.  Zero third-party
dependencies; near-zero overhead when disabled (the shared
:data:`NULL_TRACER` no-ops every call).

Quickstart::

    from repro import OLSQ2, SynthesisConfig
    from repro.telemetry import Tracer, JsonlSink, MemorySink

    tracer = Tracer(sinks=[JsonlSink("trace.jsonl")])
    config = SynthesisConfig(tracer=tracer)
    result = OLSQ2(config).synthesize(qc, dev, objective="depth")
    tracer.close()

    from repro.harness import trace_summary
    print(trace_summary("trace.jsonl"))       # per-phase time breakdown

Cooperative cancellation::

    def watchdog(record):
        return False if should_stop() else True   # False => abort cleanly

    config = SynthesisConfig(progress_callback=watchdog)

CLI equivalent: ``olsq2 compile circuit.qasm --trace trace.jsonl``.
"""

from .events import Event, SpanEnd, SpanStart, TraceRecord, record_from_dict
from .sinks import JsonlSink, MemorySink, StderrSink, dumps_trace, read_trace
from .summary import PhaseStat, aggregate_spans, summary_rows, total_time
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanStart",
    "SpanEnd",
    "Event",
    "TraceRecord",
    "record_from_dict",
    "MemorySink",
    "JsonlSink",
    "StderrSink",
    "read_trace",
    "dumps_trace",
    "PhaseStat",
    "aggregate_spans",
    "summary_rows",
    "total_time",
]
