"""Typed trace records.

Three record kinds flow through a :class:`repro.telemetry.Tracer`:

* :class:`SpanStart` / :class:`SpanEnd` — a *span* is a named, timed region
  of work (``encode``, ``solve``, one optimizer iteration...).  Spans nest:
  every record carries its span id and its parent's id, so a trace is a
  forest reconstructable from the flat record stream.
* :class:`Event` — a point-in-time observation attached to the innermost
  open span (a solver-stats snapshot, a restart, a bound verdict).

Every record serialises to a flat JSON-safe dict (:meth:`to_dict`) and back
(:func:`record_from_dict`), which is what the JSONL sink writes and
:func:`repro.telemetry.read_trace` reads — the round-trip is lossless for
JSON-representable attribute values.

Timestamps are seconds relative to the owning tracer's epoch (a monotonic
clock), so arithmetic on them is meaningful within one trace but they are
not wall-clock dates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union


@dataclass
class SpanStart:
    """Marks the opening of a span."""

    name: str
    span_id: int
    parent_id: Optional[int]
    ts: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    kind = "span_start"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "attrs": dict(self.attrs),
        }


@dataclass
class SpanEnd:
    """Marks the closing of a span; carries the merged final attributes."""

    name: str
    span_id: int
    parent_id: Optional[int]
    ts: float
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    kind = "span_end"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


@dataclass
class Event:
    """A point event inside (or outside) any span."""

    name: str
    span_id: Optional[int]
    ts: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    kind = "event"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "span_id": self.span_id,
            "ts": self.ts,
            "attrs": dict(self.attrs),
        }


TraceRecord = Union[SpanStart, SpanEnd, Event]

_KINDS = {
    SpanStart.kind: SpanStart,
    SpanEnd.kind: SpanEnd,
    Event.kind: Event,
}


def record_from_dict(data: Dict[str, Any]) -> TraceRecord:
    """Rebuild a typed record from its :meth:`to_dict` form."""
    try:
        kind = data["kind"]
    except (KeyError, TypeError):
        raise ValueError(f"not a trace record: {data!r}") from None
    cls = _KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace record kind {kind!r}")
    fields = {k: v for k, v in data.items() if k != "kind"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ValueError(f"malformed {kind} record: {exc}") from None
