"""SATMap-style baseline (Molavi et al., MICRO'22): MaxSAT with slicing.

SATMap encodes qubit mapping-and-routing to (weighted) MaxSAT and, for
scalability, *slices* the circuit into chunks solved one after another with
the boundary mapping pinned.  Tan & Cong (and the OLSQ2 paper) point out
that exactly this slice-by-slice relaxation imposes unnecessary constraints
and can lose global optimality — which is what Table IV measures.

Our rendition keeps that structure: gates are cut into consecutive slices;
each slice is solved *optimally* (minimum SWAP layers, then minimum SWAPs,
via iterative descent on the transition-based encoder — a stand-in for the
per-slice MaxSAT call) with the entry mapping fixed to the previous slice's
exit mapping.  Slice 0's mapping is free.  Per-slice optimal, globally
greedy — the same quality profile as SATMap relative to TB-OLSQ2.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..core.config import SynthesisConfig
from ..core.encoder import LayoutEncoder
from ..core.interface import check_initial_mapping, check_objective
from ..core.optimizer import serialize_blocks
from ..core.result import SwapEvent, SynthesisResult
from ..sat.result import SatResult


class SATMapTimeout(RuntimeError):
    """Raised when a slice could not be solved within the budget."""


class _SliceSolution:
    """Snapshot of one satisfying slice model."""

    __slots__ = ("blocks", "transition_swaps", "entry", "exit")

    def __init__(self, encoder: LayoutEncoder):
        entry, blocks, swaps = encoder.extract()
        self.blocks = blocks
        self.transition_swaps = swaps
        self.entry = entry
        model = encoder.ctx.sink.model
        self.exit = [
            encoder.pi[q][encoder.horizon - 1].decode(model)
            for q in range(encoder.circuit.n_qubits)
        ]


class SATMap:
    """Slice-by-slice MaxSAT-style mapper."""

    def __init__(
        self,
        slice_size: int = 8,
        config: Optional[SynthesisConfig] = None,
    ):
        if slice_size < 1:
            raise ValueError("slice size must be >= 1")
        self.slice_size = slice_size
        self.config = config or SynthesisConfig()

    def synthesize(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        *,
        objective: str = "swap",
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> SynthesisResult:
        # SATMap's slicing gives up on global depth; it only ever minimises
        # SWAPs, so a depth request is an error rather than a silent no-op.
        check_objective("SATMap", objective, supported=("swap",))
        started = _time.monotonic()
        deadline = started + self.config.time_budget
        slices = self._slices(circuit)
        # A caller-supplied mapping pins slice 0's entry (normally free).
        mapping = check_initial_mapping(circuit, device, initial_mapping)
        initial: Optional[List[int]] = None
        gate_times = [0] * circuit.num_gates
        swaps: List[SwapEvent] = []
        offset = 0
        total_iterations = 0
        for slice_indices in slices:
            budget = deadline - _time.monotonic()
            if budget <= 0:
                raise SATMapTimeout("time budget exhausted between slices")
            sub = QuantumCircuit(
                circuit.n_qubits,
                [circuit.gates[i] for i in slice_indices],
                name="slice",
            )
            times, layer_swaps, solution, iters = self._solve_slice(
                sub, device, mapping, budget
            )
            total_iterations += iters
            if initial is None:
                initial = solution.entry
            mapping = solution.exit
            for local, global_idx in enumerate(slice_indices):
                gate_times[global_idx] = times[local] + offset
            for swap in layer_swaps:
                swaps.append(SwapEvent(swap.p, swap.p_prime, swap.finish_time + offset))
            span = 0
            if times:
                span = max(span, max(times) + 1)
            for swap in layer_swaps:
                span = max(span, swap.finish_time + 1)
            offset += span
        assert initial is not None
        return SynthesisResult(
            circuit=circuit,
            device=device,
            initial_mapping=initial,
            gate_times=gate_times,
            swaps=swaps,
            swap_duration=self.config.swap_duration,
            objective="swap",
            solver_stats={"slices": len(slices), "iterations": total_iterations},
            optimal=False,
            wall_time=_time.monotonic() - started,
        )

    # -- internals --------------------------------------------------------

    def _slices(self, circuit: QuantumCircuit) -> List[List[int]]:
        indices = list(range(circuit.num_gates))
        return [
            indices[i : i + self.slice_size]
            for i in range(0, len(indices), self.slice_size)
        ] or [[]]

    def _solve_slice(
        self,
        sub: QuantumCircuit,
        device: CouplingGraph,
        entry_mapping: Optional[List[int]],
        budget: float,
    ) -> Tuple[List[int], List[SwapEvent], _SliceSolution, int]:
        """Optimal (blocks, then SWAPs) solution for one slice."""
        iterations = 0
        horizon = 1
        deadline = _time.monotonic() + budget
        solution: Optional[_SliceSolution] = None
        encoder: Optional[LayoutEncoder] = None
        # Grow the block horizon until the slice becomes feasible.
        while solution is None:
            if _time.monotonic() >= deadline:
                raise SATMapTimeout("slice block search exhausted the budget")
            encoder = LayoutEncoder(
                sub,
                device,
                horizon,
                config=self.config,
                transition_based=True,
                initial_mapping=entry_mapping,
            )
            iterations += 1
            status = encoder.solve(time_budget=deadline - _time.monotonic())
            if status is SatResult.SAT:
                solution = _SliceSolution(encoder)
            elif status is SatResult.UNKNOWN:
                raise SATMapTimeout("slice solve timed out")
            else:
                horizon += 1
        # Iterative descent on the slice's SWAP count.
        encoder.init_swap_counter(max_bound=len(solution.transition_swaps))
        bound = len(solution.transition_swaps)
        while bound > 0 and _time.monotonic() < deadline:
            guard = encoder.swap_guard(bound - 1)
            assumptions = [] if guard is None else [guard]
            status = encoder.solve(
                assumptions=assumptions, time_budget=deadline - _time.monotonic()
            )
            iterations += 1
            if status is not SatResult.SAT:
                break
            solution = _SliceSolution(encoder)
            bound = len(solution.transition_swaps)
        times, layer_swaps = serialize_blocks(
            sub,
            solution.blocks,
            solution.transition_swaps,
            self.config.swap_duration,
            initial_mapping=solution.entry,
            n_phys=device.n_qubits,
        )
        return times, layer_swaps, solution, iterations
