"""Baseline synthesizers the paper compares against.

* :class:`OLSQ` / :class:`TBOLSQ` — Tan & Cong's space-variable exact
  formulation (the Fig. 1 / Table I-II comparison target),
* :class:`SABRE` — the leading heuristic (Tables III-IV),
* :class:`SATMap` — MaxSAT-with-slicing (Table IV).
"""

from .olsq import OLSQ, TBOLSQ, OLSQEncoder
from .sabre import SABRE, SabreRouter
from .satmap import SATMap, SATMapTimeout

__all__ = [
    "OLSQ",
    "TBOLSQ",
    "OLSQEncoder",
    "SABRE",
    "SabreRouter",
    "SATMap",
    "SATMapTimeout",
]
