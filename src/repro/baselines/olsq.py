"""The OLSQ baseline formulation (Tan & Cong, ICCAD'20) — *with* space variables.

OLSQ2's Improvement 1 is the elimination of per-gate *space variables*
``x_g`` (an edge index for two-qubit gates, a physical qubit for single-qubit
gates) together with the consistency constraints tying ``x_g`` to the mapping
and time variables.  To measure that improvement (Fig. 1, Tables I-II), this
module re-creates the redundant formulation on the same substrate:

* every gate gets a space variable,
* gate-position consistency is enforced through ``(t_g == t AND x_g == e)
  => endpoints match`` implications for every (gate, time, edge) triple,
* SWAP/gate exclusion goes through the space variables as in OLSQ's Eq. 7-8
  rather than through mapping indicators.

Everything else (dependencies, injectivity, mapping transformation, the
bound machinery) is shared with :class:`repro.core.encoder.LayoutEncoder`,
so runtime differences isolate exactly the formulation change the paper
measures.  ``TBOLSQ`` is the transition-based variant (TB-OLSQ in the
paper).
"""

from __future__ import annotations

from typing import List

from ..core.encoder import LayoutEncoder
from ..core.olsq2 import OLSQ2
from ..sat.types import neg
from ..smt.domain import make_domain_var


class OLSQEncoder(LayoutEncoder):
    """OLSQ's space-variable formulation on our SAT substrate."""

    def encode(self) -> "OLSQEncoder":
        if self._encoded:
            return self
        super().encode()
        # super() built the succinct constraints; the space variables and
        # their consistency constraints are *added on top*, reproducing the
        # redundancy OLSQ2 removes.  (OLSQ's own adjacency constraints are
        # implied by ours plus consistency, so solutions coincide.)
        self._traced("space_variables", self._make_space_variables)
        self._traced("space_consistency", self._encode_space_consistency)
        if not self.transition_based:
            self._traced("space_swap_exclusion", self._encode_space_swap_exclusion)
        return self

    def _make_space_variables(self) -> None:
        cfg = self.config
        self.space: List = []
        n_edges = self.device.num_edges
        n_phys = self.device.n_qubits
        for gate in self.circuit.gates:
            size = n_edges if gate.is_two_qubit else n_phys
            self.space.append(make_domain_var(self.ctx, size, cfg.encoding))

    def _encode_space_consistency(self) -> None:
        """Tie each gate's space variable to its qubits' mapping at its time."""
        ctx = self.ctx
        edges = self.device.edges
        for g_idx, gate in enumerate(self.circuit.gates):
            space = self.space[g_idx]
            for t in range(self.horizon):
                z = self.time[g_idx].eq_lit(t)
                if gate.is_two_qubit:
                    q, q_prime = gate.qubits
                    for e_idx, (a, b) in enumerate(edges):
                        w = space.eq_lit(e_idx)
                        # (z & w) => q on {a,b} and q' on {a,b}
                        ctx.add(
                            [neg(z), neg(w), self.pi[q][t].eq_lit(a), self.pi[q][t].eq_lit(b)]
                        )
                        ctx.add(
                            [
                                neg(z),
                                neg(w),
                                self.pi[q_prime][t].eq_lit(a),
                                self.pi[q_prime][t].eq_lit(b),
                            ]
                        )
                else:
                    (q,) = gate.qubits
                    for p in range(self.device.n_qubits):
                        w = space.eq_lit(p)
                        ctx.add([neg(z), neg(w), self.pi[q][t].eq_lit(p)])
                        # and conversely the space var must follow the mapping
                        ctx.add([neg(z), neg(self.pi[q][t].eq_lit(p)), w])

    def _encode_space_swap_exclusion(self) -> None:
        """OLSQ Eq. 7-8: SWAP/gate exclusion expressed via space variables."""
        ctx = self.ctx
        duration = self.config.swap_duration
        edges = self.device.edges
        incident = self.device.incident_edges
        for lit, e_idx, t in self.swap_lits:
            a, b = edges[e_idx]
            window = range(max(0, t - duration + 1), t + 1)
            # Edges that share a qubit with e (including e itself).
            clashing_edges = sorted(set(incident[a]) | set(incident[b]))
            for g_idx, gate in enumerate(self.circuit.gates):
                space = self.space[g_idx]
                for t_prime in window:
                    z = self.time[g_idx].eq_lit(t_prime)
                    if gate.is_two_qubit:
                        for e2 in clashing_edges:
                            ctx.add([neg(z), neg(space.eq_lit(e2)), neg(lit)])
                    else:
                        ctx.add([neg(z), neg(space.eq_lit(a)), neg(lit)])
                        ctx.add([neg(z), neg(space.eq_lit(b)), neg(lit)])


class OLSQ(OLSQ2):
    """The OLSQ baseline synthesizer (space-variable formulation)."""

    transition_based = False

    def _encoder_cls(self):
        return OLSQEncoder


class TBOLSQ(OLSQ2):
    """TB-OLSQ: the transition-based OLSQ baseline."""

    transition_based = True

    def _encoder_cls(self):
        return OLSQEncoder
