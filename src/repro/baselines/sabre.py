"""SABRE (Li, Ding, Xie — ASPLOS'19): the heuristic baseline of Tables III-IV.

A faithful reimplementation of the SWAP-based BidiREctional heuristic:

* routing pass: keep a *front layer* of dependency-free gates; execute those
  whose qubits are adjacent; otherwise score the candidate SWAPs on edges
  incident to front-layer qubits with the distance heuristic
  ``H = (1/|F|) sum_F D[pi(q1)][pi(q2)]
      + W * (1/|E|) sum_E D[...]``  (lookahead over the extended set)
  scaled by a decay factor on recently-swapped qubits, and apply the best;
* initial mapping: bidirectional passes — route the circuit forward, use the
  final mapping as the initial mapping of a reverse pass, and repeat.

The output is converted to a :class:`~repro.core.result.SynthesisResult`
(ASAP-scheduled, SWAPs as timed events) so the shared validator and the
benchmark harness treat SABRE exactly like the exact synthesizers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..core.interface import check_initial_mapping, check_objective
from ..core.result import SwapEvent, SynthesisResult

EXTENDED_SET_SIZE = 20
EXTENDED_SET_WEIGHT = 0.5
DECAY_INCREMENT = 0.001
DECAY_RESET_INTERVAL = 5


class SabreRouter:
    """One SABRE routing pass over a fixed initial mapping."""

    def __init__(self, circuit: QuantumCircuit, device: CouplingGraph, rng: random.Random):
        self.circuit = circuit
        self.device = device
        self.rng = rng
        self.dist = device.distance_matrix()
        # successor structure: per gate, the gates that become ready after it
        self.successors: List[List[int]] = [[] for _ in circuit.gates]
        self.n_deps: List[int] = [0] * circuit.num_gates
        last_on_wire: Dict[int, int] = {}
        for idx, gate in enumerate(circuit.gates):
            preds = {last_on_wire[q] for q in gate.qubits if q in last_on_wire}
            self.n_deps[idx] = len(preds)
            for p in preds:
                self.successors[p].append(idx)
            for q in gate.qubits:
                last_on_wire[q] = idx

    def run(self, initial_mapping: Sequence[int]) -> Tuple[List, List[int]]:
        """Route with the given mapping.

        Returns ``(ops, final_mapping)`` where ``ops`` is the ordered list of
        ``("gate", index)`` / ``("swap", (p, p'))`` events.
        """
        mapping = list(initial_mapping)  # program -> physical
        inverse = [-1] * self.device.n_qubits
        for q, p in enumerate(mapping):
            inverse[p] = q
        remaining = list(self.n_deps)
        front = [i for i, n in enumerate(remaining) if n == 0]
        ops: List = []
        decay = [1.0] * self.device.n_qubits
        steps_since_reset = 0
        stuck_guard = 0

        def executable(idx: int) -> bool:
            gate = self.circuit.gates[idx]
            if gate.is_single_qubit:
                return True
            a, b = (mapping[q] for q in gate.qubits)
            return self.device.are_adjacent(a, b)

        while front:
            progressed = False
            next_front: List[int] = []
            for idx in front:
                if executable(idx):
                    ops.append(("gate", idx))
                    progressed = True
                    for succ in self.successors[idx]:
                        remaining[succ] -= 1
                        if remaining[succ] == 0:
                            next_front.append(succ)
                else:
                    next_front.append(idx)
            front = next_front
            if progressed:
                stuck_guard = 0
                continue
            if not front:
                break

            # All front gates blocked: choose the best SWAP.
            stuck_guard += 1
            if stuck_guard > 4 * self.device.n_qubits * max(1, self.device.num_edges):
                raise RuntimeError(self._stuck_message(front, mapping))
            extended = self._extended_set(front, remaining)
            candidates = self._candidate_swaps(front, mapping)
            if not candidates:
                # No edge touches any front-layer qubit: the mapping placed
                # them on isolated vertices or in separate components, and
                # no sequence of SWAPs can ever connect them.
                raise RuntimeError(self._stuck_message(front, mapping))
            best_swap, best_score = None, float("inf")
            for a, b in candidates:
                score = self._score_swap(a, b, front, extended, mapping, decay)
                if score < best_score - 1e-12 or (
                    abs(score - best_score) <= 1e-12 and self.rng.random() < 0.5
                ):
                    best_swap, best_score = (a, b), score
            a, b = best_swap
            ops.append(("swap", (a, b)))
            qa, qb = inverse[a], inverse[b]
            if qa >= 0:
                mapping[qa] = b
            if qb >= 0:
                mapping[qb] = a
            inverse[a], inverse[b] = qb, qa
            decay[a] += DECAY_INCREMENT
            decay[b] += DECAY_INCREMENT
            steps_since_reset += 1
            if steps_since_reset >= DECAY_RESET_INTERVAL:
                decay = [1.0] * self.device.n_qubits
                steps_since_reset = 0
        return ops, mapping

    def _stuck_message(self, front: List[int], mapping: List[int]) -> str:
        """A diagnosable routing-failure message naming circuit and device.

        Reached when the router cannot connect the front layer — typically
        a disconnected coupling graph (or a pinned mapping placing
        interacting qubits in separate components), where no SWAP sequence
        can ever make the blocked gates adjacent.
        """
        blocked = []
        for idx in front[:4]:
            gate = self.circuit.gates[idx]
            placed = ",".join(f"q{q}@p{mapping[q]}" for q in gate.qubits)
            blocked.append(f"{gate.name}({placed})")
        more = "" if len(front) <= 4 else f" and {len(front) - 4} more"
        return (
            f"SABRE routing failed to make progress on circuit "
            f"{self.circuit.name or f'<{self.circuit.n_qubits} qubits, {self.circuit.num_gates} gates>'} "
            f"/ device {self.device.name or f'<{self.device.n_qubits} qubits>'}: "
            f"blocked gates [{'; '.join(blocked)}{more}] cannot be made "
            f"adjacent — the device (or the reachable part of it under the "
            f"given initial mapping) is likely disconnected"
        )

    def _extended_set(self, front: List[int], remaining: List[int]) -> List[int]:
        """Successor two-qubit gates close behind the front layer."""
        extended: List[int] = []
        queue = list(front)
        virtual_remaining = dict()
        seen = set(front)
        while queue and len(extended) < EXTENDED_SET_SIZE:
            idx = queue.pop(0)
            for succ in self.successors[idx]:
                if succ in seen:
                    continue
                need = virtual_remaining.get(succ, remaining[succ]) - 1
                virtual_remaining[succ] = need
                if need <= 0:
                    seen.add(succ)
                    queue.append(succ)
                    if self.circuit.gates[succ].is_two_qubit:
                        extended.append(succ)
        return extended

    def _candidate_swaps(self, front: List[int], mapping: List[int]):
        candidates = set()
        for idx in front:
            gate = self.circuit.gates[idx]
            if gate.is_single_qubit:
                continue
            for q in gate.qubits:
                p = mapping[q]
                for nb in self.device.neighbors(p):
                    candidates.add((min(p, nb), max(p, nb)))
        return sorted(candidates)

    def _score_swap(self, a, b, front, extended, mapping, decay) -> float:
        trial = list(mapping)
        for q, p in enumerate(trial):
            if p == a:
                trial[q] = b
            elif p == b:
                trial[q] = a

        def layer_cost(indices):
            total, count = 0.0, 0
            for idx in indices:
                gate = self.circuit.gates[idx]
                if not gate.is_two_qubit:
                    continue
                qa, qb = gate.qubits
                total += self.dist[trial[qa]][trial[qb]]
                count += 1
            return total / count if count else 0.0

        score = layer_cost(front)
        if extended:
            score += EXTENDED_SET_WEIGHT * layer_cost(extended)
        return max(decay[a], decay[b]) * score


class SABRE:
    """The complete SABRE flow: bidirectional mapping passes + final route."""

    def __init__(self, passes: int = 3, seed: int = 0, swap_duration: int = 3):
        if passes < 1:
            raise ValueError("need at least one pass")
        self.passes = passes
        self.seed = seed
        self.swap_duration = swap_duration

    def synthesize(
        self,
        circuit: QuantumCircuit,
        device: CouplingGraph,
        *,
        objective: str = "depth",
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> SynthesisResult:
        # SABRE is a heuristic: it accepts either objective (the routing
        # pass is the same) and simply records which one was requested.
        check_objective("SABRE", objective)
        mapping = check_initial_mapping(circuit, device, initial_mapping)
        if circuit.n_qubits > device.n_qubits:
            raise ValueError("circuit larger than device")
        rng = random.Random(self.seed)
        if mapping is None:
            mapping = rng.sample(range(device.n_qubits), circuit.n_qubits)

        forward = SabreRouter(circuit, device, rng)
        reverse = SabreRouter(circuit.reversed(), device, rng)
        # Bidirectional passes refine the initial mapping.
        for _ in range(self.passes - 1):
            _ops, mapping = forward.run(mapping)
            _ops, mapping = reverse.run(mapping)
        initial = list(mapping)
        ops, _final = forward.run(initial)
        return self._to_result(circuit, device, initial, ops)

    def _to_result(self, circuit, device, initial, ops) -> SynthesisResult:
        """ASAP-schedule the routed op sequence into timed events."""
        frontier = [0] * device.n_qubits
        mapping = list(initial)
        gate_times = [0] * circuit.num_gates
        swaps: List[SwapEvent] = []
        for kind, payload in ops:
            if kind == "gate":
                gate = circuit.gates[payload]
                phys = [mapping[q] for q in gate.qubits]
                t = max(frontier[p] for p in phys)
                gate_times[payload] = t
                for p in phys:
                    frontier[p] = t + 1
            else:
                a, b = payload
                start = max(frontier[a], frontier[b])
                finish = start + self.swap_duration - 1
                swaps.append(SwapEvent(a, b, finish))
                frontier[a] = frontier[b] = finish + 1
                for q, p in enumerate(mapping):
                    if p == a:
                        mapping[q] = b
                    elif p == b:
                        mapping[q] = a
        return SynthesisResult(
            circuit=circuit,
            device=device,
            initial_mapping=initial,
            gate_times=gate_times,
            swaps=swaps,
            swap_duration=self.swap_duration,
            objective="heuristic",
            optimal=False,
        )
