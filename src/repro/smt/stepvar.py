"""Extensible time-step variables for incremental horizon growth.

The iterative optimization loops (paper Sec. III-B) repeatedly re-solve the
layout model; when the relax phase discovers the horizon is too small, the
formula must cover more time steps.  Ordinary domain variables
(:mod:`repro.smt.domain`) bake their domain size into eager clauses — an
unguarded at-least-one, "top value impossible" units in comparisons — so
growing them would contradict clauses already handed to the solver.
:class:`StepVar` is the extensible alternative used for the gate-time
variables ``time[g]``:

* one selector Boolean per time step with an eager pairwise at-most-one
  (extension just adds the cross pairs for new steps);
* **no** unguarded at-least-one.  The owner (the encoder) asserts
  ``act -> (z_0 | ... | z_{H-1})`` with a fresh per-horizon *activation
  literal* ``act``, assumed at every solve and re-issued after growth, so
  old at-least-one clauses are silently retired instead of contradicted;
* ordering constraints (``less_than``/``less_equal``) are pairwise conflict
  clauses only — the "must take some value" half comes from the guarded
  at-least-one, so no clause ever mentions the current top of the domain.
  Each ordering is recorded so :meth:`extend_orders` can complete the
  pairwise matrix after both sides have grown.

With this, :meth:`repro.core.encoder.LayoutEncoder.extend_horizon` appends
variables and clauses to the *live* solver and every learnt clause, VSIDS
activity, and saved phase survives horizon growth.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sat.types import neg


class StepVar:
    """A bounded integer over time steps, growable after construction.

    Implements the same interface as the :mod:`repro.smt.domain` variables
    (``eq_lit``/``fix``/``leq_const``/``less_than``/``less_equal``/``neq``/
    ``decode``/``polarity_hints``/``size``) and is valid only together with
    its owner's guarded at-least-one (see module docstring).
    """

    __slots__ = ("ctx", "selectors", "_orders")

    def __init__(self, ctx, size: int):
        if size < 1:
            raise ValueError("domain size must be >= 1")
        self.ctx = ctx
        self.selectors: List[int] = [ctx.new_bool() for _ in range(size)]
        # (other, strict) ordering constraints, recorded for extension.
        self._orders: List[Tuple["StepVar", bool]] = []
        for i in range(size):
            for j in range(i + 1, size):
                ctx.add([neg(self.selectors[i]), neg(self.selectors[j])])

    @property
    def size(self) -> int:
        return len(self.selectors)

    # -- queries -------------------------------------------------------

    def eq_lit(self, value: int) -> int:
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return self.selectors[value]

    def fix(self, value: int) -> None:
        self.ctx.add([self.eq_lit(value)])

    def leq_const(self, k: int, guard=None) -> None:
        """Forbid every value above ``k`` (optionally only under ``guard``)."""
        prefix = [neg(guard)] if guard is not None else []
        if k < 0:
            self.ctx.add(prefix)
            return
        for v in range(k + 1, self.size):
            self.ctx.add(prefix + [neg(self.selectors[v])])

    # -- ordering ------------------------------------------------------

    def less_than(self, other: "StepVar") -> None:
        """Enforce ``self < other`` (given both guarded at-least-ones)."""
        self._order(other, strict=True)

    def less_equal(self, other: "StepVar") -> None:
        """Enforce ``self <= other`` (given both guarded at-least-ones)."""
        self._order(other, strict=False)

    def _order(self, other: "StepVar", strict: bool) -> None:
        if not isinstance(other, StepVar):
            raise TypeError("cannot compare mixed encodings")
        self._orders.append((other, strict))
        self._order_clauses(other, strict, 0, 0)

    def _order_clauses(
        self, other: "StepVar", strict: bool, old_self: int, old_other: int
    ) -> None:
        """Pairwise conflicts; skips pairs already emitted below the olds."""
        ctx = self.ctx
        selectors = self.selectors
        for v in range(self.size):
            hi = min(v + 1 if strict else v, other.size)
            lo = 0 if v >= old_self else old_other
            for w in range(lo, hi):
                ctx.add([neg(selectors[v]), neg(other.selectors[w])])

    def neq(self, other: "StepVar") -> None:
        for v in range(min(self.size, other.size)):
            self.ctx.add([neg(self.selectors[v]), neg(other.selectors[v])])

    # -- extension -----------------------------------------------------

    def grow(self, new_size: int) -> List[int]:
        """Append selectors (and their at-most-one pairs) up to ``new_size``.

        Returns the new selector literals.  The caller must re-issue its
        guarded at-least-one over the full selector list afterwards, and
        call :meth:`extend_orders` once every related variable has grown.
        """
        old = self.size
        if new_size <= old:
            return []
        ctx = self.ctx
        for _ in range(old, new_size):
            self.selectors.append(ctx.new_bool())
        for b in range(old, new_size):
            zb = neg(self.selectors[b])
            for a in range(b):
                ctx.add([neg(self.selectors[a]), zb])
        return self.selectors[old:]

    def extend_orders(self, old_size: int) -> None:
        """Complete recorded ordering matrices after growth.

        ``old_size`` is the size *both* sides had when the orderings were
        last complete (the encoder grows all time variables in lockstep).
        """
        for other, strict in self._orders:
            self._order_clauses(other, strict, old_size, old_size)

    # -- model reading -------------------------------------------------

    def decode(self, model: Sequence[bool]) -> int:
        for v, lit in enumerate(self.selectors):
            if model[lit >> 1] ^ bool(lit & 1):
                return v
        raise ValueError(
            "step variable has no true selector in model (was the horizon "
            "activation literal assumed?)"
        )

    def polarity_hints(self, value: int) -> Dict[int, bool]:
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return {lit >> 1: (v == value) ^ bool(lit & 1) for v, lit in enumerate(self.selectors)}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"StepVar(size={self.size})"
