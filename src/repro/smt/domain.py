"""Bounded-domain variables over SAT in four interchangeable encodings.

The paper's Improvement 3 compares *integer* against *bit-vector* variable
encodings inside Z3.  At the SAT level this package offers the full design
space:

* :class:`BitVecVar` — the value is a little-endian vector of
  ``ceil(log2(size))`` Boolean bits.  This is literally what Z3's bit-blaster
  produces for a bit-vector term, i.e. the paper's winning ``(bv)`` encoding.
* :class:`OneHotVar` — one Boolean per domain value plus an eager
  exactly-one constraint (the classical *direct* encoding; an ablation point).
* :class:`OrderVar` — the unary-ladder order encoding (``o[v] = x <= v``;
  a second ablation point, strong on ordering constraints).
* ``"int"`` (:class:`repro.smt.lazy.LazyIntVar`) — one atom per value with
  **no** eager semantics; domain axioms are enforced lazily by a DPLL(T)-style
  CEGAR loop, emulating Z3's integer-theory architecture.

All expose the same interface so the layout-synthesis encoders are agnostic:

* ``eq_lit(value)`` — an indicator literal for ``var == value``,
* ``fix(value)`` — pin the variable with unit clauses,
* ``leq_const(k, guard=None)`` — clauses enforcing ``var <= k``,
* ``less_than(other)`` / ``less_equal(other)`` — ordering constraints,
* ``neq(other)`` — clauses enforcing ``self != other``,
* ``decode(model)`` — read the value back from a satisfying assignment,
* ``polarity_hints(value)`` — warm-start hints steering the search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..encodings.adder import compare_leq_const
from ..sat.types import neg

BITVEC = "bitvec"
ONEHOT = "onehot"
INT = "int"  # lazy integer-theory emulation, see repro.smt.lazy
ORDER = "order"  # Tamura-style order (unary ladder) encoding
ENCODINGS = (BITVEC, ONEHOT, INT, ORDER)


class BitVecVar:
    """An unsigned bounded integer encoded as a little-endian bit vector."""

    __slots__ = ("ctx", "size", "n_bits", "bits", "_eq_cache")

    def __init__(self, ctx, size: int):
        if size < 1:
            raise ValueError("domain size must be >= 1")
        self.ctx = ctx
        self.size = size
        self.n_bits = max(1, (size - 1).bit_length())
        self.bits = [ctx.new_bool() for _ in range(self.n_bits)]
        self._eq_cache: Dict[int, int] = {}
        # Exclude invalid codes when size is not a power of two.
        if size < (1 << self.n_bits):
            compare_leq_const(ctx.sink, self.bits, size - 1)

    def _bit_lits(self, value: int) -> List[int]:
        """Literals asserting each bit of ``value``."""
        return [
            b if (value >> i) & 1 else neg(b) for i, b in enumerate(self.bits)
        ]

    def eq_lit(self, value: int) -> int:
        """Indicator literal ``y <-> (var == value)`` (cached per value)."""
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        cached = self._eq_cache.get(value)
        if cached is not None:
            return cached
        pattern = self._bit_lits(value)
        if len(pattern) == 1:
            y = pattern[0]
        else:
            y = self.ctx.new_bool()
            for lit in pattern:
                self.ctx.add([neg(y), lit])
            self.ctx.add([y] + [neg(lit) for lit in pattern])
        self._eq_cache[value] = y
        return y

    def fix(self, value: int) -> None:
        """Pin the variable to ``value`` with unit clauses."""
        for lit in self._bit_lits(value):
            self.ctx.add([lit])

    def leq_const(self, k: int, guard: Optional[int] = None) -> None:
        """Enforce ``var <= k`` (optionally only when ``guard`` is true)."""
        if k >= self.size - 1:
            return
        if k < 0:
            clause = [] if guard is None else [neg(guard)]
            self.ctx.add(clause)
            return
        compare_leq_const(self.ctx.sink, self.bits, k, guard=guard)

    def _compare(self, other: "BitVecVar", strict: bool) -> None:
        """Enforce ``self < other`` (strict) or ``self <= other``.

        Builds a one-directional comparison ladder ``cmp_i`` over bit
        prefixes ``0..i`` and asserts the top.  One direction suffices for
        *enforcing* the relation: any model must satisfy the ladder downward,
        and any pair of values in the relation admits a consistent labelling
        of the ladder variables, so no solutions are lost.
        """
        if not isinstance(other, BitVecVar):
            raise TypeError("cannot compare mixed encodings")
        ctx = self.ctx
        width = max(self.n_bits, other.n_bits)
        a = list(self.bits) + [ctx.false_lit] * (width - self.n_bits)
        b = list(other.bits) + [ctx.false_lit] * (width - other.n_bits)
        prev: Optional[int] = None
        for i in range(width):  # little-endian: LSB first
            cmp_i = ctx.new_bool()
            ai, bi = a[i], b[i]
            if prev is None:
                if strict:
                    # cmp_0 -> (-a_0 & b_0)
                    ctx.add([neg(cmp_i), neg(ai)])
                    ctx.add([neg(cmp_i), bi])
                else:
                    # cmp_0 -> (a_0 -> b_0)
                    ctx.add([neg(cmp_i), neg(ai), bi])
            else:
                # cmp_i -> (-a_i & b_i) | ((a_i <-> b_i) & cmp_{i-1})
                ctx.add([neg(cmp_i), neg(ai), bi])
                ctx.add([neg(cmp_i), neg(ai), prev])
                ctx.add([neg(cmp_i), ai, bi, prev])
            prev = cmp_i
        assert prev is not None
        ctx.add([prev])

    def less_than(self, other: "BitVecVar") -> None:
        """Enforce ``self < other``."""
        self._compare(other, strict=True)

    def less_equal(self, other: "BitVecVar") -> None:
        """Enforce ``self <= other``."""
        self._compare(other, strict=False)

    def neq(self, other: "BitVecVar") -> None:
        """Enforce ``self != other``: some bit position differs."""
        if not isinstance(other, BitVecVar):
            raise TypeError("cannot compare mixed encodings")
        ctx = self.ctx
        width = max(self.n_bits, other.n_bits)
        a = list(self.bits) + [ctx.false_lit] * (width - self.n_bits)
        b = list(other.bits) + [ctx.false_lit] * (width - other.n_bits)
        diffs = []
        for ai, bi in zip(a, b):
            d = ctx.new_bool()
            # d -> (a_i XOR b_i); one direction, then assert OR of d's.
            ctx.add([neg(d), ai, bi])
            ctx.add([neg(d), neg(ai), neg(bi)])
            diffs.append(d)
        ctx.add(diffs)

    def decode(self, model: Sequence[bool]) -> int:
        value = 0
        for i, b in enumerate(self.bits):
            if model[b >> 1] ^ bool(b & 1):
                value |= 1 << i
        return value

    def polarity_hints(self, value: int) -> Dict[int, bool]:
        """Variable->bool hints that make the solver try ``value`` first."""
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return {b >> 1: bool((value >> i) & 1) for i, b in enumerate(self.bits)}

    def __repr__(self) -> str:  # pragma: no cover
        return f"BitVecVar(size={self.size}, bits={self.n_bits})"


class OneHotVar:
    """A bounded integer in the direct (one-hot) encoding."""

    __slots__ = ("ctx", "size", "selectors")

    def __init__(self, ctx, size: int):
        if size < 1:
            raise ValueError("domain size must be >= 1")
        self.ctx = ctx
        self.size = size
        self.selectors = [ctx.new_bool() for _ in range(size)]
        ctx.add(list(self.selectors))  # at least one value
        for i in range(size):  # pairwise at most one
            for j in range(i + 1, size):
                ctx.add([neg(self.selectors[i]), neg(self.selectors[j])])

    def eq_lit(self, value: int) -> int:
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return self.selectors[value]

    def fix(self, value: int) -> None:
        self.ctx.add([self.eq_lit(value)])

    def leq_const(self, k: int, guard: Optional[int] = None) -> None:
        if k >= self.size - 1:
            return
        prefix = [neg(guard)] if guard is not None else []
        if k < 0:
            self.ctx.add(prefix)
            return
        for v in range(k + 1, self.size):
            self.ctx.add(prefix + [neg(self.selectors[v])])

    def less_than(self, other: "OneHotVar") -> None:
        """Enforce ``self < other``: value v forbids other <= v."""
        if not isinstance(other, OneHotVar):
            raise TypeError("cannot compare mixed encodings")
        for v in range(self.size):
            for w in range(min(v + 1, other.size)):
                self.ctx.add([neg(self.selectors[v]), neg(other.selectors[w])])
        # self == size-1 must be impossible if other.size <= size... handled
        # by the pairwise clauses: other must take SOME value > v.
        for v in range(self.size):
            if v + 1 >= other.size:
                self.ctx.add([neg(self.selectors[v])])

    def less_equal(self, other: "OneHotVar") -> None:
        """Enforce ``self <= other``: value v forbids other < v."""
        for v in range(self.size):
            for w in range(min(v, other.size)):
                self.ctx.add([neg(self.selectors[v]), neg(other.selectors[w])])
            if v >= other.size:
                self.ctx.add([neg(self.selectors[v])])

    def neq(self, other: "OneHotVar") -> None:
        """Enforce ``self != other`` pairwise on shared values."""
        for v in range(min(self.size, other.size)):
            self.ctx.add([neg(self.selectors[v]), neg(other.selectors[v])])

    def decode(self, model: Sequence[bool]) -> int:
        for v, lit in enumerate(self.selectors):
            if model[lit >> 1] ^ bool(lit & 1):
                return v
        raise ValueError("one-hot variable has no true selector in model")

    def polarity_hints(self, value: int) -> Dict[int, bool]:
        """Variable->bool hints that make the solver try ``value`` first."""
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return {lit >> 1: (v == value) for v, lit in enumerate(self.selectors)}

    def __repr__(self) -> str:  # pragma: no cover
        return f"OneHotVar(size={self.size})"


class OrderVar:
    """A bounded integer in the order (unary ladder) encoding.

    Ladder variable ``o[v]`` means ``var <= v`` (for ``v`` in
    ``0..size-2``; ``var <= size-1`` is vacuous).  The ladder axiom
    ``o[v] -> o[v+1]`` makes comparisons single literals, which is why this
    encoding (Crawford-Baker / Tamura) excels at ordering-heavy problems —
    included here as an ablation point beyond the paper's int/bv pair.
    """

    __slots__ = ("ctx", "size", "ladder", "_eq_cache")

    def __init__(self, ctx, size: int):
        if size < 1:
            raise ValueError("domain size must be >= 1")
        self.ctx = ctx
        self.size = size
        self.ladder = [ctx.new_bool() for _ in range(max(0, size - 1))]
        self._eq_cache: Dict[int, int] = {}
        for v in range(len(self.ladder) - 1):
            ctx.add([neg(self.ladder[v]), self.ladder[v + 1]])

    def _leq_lit(self, v: int) -> Optional[int]:
        """Literal for ``var <= v``; None when vacuously true."""
        if v >= self.size - 1:
            return None
        if v < 0:
            raise ValueError("var <= -1 is unsatisfiable, not a literal")
        return self.ladder[v]

    def eq_lit(self, value: int) -> int:
        """Indicator ``y <-> (var == value)``: y <-> (var<=v) & -(var<=v-1)."""
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        cached = self._eq_cache.get(value)
        if cached is not None:
            return cached
        upper = self._leq_lit(value)
        lower = self._leq_lit(value - 1) if value > 0 else None
        if upper is None and lower is None:
            y = self.ctx.true_lit  # size == 1
        elif upper is None:
            y = neg(lower)
        elif lower is None:
            y = upper
        else:
            y = self.ctx.new_bool()
            self.ctx.add([neg(y), upper])
            self.ctx.add([neg(y), neg(lower)])
            self.ctx.add([y, neg(upper), lower])
        self._eq_cache[value] = y
        return y

    def fix(self, value: int) -> None:
        self.ctx.add([self.eq_lit(value)])

    def leq_const(self, k: int, guard: Optional[int] = None) -> None:
        prefix = [neg(guard)] if guard is not None else []
        if k >= self.size - 1:
            return
        if k < 0:
            self.ctx.add(prefix)
            return
        self.ctx.add(prefix + [self.ladder[k]])

    def less_than(self, other: "OrderVar") -> None:
        """Enforce ``self < other``: other <= v  ->  self <= v-1."""
        if not isinstance(other, OrderVar):
            raise TypeError("cannot compare mixed encodings")
        # self >= other.size is impossible
        top = other.size - 1
        if top - 1 < self.size - 1:
            self.ctx.add([self.ladder[top - 1]] if top - 1 >= 0 else [])
        for v in range(other.size - 1):
            olit = other.ladder[v]
            if v - 1 >= self.size - 1:
                continue  # self <= v-1 vacuous
            if v - 1 < 0:
                self.ctx.add([neg(olit)])  # other == 0 impossible
            else:
                self.ctx.add([neg(olit), self.ladder[v - 1]])

    def less_equal(self, other: "OrderVar") -> None:
        """Enforce ``self <= other``: other <= v  ->  self <= v."""
        if not isinstance(other, OrderVar):
            raise TypeError("cannot compare mixed encodings")
        top = other.size - 1
        if top < self.size - 1:
            self.ctx.add([self.ladder[top]])
        for v in range(other.size - 1):
            if v >= self.size - 1:
                continue
            self.ctx.add([neg(other.ladder[v]), self.ladder[v]])

    def neq(self, other: "OrderVar") -> None:
        for v in range(min(self.size, other.size)):
            self.ctx.add([neg(self.eq_lit(v)), neg(other.eq_lit(v))])

    def decode(self, model: Sequence[bool]) -> int:
        for v, lit in enumerate(self.ladder):
            if model[lit >> 1] ^ bool(lit & 1):
                return v
        return self.size - 1

    def polarity_hints(self, value: int) -> Dict[int, bool]:
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return {lit >> 1: (v >= value) ^ bool(lit & 1) for v, lit in enumerate(self.ladder)}

    def __repr__(self) -> str:  # pragma: no cover
        return f"OrderVar(size={self.size})"


def make_domain_var(ctx, size: int, encoding: str):
    """Factory for domain variables in the requested encoding.

    ``bitvec`` — eager log encoding (Z3's bit-blasting path);
    ``onehot`` — eager direct encoding (an ablation point, see EXPERIMENTS);
    ``order`` — unary ladder encoding (a second ablation point);
    ``int`` — lazy theory emulation (Z3's integer-arithmetic path).
    """
    if encoding == BITVEC:
        return BitVecVar(ctx, size)
    if encoding == ONEHOT:
        return OneHotVar(ctx, size)
    if encoding == ORDER:
        return OrderVar(ctx, size)
    if encoding == INT:
        from .lazy import LazyIntVar

        return LazyIntVar(ctx, size)
    raise ValueError(f"unknown encoding {encoding!r}")
