"""Injectivity encodings for qubit mappings (paper Sec. III-C).

Mapping injectivity (constraint (1) of Sec. II-A) demands that no two program
qubits share a physical qubit at any time step.  The paper contrasts:

* **pairwise** — ``pi_q != pi_q'`` for every qubit pair, which is quadratic
  in ``|Q|`` (and, for bit-vectors, introduces difference bits per pair);
* **EUF / inverse function** — define ``pi_inv(p, t)`` and assert
  ``pi_inv(pi(q, t), t) = q``; an injective function has a left inverse, so
  two qubits on the same physical qubit would force ``pi_inv`` to take two
  values at once.

Our SAT-level rendition of the EUF trick is *channeling*: allocate inverse
domain variables and add ``(pi_q == p) -> (pi_inv_p == q)`` implications.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sat.types import neg
from .domain import BITVEC, make_domain_var

PAIRWISE_INJ = "pairwise"
CHANNELING_INJ = "channeling"
INJECTIVITY_METHODS = (PAIRWISE_INJ, CHANNELING_INJ)


def inject_pairwise(ctx, domain_vars: Sequence) -> None:
    """Pairwise disequality between all variables (quadratic)."""
    n = len(domain_vars)
    for i in range(n):
        for j in range(i + 1, n):
            domain_vars[i].neq(domain_vars[j])


def inject_channeling(ctx, domain_vars: Sequence, domain_size: int, encoding: str = BITVEC) -> List:
    """Left-inverse channeling: allocate inverse vars and link them.

    ``domain_vars[q]`` ranges over physical qubits ``[0, domain_size)``.  For
    each physical qubit ``p`` an inverse variable over ``[0, len(vars))`` is
    created, with ``(vars[q] == p) -> (inv[p] == q)``.  Returns the inverse
    variables (useful for decoding or debugging).
    """
    n = len(domain_vars)
    if n == 0:
        return []
    inverse = [make_domain_var(ctx, n, encoding) for _ in range(domain_size)]
    for q, var in enumerate(domain_vars):
        for p in range(domain_size):
            ctx.add([neg(var.eq_lit(p)), inverse[p].eq_lit(q)])
    return inverse


def encode_injectivity(
    ctx,
    domain_vars: Sequence,
    domain_size: int,
    method: str = CHANNELING_INJ,
    encoding: str = BITVEC,
):
    """Enforce that ``domain_vars`` take pairwise-distinct values."""
    if method == PAIRWISE_INJ:
        inject_pairwise(ctx, domain_vars)
        return []
    if method == CHANNELING_INJ:
        return inject_channeling(ctx, domain_vars, domain_size, encoding=encoding)
    raise ValueError(f"unknown injectivity method {method!r}")
