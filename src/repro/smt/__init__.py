"""Mini-SMT layer: bounded-domain variables and injectivity over SAT."""

from .context import SMTContext, cnf_context
from .domain import (
    BITVEC,
    ENCODINGS,
    INT,
    ONEHOT,
    ORDER,
    BitVecVar,
    OneHotVar,
    OrderVar,
    make_domain_var,
)
from .lazy import LazyIntVar, solve_with_theory
from .stepvar import StepVar
from .injectivity import (
    CHANNELING_INJ,
    INJECTIVITY_METHODS,
    PAIRWISE_INJ,
    encode_injectivity,
    inject_channeling,
    inject_pairwise,
)

__all__ = [
    "SMTContext",
    "cnf_context",
    "BITVEC",
    "ONEHOT",
    "INT",
    "ORDER",
    "ENCODINGS",
    "BitVecVar",
    "OneHotVar",
    "OrderVar",
    "LazyIntVar",
    "StepVar",
    "solve_with_theory",
    "make_domain_var",
    "PAIRWISE_INJ",
    "CHANNELING_INJ",
    "INJECTIVITY_METHODS",
    "encode_injectivity",
    "inject_channeling",
    "inject_pairwise",
]
