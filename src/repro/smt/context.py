"""Solver context: the thin "SMT" veneer over the CDCL core.

In the original OLSQ2, Z3 receives bit-vector and Boolean terms, bit-blasts
them, and solves the result with its SAT engine.  :class:`SMTContext` plays
the Z3 role here: it owns a :class:`repro.sat.Solver`, hands out Boolean
literals and bounded-domain variables (bit-vector or one-hot encoded, see
:mod:`repro.smt.domain`), and runs incremental queries under assumptions.

A context can also be pointed at a :class:`repro.sat.CNF` instead of a live
solver — encoders then produce a formula artefact whose size can be measured
or serialised to DIMACS, mirroring the paper's ``Solver.sexpr()`` dumps.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..sat.formula import CNF
from ..sat.result import SatResult
from ..sat.solver import Solver
from ..sat.types import mk_lit, neg


class SMTContext:
    """Boolean-level solver context with constant literals and assumptions."""

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else Solver()
        self._true_lit: Optional[int] = None
        self.encode_time = 0.0
        self.solve_time = 0.0
        # Lazy-theory machinery (see repro.smt.lazy): variables registered
        # here get their domain axioms enforced by a CEGAR loop at solve time.
        self.lazy_vars: List = []
        self.theory_rounds = 0
        self.theory_lemmas = 0
        # Literals assumed at *every* solve (e.g. the encoder's horizon
        # activation literal).  Owners append/remove entries directly.
        self.persistent_assumptions: List[int] = []

    def register_lazy_var(self, var) -> None:
        """Register a :class:`repro.smt.lazy.LazyIntVar` for theory checking."""
        self.lazy_vars.append(var)

    # -- variable/clause management ------------------------------------

    def new_bool(self) -> int:
        """Allocate a fresh Boolean variable; returns its positive literal."""
        return mk_lit(self.sink.new_var())

    def new_bools(self, count: int) -> List[int]:
        return [self.new_bool() for _ in range(count)]

    def add(self, clause: Sequence[int]) -> None:
        """Add one clause (a disjunction of packed literals)."""
        self.sink.add_clause(clause)

    def add_implies(self, antecedents: Sequence[int], consequents: Sequence[int]):
        """Add ``AND(antecedents) -> OR(consequents)`` as a single clause."""
        self.sink.add_clause([neg(a) for a in antecedents] + list(consequents))

    @property
    def true_lit(self) -> int:
        """A literal fixed to true (allocated on first use)."""
        if self._true_lit is None:
            self._true_lit = self.new_bool()
            self.add([self._true_lit])
        return self._true_lit

    @property
    def false_lit(self) -> int:
        return neg(self.true_lit)

    # -- solving ---------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        time_budget: Optional[float] = None,
        conflict_budget: Optional[int] = None,
    ) -> "SatResult":
        """Run the underlying solver; requires the sink to be a Solver.

        Returns a :class:`repro.sat.SatResult` (SAT / UNSAT / UNKNOWN).
        """
        if not isinstance(self.sink, Solver):
            raise TypeError("this context wraps a CNF, not a live solver")
        start = time.monotonic()
        if self.persistent_assumptions:
            assumptions = self.persistent_assumptions + list(assumptions)
        if self.lazy_vars:
            from .lazy import solve_with_theory

            result = solve_with_theory(
                self, assumptions=assumptions, time_budget=time_budget
            )
        else:
            result = self.sink.solve(
                assumptions=assumptions,
                time_budget=time_budget,
                conflict_budget=conflict_budget,
            )
        self.solve_time += time.monotonic() - start
        return result

    def model_value(self, lit: int) -> bool:
        return self.sink.model_value(lit)

    # -- introspection -----------------------------------------------------

    @property
    def n_vars(self) -> int:
        # During encode replay (snapshot restore) the sink already holds
        # every variable of the finished encode; mid-replay readers (the
        # encoder's ``base_vars`` snapshot, per-family span deltas) must
        # see the count *as of this point in the replay*, which is the
        # replay cursor.
        cursor = getattr(self.sink, "_replay_cursor", None)
        if cursor is not None:
            return cursor
        return self.sink.n_vars

    @property
    def num_clauses(self) -> int:
        return self.sink.num_clauses

    def stats(self) -> dict:
        if isinstance(self.sink, Solver):
            d = self.sink.stats.as_dict()
        else:
            d = {}
        d.update(
            n_vars=self.n_vars,
            n_clauses=self.num_clauses,
            solve_time=self.solve_time,
        )
        return d


def cnf_context() -> SMTContext:
    """A context that collects clauses into a CNF object (no solving)."""
    return SMTContext(sink=CNF())
