"""Lazy "integer theory" emulation: DPLL(T)-style CEGAR over domain atoms.

Why this exists.  The paper's Table I compares *integer* against
*bit-vector* variables inside Z3.  The two trigger architecturally different
solvers: bit-vectors are **eagerly bit-blasted** into the SAT core, while
integer atoms are abstracted as Booleans and checked **lazily** by an
arithmetic theory solver that refutes spurious models with theory lemmas
(the classic DPLL(T)/CEGAR loop).  The paper's headline speedups come
precisely from escaping that lazy path.

A pure one-hot "direct" encoding does *not* reproduce this — in raw SAT it
propagates strongly and is actually competitive (we measured it; see
EXPERIMENTS.md).  So the faithful substitution is to reproduce the *lazy
architecture* itself:

* :class:`LazyIntVar` allocates one Boolean **atom** per domain value, but
  emits **no** exactly-one clauses — the Boolean skeleton knows nothing
  about domain semantics, exactly like Z3's Boolean abstraction of
  arithmetic atoms;
* relational constraints (equality indicators, orderings, disequalities)
  are clauses over atoms and stay in the skeleton;
* :func:`solve_with_theory` runs the CEGAR loop: solve the skeleton, check
  every lazy variable's atoms for the domain axioms ("some value" and "at
  most one value"), add the violated axioms as lemmas, repeat.

The loop is sound and complete (lemmas are valid domain axioms, finitely
many exist) and reproduces the characteristic slowness of the lazy path:
many iterations, each re-solving a skeleton that learned only a few more
domain facts.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Sequence

from ..sat.result import SatResult
from ..sat.types import neg


class LazyIntVar:
    """A bounded integer handled by the lazy theory loop.

    Shares the domain-variable interface of :mod:`repro.smt.domain`
    (``eq_lit``/``fix``/``leq_const``/``less_than``/``less_equal``/``neq``/
    ``decode``) so encoders are agnostic, but registers itself with the
    context for lazy axiom checking instead of emitting eager semantics.
    """

    __slots__ = ("ctx", "size", "atoms")

    def __init__(self, ctx, size: int):
        if size < 1:
            raise ValueError("domain size must be >= 1")
        self.ctx = ctx
        self.size = size
        self.atoms = [ctx.new_bool() for _ in range(size)]
        ctx.register_lazy_var(self)

    def eq_lit(self, value: int) -> int:
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return self.atoms[value]

    def fix(self, value: int) -> None:
        """Pin to ``value``: assert its atom and refute the others."""
        self.ctx.add([self.eq_lit(value)])
        for v in range(self.size):
            if v != value:
                self.ctx.add([neg(self.atoms[v])])

    def leq_const(self, k: int, guard: Optional[int] = None) -> None:
        if k >= self.size - 1:
            return
        prefix = [neg(guard)] if guard is not None else []
        if k < 0:
            self.ctx.add(prefix)
            return
        for v in range(k + 1, self.size):
            self.ctx.add(prefix + [neg(self.atoms[v])])

    def less_than(self, other: "LazyIntVar") -> None:
        if not isinstance(other, LazyIntVar):
            raise TypeError("cannot compare mixed encodings")
        for v in range(self.size):
            for w in range(min(v + 1, other.size)):
                self.ctx.add([neg(self.atoms[v]), neg(other.atoms[w])])
            if v + 1 >= other.size:
                self.ctx.add([neg(self.atoms[v])])

    def less_equal(self, other: "LazyIntVar") -> None:
        if not isinstance(other, LazyIntVar):
            raise TypeError("cannot compare mixed encodings")
        for v in range(self.size):
            for w in range(min(v, other.size)):
                self.ctx.add([neg(self.atoms[v]), neg(other.atoms[w])])
            if v >= other.size:
                self.ctx.add([neg(self.atoms[v])])

    def neq(self, other: "LazyIntVar") -> None:
        if not isinstance(other, LazyIntVar):
            raise TypeError("cannot compare mixed encodings")
        for v in range(min(self.size, other.size)):
            self.ctx.add([neg(self.atoms[v]), neg(other.atoms[v])])

    def true_values(self, model: Sequence[bool]) -> List[int]:
        return [
            v
            for v, lit in enumerate(self.atoms)
            if model[lit >> 1] ^ bool(lit & 1)
        ]

    def decode(self, model: Sequence[bool]) -> int:
        values = self.true_values(model)
        if len(values) != 1:
            raise ValueError(
                f"lazy int var has {len(values)} true atoms; "
                "decode before theory convergence?"
            )
        return values[0]

    def polarity_hints(self, value: int):
        """Variable->bool hints that make the solver try ``value`` first."""
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain [0, {self.size})")
        return {lit >> 1: (v == value) for v, lit in enumerate(self.atoms)}

    def __repr__(self) -> str:  # pragma: no cover
        return f"LazyIntVar(size={self.size})"


def solve_with_theory(
    ctx,
    assumptions: Sequence[int] = (),
    time_budget: Optional[float] = None,
) -> SatResult:
    """The CEGAR loop: skeleton solve + lazy domain-axiom refinement.

    Returns a :class:`repro.sat.SatResult` with the same semantics as
    :meth:`repro.sat.Solver.solve`; on ``SAT`` every lazy variable decodes
    uniquely.  Statistics land in ``ctx.theory_rounds`` / ``ctx.theory_lemmas``.
    """
    deadline = _time.monotonic() + time_budget if time_budget else None
    while True:
        remaining = None
        if deadline is not None:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                return SatResult.UNKNOWN
        status = ctx.sink.solve(assumptions=assumptions, time_budget=remaining)
        if status is not SatResult.SAT:
            return status
        ctx.theory_rounds += 1
        model = ctx.sink.model
        lemmas: List[List[int]] = []
        for var in ctx.lazy_vars:
            values = var.true_values(model)
            if not values:
                lemmas.append(list(var.atoms))  # "some value" axiom
            elif len(values) > 1:
                # "at most one value" axioms for the violated pairs.
                for i in range(len(values)):
                    for j in range(i + 1, len(values)):
                        lemmas.append(
                            [neg(var.atoms[values[i]]), neg(var.atoms[values[j]])]
                        )
        if not lemmas:
            return SatResult.SAT
        ctx.theory_lemmas += len(lemmas)
        for clause in lemmas:
            ctx.sink.add_clause(clause)
