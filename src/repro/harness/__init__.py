"""Benchmark harness: experiment drivers and table rendering."""

from .configs import (
    TABLE1_VARIANTS,
    TABLE2_VARIANTS,
    build_bounded_encoder,
    build_encoder,
)
from .experiments import (
    print_experiment,
    run_fig1,
    run_speedup_summary,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from .report import generate_report, markdown_table, write_report
from .tables import average, format_table, geometric_mean, ratio
from .tracing import encode_solve_split, trace_summary

__all__ = [
    "TABLE1_VARIANTS",
    "TABLE2_VARIANTS",
    "build_encoder",
    "build_bounded_encoder",
    "run_fig1",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_speedup_summary",
    "print_experiment",
    "trace_summary",
    "encode_solve_split",
    "format_table",
    "geometric_mean",
    "ratio",
    "average",
    "generate_report",
    "write_report",
    "markdown_table",
]
