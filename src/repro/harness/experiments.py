"""Experiment drivers: one function per paper table/figure.

Each driver returns ``(headers, rows, notes)`` and is shared between the
``benchmarks/`` scripts (pytest-benchmark entry points and standalone
``__main__`` runs) and the documentation pipeline.  Instance sizes are the
laptop-scale reductions documented in DESIGN.md/EXPERIMENTS.md — the sweep
structure, configurations, and reported ratios mirror the paper exactly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..arch import devices
from ..baselines.olsq import OLSQ, TBOLSQ
from ..baselines.sabre import SABRE
from ..baselines.satmap import SATMap, SATMapTimeout
from ..core.config import SynthesisConfig
from ..core.olsq2 import OLSQ2, TBOLSQ2
from ..core.optimizer import SynthesisTimeout
from ..core.validator import validate_result
from ..sat.result import SatResult
from ..workloads.qaoa import qaoa_circuit
from ..workloads.queko import queko_circuit
from ..workloads.library import qft, toffoli
from .configs import TABLE1_VARIANTS, TABLE2_VARIANTS, build_bounded_encoder, build_encoder
from .tables import average, format_table, ratio

DEFAULT_SOLVE_TIMEOUT = 120.0


def _timed_solve(encoder, assumptions=(), timeout: float = DEFAULT_SOLVE_TIMEOUT):
    """Encode + solve; returns (status, solve_seconds)."""
    encoder.encode()
    start = time.monotonic()
    status = encoder.ctx.solve(assumptions=assumptions, time_budget=timeout)
    return status, time.monotonic() - start


# ---------------------------------------------------------------------------
# Fig. 1 — SMT solving time vs problem size, OLSQ vs OLSQ2
# ---------------------------------------------------------------------------

def run_fig1(timeout: float = DEFAULT_SOLVE_TIMEOUT):
    """Grid-size x gate-count sweep of raw solving time (satisfiable
    instances at a fixed horizon), OLSQ formulation vs OLSQ2(bv).

    Paper: grids 5x5..9x9, 15-36 gates, horizon 21.  Scaled: grids
    2x3..4x4, QAOA with 9-15 gates, horizon 8.
    """
    grids = [(2, 3), (3, 3), (3, 4), (4, 4)]
    qaoa_sizes = [6, 8, 10]
    horizon = 8
    rows = []
    for rows_, cols in grids:
        device = devices.grid(rows_, cols)
        for n in qaoa_sizes:
            if n > device.n_qubits:
                continue
            circuit = qaoa_circuit(n, seed=1)
            olsq_enc = build_encoder(TABLE1_VARIANTS["OLSQ(int)"], circuit, device, horizon)
            olsq2_enc = build_encoder(TABLE1_VARIANTS["OLSQ2(bv)"], circuit, device, horizon)
            s1, t1 = _timed_solve(olsq_enc, timeout=timeout)
            s2, t2 = _timed_solve(olsq2_enc, timeout=timeout)
            rows.append(
                [
                    f"{rows_}x{cols}",
                    f"{n}/{circuit.num_gates}",
                    t1 if s1 is not SatResult.UNKNOWN else None,
                    t2 if s2 is not SatResult.UNKNOWN else None,
                    ratio(
                        t1 if s1 is not SatResult.UNKNOWN else None,
                        t2 if s2 is not SatResult.UNKNOWN else None,
                    ),
                ]
            )
    headers = ["Grid", "Qubit/Gate", "OLSQ (s)", "OLSQ2 (s)", "Speedup"]
    notes = "Fig. 1: solving time growth; OLSQ2 should scale far better."
    return headers, rows, notes


# ---------------------------------------------------------------------------
# Table I — six encoding variants
# ---------------------------------------------------------------------------

def run_table1(timeout: float = DEFAULT_SOLVE_TIMEOUT):
    """Raw solving time of the six Table-I encoding configurations.

    Paper: QAOA 16-24 qubits on 7x7/8x8 grids, horizon 21.  Scaled: QAOA
    6-10 qubits on 3x3/3x4 grids, horizon 8.
    """
    cases = [
        ((3, 3), 6),
        ((3, 3), 8),
        ((3, 4), 8),
        ((3, 4), 10),
    ]
    horizon = 8
    names = list(TABLE1_VARIANTS)
    rows = []
    baseline_times: List[Optional[float]] = []
    all_times: Dict[str, List[Optional[float]]] = {name: [] for name in names}
    for (gr, gc), n in cases:
        device = devices.grid(gr, gc)
        circuit = qaoa_circuit(n, seed=1)
        row = [f"{gr}x{gc}", f"{n}/{circuit.num_gates}"]
        times = {}
        for name in names:
            enc = build_encoder(TABLE1_VARIANTS[name], circuit, device, horizon)
            status, seconds = _timed_solve(enc, timeout=timeout)
            times[name] = seconds if status is not SatResult.UNKNOWN else None
            all_times[name].append(times[name])
        base = times["OLSQ(int)"]
        for name in names:
            row.append(times[name])
            row.append(ratio(base, times[name]))
        rows.append(row)
    avg_row = ["Avg.", ""]
    for name in names:
        avg_row.append(average(all_times[name]))
        ratios = [
            ratio(b, t)
            for b, t in zip(all_times["OLSQ(int)"], all_times[name])
        ]
        avg_row.append(average(ratios))
    rows.append(avg_row)
    headers = ["Grid", "Q/G"]
    for name in names:
        headers.extend([f"{name} (s)", "Ratio"])
    notes = (
        "Table I: expected ordering OLSQ(int) slowest; OLSQ2(bv) fastest; "
        "EUF+int beats int; EUF+bv between."
    )
    return headers, rows, notes


# ---------------------------------------------------------------------------
# Table II — cardinality constraint encodings
# ---------------------------------------------------------------------------

def run_table2(timeout: float = DEFAULT_SOLVE_TIMEOUT):
    """Solving time with a SWAP-count bound under five cardinality setups.

    Paper: QAOA on a 5x5 grid, S_B = 30, horizon 21 (TB horizon 5).
    Scaled: QAOA 6-10 on a 3x3 grid, S_B = 8, horizon 8 (TB horizon 3).
    """
    cases = [6, 8, 10]
    device = devices.grid(3, 4)
    horizon, tb_horizon, swap_bound = 8, 3, 8
    names = list(TABLE2_VARIANTS)
    rows = []
    all_times: Dict[str, List[Optional[float]]] = {name: [] for name in names}
    for n in cases:
        circuit = qaoa_circuit(n, seed=1)
        row = [f"{n}/{circuit.num_gates}"]
        times = {}
        for name in names:
            enc = build_bounded_encoder(
                TABLE2_VARIANTS[name], circuit, device, horizon, tb_horizon
            )
            enc.encode()
            enc.init_swap_counter(max_bound=swap_bound)
            guard = enc.swap_guard(swap_bound)
            assumptions = [guard] if guard is not None else []
            start = time.monotonic()
            status = enc.ctx.solve(assumptions=assumptions, time_budget=timeout)
            seconds = time.monotonic() - start
            times[name] = seconds if status is not SatResult.UNKNOWN else None
            all_times[name].append(times[name])
        base = times["OLSQ"]
        for name in names:
            row.append(times[name])
            row.append(ratio(base, times[name]))
        rows.append(row)
    avg_row = ["Avg."]
    for name in names:
        avg_row.append(average(all_times[name]))
        ratios = [ratio(b, t) for b, t in zip(all_times["OLSQ"], all_times[name])]
        avg_row.append(average(ratios))
    rows.append(avg_row)
    headers = ["Q/G"]
    for name in names:
        headers.extend([f"{name} (s)", "Ratio"])
    notes = (
        "Table II: CNF sequential counter beats the adder/'AtMost' path; "
        "TB-OLSQ2(CNF) fastest overall."
    )
    return headers, rows, notes


# ---------------------------------------------------------------------------
# Table III — depth: SABRE vs OLSQ2
# ---------------------------------------------------------------------------

def _table34_cases():
    """The scaled-down Table III/IV benchmark rows.

    Devices: QX2 stands in for small arithmetic rows; BFS regions of
    Sycamore/Aspen-4 stand in for the large-device rows; QUEKO rows use the
    actual region graphs so zero-SWAP layouts exist by construction.
    """
    syc12 = devices.sycamore_region(12)
    aspen = devices.rigetti_aspen4()
    cases = []
    cases.append(("sycamore[12]", syc12, "QFT(4)", qft(4), 3, None))
    cases.append(("sycamore[12]", syc12, "tof_2(3)", toffoli(2), 3, None))
    cases.append(("sycamore[12]", syc12, "QAOA(6/9)", qaoa_circuit(6, seed=1), 1, None))
    cases.append(("sycamore[12]", syc12, "QAOA(8/12)", qaoa_circuit(8, seed=1), 1, None))
    q1 = queko_circuit(syc12, 4, 12, seed=1)
    cases.append(("sycamore[12]", syc12, "QUEKO(12/12)", q1.circuit, 1, q1.optimal_depth))
    q2 = queko_circuit(syc12, 6, 20, seed=2)
    cases.append(("sycamore[12]", syc12, "QUEKO(12/20)", q2.circuit, 1, q2.optimal_depth))
    q3 = queko_circuit(aspen, 5, 16, seed=3)
    cases.append(("aspen-4", aspen, "QUEKO(16/16)", q3.circuit, 1, q3.optimal_depth))
    q4 = queko_circuit(aspen, 8, 24, seed=4)
    cases.append(("aspen-4", aspen, "QUEKO(16/24)", q4.circuit, 1, q4.optimal_depth))
    eagle16 = devices.eagle_region(16)
    cases.append(("eagle[16]", eagle16, "QAOA(6/9)", qaoa_circuit(6, seed=2), 1, None))
    return cases


def run_table3(time_budget: float = 120.0):
    """Depth comparison: SABRE vs OLSQ2 (ratio = SABRE / OLSQ2)."""
    rows = []
    ratios = []
    for device_name, device, bench_name, circuit, swap_dur, known_opt in _table34_cases():
        sabre = SABRE(swap_duration=swap_dur, seed=0).synthesize(circuit, device)
        validate_result(sabre)
        cfg = SynthesisConfig(
            swap_duration=swap_dur,
            time_budget=time_budget,
            solve_time_budget=time_budget / 2,
        )
        try:
            exact = OLSQ2(cfg).synthesize(circuit, device, objective="depth")
            validate_result(exact)
            depth = exact.depth
            mark = "*" if exact.optimal else ""
            if known_opt is not None and exact.optimal:
                assert depth == known_opt, (bench_name, depth, known_opt)
        except SynthesisTimeout:
            depth, mark = None, "TO"
        r = ratio(float(sabre.depth), float(depth) if depth else None)
        if r is not None:
            ratios.append(r)
        rows.append([device_name, bench_name, sabre.depth, depth, mark, r])
    rows.append(["", "Avg.", None, None, "", average(ratios)])
    headers = ["Device", "Benchmark", "SABRE", "OLSQ2", "", "Ratio"]
    notes = (
        "Table III: OLSQ2 depth <= SABRE depth everywhere; on QUEKO rows "
        "OLSQ2 (* = proven optimal) matches the known-optimal depth."
    )
    return headers, rows, notes


# ---------------------------------------------------------------------------
# Table IV — SWAP count: SABRE vs SATMap vs TB-OLSQ2
# ---------------------------------------------------------------------------

def run_table4(time_budget: float = 120.0):
    """SWAP-count comparison (zero counts as 1 for ratio averaging, as in
    the paper's Table IV footnote)."""
    rows = []
    sabre_ratios, satmap_ratios = [], []
    for device_name, device, bench_name, circuit, swap_dur, _opt in _table34_cases():
        sabre = SABRE(swap_duration=swap_dur, seed=0).synthesize(circuit, device)
        validate_result(sabre)
        cfg = SynthesisConfig(
            swap_duration=swap_dur,
            time_budget=time_budget,
            solve_time_budget=time_budget / 2,
            max_pareto_rounds=1,
        )
        try:
            satmap = SATMap(slice_size=10, config=cfg).synthesize(
                circuit, device, objective="swap"
            )
            validate_result(satmap)
            satmap_swaps = satmap.swap_count
        except SATMapTimeout:
            satmap_swaps = None
        try:
            tb = TBOLSQ2(cfg).synthesize(circuit, device, objective="swap")
            validate_result(tb)
            tb_swaps = tb.swap_count
        except SynthesisTimeout:
            tb_swaps = None
        rows.append([device_name, bench_name, sabre.swap_count, satmap_swaps, tb_swaps])
        if tb_swaps is not None:
            denom = max(1, tb_swaps)
            sabre_ratios.append(max(1, sabre.swap_count) / denom)
            if satmap_swaps is not None:
                satmap_ratios.append(max(1, satmap_swaps) / denom)
    rows.append(["", "Avg. ratio", average(sabre_ratios), average(satmap_ratios), 1.0])
    headers = ["Device", "Benchmark", "SABRE", "SATMap", "TB-OLSQ2"]
    notes = (
        "Table IV: TB-OLSQ2 <= SATMap <= SABRE on SWAPs; QUEKO rows give 0 "
        "for TB-OLSQ2."
    )
    return headers, rows, notes


# ---------------------------------------------------------------------------
# Sec. IV-C summary — OLSQ vs OLSQ2 end-to-end depth optimization speedup
# ---------------------------------------------------------------------------

def run_speedup_summary(time_budget: float = 120.0):
    """End-to-end depth-optimization wall time, OLSQ vs OLSQ2."""
    cases = [
        ("grid-3x3", devices.grid(3, 3), qaoa_circuit(6, seed=1), 1),
        ("grid-3x3", devices.grid(3, 3), qaoa_circuit(8, seed=1), 1),
        ("qx2", devices.ibm_qx2(), toffoli(2), 3),
    ]
    rows = []
    ratios = []
    for device_name, device, circuit, swap_dur in cases:
        def run(cls, encoding):
            cfg = SynthesisConfig(
                swap_duration=swap_dur,
                time_budget=time_budget,
                solve_time_budget=time_budget / 2,
                encoding=encoding,
            )
            start = time.monotonic()
            try:
                res = cls(cfg).synthesize(circuit, device, objective="depth")
                validate_result(res)
                return time.monotonic() - start, res.depth
            except SynthesisTimeout:
                return None, None

        # The original OLSQ implementation used integer variables (lazy
        # theory path); OLSQ2's winning configuration is bit-vector.
        t_olsq, d_olsq = run(OLSQ, "int")
        t_olsq2, d_olsq2 = run(OLSQ2, "bitvec")
        if d_olsq is not None and d_olsq2 is not None:
            assert d_olsq == d_olsq2, "both exact tools must agree on the optimum"
        r = ratio(t_olsq, t_olsq2)
        if r is not None:
            ratios.append(r)
        rows.append(
            [device_name, circuit.name, t_olsq, t_olsq2, d_olsq2, r]
        )
    rows.append(["", "Avg.", None, None, None, average(ratios)])
    headers = ["Device", "Circuit", "OLSQ (s)", "OLSQ2 (s)", "Depth", "Speedup"]
    notes = "Sec. IV-C: OLSQ2 end-to-end faster than OLSQ at equal optima."
    return headers, rows, notes


def print_experiment(headers, rows, notes, title: str) -> str:
    """Render one experiment's table + notes to stdout; returns the text.

    When the ``OLSQ2_RESULTS_FILE`` environment variable is set, the table
    is also appended there — useful because pytest captures stdout, so
    ``pytest benchmarks/`` runs would otherwise not persist the tables.
    """
    import os

    text = format_table(headers, rows, title=title) + "\n" + notes
    print(text)
    path = os.environ.get("OLSQ2_RESULTS_FILE")
    if path:
        with open(path, "a") as fp:
            fp.write(text + "\n\n")
    return text
