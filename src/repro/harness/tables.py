"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print rows shaped like the paper's tables; this module
keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries (0.0 when there are none)."""
    vals = [v for v in values if v is not None and v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def ratio(baseline: Optional[float], other: Optional[float]) -> Optional[float]:
    """``baseline / other`` — the paper's speedup/reduction convention."""
    if baseline is None or other is None or other == 0:
        return None
    return baseline / other


def average(values: Sequence[Optional[float]]) -> Optional[float]:
    """Arithmetic mean ignoring ``None`` entries (``None`` if all missing)."""
    vals = [v for v in values if v is not None]
    if not vals:
        return None
    return sum(vals) / len(vals)
