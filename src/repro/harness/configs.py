"""Named encoder configurations for the encoding-comparison experiments.

Table I compares six formulation/encoding combinations; Table II compares
five cardinality-encoding setups.  Each name maps to (encoder class, config)
so the harness can instantiate identical instances under every scheme.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..baselines.olsq import OLSQEncoder
from ..core.config import CARD_ADDER, CARD_SEQUENTIAL, SynthesisConfig
from ..core.encoder import LayoutEncoder
from ..smt.domain import BITVEC, INT, ONEHOT
from ..smt.injectivity import CHANNELING_INJ, PAIRWISE_INJ

# Table I variants: (encoder class, variable encoding, injectivity).
# "int" runs the lazy theory loop (Z3's integer path); "bv" is eager
# bit-blasting.  The extra "onehot" rows are our ablation (see EXPERIMENTS).
TABLE1_VARIANTS: Dict[str, Tuple[type, str, str]] = {
    "OLSQ(int)": (OLSQEncoder, INT, PAIRWISE_INJ),
    "OLSQ(bv)": (OLSQEncoder, BITVEC, PAIRWISE_INJ),
    "OLSQ2(int)": (LayoutEncoder, INT, PAIRWISE_INJ),
    "OLSQ2(EUF+int)": (LayoutEncoder, INT, CHANNELING_INJ),
    "OLSQ2(EUF+bv)": (LayoutEncoder, BITVEC, CHANNELING_INJ),
    "OLSQ2(bv)": (LayoutEncoder, BITVEC, PAIRWISE_INJ),
}

# Ablation variants beyond the paper's six (eager direct encoding).
ABLATION_VARIANTS: Dict[str, Tuple[type, str, str]] = {
    "OLSQ2(onehot)": (LayoutEncoder, ONEHOT, PAIRWISE_INJ),
    "OLSQ(onehot)": (OLSQEncoder, ONEHOT, PAIRWISE_INJ),
}

# Table II variants: (encoder class, transition_based, cardinality, encoding).
# The OLSQ/TB-OLSQ rows reproduce the *original implementation* — integer
# variables through the lazy theory path — exactly as the paper benchmarks
# them ("we use the original implementation of OLSQ and TB-OLSQ").
TABLE2_VARIANTS: Dict[str, Tuple[type, bool, str, str]] = {
    "OLSQ": (OLSQEncoder, False, CARD_SEQUENTIAL, INT),
    "TB-OLSQ": (OLSQEncoder, True, CARD_SEQUENTIAL, INT),
    "OLSQ2(AtMost)": (LayoutEncoder, False, CARD_ADDER, BITVEC),
    "OLSQ2(CNF)": (LayoutEncoder, False, CARD_SEQUENTIAL, BITVEC),
    "TB-OLSQ2(CNF)": (LayoutEncoder, True, CARD_SEQUENTIAL, BITVEC),
}


def build_encoder(
    variant: Tuple[type, str, str],
    circuit,
    device,
    horizon: int,
    swap_duration: int = 1,
):
    """Instantiate a Table-I style encoder (no SWAP bound)."""
    encoder_cls, encoding, injectivity = variant
    config = SynthesisConfig(
        encoding=encoding, injectivity=injectivity, swap_duration=swap_duration
    )
    return encoder_cls(circuit, device, horizon, config=config)


def build_bounded_encoder(
    variant: Tuple[type, bool, str, str],
    circuit,
    device,
    horizon: int,
    tb_horizon: int,
    swap_duration: int = 1,
):
    """Instantiate a Table-II style encoder (SWAP bound applied by caller)."""
    encoder_cls, transition_based, cardinality, encoding = variant
    config = SynthesisConfig(
        cardinality=cardinality, swap_duration=swap_duration, encoding=encoding
    )
    return encoder_cls(
        circuit,
        device,
        tb_horizon if transition_based else horizon,
        config=config,
        transition_based=transition_based,
    )
