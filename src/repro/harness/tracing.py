"""Rendering of telemetry traces for the benchmark harness.

:func:`trace_summary` turns any trace source (a
:class:`~repro.telemetry.MemorySink`, a JSONL path, or an iterable of
records) into the same aligned ASCII table format the experiment drivers
use, so a run's per-phase timing breakdown can sit next to its result
tables in a report::

    phase        | count | total (s) | self (s) | mean (s) | share
    -------------+-------+-----------+----------+----------+------
    optimize     |     1 |    1.9312 |   0.0021 |   1.9312 |  0.1%
    solve        |     9 |    1.8452 |   1.8441 |   0.2145 | 95.5%
    ...
"""

from __future__ import annotations

from typing import Optional

from ..telemetry import summary_rows
from .tables import format_table


def trace_summary(trace, title: Optional[str] = "per-phase breakdown") -> str:
    """Render a per-phase timing table for ``trace``.

    ``trace`` is anything :func:`repro.telemetry.summary_rows` accepts: a
    ``MemorySink``, a path to a JSONL trace file, an open stream, or an
    iterable of trace records/dicts.  Returns the formatted table (empty
    string when the trace holds no completed spans).
    """
    headers, rows = summary_rows(trace)
    if not rows:
        return ""
    return format_table(headers, rows, title=title)
