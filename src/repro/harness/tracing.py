"""Rendering of telemetry traces for the benchmark harness.

:func:`trace_summary` turns any trace source (a
:class:`~repro.telemetry.MemorySink`, a JSONL path, or an iterable of
records) into the same aligned ASCII table format the experiment drivers
use, so a run's per-phase timing breakdown can sit next to its result
tables in a report::

    phase        | count | total (s) | self (s) | mean (s) | share
    -------------+-------+-----------+----------+----------+------
    optimize     |     1 |    1.9312 |   0.0021 |   1.9312 |  0.1%
    solve        |     9 |    1.8452 |   1.8441 |   0.2145 | 95.5%
    ...
    encode wall 0.0712s (3.7%) vs solve wall 1.8452s (96.3%)

The footer splits total wall time between formula *construction* (the
``encode``/``extend`` spans, which wrap the per-family sub-spans) and
*search* (the ``solve`` spans) — the headline ratio the encode-once work
(bulk loading, snapshots, templates) moves.
"""

from __future__ import annotations

from typing import Optional

from ..telemetry import summary_rows
from ..telemetry.events import SpanEnd
from ..telemetry.summary import coerce_records
from .tables import format_table

#: Span names whose *total* time counts as formula construction.  They
#: wrap the per-family ``encode.*`` and ``simplify`` sub-spans, so using
#: their outer durations avoids double counting.
ENCODE_SPANS = frozenset({"encode", "extend"})

#: Span names whose total time counts as SAT search.
SOLVE_SPANS = frozenset({"solve"})


def encode_solve_split(trace) -> Optional[str]:
    """One-line encode-vs-solve wall-time split, or None when the trace
    has neither kind of span."""
    records = coerce_records(trace)
    encode = sum(
        r.duration
        for r in records
        if isinstance(r, SpanEnd) and r.name in ENCODE_SPANS
    )
    solve = sum(
        r.duration
        for r in records
        if isinstance(r, SpanEnd) and r.name in SOLVE_SPANS
    )
    total = encode + solve
    if total <= 0.0:
        return None
    return (
        f"encode wall {encode:.4f}s ({100.0 * encode / total:.1f}%) vs "
        f"solve wall {solve:.4f}s ({100.0 * solve / total:.1f}%)"
    )


def trace_summary(trace, title: Optional[str] = "per-phase breakdown") -> str:
    """Render a per-phase timing table for ``trace``.

    ``trace`` is anything :func:`repro.telemetry.summary_rows` accepts: a
    ``MemorySink``, a path to a JSONL trace file, an open stream, or an
    iterable of trace records/dicts.  Returns the formatted table (empty
    string when the trace holds no completed spans), with an
    encode-vs-solve wall split appended when the trace contains either.
    """
    records = coerce_records(trace)
    headers, rows = summary_rows(records)
    if not rows:
        return ""
    table = format_table(headers, rows, title=title)
    split = encode_solve_split(records)
    if split is not None:
        table = f"{table}\n{split}"
    return table
