"""Synthesis-as-a-service: async batch server, canonical request API,
and warm solver pools.

Layout synthesis is expensive and bursty — a compilation campaign
submits hundreds of circuits, many of them isomorphic up to qubit
relabeling (benchmark sweeps, parameter scans, re-runs).  This package
turns the synthesizers into a long-lived service that exploits exactly
that structure:

* :mod:`repro.service.api` — the JSON wire format
  (:class:`CompileRequest` / :class:`CompileResponse`);
* :mod:`repro.service.cache` — the canonical :class:`ResultCache`,
  keyed by the relabeling-invariant fingerprint from
  :mod:`repro.circuit.canonical`;
* :mod:`repro.service.pool` — persistent :class:`WorkerPool` processes
  with warm device caches and cross-request learnt-clause banks;
* :mod:`repro.service.server` — the asyncio :class:`SynthesisService`
  (admission queue, singleflight coalescing, budget enforcement).
"""

from .api import STATUS_ERROR, STATUS_OK, CompileRequest, CompileResponse
from .cache import ResultCache
from .pool import ClauseBank, WorkerPool
from .server import SynthesisService, serve_batch

__all__ = [
    "CompileRequest",
    "CompileResponse",
    "STATUS_OK",
    "STATUS_ERROR",
    "ResultCache",
    "ClauseBank",
    "WorkerPool",
    "SynthesisService",
    "serve_batch",
]
