"""The canonical result cache: solve a circuit once per equivalence class.

Keys are built by the server from the *canonical* fingerprint of the
request circuit (:func:`repro.circuit.circuit_fingerprint`) plus every
field that changes the answer — device, backend, objective, the pinned
initial mapping translated into canonical space, and the config wire
dict.  Values are :meth:`SynthesisResult.to_dict` dicts *in canonical
qubit space*; the server translates a hit back through the requesting
circuit's relabeling, so two clients who submit the same circuit under
different qubit namings share one solve and each receives a mapping
valid for their own labels.

Only proven-optimal results are cached by default: a ``partial``
(budget-truncated) result reflects how much time *that* request paid,
and serving it to a later request with a larger budget would silently
deliver less than the client asked for.  The server exposes a
``cache_partial`` switch for deployments that prefer recall over that
guarantee.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

#: A fully-resolved cache key (opaque to this module; built by the server).
CacheKey = Tuple[Any, ...]


class ResultCache:
    """A bounded LRU of canonical-space result dicts with hit/miss counters."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The cached canonical result dict, or None; counts the lookup."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, result: Dict[str, Any]) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
