"""The asynchronous batch compilation service.

Request lifecycle::

    CompileRequest
      -> parse + canonicalize          (label-invariant fingerprint, perm)
      -> ResultCache lookup            (hit: translate mapping, done)
      -> singleflight coalescing       (identical in-flight solve: await it)
      -> admission queue               (bounded; backpressure on submit)
      -> WorkerPool dispatch           (warm device cache, clause bank,
                                        encoded-template store)
      -> cache fill + translate        (canonical result -> request labels)
    CompileResponse

The cache and the singleflight table both live in *canonical* circuit
space: two requests whose circuits differ only by a qubit relabeling
share one solve, and each response's ``initial_mapping`` is translated
back through that request's own relabeling (``mapping[q] =
canonical_mapping[perm[q]]``; gate times and SWAPs live in physical
space and carry over verbatim).  A batch of k isomorphic requests
therefore costs exactly one solver dispatch — the other k-1 are
``cache_hit`` responses, whether they arrived before or after the first
one finished.

Everything observable emits tracer *events* (not spans: requests
interleave on the event loop, and :class:`repro.telemetry.Tracer` spans
form a per-thread stack) — ``service.request``, ``service.cache_hit``,
``service.dispatch``, ``service.response`` — each carrying the request
id and the admission queue depth at that moment.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.canonical import canonical_circuit
from ..circuit.qasm import QasmError
from .api import STATUS_ERROR, STATUS_OK, CompileRequest, CompileResponse
from .cache import CacheKey, ResultCache
from .pool import KIND_TIMEOUT, WorkerPool


class SynthesisService:
    """Async front end over a :class:`ResultCache` and a :class:`WorkerPool`.

    Use as an async context manager (or call :meth:`start` / :meth:`stop`)::

        async with SynthesisService(n_workers=2) as service:
            responses = await service.submit_batch(requests)

    ``n_workers=0`` runs solves inline (in executor threads of this
    process) — deterministic and multiprocessing-free, for tests.
    ``cache_partial`` opts budget-truncated results into the cache; by
    default only proven-optimal results are cached so a later, larger
    budget is honoured with a fresh solve.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: Optional[ResultCache] = None,
        pool: Optional[WorkerPool] = None,
        tracer: Optional[Any] = None,
        max_pending: int = 64,
        cache_partial: bool = False,
    ) -> None:
        from ..telemetry import NULL_TRACER

        self.cache = cache if cache is not None else ResultCache()
        self.pool = pool if pool is not None else WorkerPool(n_workers=n_workers)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_pending = max_pending
        self.cache_partial = cache_partial
        self._queue: Optional["asyncio.Queue[Any]"] = None
        self._dispatchers: List["asyncio.Task[None]"] = []
        self._inflight: Dict[CacheKey, "asyncio.Future[Dict[str, Any]]"] = {}
        self._req_ids = itertools.count(1)
        self._job_ids = itertools.count(1)
        self._known_devices: Set[str] = set()
        self.requests = 0
        self.responses = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.errors = 0
        self.max_queue_depth = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "SynthesisService":
        if self._queue is not None:
            return self
        self.pool.start()
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        n_dispatchers = max(1, self.pool.n_workers)
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(i)) for i in range(n_dispatchers)
        ]
        return self

    async def stop(self) -> None:
        if self._queue is None:
            return
        for _ in self._dispatchers:
            await self._queue.put(None)
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        self._queue = None
        self.pool.stop()

    async def __aenter__(self) -> "SynthesisService":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- submission --------------------------------------------------------

    async def submit(self, request: CompileRequest) -> CompileResponse:
        """Resolve one request: cache, coalesce, or dispatch; never raises."""
        if self._queue is None:
            raise RuntimeError("SynthesisService.submit before start()")
        t0 = time.monotonic()
        self.requests += 1
        request_id = request.request_id or f"req-{next(self._req_ids):04d}"
        depth = self._queue.qsize()
        self.max_queue_depth = max(self.max_queue_depth, depth)
        self.tracer.event(
            "service.request",
            request_id=request_id,
            device=request.device,
            backend=request.backend,
            objective=request.objective,
            queue_depth=depth,
        )

        try:
            self._validate(request)
            circuit = request.circuit()
            key, perm, canon = self._cache_key(request, circuit)
        except (QasmError, ValueError, TypeError) as exc:
            return self._finish(
                request_id,
                t0,
                error=f"{type(exc).__name__}: {exc}",
            )

        circuit_dict = circuit.to_dict()

        # 1. Result cache: a finished solve of this equivalence class.
        cached = self.cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self.tracer.event(
                "service.cache_hit", request_id=request_id, coalesced=False
            )
            return self._finish(
                request_id, t0, result=_translate(cached, perm, circuit_dict),
                cache_hit=True,
            )

        # 2. Singleflight: an identical solve already in flight.  Waiters
        # count as cache hits — they consume no solver dispatch.
        existing = self._inflight.get(key)
        if existing is not None:
            reply = await asyncio.shield(existing)
            self.coalesced += 1
            if reply.get("ok"):
                self.cache_hits += 1
                self.tracer.event(
                    "service.cache_hit", request_id=request_id, coalesced=True
                )
                return self._finish(
                    request_id,
                    t0,
                    result=_translate(reply["result"], perm, circuit_dict),
                    partial=bool(reply.get("partial")),
                    cache_hit=True,
                )
            return self._finish(
                request_id, t0, error=str(reply.get("error")),
            )

        # 3. Miss: build a canonical-space job and enter the admission
        # queue (blocks when max_pending jobs are already waiting).
        job = self._make_job(request, canon, perm)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[key] = future
        try:
            await self._queue.put((job, future))
            reply = await asyncio.shield(future)
        finally:
            self._inflight.pop(key, None)

        if reply.get("ok"):
            if not reply.get("partial") or self.cache_partial:
                self.cache.put(key, reply["result"])
            return self._finish(
                request_id,
                t0,
                result=_translate(reply["result"], perm, circuit_dict),
                partial=bool(reply.get("partial")),
                solver_stats=(reply["result"].get("solver_stats") or {}),
            )
        kind = " (timeout)" if reply.get("kind") == KIND_TIMEOUT else ""
        return self._finish(
            request_id, t0, error=f"{reply.get('error')}{kind}",
        )

    async def submit_batch(
        self, requests: Sequence[CompileRequest]
    ) -> List[CompileResponse]:
        """Submit concurrently; responses come back in request order."""
        return list(await asyncio.gather(*(self.submit(r) for r in requests)))

    # -- internals ---------------------------------------------------------

    def _validate(self, request: CompileRequest) -> None:
        """Admission control: reject unresolvable requests before they
        consume a queue slot or a solver dispatch."""
        from ..arch.devices import by_name
        from ..core.registry import available_backends

        if request.backend not in available_backends():
            raise ValueError(
                f"unknown backend {request.backend!r}; "
                f"valid choices: {', '.join(available_backends())}"
            )
        if request.device not in self._known_devices:
            by_name(request.device)  # raises ValueError on unknown names
            self._known_devices.add(request.device)
        if request.config is not None:
            from ..core.config import SynthesisConfig

            SynthesisConfig.from_dict(request.config)

    def _cache_key(
        self, request: CompileRequest, circuit: Any
    ) -> Tuple[CacheKey, List[int], Any]:
        """(cache key, relabeling, canonical circuit) for one request.

        The key pins everything that changes the answer: the canonical
        fingerprint, device name, backend, objective, the pinned initial
        mapping *translated into canonical space*, and the config wire
        dict (serialized with sorted keys so dict ordering is irrelevant).
        """
        from ..circuit.canonical import circuit_fingerprint

        canon, perm = canonical_circuit(circuit)
        fingerprint = circuit_fingerprint(circuit)
        canon_pin: Optional[Tuple[int, ...]] = None
        if request.initial_mapping is not None:
            pin = list(request.initial_mapping)
            if len(pin) != circuit.n_qubits:
                raise ValueError(
                    f"initial_mapping has {len(pin)} entries for "
                    f"{circuit.n_qubits} qubits"
                )
            translated = [0] * len(pin)
            for q, phys in enumerate(pin):
                translated[perm[q]] = phys
            canon_pin = tuple(translated)
        config_blob = (
            json.dumps(request.config, sort_keys=True) if request.config else None
        )
        key: CacheKey = (
            fingerprint,
            request.device,
            request.backend,
            request.objective,
            canon_pin,
            config_blob,
        )
        return key, perm, canon

    def _make_job(
        self, request: CompileRequest, canon: Any, perm: List[int]
    ) -> Dict[str, Any]:
        from ..circuit.canonical import circuit_fingerprint

        canon_pin: Optional[List[int]] = None
        if request.initial_mapping is not None:
            canon_pin = [0] * len(perm)
            for q, phys in enumerate(request.initial_mapping):
                canon_pin[perm[q]] = phys
        return {
            "job_id": next(self._job_ids),
            "fingerprint": circuit_fingerprint(canon),
            "circuit": canon.to_dict(),
            "device": request.device,
            "backend": request.backend,
            "objective": request.objective,
            "initial_mapping": canon_pin,
            "config": request.config,
            "budget": request.budget,
        }

    async def _dispatch_loop(self, dispatcher_id: int) -> None:
        """One consumer of the admission queue; runs pool jobs in executor
        threads so solves never block the event loop."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            job, future = item
            self.tracer.event(
                "service.dispatch",
                job_id=job["job_id"],
                dispatcher=dispatcher_id,
                queue_depth=self._queue.qsize(),
            )
            try:
                reply = await loop.run_in_executor(None, self.pool.run_job, job)
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                reply = {
                    "job_id": job["job_id"],
                    "ok": False,
                    "kind": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "result": None,
                    "partial": False,
                    "warm": {},
                }
            if not future.done():
                future.set_result(reply)
            self._queue.task_done()

    def _finish(
        self,
        request_id: str,
        t0: float,
        result: Optional[Dict[str, Any]] = None,
        partial: bool = False,
        cache_hit: bool = False,
        error: Optional[str] = None,
        solver_stats: Optional[Dict[str, Any]] = None,
    ) -> CompileResponse:
        wall = time.monotonic() - t0
        self.responses += 1
        if error is not None:
            self.errors += 1
            response = CompileResponse(
                request_id=request_id,
                status=STATUS_ERROR,
                error=error,
                wall_time=wall,
            )
        else:
            response = CompileResponse(
                request_id=request_id,
                status=STATUS_OK,
                result=result,
                partial=partial,
                cache_hit=cache_hit,
                wall_time=wall,
                solver_stats=dict(solver_stats or {}),
            )
        self.tracer.event(
            "service.response",
            request_id=request_id,
            status=response.status,
            partial=response.partial,
            cache_hit=response.cache_hit,
            wall=wall,
        )
        return response

    def stats(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "max_queue_depth": self.max_queue_depth,
            "solver_dispatches": self.pool.dispatches,
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
        }


def _translate(
    canon_result: Dict[str, Any], perm: List[int], circuit_dict: Dict[str, Any]
) -> Dict[str, Any]:
    """Re-express a canonical-space result in the request's qubit labels.

    Only two fields mention program qubits: the circuit itself (replaced
    by the request's own) and the initial mapping, whose rows permute as
    ``mapping[q] = canonical_mapping[perm[q]]``.  Gate times are indexed
    by gate position (identical — canonicalization preserves gate order)
    and SWAPs name physical qubits, so both carry over unchanged.
    """
    if _sanitize_enabled():
        from ..analysis.sanitize import check_permutation

        check_permutation(perm)
    out = dict(canon_result)
    out["circuit"] = circuit_dict
    canon_map = canon_result["initial_mapping"]
    out["initial_mapping"] = [canon_map[perm[q]] for q in range(len(perm))]
    return out


def _sanitize_enabled() -> bool:
    """True when REPRO_SANITIZE requests runtime invariant checking.

    The service has no per-request sanitize knob — cache translation is a
    fixed-cost invariant, so the environment variable alone gates it (and
    the analysis package stays unimported in production runs).
    """
    return bool(os.environ.get("REPRO_SANITIZE")) and os.environ.get(
        "REPRO_SANITIZE"
    ) != "off"


async def serve_batch(
    requests: Sequence[CompileRequest],
    n_workers: int = 1,
    max_pending: int = 64,
    tracer: Optional[Any] = None,
) -> Tuple[List[CompileResponse], Dict[str, Any]]:
    """One-shot convenience: start a service, run a batch, return
    (responses, service stats).  This is what ``repro serve`` calls."""
    async with SynthesisService(
        n_workers=n_workers, max_pending=max_pending, tracer=tracer
    ) as service:
        responses = await service.submit_batch(requests)
        stats = service.stats()
    return responses, stats
