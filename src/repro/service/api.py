"""The service wire format: :class:`CompileRequest` / :class:`CompileResponse`.

Everything a client says to the service and everything it hears back is
one of these two dataclasses, and both are plain JSON on the wire:
``to_dict()`` emits only JSON-native values, ``from_dict()`` rebuilds the
object with the same strict unknown-key rejection as
:meth:`repro.core.SynthesisConfig.from_dict` (a typo'd field name must
fail loudly, not silently become a default).

A request carries the circuit as OpenQASM 2.0 text — the one
representation every client toolchain can already produce — plus the
*name* of a device (resolved server-side via
:func:`repro.arch.devices.by_name`; shipping a coupling graph per request
would defeat the server's warm per-device state).  The optional
``config`` field is a :meth:`SynthesisConfig.to_dict` dict, so every knob
of the paper's formulation is reachable over the wire while the
process-local observability hooks stay out by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Type

from ..circuit.circuit import QuantumCircuit
from ..circuit.qasm import parse_qasm

#: Response status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def _reject_unknown(cls: Type[Any], data: Dict[str, Any]) -> None:
    valid = {f.name for f in fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {sorted(unknown)}; "
            f"valid fields: {sorted(valid)}"
        )


@dataclass
class CompileRequest:
    """One layout-synthesis job as submitted by a client.

    ``budget`` (seconds, optional) caps this request's wall time: it
    overrides ``config.time_budget`` and additionally arms the
    cooperative-cancellation hook inside the worker, so an over-budget
    run returns its best-so-far result flagged ``partial`` rather than
    hanging the queue.  ``initial_mapping`` pins program qubit ``q`` to
    physical qubit ``initial_mapping[q]`` in the *request's own* qubit
    labeling; the service translates it into canonical space and back.
    """

    qasm: str
    device: str
    objective: str = "depth"
    backend: str = "olsq2"
    budget: Optional[float] = None
    initial_mapping: Optional[List[int]] = None
    config: Optional[Dict[str, Any]] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.qasm.strip():
            raise ValueError("CompileRequest.qasm must be non-empty QASM text")
        if not self.device:
            raise ValueError("CompileRequest.device must name a device")
        if self.budget is not None and self.budget < 0:
            raise ValueError("CompileRequest.budget must be >= 0 seconds")

    def circuit(self) -> QuantumCircuit:
        """Parse the QASM payload (raises ``QasmError`` on bad input)."""
        return parse_qasm(self.qasm)

    @classmethod
    def from_circuit(
        cls, circuit: QuantumCircuit, device: str, **kwargs: Any
    ) -> "CompileRequest":
        """Build a request from an in-memory circuit (serialized as QASM)."""
        return cls(qasm=circuit.to_qasm(), device=device, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qasm": self.qasm,
            "device": self.device,
            "objective": self.objective,
            "backend": self.backend,
            "budget": self.budget,
            "initial_mapping": (
                None if self.initial_mapping is None else list(self.initial_mapping)
            ),
            "config": None if self.config is None else dict(self.config),
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompileRequest":
        _reject_unknown(cls, data)
        return cls(**data)


@dataclass
class CompileResponse:
    """The service's answer to one :class:`CompileRequest`.

    ``result`` is a :meth:`repro.core.SynthesisResult.to_dict` dict in the
    *request's* qubit labeling (cache hits are translated before they are
    returned, so a response validates against the circuit the client
    actually sent).  ``partial`` marks an anytime best-so-far result whose
    optimality was not proven within the budget; ``cache_hit`` marks a
    response served from the canonical result cache (including requests
    coalesced onto an identical in-flight solve) rather than a fresh
    solver dispatch.
    """

    request_id: str
    status: str = STATUS_OK
    result: Optional[Dict[str, Any]] = None
    partial: bool = False
    cache_hit: bool = False
    error: Optional[str] = None
    wall_time: float = 0.0
    solver_stats: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in (STATUS_OK, STATUS_ERROR):
            raise ValueError(
                f"status must be {STATUS_OK!r} or {STATUS_ERROR!r}, "
                f"got {self.status!r}"
            )
        if self.status == STATUS_OK and self.result is None:
            raise ValueError("an ok response must carry a result")
        if self.status == STATUS_ERROR and self.error is None:
            raise ValueError("an error response must carry an error message")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def synthesis_result(self) -> Any:
        """The result as a live :class:`repro.core.SynthesisResult`."""
        if self.result is None:
            raise ValueError(f"response {self.request_id} has no result: {self.error}")
        from ..core.result import SynthesisResult

        return SynthesisResult.from_dict(self.result)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "status": self.status,
            "result": self.result,
            "partial": self.partial,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "wall_time": self.wall_time,
            "solver_stats": dict(self.solver_stats),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompileResponse":
        _reject_unknown(cls, data)
        return cls(**data)
