"""Persistent solver workers with warm per-device and per-formula state.

A cold OLSQ2 run pays for device construction (distance matrices), CNF
template encoding, and — most of all — every learnt clause from scratch.
The pool keeps worker *processes* alive across requests so that state
survives:

* **device cache** — coupling graphs resolved by name once per worker,
  so repeated requests against ``eagle`` reuse its precomputed adjacency
  and distance structure;
* **clause bank** — learnt clauses exported by earlier runs, keyed by
  ``(circuit fingerprint, device, encoder share_key)`` and replayed into
  later solves of the *same formula prefix*.  Soundness is exactly the
  PR-3 clause-sharing contract: the bank endpoint is a duck-typed
  :class:`~repro.sat.sharing.ShareEndpoint`, so every clause still flows
  through :class:`~repro.sat.sharing.ShareClient`'s LBD/size/var-prefix
  filter and key check, and imports are refused by the solver under
  proof logging.  Adding the fingerprint to the scope closes the one gap
  a cross-request bank opens: ``share_key`` alone pins circuit *shape*
  (gate count, qubit counts), which is enough inside a single-formula
  portfolio but not across different circuits of identical shape.
* **template store** — post-encode solver snapshots keyed by the exact
  encode inputs (:func:`repro.core.templates.template_key`).  A cache
  *miss* on a circuit/device/horizon shape the worker has encoded before
  skips Python encoding entirely: the optimizer restores the snapshot
  and replays variable numbering over it (see
  :mod:`repro.sat.snapshot`).  Because the service dispatches circuits
  in canonical label space, relabeled requests collapse onto one
  template just as they collapse onto one cache entry.

The bank pays off precisely where the result cache cannot: a re-request
with a larger budget after a ``partial`` answer (partials are not
cached), or the same circuit under a different objective or cardinality
encoding (different cache key, same base formula).

Requests are routed by a stable hash of ``(fingerprint, device)`` so a
workload family keeps hitting the worker whose bank it warmed.  Workers
are single-threaded by construction; the pool serializes dispatch per
worker with a lock, and a worker that dies or overruns its deadline is
respawned (losing its bank — warm state is an optimization, never a
correctness dependency).

``n_workers=0`` selects *inline* mode: jobs run in the calling process
with the same warm caches, which keeps tests deterministic and lets the
async server run without multiprocessing at all.
"""

from __future__ import annotations

import time
import traceback
import zlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set, Tuple

#: Reply "kind" values.
KIND_OK = "ok"
KIND_TIMEOUT = "timeout"
KIND_ERROR = "error"

#: Extra seconds a worker gets beyond the request budget before the pool
#: declares it hung and respawns it.
DEFAULT_GRACE = 15.0

#: Fallback collection deadline for jobs that carry no budget of their own.
DEFAULT_JOB_TIMEOUT = 600.0


class ClauseBank:
    """Bounded learnt-clause storage, scoped by (fingerprint, device).

    Entries are ``(scope, share_key) -> clause batch`` in LRU order over a
    global clause budget; depositing past the budget evicts the oldest
    entries whole (a bank entry is only useful complete — replaying half
    a batch is sound but not worth tracking).
    """

    def __init__(self, max_clauses: int = 4096) -> None:
        self.max_clauses = max_clauses
        self._entries: "OrderedDict[Tuple[Any, ...], List[Tuple[Tuple[int, ...], int]]]"
        self._entries = OrderedDict()
        self._total = 0
        self.deposited = 0
        self.served = 0
        self.evicted = 0

    def deposit(
        self,
        scope: Tuple[Any, ...],
        key: Any,
        clauses: List[Tuple[Tuple[int, ...], int]],
    ) -> None:
        slot = (scope, key)
        bucket = self._entries.get(slot)
        if bucket is None:
            bucket = []
            self._entries[slot] = bucket
        bucket.extend(clauses)
        self._entries.move_to_end(slot)
        self._total += len(clauses)
        self.deposited += len(clauses)
        while self._total > self.max_clauses and len(self._entries) > 1:
            _slot, old = self._entries.popitem(last=False)
            self._total -= len(old)
            self.evicted += len(old)

    def batches(
        self, scope: Tuple[Any, ...], exclude: Any = ()
    ) -> List[Tuple[Any, List[Tuple[Tuple[int, ...], int]]]]:
        """Banked (share_key, clauses) batches for ``scope``, minus keys
        already in ``exclude`` (a container of share keys)."""
        out = []
        for (entry_scope, key), clauses in self._entries.items():
            if entry_scope == scope and key not in exclude and clauses:
                out.append((key, list(clauses)))
                self.served += len(clauses)
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "clauses": self._total,
            "deposited": self.deposited,
            "served": self.served,
            "evicted": self.evicted,
        }


class _BankEndpoint:
    """A duck-typed ShareEndpoint backed by the worker's clause bank.

    ``publish`` deposits the solver's exported clauses for future requests;
    ``drain`` serves each banked entry at most once per request — *not*
    once total, because the optimizer attaches a fresh ShareClient (with a
    fresh ``share_key``) every time it grows the horizon, and a bank entry
    for a later horizon must still be deliverable then.  The attached
    ShareClient key-checks and signature-dedups every batch, so serving is
    always safe, merely useless when the formula differs.
    """

    def __init__(self, bank: ClauseBank, scope: Tuple[Any, ...]) -> None:
        self.bank = bank
        self.scope = scope
        self._served_keys: Set[Any] = set()

    def publish(
        self, key: Any, clauses: List[Tuple[Tuple[int, ...], int]]
    ) -> bool:
        self.bank.deposit(self.scope, key, clauses)
        return True

    def drain(self) -> List[Tuple[Any, List[Tuple[Tuple[int, ...], int]]]]:
        out = self.bank.batches(self.scope, self._served_keys)
        for key, _clauses in out:
            self._served_keys.add(key)
        return out


def run_job(
    job: Dict[str, Any],
    devices: Dict[str, Any],
    bank: ClauseBank,
    templates: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute one solve job against warm caches; never raises.

    Shared verbatim by worker processes and the pool's inline mode, so
    both paths have identical semantics.  ``job`` is the wire dict built
    by the server (canonical-space circuit and initial mapping); the
    reply carries a canonical-space result dict plus warm-state counters.
    ``templates`` is the worker's :class:`~repro.sat.snapshot.TemplateStore`
    (or None to disable encoded-state reuse for this job).
    """
    from ..arch.devices import by_name
    from ..circuit.circuit import QuantumCircuit
    from ..core.config import SynthesisConfig
    from ..core.optimizer import SynthesisTimeout
    from ..core.registry import resolve_backend

    job_id = job.get("job_id")
    warm: Dict[str, Any] = {"device_cached": job["device"] in devices}
    served_before = bank.served
    hits_before = templates.hits if templates is not None else 0
    misses_before = templates.misses if templates is not None else 0

    def _warm_counters() -> None:
        warm["bank_clauses_served"] = bank.served - served_before
        if templates is not None:
            warm["template_hits"] = templates.hits - hits_before
            warm["template_misses"] = templates.misses - misses_before

    try:
        circuit = QuantumCircuit.from_dict(job["circuit"])
        device = devices.get(job["device"])
        if device is None:
            device = by_name(job["device"])
            devices[job["device"]] = device
        config = (
            SynthesisConfig.from_dict(job["config"])
            if job.get("config")
            else SynthesisConfig()
        )
        budget = job.get("budget")
        if budget is not None:
            config = config.replace(
                time_budget=budget,
                solve_time_budget=min(config.solve_time_budget, budget),
            )
        # Per-request deadline rides the cooperative-cancellation hook:
        # once it passes, the optimizer returns its best-so-far result
        # (flagged non-optimal) instead of starting another solve.
        deadline = time.monotonic() + config.time_budget
        config = config.replace(
            progress_callback=lambda record: time.monotonic() < deadline
        )
        if templates is not None:
            # The worker's template store; the optimizer only consults it
            # when config.templates == "on" and the run is snapshot-safe.
            config = config.replace(template_store=templates)
        endpoint = _BankEndpoint(bank, (job["fingerprint"], job["device"]))
        synthesizer = resolve_backend(job["backend"], config, share=endpoint)
        result = synthesizer.synthesize(
            circuit,
            device,
            objective=job["objective"],
            initial_mapping=job.get("initial_mapping"),
        )
    except SynthesisTimeout as exc:
        _warm_counters()
        return {
            "job_id": job_id,
            "ok": False,
            "kind": KIND_TIMEOUT,
            "error": f"{type(exc).__name__}: {exc}",
            "result": None,
            "partial": False,
            "warm": warm,
        }
    except Exception as exc:  # noqa: BLE001 - reply channel, never raise
        _warm_counters()
        return {
            "job_id": job_id,
            "ok": False,
            "kind": KIND_ERROR,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=8),
            "result": None,
            "partial": False,
            "warm": warm,
        }
    _warm_counters()
    warm["bank"] = bank.stats()
    if templates is not None:
        warm["templates"] = templates.stats()
    return {
        "job_id": job_id,
        "ok": True,
        "kind": KIND_OK,
        "error": None,
        "result": result.to_dict(),
        "partial": not result.optimal,
        "warm": warm,
    }


def _worker_main(
    worker_id: int, jobs: Any, replies: Any, bank_clauses: int,
    template_entries: int,
) -> None:
    """Worker-process loop: warm caches live across jobs; None shuts down."""
    from ..sat.snapshot import TemplateStore

    devices: Dict[str, Any] = {}
    bank = ClauseBank(bank_clauses)
    templates = TemplateStore(template_entries) if template_entries else None
    while True:
        job = jobs.get()
        if job is None:
            break
        replies.put(run_job(job, devices, bank, templates))


class WorkerPool:
    """A fixed set of persistent solver workers with affinity routing."""

    def __init__(
        self,
        n_workers: int = 1,
        bank_clauses: int = 4096,
        template_entries: int = 64,
        grace: float = DEFAULT_GRACE,
        mp_start_method: str = "fork",
    ) -> None:
        from ..sat.snapshot import TemplateStore

        if n_workers < 0:
            raise ValueError("n_workers must be >= 0 (0 means inline)")
        self.n_workers = n_workers
        self.bank_clauses = bank_clauses
        self.template_entries = template_entries
        self.grace = grace
        self.mp_start_method = mp_start_method
        self.dispatches = 0
        self.respawns = 0
        self.bank_clauses_served = 0
        self.template_hits = 0
        self.template_misses = 0
        self._workers: List[Dict[str, Any]] = []
        self._started = False
        # Inline-mode warm state (n_workers == 0).
        self._inline_devices: Dict[str, Any] = {}
        self._inline_bank = ClauseBank(bank_clauses)
        self._inline_templates = (
            TemplateStore(template_entries) if template_entries else None
        )

    @property
    def inline(self) -> bool:
        return self.n_workers == 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._started = True
        if not self.inline:
            for worker_id in range(self.n_workers):
                self._workers.append(self._spawn(worker_id))
        return self

    def _spawn(self, worker_id: int) -> Dict[str, Any]:
        import multiprocessing as mp
        import threading

        try:
            ctx = mp.get_context(self.mp_start_method)
        except ValueError:
            ctx = mp.get_context()
        jobs = ctx.Queue()
        replies = ctx.Queue()
        proc = ctx.Process(
            target=_worker_main,
            args=(
                worker_id, jobs, replies, self.bank_clauses,
                self.template_entries,
            ),
            name=f"synth-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        return {
            "id": worker_id,
            "proc": proc,
            "jobs": jobs,
            "replies": replies,
            "lock": threading.Lock(),
            "jobs_done": 0,
        }

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        for worker in self._workers:
            try:
                worker["jobs"].put_nowait(None)
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        for worker in self._workers:
            worker["proc"].join(timeout=2.0)
            if worker["proc"].is_alive():
                worker["proc"].terminate()
                worker["proc"].join(timeout=2.0)
        self._workers = []

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- dispatch ----------------------------------------------------------

    def worker_for(self, affinity: str) -> int:
        """Stable affinity routing so a workload family reuses its bank."""
        if self.inline:
            return 0
        return zlib.crc32(affinity.encode()) % self.n_workers

    def job_timeout(self, job: Dict[str, Any]) -> float:
        """How long the pool waits before declaring the worker hung."""
        budget = job.get("budget")
        if budget is None:
            config = job.get("config") or {}
            budget = config.get("time_budget", DEFAULT_JOB_TIMEOUT)
        return float(budget) + self.grace

    def run_job(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Synchronously execute ``job`` on its affinity worker.

        Thread-safe: per-worker locking serializes dispatch onto each
        (single-threaded) worker while different workers run in parallel.
        Called by the async server via ``run_in_executor``.
        """
        if not self._started:
            raise RuntimeError("WorkerPool.run_job before start()")
        self.dispatches += 1
        if self.inline:
            reply = run_job(
                job, self._inline_devices, self._inline_bank,
                self._inline_templates,
            )
            self._note(reply)
            return reply
        idx = self.worker_for(f"{job['fingerprint']}|{job['device']}")
        worker = self._workers[idx]
        with worker["lock"]:
            reply = self._run_on(worker, job)
        reply["worker"] = idx
        self._note(reply)
        return reply

    def _run_on(
        self, worker: Dict[str, Any], job: Dict[str, Any]
    ) -> Dict[str, Any]:
        import queue as queue_mod

        if not worker["proc"].is_alive():
            self._respawn(worker)
        worker["jobs"].put(job)
        try:
            reply = worker["replies"].get(timeout=self.job_timeout(job))
            worker["jobs_done"] += 1
            return dict(reply)
        except queue_mod.Empty:
            # The worker blew through budget + grace: it is wedged (or the
            # cooperative cancellation hook never fired inside a monster
            # solve).  Kill it; its bank is gone, correctness is not.
            worker["proc"].terminate()
            worker["proc"].join(timeout=2.0)
            self._respawn(worker)
            return {
                "job_id": job.get("job_id"),
                "ok": False,
                "kind": KIND_TIMEOUT,
                "error": (
                    f"worker exceeded deadline ({self.job_timeout(job):.1f}s) "
                    "and was respawned"
                ),
                "result": None,
                "partial": False,
                "warm": {},
            }

    def _respawn(self, worker: Dict[str, Any]) -> None:
        self.respawns += 1
        fresh = self._spawn(worker["id"])
        worker["proc"] = fresh["proc"]
        worker["jobs"] = fresh["jobs"]
        worker["replies"] = fresh["replies"]

    def _note(self, reply: Dict[str, Any]) -> None:
        warm = reply.get("warm") or {}
        self.bank_clauses_served += int(warm.get("bank_clauses_served", 0))
        self.template_hits += int(warm.get("template_hits", 0))
        self.template_misses += int(warm.get("template_misses", 0))

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "n_workers": self.n_workers,
            "inline": self.inline,
            "dispatches": self.dispatches,
            "respawns": self.respawns,
            "bank_clauses_served": self.bank_clauses_served,
            "template_hits": self.template_hits,
            "template_misses": self.template_misses,
        }
        if self.inline:
            out["bank"] = self._inline_bank.stats()
            out["devices_cached"] = len(self._inline_devices)
            if self._inline_templates is not None:
                out["templates"] = self._inline_templates.stats()
        return out
