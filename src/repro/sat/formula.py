"""A plain CNF formula container, decoupled from any particular solver.

Encoders in :mod:`repro.encodings` and :mod:`repro.smt` can target either a
live :class:`repro.sat.solver.Solver` (for incremental solving) or a
:class:`CNF` object (for serialisation, size measurements and testing).  Both
expose the same two-method surface — ``new_var()`` and ``add_clause(lits)`` —
so encoding code is written once against that implicit protocol.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from .types import lit_var


class CNF:
    """A propositional formula in conjunctive normal form.

    Literals use the packed convention of :mod:`repro.sat.types`.
    """

    def __init__(self) -> None:
        self.n_vars = 0
        self.clauses: List[List[int]] = []

    def new_var(self) -> int:
        """Allocate a fresh variable index."""
        var = self.n_vars
        self.n_vars += 1
        return var

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Append a clause.  Always succeeds (returns ``True``)."""
        clause = list(lits)
        for lit in clause:
            if lit_var(lit) >= self.n_vars:
                raise ValueError(f"literal {lit} references unallocated variable")
        self.clauses.append(clause)
        return True

    def add_clauses(self, clause_list: Iterable[Sequence[int]]) -> bool:
        for lits in clause_list:
            self.add_clause(lits)
        return True

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def num_literals(self) -> int:
        """Total literal occurrences — a proxy for formula size."""
        return sum(len(c) for c in self.clauses)

    def __iter__(self) -> Iterator[List[int]]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the formula under a full assignment (True per variable)."""
        for clause in self.clauses:
            if not any(assignment[l >> 1] ^ bool(l & 1) for l in clause):
                return False
        return True

    def to_solver(self, solver) -> bool:
        """Load this formula into a solver-like object (same protocol)."""
        while solver.n_vars < self.n_vars:
            solver.new_var()
        ok = True
        for clause in self.clauses:
            ok = solver.add_clause(clause) and ok
        return ok

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CNF(vars={self.n_vars}, clauses={len(self.clauses)})"
