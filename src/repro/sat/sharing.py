"""Learnt-clause sharing between cooperating solver instances.

The paper's future-work section (Sec. V) proposes a parallel portfolio over
"a wide range of objective bounds [and] different encoding methods".  An
independent portfolio throws away every clause the losing workers learn;
this module is the channel that lets them cooperate instead, in the style
of clause-sharing portfolio SAT solvers (ManySAT, HordeSat lineage).

Pieces, from the solver outward:

* :func:`clause_signature` — deterministic 64-bit FNV-1a signature of a
  clause, used for cheap per-worker duplicate suppression (a false
  collision merely drops one shareable clause, which is always safe);
* :class:`ShareClient` — attached to a :class:`repro.sat.Solver` as its
  ``share`` hook: collects freshly learnt clauses passing an LBD/size/
  variable-range filter, and exchanges them with the bus at restart
  boundaries (the solver's level-0 safe points);
* :class:`ShareEndpoint` — one worker's pair of queue handles (outbound to
  everyone, inbound from everyone), picklable across ``multiprocessing``;
* :class:`ShareRelay` — the hub owned by the coordinating process: a
  background thread fans every published batch out to every *other*
  worker's bounded inbound queue, dropping batches when a consumer lags
  (sharing is best-effort; correctness never depends on delivery);
* :class:`SharedClauseRing` / :class:`ShmShareEndpoint` — the zero-copy
  transport: one ``multiprocessing.shared_memory`` ring of int32 words
  that every worker appends batches to and every *other* worker reads
  directly out of shared memory.  No relay thread, no pickling, no
  per-hop copy through queue pipes; a reader that laps behind the writer
  simply skips to the write head (best-effort, like the queue bus).
  :class:`~repro.core.parallel.ParallelDescent` prefers this transport
  and falls back to the queue relay if shared memory is unavailable.

Soundness: a learnt clause is a logical consequence of the emitting
worker's *formula* (never of its assumptions — conflict analysis resolves
assumptions away or keeps them as literals of the clause).  Two workers
may exchange clauses only when the variables mentioned have the same
meaning in both, so every batch carries a *context key* describing the
variable numbering it was learnt under (see
:meth:`repro.core.encoder.LayoutEncoder.share_key`); receivers drop
batches whose key differs from their own.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from array import array
from typing import Any, Iterable, List, Optional, Sequence, Tuple

#: Export at most this many clauses per exchange (bounded buffer).
MAX_BATCH = 256
#: Default shared-clause quality filter: LBD <= 4 or binary, and small.
MAX_SHARED_LBD = 4
MAX_SHARED_SIZE = 8

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def clause_signature(lits: Iterable[int]) -> int:
    """Order-independent 64-bit signature of a clause.

    FNV-1a over each literal, combined with XOR so permutations of the
    same literal multiset collide by construction; deterministic across
    processes (unlike ``hash``), so exporter-side and importer-side dedup
    sets agree on what has been seen.
    """
    acc = 0
    for lit in lits:
        h = _FNV_OFFSET
        x = lit & _MASK64
        while True:
            h = ((h ^ (x & 0xFF)) * _FNV_PRIME) & _MASK64
            x >>= 8
            if not x:
                break
        acc ^= h
    return acc


class ShareStats:
    """Counters for one worker's sharing activity."""

    __slots__ = ("exported", "imported", "dropped_full", "dropped_key", "dropped_dup")

    def __init__(self) -> None:
        self.exported = 0
        self.imported = 0
        self.dropped_full = 0  # publish hit a full outbound queue
        self.dropped_key = 0  # foreign batch had a mismatched context key
        self.dropped_dup = 0  # clause already seen (signature dedup)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class ShareEndpoint:
    """One worker's handles on the share bus (picklable across fork/spawn)."""

    def __init__(self, worker_id: int, outbound, inbound):
        self.worker_id = worker_id
        self.outbound = outbound
        self.inbound = inbound

    def publish(self, key, clauses: Sequence[Tuple[Tuple[int, ...], int]]) -> bool:
        """Best-effort non-blocking publish; False when the bus was full."""
        try:
            self.outbound.put_nowait((self.worker_id, key, list(clauses)))
            return True
        except queue.Full:
            return False

    def drain(self) -> List[Tuple[object, List[Tuple[Tuple[int, ...], int]]]]:
        """All batches currently waiting on the inbound queue."""
        out = []
        while True:
            try:
                _wid, key, clauses = self.inbound.get_nowait()
            except queue.Empty:
                break
            out.append((key, clauses))
        return out


class ShareClient:
    """The solver-side half of clause sharing.

    Attach as ``solver.share``; the solver then calls :meth:`offer` for
    every learnt clause and :meth:`exchange` at restart boundaries (and
    callers may invoke :meth:`repro.sat.Solver.share_sync` between solves).
    ``var_limit`` restricts sharing to the common variable prefix — clauses
    mentioning any variable at or beyond it (encoder-private auxiliaries,
    bound guards) are never exported.
    """

    def __init__(
        self,
        endpoint: ShareEndpoint,
        key,
        var_limit: int,
        max_lbd: int = MAX_SHARED_LBD,
        max_size: int = MAX_SHARED_SIZE,
        max_batch: int = MAX_BATCH,
    ):
        self.endpoint = endpoint
        self.key = key
        self.lit_limit = 2 * var_limit
        self.max_lbd = max_lbd
        self.max_size = max_size
        self.max_batch = max_batch
        self.stats = ShareStats()
        self._seen: set = set()
        self._out: List[Tuple[Tuple[int, ...], int]] = []

    def offer(self, lits: Sequence[int], lbd: int) -> None:
        """Consider one freshly learnt clause for export."""
        n = len(lits)
        if n > self.max_size or (n > 2 and lbd > self.max_lbd):
            return
        limit = self.lit_limit
        for lit in lits:
            if lit >= limit:
                return
        if len(self._out) >= self.max_batch:
            self.stats.dropped_full += 1
            return
        sig = clause_signature(lits)
        if sig in self._seen:
            self.stats.dropped_dup += 1
            return
        self._seen.add(sig)
        self._out.append((tuple(sorted(lits)), lbd))

    def take_imports(self) -> List[Tuple[int, ...]]:
        """Publish pending exports, then collect deduplicated foreign clauses."""
        if self._out:
            if self.endpoint.publish(self.key, self._out):
                self.stats.exported += len(self._out)
            else:
                self.stats.dropped_full += len(self._out)
            self._out = []
        fresh: List[Tuple[int, ...]] = []
        for key, clauses in self.endpoint.drain():
            if key != self.key:
                self.stats.dropped_key += len(clauses)
                continue
            for lits, _lbd in clauses:
                sig = clause_signature(lits)
                if sig in self._seen:
                    self.stats.dropped_dup += 1
                    continue
                self._seen.add(sig)
                fresh.append(tuple(lits))
        return fresh


class ShareRelay:
    """The coordinator-side hub: fan each batch out to all other workers.

    ``queue_factory`` builds the bounded queues — pass
    ``lambda: mp_context.Queue(maxsize)`` for a process portfolio or leave
    the default (:class:`queue.Queue`) for in-process tests.  The relay
    thread is a daemon and never blocks on a slow consumer: batches that
    do not fit a worker's inbound queue are counted and dropped.
    """

    def __init__(self, n_workers: int, buffer: int = 64, queue_factory=None):
        if queue_factory is None:
            queue_factory = lambda: queue.Queue(maxsize=64)  # noqa: E731
        self.n_workers = n_workers
        self.outbound = queue_factory()
        self.inbounds = [queue_factory() for _ in range(n_workers)]
        self.relayed = 0
        self.dropped = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def endpoint(self, worker_id: int) -> ShareEndpoint:
        return ShareEndpoint(worker_id, self.outbound, self.inbounds[worker_id])

    def start(self) -> "ShareRelay":
        self._thread = threading.Thread(
            target=self._run, name="clause-share-relay", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                msg = self.outbound.get(timeout=0.05)
            except queue.Empty:
                continue
            self._fan_out(msg)

    def _fan_out(self, msg) -> None:
        sender = msg[0]
        for wid, inbound in enumerate(self.inbounds):
            if wid == sender:
                continue
            try:
                inbound.put_nowait(msg)
                self.relayed += 1
            except queue.Full:
                self.dropped += 1

    def pump(self) -> None:
        """Synchronously fan out everything pending (for threadless tests)."""
        while True:
            try:
                msg = self.outbound.get_nowait()
            except queue.Empty:
                break
            self._fan_out(msg)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def stats(self) -> dict:
        return {"relayed": self.relayed, "dropped": self.dropped}


# ----------------------------------------------------------------------
# Zero-copy transport: a shared-memory clause ring
# ----------------------------------------------------------------------

#: int64 header slots at the start of the segment.
_H_WRITE = 0  # absolute write position, in data words (monotonic)
_H_PUBLISHED = 1  # batches successfully appended
_H_DROPPED = 2  # reader laps + oversize batches rejected at publish
_HEADER_WORDS = 3


def key_hash(key: object) -> int:
    """Deterministic 64-bit FNV-1a hash of a share-context key.

    The ring stores batches as flat integers, so the (arbitrary, hashable)
    context key travels as this digest.  Like :func:`clause_signature`, a
    collision can only cause a batch to be *accepted* by a worker with a
    different-but-colliding key — with a 64-bit digest over keys that are
    short structured tuples, never in practice; and sharing remains sound
    because receivers still only learn clauses over their common prefix.
    """
    h = _FNV_OFFSET
    for b in repr(key).encode():
        h = ((h ^ b) * _FNV_PRIME) & _MASK64
    return h


class _KeyHash:
    """A context-key digest that compares equal to the key it digests.

    :meth:`ShareClient.take_imports` filters batches with
    ``key != self.key`` where ``self.key`` is the receiver's *original*
    key object.  Ring batches only carry the digest, so drain() wraps it
    in this type, whose equality hashes the other side before comparing —
    the client-side filter works unchanged on both transports.
    """

    __slots__ = ("h",)

    def __init__(self, h: int) -> None:
        self.h = h

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _KeyHash):
            return self.h == other.h
        return self.h == key_hash(other)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self.h)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_KeyHash({self.h:#018x})"


def _to_i32(x: int) -> int:
    """Reinterpret an unsigned 32-bit value as a signed int32 word."""
    return x - 0x100000000 if x >= 0x80000000 else x


def _to_u32(x: int) -> int:
    """Inverse of :func:`_to_i32`."""
    return x + 0x100000000 if x < 0 else x


class ShmShareEndpoint:
    """One worker's handle on a :class:`SharedClauseRing`.

    Same ``publish``/``drain`` duck type as :class:`ShareEndpoint`, so
    :class:`ShareClient` works unchanged.  Picklable: carries only the
    segment name, the lock and scalars; the mapping is attached lazily on
    first use in whichever process the endpoint lands in.
    """

    def __init__(self, worker_id: int, name: str, capacity: int, lock) -> None:
        self.worker_id = worker_id
        self.name = name
        self.capacity = capacity
        self.lock = lock
        #: absolute data-word position this reader has consumed up to.
        self.cursor = 0
        self.lapped = 0
        self._shm: Optional[Any] = None
        self._hdr: Optional[memoryview] = None
        self._dat: Optional[memoryview] = None

    def __getstate__(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "capacity": self.capacity,
            "lock": self.lock,
            "cursor": self.cursor,
        }

    def __setstate__(self, state: dict) -> None:
        # Assign attributes directly (not via __init__): re-running the
        # initializer on a live instance is the pattern mypy flags as
        # [misc], and unpickling should not depend on __init__'s defaults
        # staying side-effect-free.
        self.worker_id = state["worker_id"]
        self.name = state["name"]
        self.capacity = state["capacity"]
        self.lock = state["lock"]
        self.cursor = state["cursor"]
        self.lapped = 0
        self._shm = None
        self._hdr = None
        self._dat = None

    def _ensure(self) -> None:
        if self._shm is not None:
            return
        from multiprocessing import shared_memory

        # Note on the resource tracker: Python < 3.13 registers this
        # *attachment* too, but the workers share the coordinator's
        # tracker process (fork/spawn both inherit it) and its cache is a
        # set, so the duplicate is a no-op.  Do NOT unregister here — that
        # would clobber the creator's single registration and break the
        # final unlink.  The creator (SharedClauseRing.close) owns the
        # segment's lifetime; the tracker is only the crash backstop.
        shm = shared_memory.SharedMemory(name=self.name)
        self._shm = shm
        self._hdr = shm.buf[: 8 * _HEADER_WORDS].cast("q")
        self._dat = shm.buf[8 * _HEADER_WORDS :].cast("i")

    # -- the ShareEndpoint duck type -----------------------------------

    def publish(self, key, clauses: Sequence[Tuple[Tuple[int, ...], int]]) -> bool:
        """Append one batch; False when it exceeds the whole ring."""
        self._ensure()
        h = key_hash(key)
        words = array("i", (0, self.worker_id, _to_i32(h & 0xFFFFFFFF),
                            _to_i32(h >> 32), len(clauses)))
        for lits, lbd in clauses:
            words.append(lbd)
            words.append(len(lits))
            words.extend(lits)
        words[0] = len(words)
        cap = self.capacity
        hdr, dat = self._hdr, self._dat
        assert hdr is not None and dat is not None
        if len(words) > cap:
            with self.lock:
                hdr[_H_DROPPED] += 1
            return False
        with self.lock:
            w = hdr[_H_WRITE]
            lo = w % cap
            first = min(len(words), cap - lo)
            dat[lo : lo + first] = words[:first]
            if first < len(words):
                dat[: len(words) - first] = words[first:]
            hdr[_H_WRITE] = w + len(words)
            hdr[_H_PUBLISHED] += 1
        return True

    def drain(self) -> List[Tuple[object, List[Tuple[Tuple[int, ...], int]]]]:
        """Decode every batch published since the last drain.

        The span copy happens under the lock (so a concurrent writer can
        never overwrite words mid-read); decoding happens outside it.  A
        reader that fell more than one ring behind has lost the record
        boundaries and skips straight to the write head, counting the lap.
        """
        self._ensure()
        cap = self.capacity
        hdr, dat = self._hdr, self._dat
        assert hdr is not None and dat is not None
        with self.lock:
            w = int(hdr[_H_WRITE])
            cur = self.cursor
            if w - cur > cap:
                self.lapped += 1
                hdr[_H_DROPPED] += 1
                cur = w
            if w == cur:
                self.cursor = w
                return []
            lo, hi = cur % cap, w % cap
            if lo < hi:
                pending = dat[lo:hi].tolist()
            else:
                pending = dat[lo:].tolist() + dat[:hi].tolist()
            self.cursor = w
        out: List[Tuple[object, List[Tuple[Tuple[int, ...], int]]]] = []
        pos = 0
        end = len(pending)
        while pos < end:
            total = pending[pos]
            wid = pending[pos + 1]
            if wid != self.worker_id:  # skip our own batches
                h = _to_u32(pending[pos + 2]) | (_to_u32(pending[pos + 3]) << 32)
                n_clauses = pending[pos + 4]
                clauses: List[Tuple[Tuple[int, ...], int]] = []
                p = pos + 5
                for _ in range(n_clauses):
                    lbd = pending[p]
                    size = pending[p + 1]
                    clauses.append((tuple(pending[p + 2 : p + 2 + size]), lbd))
                    p += 2 + size
                out.append((_KeyHash(h), clauses))
            pos += total
        return out

    def close(self) -> None:
        """Detach from the segment; a second close is an explicit no-op."""
        # Take the handles into locals first: this narrows the Optionals
        # (no union-attr ignores) and clears the attributes up front, so a
        # re-entrant or repeated close sees None and returns immediately.
        shm, hdr, dat = self._shm, self._hdr, self._dat
        self._shm = self._hdr = self._dat = None
        if shm is None:
            return
        # Release the cast views *before* closing the mapping — an
        # exported memoryview makes SharedMemory.close() a BufferError.
        if hdr is not None:
            hdr.release()
        if dat is not None:
            dat.release()
        shm.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering guard
        try:
            self.close()
        except Exception:
            pass


class SharedClauseRing:
    """A clause bus in one ``multiprocessing.shared_memory`` segment.

    Layout: three int64 header words (absolute write position in data
    words, published-batch count, dropped count) followed by ``capacity``
    int32 data words used as a circular buffer of variable-length records::

        [total_words, wid, key_lo, key_hi, n_clauses,
         {lbd, size, lit0, lit1, ...} * n_clauses]

    Writers append under one cross-process lock and never block on
    readers: the ring overwrites oldest data, and each reader detects the
    lap from its private cursor (see :meth:`ShmShareEndpoint.drain`).
    Owned by the coordinator, which must call :meth:`close` with
    ``unlink=True`` exactly once after the workers are gone.
    """

    def __init__(self, capacity_words: int = 1 << 16, ctx=None) -> None:
        from multiprocessing import shared_memory

        if capacity_words < 64:
            raise ValueError("ring capacity must be at least 64 words")
        mp_ctx = ctx if ctx is not None else multiprocessing
        self.capacity = int(capacity_words)
        shm = shared_memory.SharedMemory(
            create=True, size=8 * _HEADER_WORDS + 4 * self.capacity
        )
        self.name = shm.name
        self.lock = mp_ctx.Lock()
        hdr = shm.buf[: 8 * _HEADER_WORDS].cast("q")
        hdr[_H_WRITE] = 0
        hdr[_H_PUBLISHED] = 0
        hdr[_H_DROPPED] = 0
        self._shm: Optional[Any] = shm
        self._hdr: Optional[memoryview] = hdr

    def endpoint(self, worker_id: int) -> ShmShareEndpoint:
        return ShmShareEndpoint(worker_id, self.name, self.capacity, self.lock)

    def stats(self) -> dict:
        hdr = self._hdr
        if hdr is None:  # closed: final counters are gone with the segment
            return {"published": 0, "dropped": 0}
        return {
            "published": int(hdr[_H_PUBLISHED]),
            "dropped": int(hdr[_H_DROPPED]),
        }

    def close(self, unlink: bool = False) -> None:
        """Detach (and optionally unlink) the segment; double-close is a no-op."""
        shm, hdr = self._shm, self._hdr
        self._shm = None
        self._hdr = None
        if shm is None:
            return
        if hdr is not None:
            hdr.release()
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC ordering guard
        try:
            self.close()
        except Exception:
            pass
