"""Learnt-clause sharing between cooperating solver instances.

The paper's future-work section (Sec. V) proposes a parallel portfolio over
"a wide range of objective bounds [and] different encoding methods".  An
independent portfolio throws away every clause the losing workers learn;
this module is the channel that lets them cooperate instead, in the style
of clause-sharing portfolio SAT solvers (ManySAT, HordeSat lineage).

Pieces, from the solver outward:

* :func:`clause_signature` — deterministic 64-bit FNV-1a signature of a
  clause, used for cheap per-worker duplicate suppression (a false
  collision merely drops one shareable clause, which is always safe);
* :class:`ShareClient` — attached to a :class:`repro.sat.Solver` as its
  ``share`` hook: collects freshly learnt clauses passing an LBD/size/
  variable-range filter, and exchanges them with the bus at restart
  boundaries (the solver's level-0 safe points);
* :class:`ShareEndpoint` — one worker's pair of queue handles (outbound to
  everyone, inbound from everyone), picklable across ``multiprocessing``;
* :class:`ShareRelay` — the hub owned by the coordinating process: a
  background thread fans every published batch out to every *other*
  worker's bounded inbound queue, dropping batches when a consumer lags
  (sharing is best-effort; correctness never depends on delivery).

Soundness: a learnt clause is a logical consequence of the emitting
worker's *formula* (never of its assumptions — conflict analysis resolves
assumptions away or keeps them as literals of the clause).  Two workers
may exchange clauses only when the variables mentioned have the same
meaning in both, so every batch carries a *context key* describing the
variable numbering it was learnt under (see
:meth:`repro.core.encoder.LayoutEncoder.share_key`); receivers drop
batches whose key differs from their own.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, List, Optional, Sequence, Tuple

#: Export at most this many clauses per exchange (bounded buffer).
MAX_BATCH = 256
#: Default shared-clause quality filter: LBD <= 4 or binary, and small.
MAX_SHARED_LBD = 4
MAX_SHARED_SIZE = 8

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def clause_signature(lits: Iterable[int]) -> int:
    """Order-independent 64-bit signature of a clause.

    FNV-1a over each literal, combined with XOR so permutations of the
    same literal multiset collide by construction; deterministic across
    processes (unlike ``hash``), so exporter-side and importer-side dedup
    sets agree on what has been seen.
    """
    acc = 0
    for lit in lits:
        h = _FNV_OFFSET
        x = lit & _MASK64
        while True:
            h = ((h ^ (x & 0xFF)) * _FNV_PRIME) & _MASK64
            x >>= 8
            if not x:
                break
        acc ^= h
    return acc


class ShareStats:
    """Counters for one worker's sharing activity."""

    __slots__ = ("exported", "imported", "dropped_full", "dropped_key", "dropped_dup")

    def __init__(self) -> None:
        self.exported = 0
        self.imported = 0
        self.dropped_full = 0  # publish hit a full outbound queue
        self.dropped_key = 0  # foreign batch had a mismatched context key
        self.dropped_dup = 0  # clause already seen (signature dedup)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class ShareEndpoint:
    """One worker's handles on the share bus (picklable across fork/spawn)."""

    def __init__(self, worker_id: int, outbound, inbound):
        self.worker_id = worker_id
        self.outbound = outbound
        self.inbound = inbound

    def publish(self, key, clauses: Sequence[Tuple[Tuple[int, ...], int]]) -> bool:
        """Best-effort non-blocking publish; False when the bus was full."""
        try:
            self.outbound.put_nowait((self.worker_id, key, list(clauses)))
            return True
        except queue.Full:
            return False

    def drain(self) -> List[Tuple[object, List[Tuple[Tuple[int, ...], int]]]]:
        """All batches currently waiting on the inbound queue."""
        out = []
        while True:
            try:
                _wid, key, clauses = self.inbound.get_nowait()
            except queue.Empty:
                break
            out.append((key, clauses))
        return out


class ShareClient:
    """The solver-side half of clause sharing.

    Attach as ``solver.share``; the solver then calls :meth:`offer` for
    every learnt clause and :meth:`exchange` at restart boundaries (and
    callers may invoke :meth:`repro.sat.Solver.share_sync` between solves).
    ``var_limit`` restricts sharing to the common variable prefix — clauses
    mentioning any variable at or beyond it (encoder-private auxiliaries,
    bound guards) are never exported.
    """

    def __init__(
        self,
        endpoint: ShareEndpoint,
        key,
        var_limit: int,
        max_lbd: int = MAX_SHARED_LBD,
        max_size: int = MAX_SHARED_SIZE,
        max_batch: int = MAX_BATCH,
    ):
        self.endpoint = endpoint
        self.key = key
        self.lit_limit = 2 * var_limit
        self.max_lbd = max_lbd
        self.max_size = max_size
        self.max_batch = max_batch
        self.stats = ShareStats()
        self._seen: set = set()
        self._out: List[Tuple[Tuple[int, ...], int]] = []

    def offer(self, lits: Sequence[int], lbd: int) -> None:
        """Consider one freshly learnt clause for export."""
        n = len(lits)
        if n > self.max_size or (n > 2 and lbd > self.max_lbd):
            return
        limit = self.lit_limit
        for lit in lits:
            if lit >= limit:
                return
        if len(self._out) >= self.max_batch:
            self.stats.dropped_full += 1
            return
        sig = clause_signature(lits)
        if sig in self._seen:
            self.stats.dropped_dup += 1
            return
        self._seen.add(sig)
        self._out.append((tuple(sorted(lits)), lbd))

    def take_imports(self) -> List[Tuple[int, ...]]:
        """Publish pending exports, then collect deduplicated foreign clauses."""
        if self._out:
            if self.endpoint.publish(self.key, self._out):
                self.stats.exported += len(self._out)
            else:
                self.stats.dropped_full += len(self._out)
            self._out = []
        fresh: List[Tuple[int, ...]] = []
        for key, clauses in self.endpoint.drain():
            if key != self.key:
                self.stats.dropped_key += len(clauses)
                continue
            for lits, _lbd in clauses:
                sig = clause_signature(lits)
                if sig in self._seen:
                    self.stats.dropped_dup += 1
                    continue
                self._seen.add(sig)
                fresh.append(tuple(lits))
        return fresh


class ShareRelay:
    """The coordinator-side hub: fan each batch out to all other workers.

    ``queue_factory`` builds the bounded queues — pass
    ``lambda: mp_context.Queue(maxsize)`` for a process portfolio or leave
    the default (:class:`queue.Queue`) for in-process tests.  The relay
    thread is a daemon and never blocks on a slow consumer: batches that
    do not fit a worker's inbound queue are counted and dropped.
    """

    def __init__(self, n_workers: int, buffer: int = 64, queue_factory=None):
        if queue_factory is None:
            queue_factory = lambda: queue.Queue(maxsize=64)  # noqa: E731
        self.n_workers = n_workers
        self.outbound = queue_factory()
        self.inbounds = [queue_factory() for _ in range(n_workers)]
        self.relayed = 0
        self.dropped = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def endpoint(self, worker_id: int) -> ShareEndpoint:
        return ShareEndpoint(worker_id, self.outbound, self.inbounds[worker_id])

    def start(self) -> "ShareRelay":
        self._thread = threading.Thread(
            target=self._run, name="clause-share-relay", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                msg = self.outbound.get(timeout=0.05)
            except queue.Empty:
                continue
            self._fan_out(msg)

    def _fan_out(self, msg) -> None:
        sender = msg[0]
        for wid, inbound in enumerate(self.inbounds):
            if wid == sender:
                continue
            try:
                inbound.put_nowait(msg)
                self.relayed += 1
            except queue.Full:
                self.dropped += 1

    def pump(self) -> None:
        """Synchronously fan out everything pending (for threadless tests)."""
        while True:
            try:
                msg = self.outbound.get_nowait()
            except queue.Empty:
                break
            self._fan_out(msg)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def stats(self) -> dict:
        return {"relayed": self.relayed, "dropped": self.dropped}
